"""The shared thread fan-out: worker-count rule and fail-fast mapping.

``map_in_threads`` is the one fan-out primitive under the facade, the
query engine, the sharded frontend, and the multi-process dispatcher.
The contract pinned here: results align with input, the sequential
fast path stays inline, and — the regression — a poisoned batch fails
fast: once one item raises, not-yet-started items are cancelled instead
of running to completion behind the caller's back.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import InvalidParameterError
from repro.parallel import ensure_workers, map_in_threads


def test_ensure_workers_rules():
    assert ensure_workers(None) == 1
    assert ensure_workers(3) == 3
    for bad in (0, -1, 2.5, True, "2"):
        with pytest.raises(InvalidParameterError):
            ensure_workers(bad)


def test_results_align_with_input():
    items = list(range(17))
    assert map_in_threads(lambda x: x * x, items, 4) == \
        [x * x for x in items]


def test_sequential_path_runs_inline():
    thread_ids = []

    def record(x):
        thread_ids.append(threading.get_ident())
        return x

    map_in_threads(record, [1, 2, 3], 1)
    assert set(thread_ids) == {threading.get_ident()}


def test_first_exception_propagates():
    def poisoned(x):
        if x == 2:
            raise ValueError("item 2")
        return x

    with pytest.raises(ValueError, match="item 2"):
        map_in_threads(poisoned, [0, 1, 2, 3], 2)


def test_earliest_submitted_failure_wins():
    """Two concurrent failures: the one earlier in the input propagates."""
    barrier = threading.Barrier(2, timeout=10)

    def poisoned(x):
        barrier.wait()  # both failures in flight simultaneously
        raise ValueError(f"item {x}")

    with pytest.raises(ValueError, match="item 0"):
        map_in_threads(poisoned, [0, 1], 2)


def test_poisoned_batch_cancels_not_yet_started_items():
    """The regression: one failure must not let all K slow items run.

    Six items, two workers.  Item 0 raises immediately; items 1+ block
    on an event a watchdog releases shortly after.  Before the fix the
    pool drained the whole batch (all six executed); with cancellation
    only the items already grabbed by a worker ever start.
    """
    release = threading.Event()
    started = []
    lock = threading.Lock()

    def fn(x):
        with lock:
            started.append(x)
        if x == 0:
            raise RuntimeError("poison")
        release.wait(timeout=10)
        return x

    watchdog = threading.Timer(0.3, release.set)
    watchdog.start()
    try:
        began = time.monotonic()
        with pytest.raises(RuntimeError, match="poison"):
            map_in_threads(fn, list(range(6)), 2)
        elapsed = time.monotonic() - began
    finally:
        release.set()
        watchdog.cancel()

    # At most the two workers' current items plus one re-grabbed before
    # the cancellation won the race — never the full batch.
    assert len(started) < 6, f"no early exit: {sorted(started)} all ran"
    # And the call returned as soon as running items drained (one
    # watchdog interval), not after 6/2 sequential blocking rounds.
    assert elapsed < 5


def test_successful_batch_unaffected_by_cancellation_path():
    calls = []
    lock = threading.Lock()

    def fn(x):
        with lock:
            calls.append(x)
        return -x

    assert map_in_threads(fn, list(range(8)), 3) == \
        [-x for x in range(8)]
    assert sorted(calls) == list(range(8))

"""Tests for repro.linalg.tridiagonal (implicit QL vs LAPACK)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.linalg import tridiagonal_eigh


def dense_tridiagonal(diag, offdiag):
    return (np.diag(diag) + np.diag(offdiag, 1) + np.diag(offdiag, -1))


def test_scalar_matrix():
    values, vectors = tridiagonal_eigh(np.array([3.0]), np.empty(0))
    assert values[0] == 3.0
    assert vectors[0, 0] == 1.0


def test_empty_matrix():
    values, vectors = tridiagonal_eigh(np.empty(0), np.empty(0))
    assert values.shape == (0,)
    assert vectors.shape == (0, 0)


def test_diagonal_matrix_sorted():
    values, vectors = tridiagonal_eigh(np.array([3.0, 1.0, 2.0]),
                                       np.zeros(2))
    assert np.allclose(values, [1.0, 2.0, 3.0])
    # Eigenvectors are permuted unit vectors.
    assert np.allclose(np.abs(vectors).sum(axis=0), 1.0)


def test_matches_lapack_random():
    rng = np.random.default_rng(7)
    for n in (2, 3, 5, 10, 25):
        diag = rng.normal(size=n)
        offdiag = rng.normal(size=n - 1)
        values, vectors = tridiagonal_eigh(diag, offdiag)
        dense = dense_tridiagonal(diag, offdiag)
        assert np.allclose(values, np.linalg.eigvalsh(dense), atol=1e-9)
        # Orthogonality + reconstruction.
        assert np.allclose(vectors.T @ vectors, np.eye(n), atol=1e-9)
        assert np.allclose(vectors @ np.diag(values) @ vectors.T, dense,
                           atol=1e-8)


def test_values_ascending():
    rng = np.random.default_rng(8)
    diag = rng.normal(size=20)
    offdiag = rng.normal(size=19)
    values, _ = tridiagonal_eigh(diag, offdiag)
    assert (np.diff(values) >= -1e-12).all()


def test_path_laplacian_analytic():
    """Tridiagonal Laplacian of a path has eigenvalues 2 - 2cos(pi k/n)."""
    n = 12
    diag = np.full(n, 2.0)
    diag[0] = diag[-1] = 1.0
    offdiag = np.full(n - 1, -1.0)
    values, _ = tridiagonal_eigh(diag, offdiag)
    expected = 2.0 - 2.0 * np.cos(np.pi * np.arange(n) / n)
    assert np.allclose(values, np.sort(expected), atol=1e-9)


def test_degenerate_eigenvalues():
    # Two decoupled identical 2x2 blocks -> doubly degenerate spectrum.
    diag = np.array([1.0, 1.0, 1.0, 1.0])
    offdiag = np.array([0.5, 0.0, 0.5])
    values, vectors = tridiagonal_eigh(diag, offdiag)
    assert np.allclose(values, [0.5, 0.5, 1.5, 1.5])
    assert np.allclose(vectors.T @ vectors, np.eye(4), atol=1e-9)


def test_offdiag_length_checked():
    with pytest.raises(DimensionError):
        tridiagonal_eigh(np.ones(3), np.ones(3))


@given(n=st.integers(2, 15), seed=st.integers(0, 500))
def test_matches_lapack_property(n, seed):
    rng = np.random.default_rng(seed)
    diag = rng.uniform(-5, 5, size=n)
    offdiag = rng.uniform(-5, 5, size=n - 1)
    values, vectors = tridiagonal_eigh(diag, offdiag)
    dense = dense_tridiagonal(diag, offdiag)
    assert np.allclose(values, np.linalg.eigvalsh(dense), atol=1e-8)
    assert np.allclose(vectors @ np.diag(values) @ vectors.T, dense,
                       atol=1e-7)

"""Failure injection: behaviour when scipy is unavailable.

The library promises to work with numpy alone; these tests simulate a
scipy-less environment by hiding the module from the import machinery
and verify that (a) the explicit scipy backend fails loudly with the
documented exception and (b) the auto backend silently falls back to the
in-house Lanczos solver with identical results.
"""

import builtins
import sys

import numpy as np
import pytest

import repro.linalg.backends as backends
from repro.errors import BackendUnavailableError
from repro.graph import laplacian, path_graph
from repro.linalg import smallest_eigenpairs


@pytest.fixture
def no_scipy(monkeypatch):
    """Make every `import scipy...` raise ImportError."""
    real_import = builtins.__import__

    def fake_import(name, *args, **kwargs):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"scipy hidden for this test: {name}")
        return real_import(name, *args, **kwargs)

    for module_name in list(sys.modules):
        if module_name == "scipy" or module_name.startswith("scipy."):
            monkeypatch.delitem(sys.modules, module_name)
    monkeypatch.setattr(builtins, "__import__", fake_import)


def test_scipy_available_reports_false(no_scipy):
    assert backends.scipy_available() is False


def test_explicit_scipy_backend_raises(no_scipy):
    lap = laplacian(path_graph(8))
    with pytest.raises(BackendUnavailableError):
        smallest_eigenpairs(lap, 2, backend="scipy")


def test_auto_falls_back_to_lanczos(no_scipy, monkeypatch):
    # Force the large-matrix branch so auto must choose between scipy
    # (hidden) and lanczos.
    monkeypatch.setattr(backends, "DENSE_CUTOFF", 4)
    n = 30
    lap = laplacian(path_graph(n))
    values, _ = smallest_eigenpairs(lap, 3, backend="auto")
    expected = 2 * (1 - np.cos(np.pi * np.arange(3) / n))
    assert np.allclose(values, expected, atol=1e-7)


def test_spectral_pipeline_runs_without_scipy(no_scipy):
    from repro.core import SpectralLPM
    from repro.geometry import Grid
    order = SpectralLPM(backend="lanczos").order_grid(Grid((5, 5)))
    assert sorted(order.permutation) == list(range(25))

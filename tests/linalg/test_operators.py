"""Tests for repro.linalg.operators — matrix-free deflation primitives."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.linalg import CSRMatrix
from repro.linalg.operators import (
    DeflatedOperator,
    ShiftedOperator,
    canonical_in_span,
    deflation_matrix,
    orthonormalize_block,
)


def random_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2


# ----------------------------------------------------------------------
# deflation_matrix
# ----------------------------------------------------------------------
def test_deflation_matrix_from_sequence():
    d = deflation_matrix([np.ones(4), np.arange(4.0)], 4)
    assert d.shape == (4, 2)
    assert np.array_equal(d[:, 0], np.ones(4))


def test_deflation_matrix_empty():
    d = deflation_matrix((), 5)
    assert d.shape == (5, 0)


def test_deflation_matrix_passthrough_2d():
    block = np.eye(3)[:, :2]
    assert deflation_matrix(block, 3).shape == (3, 2)


def test_deflation_matrix_shape_validation():
    with pytest.raises(DimensionError):
        deflation_matrix([np.ones(3)], 4)


# ----------------------------------------------------------------------
# DeflatedOperator
# ----------------------------------------------------------------------
def test_deflated_operator_matches_dense_projection():
    n = 12
    dense = random_symmetric(n, 0)
    mat = CSRMatrix.from_dense(dense)
    d = np.ones(n) / np.sqrt(n)
    op = DeflatedOperator(mat.matvec, n, deflate=[d])
    p = np.eye(n) - np.outer(d, d)
    reference = p @ dense @ p
    x = np.linspace(-1, 1, n)
    assert np.allclose(op.matvec(x), reference @ x)
    assert np.allclose(op @ x, reference @ x)


def test_deflated_operator_shift_places_eigenvalue():
    n = 8
    dense = random_symmetric(n, 1)
    mat = CSRMatrix.from_dense(dense)
    d = np.ones(n) / np.sqrt(n)
    shift = 50.0
    op = DeflatedOperator(mat.matvec, n, deflate=[d], shift=shift)
    # The deflated direction is an exact eigenvector at `shift`.
    assert np.allclose(op.matvec(d), shift * d)


def test_deflated_operator_no_deflation_is_identity_wrapper():
    n = 6
    dense = random_symmetric(n, 2)
    mat = CSRMatrix.from_dense(dense)
    op = DeflatedOperator(mat.matvec, n)
    x = np.arange(6.0)
    assert np.allclose(op.matvec(x), dense @ x)
    assert op.num_deflated == 0


def test_deflated_operator_matmat_and_shape():
    n = 5
    mat = CSRMatrix.from_dense(np.eye(n))
    op = DeflatedOperator(mat.matvec, n, deflate=[np.eye(n)[:, 0]])
    block = np.arange(10.0).reshape(5, 2)
    out = op @ block
    assert out.shape == (5, 2)
    assert op.shape == (n, n)
    with pytest.raises(InvalidParameterError):
        DeflatedOperator(mat.matvec, 0)


# ----------------------------------------------------------------------
# ShiftedOperator
# ----------------------------------------------------------------------
def test_shifted_operator_spectrum_flip():
    n = 10
    dense = random_symmetric(n, 3)
    mat = CSRMatrix.from_dense(dense)
    c = 7.5
    op = ShiftedOperator(mat.matvec, n, c)
    x = np.linspace(0, 1, n)
    assert np.allclose(op.matvec(x), c * x - dense @ x)
    assert op.c == c


# ----------------------------------------------------------------------
# orthonormalize_block
# ----------------------------------------------------------------------
def test_orthonormalize_block_basic():
    rng = np.random.default_rng(4)
    block = rng.normal(size=(20, 3))
    q = orthonormalize_block(block)
    assert q.shape == (20, 3)
    assert np.allclose(q.T @ q, np.eye(3), atol=1e-12)


def test_orthonormalize_block_against():
    rng = np.random.default_rng(5)
    against = np.linalg.qr(rng.normal(size=(20, 2)))[0]
    block = rng.normal(size=(20, 3))
    q = orthonormalize_block(block, against=against)
    assert np.abs(against.T @ q).max() < 1e-12


def test_orthonormalize_block_drops_dependent_columns():
    v = np.arange(10.0)
    block = np.column_stack([v, 2 * v, np.ones(10)])
    q = orthonormalize_block(block)
    assert q.shape[1] == 2


def test_orthonormalize_block_collapsed():
    against = np.ones((6, 1)) / np.sqrt(6)
    block = np.ones((6, 2))  # entirely inside the projected-out span
    q = orthonormalize_block(block, against=against)
    assert q.shape[1] == 0


# ----------------------------------------------------------------------
# canonical_in_span
# ----------------------------------------------------------------------
def test_canonical_in_span_sign_follows_probe():
    rng = np.random.default_rng(6)
    basis = np.linalg.qr(rng.normal(size=(15, 2)))[0]
    probe = rng.normal(size=15)
    v = canonical_in_span(basis, probe)
    assert np.linalg.norm(v) == pytest.approx(1.0)
    assert probe @ v > 0
    # Basis rotation does not change the canonical vector.
    angle = 0.3
    rot = np.array([[np.cos(angle), -np.sin(angle)],
                    [np.sin(angle), np.cos(angle)]])
    v2 = canonical_in_span(basis @ rot, probe)
    assert np.allclose(v, v2, atol=1e-12)


def test_canonical_in_span_orthogonal_probe_fallback():
    basis = np.eye(4)[:, :1]
    probe = np.eye(4)[:, 1]  # exactly orthogonal to the span
    v = canonical_in_span(basis, probe)
    assert np.linalg.norm(v) == pytest.approx(1.0)
    assert abs(abs(v[0]) - 1.0) < 1e-12

"""Tests for the REPRO_*_CUTOFF environment overrides (backends.py)."""

import subprocess
import sys

import pytest

from repro.errors import ConfigurationError, InvalidParameterError
from repro.linalg import cutoff_from_env
from repro.linalg import backends as backend_registry


def test_default_when_absent(monkeypatch):
    monkeypatch.delenv("REPRO_DENSE_CUTOFF", raising=False)
    assert cutoff_from_env("REPRO_DENSE_CUTOFF", 1024) == 1024


def test_empty_value_means_default(monkeypatch):
    monkeypatch.setenv("REPRO_MULTILEVEL_CUTOFF", "   ")
    assert cutoff_from_env("REPRO_MULTILEVEL_CUTOFF", 7) == 7


def test_valid_override(monkeypatch):
    monkeypatch.setenv("REPRO_DENSE_CUTOFF", " 2048 ")
    assert cutoff_from_env("REPRO_DENSE_CUTOFF", 1024) == 2048


@pytest.mark.parametrize("bad", ["abc", "1.5", "-3", "0", "1e6", "nan"])
def test_invalid_values_rejected(monkeypatch, bad):
    monkeypatch.setenv("REPRO_DENSE_CUTOFF", bad)
    with pytest.raises(ConfigurationError) as excinfo:
        cutoff_from_env("REPRO_DENSE_CUTOFF", 1024)
    # The message names the offending variable and the requirement.
    assert "REPRO_DENSE_CUTOFF" in str(excinfo.value)
    assert "positive integer" in str(excinfo.value)


def test_configuration_error_is_an_invalid_parameter_error(monkeypatch):
    """Handlers written against the old exception type keep working."""
    monkeypatch.setenv("REPRO_LOBPCG_CUTOFF", "-1")
    with pytest.raises(InvalidParameterError):
        cutoff_from_env("REPRO_LOBPCG_CUTOFF", 4096)


def test_valid_lobpcg_override(monkeypatch):
    monkeypatch.setenv("REPRO_LOBPCG_CUTOFF", "512")
    assert cutoff_from_env("REPRO_LOBPCG_CUTOFF", 4096) == 512


def _resolved_cutoffs(env_extra):
    import os

    env = dict(os.environ)
    env.update(env_extra)
    src_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    snippet = ("from repro.linalg import backends as b; "
               "print(b.DENSE_CUTOFF); print(b.MULTILEVEL_CUTOFF); "
               "print(b.LOBPCG_CUTOFF)")
    out = subprocess.run([sys.executable, "-c", snippet],
                         capture_output=True, text=True, env=env)
    return out


def test_overrides_take_effect_at_import():
    out = _resolved_cutoffs({"REPRO_DENSE_CUTOFF": "77",
                             "REPRO_MULTILEVEL_CUTOFF": "99999",
                             "REPRO_LOBPCG_CUTOFF": "2048"})
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["77", "99999", "2048"]


def test_invalid_override_fails_loudly_at_import():
    out = _resolved_cutoffs({"REPRO_MULTILEVEL_CUTOFF": "soon"})
    assert out.returncode != 0
    assert "REPRO_MULTILEVEL_CUTOFF" in out.stderr


def test_auto_policy_respects_dense_cutoff(monkeypatch):
    monkeypatch.setattr(backend_registry, "DENSE_CUTOFF", 10)
    assert backend_registry.resolve_auto(10, 1) == "dense"
    assert backend_registry.resolve_auto(11, 1) in ("scipy", "lanczos")

"""Tests for repro.linalg.power."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph import laplacian, path_graph
from repro.linalg import deterministic_start, power_iteration


def test_deterministic_start_reproducible_and_unit():
    a = deterministic_start(10)
    b = deterministic_start(10)
    assert np.array_equal(a, b)
    assert np.linalg.norm(a) == pytest.approx(1.0)
    c = deterministic_start(10, salt=1)
    assert not np.array_equal(a, c)
    with pytest.raises(InvalidParameterError):
        deterministic_start(0)


def test_dominant_eigenpair_diagonal():
    dense = np.diag([1.0, 5.0, 3.0])
    value, vector, _ = power_iteration(lambda x: dense @ x, 3, tol=1e-12)
    assert value == pytest.approx(5.0)
    assert abs(vector[1]) == pytest.approx(1.0, abs=1e-6)


def test_deflated_second_eigenpair():
    dense = np.diag([1.0, 5.0, 3.0])
    e1 = np.array([0.0, 1.0, 0.0])
    value, vector, _ = power_iteration(lambda x: dense @ x, 3,
                                       deflate=[e1], tol=1e-12)
    assert value == pytest.approx(3.0)
    assert abs(vector @ e1) < 1e-9


def test_fiedler_via_shifted_power():
    g = path_graph(20)
    lap = laplacian(g)
    bound = lap.gershgorin_upper_bound()
    ones = np.ones(20) / np.sqrt(20)
    theta, vector, _ = power_iteration(
        lambda x: bound * x - lap.matvec(x), 20, deflate=[ones],
        tol=1e-12, max_iter=200000,
    )
    lambda2 = 2 * (1 - np.cos(np.pi / 20))
    assert bound - theta == pytest.approx(lambda2, abs=1e-7)


def test_start_inside_deflated_subspace_recovers():
    dense = np.diag([1.0, 2.0])
    e0 = np.array([1.0, 0.0])
    # Start exactly on the deflated direction: the solver must fall back
    # to an alternative start instead of dying.
    value, _, _ = power_iteration(lambda x: dense @ x, 2, deflate=[e0],
                                  start=e0.copy(), tol=1e-12)
    assert value == pytest.approx(2.0)


def test_fully_deflated_space_rejected():
    dense = np.eye(2)
    basis = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
    with pytest.raises(InvalidParameterError):
        power_iteration(lambda x: dense @ x, 2, deflate=basis)


def test_nonconvergence_raises():
    # Two equal dominant eigenvalues of opposite sign never settle.
    dense = np.diag([1.0, -1.0])
    with pytest.raises(ConvergenceError):
        power_iteration(lambda x: dense @ x, 2, tol=1e-15, max_iter=50)

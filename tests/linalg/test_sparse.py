"""Tests for repro.linalg.sparse."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionError, InvalidParameterError
from repro.linalg import CSRMatrix


def random_dense(n, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, n))
    dense[rng.random((n, n)) > density] = 0.0
    return dense


def test_from_dense_roundtrip():
    dense = random_dense(8, 0.4, 0)
    mat = CSRMatrix.from_dense(dense)
    assert np.allclose(mat.to_dense(), dense)
    assert mat.shape == (8, 8)
    assert mat.nnz == np.count_nonzero(dense)


def test_from_dense_rejects_nonsquare():
    with pytest.raises(DimensionError):
        CSRMatrix.from_dense(np.ones((2, 3)))


def test_matvec_matches_dense():
    dense = random_dense(10, 0.3, 1)
    mat = CSRMatrix.from_dense(dense)
    rng = np.random.default_rng(2)
    for _ in range(5):
        x = rng.normal(size=10)
        assert np.allclose(mat.matvec(x), dense @ x)


def test_matvec_empty_matrix():
    mat = CSRMatrix.from_dense(np.zeros((4, 4)))
    assert np.allclose(mat.matvec(np.ones(4)), 0.0)


def test_matvec_shape_check():
    mat = CSRMatrix.from_dense(np.eye(3))
    with pytest.raises(DimensionError):
        mat.matvec(np.ones(4))


def test_matmat_and_matmul():
    dense = random_dense(6, 0.5, 3)
    mat = CSRMatrix.from_dense(dense)
    block = np.random.default_rng(4).normal(size=(6, 3))
    assert np.allclose(mat.matmat(block), dense @ block)
    assert np.allclose(mat @ block, dense @ block)
    assert np.allclose(mat @ block[:, 0], dense @ block[:, 0])
    with pytest.raises(DimensionError):
        mat.matmat(np.ones((4, 2)))


def test_from_coo_sums_duplicates():
    mat = CSRMatrix.from_coo(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 5.0])
    dense = mat.to_dense()
    assert dense[0, 1] == 3.0
    assert dense[1, 2] == 5.0


def test_from_coo_validation():
    with pytest.raises(InvalidParameterError):
        CSRMatrix.from_coo(2, [0], [2], [1.0])
    with pytest.raises(DimensionError):
        CSRMatrix.from_coo(2, [0, 1], [0], [1.0])


def test_diagonal():
    dense = np.diag([1.0, 2.0, 3.0])
    dense[0, 2] = 9.0
    mat = CSRMatrix.from_dense(dense)
    assert np.allclose(mat.diagonal(), [1.0, 2.0, 3.0])


def test_is_symmetric():
    sym = random_dense(6, 0.4, 5)
    sym = sym + sym.T
    assert CSRMatrix.from_dense(sym).is_symmetric()
    asym = sym.copy()
    asym[0, 1] += 1.0
    assert not CSRMatrix.from_dense(asym).is_symmetric()


def test_gershgorin_bounds_largest_eigenvalue():
    sym = random_dense(8, 0.5, 6)
    sym = sym + sym.T
    mat = CSRMatrix.from_dense(sym)
    top = np.linalg.eigvalsh(sym).max()
    assert mat.gershgorin_upper_bound() >= top - 1e-10


def test_constructor_validation():
    with pytest.raises(DimensionError):
        CSRMatrix(2, np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(InvalidParameterError):
        CSRMatrix(2, np.array([0, 1, 3]), np.array([0]), np.array([1.0]))
    with pytest.raises(InvalidParameterError):
        CSRMatrix(2, np.array([0, 1, 1]), np.array([5]), np.array([1.0]))


def test_repr():
    mat = CSRMatrix.from_dense(np.eye(3))
    assert "n=3" in repr(mat) and "nnz=3" in repr(mat)


@given(n=st.integers(1, 12), seed=st.integers(0, 1000))
def test_matvec_property(n, seed):
    dense = random_dense(n, 0.5, seed)
    mat = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed + 1).normal(size=n)
    assert np.allclose(mat.matvec(x), dense @ x)

"""Tests for repro.linalg.backends — all backends must agree."""

import os

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import cycle_graph, grid_graph, laplacian, path_graph
from repro.linalg import (
    BACKENDS,
    CSRMatrix,
    scipy_available,
    smallest_eigenpairs,
)

ALL_CONCRETE = ["dense", "lanczos"] + (
    ["scipy"] if scipy_available() else [])


@pytest.fixture(params=ALL_CONCRETE)
def backend(request):
    return request.param


def test_backend_list_stable():
    assert BACKENDS == ("auto", "dense", "lanczos", "shift_invert",
                        "lobpcg", "scipy", "multilevel")


def test_multilevel_needs_graph():
    # The multilevel backend coarsens the *graph*; the matrix-level entry
    # point documents the redirection instead of guessing.
    lap = laplacian(path_graph(8))
    with pytest.raises(InvalidParameterError, match="multilevel"):
        smallest_eigenpairs(lap, 2, backend="multilevel")


@pytest.mark.skipif(os.environ.get("REPRO_NO_SCIPY", "") == "1",
                    reason="scipy-less environment requested")
def test_scipy_is_available_here():
    # The default evaluation environment ships scipy; make sure we
    # exercise it.  CI's deliberately scipy-less leg opts out via
    # REPRO_NO_SCIPY=1 (the fallback paths have their own coverage in
    # test_backend_fallbacks.py).
    assert scipy_available()


def test_path_graph_spectrum(backend):
    n = 30
    lap = laplacian(path_graph(n))
    values, vectors = smallest_eigenpairs(lap, 4, backend=backend)
    expected = 2 * (1 - np.cos(np.pi * np.arange(4) / n))
    assert np.allclose(values, expected, atol=1e-7)
    for j in range(4):
        y = vectors[:, j]
        assert np.linalg.norm(lap.matvec(y) - values[j] * y) < 1e-6


def test_cycle_graph_degenerate_spectrum(backend):
    n = 12
    lap = laplacian(cycle_graph(n))
    values, _ = smallest_eigenpairs(lap, 3, backend=backend)
    lambda2 = 2 * (1 - np.cos(2 * np.pi / n))
    assert values[0] == pytest.approx(0.0, abs=1e-8)
    assert values[1] == pytest.approx(lambda2, abs=1e-7)
    assert values[2] == pytest.approx(lambda2, abs=1e-7)


def test_deflated_constant_gives_fiedler(backend):
    n = 30
    lap = laplacian(path_graph(n))
    ones = np.ones(n) / np.sqrt(n)
    values, vectors = smallest_eigenpairs(lap, 2, backend=backend,
                                          deflate=[ones])
    expected = 2 * (1 - np.cos(np.pi * np.arange(1, 3) / n))
    assert np.allclose(values, expected, atol=1e-7)
    assert abs(vectors[:, 0] @ ones) < 1e-7


def test_backends_agree_on_grid():
    lap = laplacian(grid_graph(Grid((5, 4))))
    n = lap.n
    ones = np.ones(n) / np.sqrt(n)
    results = {
        b: smallest_eigenpairs(lap, 3, backend=b, deflate=[ones])[0]
        for b in ALL_CONCRETE
    }
    reference = results["dense"]
    for b, values in results.items():
        assert np.allclose(values, reference, atol=1e-7), b


def test_auto_backend_dispatches():
    lap = laplacian(path_graph(10))
    values, _ = smallest_eigenpairs(lap, 2, backend="auto")
    expected = 2 * (1 - np.cos(np.pi * np.arange(2) / 10))
    assert np.allclose(values, expected, atol=1e-8)


def test_unknown_backend_rejected():
    lap = laplacian(path_graph(4))
    with pytest.raises(InvalidParameterError):
        smallest_eigenpairs(lap, 1, backend="magma")


def test_k_validation():
    lap = laplacian(path_graph(4))
    with pytest.raises(InvalidParameterError):
        smallest_eigenpairs(lap, 0)
    with pytest.raises(InvalidParameterError):
        smallest_eigenpairs(lap, 5)


def test_deflate_shape_validation():
    lap = laplacian(path_graph(4))
    with pytest.raises(InvalidParameterError):
        smallest_eigenpairs(lap, 1, deflate=[np.ones(3)])


def test_scipy_small_k_fallback():
    if not scipy_available():
        pytest.skip("scipy not installed")
    # k >= n - 1 exercises the dense fallback inside the scipy backend.
    lap = laplacian(path_graph(4))
    values, _ = smallest_eigenpairs(lap, 4, backend="scipy")
    expected = 2 * (1 - np.cos(np.pi * np.arange(4) / 4))
    assert np.allclose(values, expected, atol=1e-8)


def test_weighted_laplacian_smallest(backend):
    # Weighted path: still PSD, lambda_1 = 0.
    from repro.graph import Graph
    g = Graph.from_edges(5, [(i, i + 1) for i in range(4)],
                         weights=[1.0, 2.0, 3.0, 4.0])
    lap = laplacian(g)
    values, _ = smallest_eigenpairs(lap, 2, backend=backend)
    dense_values = np.linalg.eigvalsh(lap.to_dense())[:2]
    assert np.allclose(values, dense_values, atol=1e-7)

"""Tests for the preconditioned eigensolver backends.

Covers the shift-invert and LOBPCG backends end to end: the multilevel
V-cycle preconditioner (symmetry, Laplacian recognition, content-keyed
caching), agreement with the dense reference on exact-arithmetic-hard
inputs, iteration statistics, and the miss-tolerance-falls-back
contract that keeps a bad preconditioned solve from shipping a bad
order.  CI runs this module on both the scipy and the numpy-only leg —
nothing here may import scipy.
"""

import numpy as np
import pytest

import repro.linalg.backends as backends
from repro.core.multilevel import MultilevelPreconditioner
from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph import (Graph, grid_graph, laplacian, path_graph)
from repro.graph.laplacian import graph_from_laplacian
from repro.geometry import Grid
from repro.linalg import smallest_eigenpairs
from repro.linalg.backends import multilevel_preconditioner_for
from repro.linalg.lanczos import smallest_eigenpairs_shift_invert
from repro.linalg.lobpcg import lobpcg_smallest, smallest_eigenpairs_lobpcg
from repro.linalg.sparse import CSRMatrix


@pytest.fixture(autouse=True)
def clear_preconditioner_cache():
    backends._PRECONDITIONER_CACHE.clear()
    yield
    backends._PRECONDITIONER_CACHE.clear()


def path_deflate(n):
    return [np.ones(n) / np.sqrt(n)]


# ----------------------------------------------------------------------
# graph_from_laplacian: the recognition gate
# ----------------------------------------------------------------------
def test_laplacian_round_trips_through_recognition():
    graph = grid_graph(Grid((6, 5)))
    lap = laplacian(graph)
    recovered = graph_from_laplacian(lap)
    assert recovered is not None
    assert recovered.num_vertices == graph.num_vertices
    assert np.allclose(laplacian(recovered).to_dense(), lap.to_dense())


def test_weighted_laplacian_round_trips():
    graph = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)],
                             weights=[0.5, 2.0, 1.25, 3.0])
    recovered = graph_from_laplacian(laplacian(graph))
    assert recovered is not None
    assert np.allclose(laplacian(recovered).to_dense(),
                       laplacian(graph).to_dense())


def test_positive_offdiagonal_rejected():
    dense = np.array([[2.0, 1.0], [1.0, 2.0]])  # SPD, not a Laplacian
    assert graph_from_laplacian(CSRMatrix.from_dense(dense)) is None


def test_wrong_diagonal_rejected():
    dense = np.array([[5.0, -1.0], [-1.0, 1.0]])  # row sums don't vanish
    assert graph_from_laplacian(CSRMatrix.from_dense(dense)) is None


def test_zero_matrix_recognized_as_edgeless_graph():
    recovered = graph_from_laplacian(CSRMatrix.from_dense(np.zeros((3, 3))))
    assert recovered is not None
    assert recovered.num_edges == 0


# ----------------------------------------------------------------------
# MultilevelPreconditioner: the V-cycle itself
# ----------------------------------------------------------------------
def test_vcycle_is_symmetric():
    # CG and LOBPCG both require a symmetric preconditioner:
    # u.(M v) == v.(M u) to float accuracy.
    graph = grid_graph(Grid((9, 8)))
    m = MultilevelPreconditioner(graph)
    rng = np.random.default_rng(5)
    for _ in range(3):
        u = rng.standard_normal(graph.num_vertices)
        v = rng.standard_normal(graph.num_vertices)
        left, right = u @ m.apply(v), v @ m.apply(u)
        assert abs(left - right) <= 1e-10 * max(abs(left), abs(right), 1.0)


def test_vcycle_approximates_inverse_on_complement():
    # M should contract the error of L x = b far better than the raw
    # residual: ||L M b - b|| << ||b|| on the nullspace complement.
    graph = grid_graph(Grid((12, 12)))
    lap = laplacian(graph)
    m = MultilevelPreconditioner(graph)
    n = graph.num_vertices
    ones = np.ones(n) / np.sqrt(n)
    rng = np.random.default_rng(11)
    b = rng.standard_normal(n)
    b -= ones * (ones @ b)
    x = m.apply(b)
    residual = lap.matvec(x) - b
    residual -= ones * (ones @ residual)
    assert np.linalg.norm(residual) < 0.5 * np.linalg.norm(b)


def test_vcycle_matmat_matches_columnwise_apply():
    graph = grid_graph(Grid((7, 6)))
    m = MultilevelPreconditioner(graph)
    rng = np.random.default_rng(2)
    block = rng.standard_normal((graph.num_vertices, 3))
    blocked = m.apply(block)
    for j in range(3):
        np.testing.assert_allclose(blocked[:, j], m.apply(block[:, j]),
                                   atol=1e-12)


# ----------------------------------------------------------------------
# The preconditioner factory and its content cache
# ----------------------------------------------------------------------
def test_factory_builds_for_laplacian_and_caches_by_content():
    lap = laplacian(grid_graph(Grid((8, 8))))
    first = multilevel_preconditioner_for(lap)
    assert isinstance(first, MultilevelPreconditioner)
    # A *different object* with identical content hits the same entry.
    twin = laplacian(grid_graph(Grid((8, 8))))
    assert twin is not lap
    assert multilevel_preconditioner_for(twin) is first


def test_factory_returns_none_for_general_spd_and_caches_verdict():
    dense = np.array([[2.0, 1.0, 0.0],
                      [1.0, 2.0, 1.0],
                      [0.0, 1.0, 2.0]])
    matrix = CSRMatrix.from_dense(dense)
    assert multilevel_preconditioner_for(matrix) is None
    # The None verdict is cached too (no rebuild attempt).
    key = backends._matrix_content_key(matrix)
    assert key in backends._PRECONDITIONER_CACHE
    assert backends._PRECONDITIONER_CACHE[key] is None


def test_factory_cache_evicts_fifo():
    for side in (5, 6, 7, 8, 9):
        multilevel_preconditioner_for(laplacian(path_graph(side)))
    assert len(backends._PRECONDITIONER_CACHE) == \
        backends._PRECONDITIONER_CACHE_SIZE


def test_distinct_weights_get_distinct_preconditioners():
    base = Graph.from_edges(30, [(i, i + 1) for i in range(29)])
    heavy = Graph.from_edges(30, [(i, i + 1) for i in range(29)],
                             weights=[2.0] * 29)
    first = multilevel_preconditioner_for(laplacian(base))
    second = multilevel_preconditioner_for(laplacian(heavy))
    assert first is not second


# ----------------------------------------------------------------------
# Shift-invert backend
# ----------------------------------------------------------------------
def test_shift_invert_matches_dense_on_path():
    n = 120
    lap = laplacian(path_graph(n))
    values, vectors = smallest_eigenpairs(lap, 3, backend="shift_invert",
                                          deflate=path_deflate(n))
    exact = 2 * (1 - np.cos(np.pi * np.arange(1, 4) / n))
    np.testing.assert_allclose(values, exact, atol=1e-8)
    for j in range(3):
        y = vectors[:, j]
        assert np.linalg.norm(lap.matvec(y) - values[j] * y) < 1e-6


def test_shift_invert_stats_report_inner_outer_iterations():
    n = 80
    lap = laplacian(path_graph(n))
    stats = {}
    smallest_eigenpairs_shift_invert(
        lap.matvec, n, 2, upper_bound=lap.gershgorin_upper_bound(),
        deflate=path_deflate(n), tol=1e-9,
        preconditioner=multilevel_preconditioner_for(lap),
        stats=stats)
    assert stats["outer_iterations"] >= 2
    assert stats["inner_iterations"] >= stats["outer_iterations"]
    assert stats["max_inner_iterations"] >= 1


def test_preconditioner_reduces_inner_iterations():
    n = 400
    lap = laplacian(path_graph(n))
    bound = lap.gershgorin_upper_bound()
    plain, preconditioned = {}, {}
    smallest_eigenpairs_shift_invert(
        lap.matvec, n, 1, upper_bound=bound, deflate=path_deflate(n),
        stats=plain)
    smallest_eigenpairs_shift_invert(
        lap.matvec, n, 1, upper_bound=bound, deflate=path_deflate(n),
        preconditioner=multilevel_preconditioner_for(lap),
        stats=preconditioned)
    assert preconditioned["inner_iterations"] < plain["inner_iterations"]


def test_shift_invert_falls_back_on_non_laplacian_spd():
    # General SPD input: no preconditioner, and the clustered-at-zero
    # assumption may not hold — the registry path must still return the
    # right answer (via the inner-outer solve or the Lanczos fallback).
    rng = np.random.default_rng(4)
    q, _ = np.linalg.qr(rng.standard_normal((40, 40)))
    spectrum = np.linspace(1.0, 10.0, 40)
    dense = (q * spectrum) @ q.T
    matrix = CSRMatrix.from_dense((dense + dense.T) / 2.0)
    values, _ = smallest_eigenpairs(matrix, 2, backend="shift_invert")
    np.testing.assert_allclose(values, spectrum[:2], atol=1e-6)


# ----------------------------------------------------------------------
# LOBPCG backend
# ----------------------------------------------------------------------
def test_lobpcg_matches_dense_on_grid():
    grid = Grid((11, 10))
    lap = laplacian(grid_graph(grid))
    n = grid.size
    deflate = path_deflate(n)
    got, got_vecs = smallest_eigenpairs(lap, 3, backend="lobpcg",
                                        deflate=deflate)
    want, _ = smallest_eigenpairs(lap, 3, backend="dense",
                                  deflate=deflate)
    np.testing.assert_allclose(got, want, atol=1e-8)
    for j in range(3):
        y = got_vecs[:, j]
        assert np.linalg.norm(lap.matvec(y) - got[j] * y) < 1e-6


def test_lobpcg_handles_degenerate_eigenspace():
    # Square grid: lambda_2 has multiplicity 2; the block must resolve
    # both without mixing in lambda_4.
    grid = Grid((10, 10))
    lap = laplacian(grid_graph(grid))
    deflate = path_deflate(grid.size)
    values, _ = smallest_eigenpairs(lap, 3, backend="lobpcg",
                                    deflate=deflate)
    assert values[0] == pytest.approx(values[1], rel=1e-8)
    assert values[2] > values[1] * (1 + 1e-6)


def test_lobpcg_stats_and_soft_locking():
    n = 200
    lap = laplacian(path_graph(n))
    stats = {}
    smallest_eigenpairs_lobpcg(
        lap.matvec, n, 2, upper_bound=lap.gershgorin_upper_bound(),
        deflate=path_deflate(n), tol=1e-9, matmat=lap.matmat,
        preconditioner=multilevel_preconditioner_for(lap), stats=stats)
    assert stats["iterations"] >= 1
    assert stats["operator_columns"] >= stats["iterations"]


def test_lobpcg_preconditioner_cuts_iterations():
    n = 600
    lap = laplacian(path_graph(n))
    bound = lap.gershgorin_upper_bound()
    plain, preconditioned = {}, {}
    try:
        lobpcg_smallest(lap.matvec, n, 1, deflate=path_deflate(n),
                        upper_bound=bound, tol=1e-9, matmat=lap.matmat,
                        stats=plain)
    except ConvergenceError:
        plain["iterations"] = 500  # hit the cap: worst case
    lobpcg_smallest(lap.matvec, n, 1, deflate=path_deflate(n),
                    upper_bound=bound, tol=1e-9, matmat=lap.matmat,
                    preconditioner=multilevel_preconditioner_for(lap),
                    stats=preconditioned)
    assert preconditioned["iterations"] < plain["iterations"]


def test_lobpcg_nonconvergence_raises():
    n = 50
    lap = laplacian(path_graph(n))
    with pytest.raises(ConvergenceError):
        lobpcg_smallest(lap.matvec, n, 1, deflate=path_deflate(n),
                        upper_bound=lap.gershgorin_upper_bound(),
                        tol=1e-13, maxiter=1)


def test_lobpcg_rejects_bad_k():
    lap = laplacian(path_graph(5))
    with pytest.raises(InvalidParameterError):
        lobpcg_smallest(lap.matvec, 5, 6)
    with pytest.raises(InvalidParameterError):
        lobpcg_smallest(lap.matvec, 5, 0)


# ----------------------------------------------------------------------
# Registry-level contracts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["shift_invert", "lobpcg"])
def test_registry_backends_agree_with_dense(backend):
    lap = laplacian(grid_graph(Grid((7, 9))))
    deflate = path_deflate(lap.n)
    got, _ = smallest_eigenpairs(lap, 2, backend=backend,
                                 deflate=deflate)
    want, _ = smallest_eigenpairs(lap, 2, backend="dense",
                                  deflate=deflate)
    np.testing.assert_allclose(got, want, atol=1e-8)


@pytest.mark.parametrize("backend", ["shift_invert", "lobpcg"])
def test_tiny_systems_work(backend):
    lap = laplacian(path_graph(3))
    values, _ = smallest_eigenpairs(lap, 1, backend=backend,
                                    deflate=path_deflate(3))
    assert values[0] == pytest.approx(1.0, abs=1e-8)


@pytest.mark.parametrize("backend", ["shift_invert", "lobpcg"])
def test_custom_tol_is_respected(backend):
    # A loose tolerance must still produce residuals within its own
    # bound; the pipeline threads SpectralConfig.solver_tol through
    # this parameter.
    n = 64
    lap = laplacian(path_graph(n))
    values, vectors = smallest_eigenpairs(lap, 1, backend=backend,
                                          deflate=path_deflate(n),
                                          tol=1e-6)
    y = vectors[:, 0]
    scale = max(lap.gershgorin_upper_bound(), 1.0)
    assert np.linalg.norm(lap.matvec(y) - values[0] * y) <= \
        1e-4 * scale  # the documented 100x acceptance slack


def test_fallback_contract_on_forced_failure(monkeypatch):
    # Break the preconditioned path; the registry must silently deliver
    # the Lanczos answer rather than propagate the failure.
    def explode(*args, **kwargs):
        raise ConvergenceError("forced", iterations=0, residual=1.0)

    monkeypatch.setattr(backends, "smallest_eigenpairs_shift_invert",
                        explode)
    monkeypatch.setattr(backends, "smallest_eigenpairs_lobpcg", explode)
    n = 40
    lap = laplacian(path_graph(n))
    exact = 2 * (1 - np.cos(np.pi / n))
    for backend in ("shift_invert", "lobpcg"):
        values, _ = smallest_eigenpairs(lap, 1, backend=backend,
                                        deflate=path_deflate(n))
        assert values[0] == pytest.approx(exact, abs=1e-8)


def test_resolve_auto_picks_lobpcg_where_it_wins():
    # Above the LOBPCG cutoff the numpy-only leg switches from flat
    # Lanczos to the preconditioned block solver; scipy still wins when
    # importable.
    assert backends.resolve_auto(backends.DENSE_CUTOFF) == "dense"
    large = backends.resolve_auto(backends.LOBPCG_CUTOFF + 1)
    medium = backends.resolve_auto(backends.DENSE_CUTOFF + 1)
    if backends.scipy_available():
        assert large == medium == "scipy"
    else:
        assert large == "lobpcg"
        assert medium == "lanczos"

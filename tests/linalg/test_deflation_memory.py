"""Regression: scipy-backend deflation must stay matrix-free.

The scipy backend once materialized the deflation shift as
``col @ col.T`` — for the constant vector that is a fully dense
``n x n`` matrix stored in CSR clothing (an O(n^2) allocation), which
the sparse factorization then had to chew through.  These tests pin the
fix: ordering a 128 x 128 grid through the scipy backend must complete
within a modest peak-memory envelope, and the deflated solve must agree
with the dense oracle exactly.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core import SpectralLPM
from repro.geometry import Grid
from repro.graph import grid_graph, laplacian, path_graph
from repro.linalg import scipy_available, smallest_eigenpairs

pytestmark = pytest.mark.skipif(not scipy_available(),
                                reason="scipy not installed")

#: Peak traced allocation allowed for the 128x128 solve.  The dense
#: rank-1 deflation update alone would need ~2 GB for n = 16384
#: (n^2 float64 values plus CSR indices), so this bound fails loudly on
#: any densification regression while leaving ~20x headroom over the
#: matrix-free implementation's real footprint.
PEAK_BYTES_LIMIT = 256 * 1024 * 1024


def test_scipy_deflation_allocates_no_dense_intermediate():
    grid = Grid((128, 128))
    algorithm = SpectralLPM(backend="scipy")
    graph = algorithm.build_grid_graph(grid)
    tracemalloc.start()
    try:
        order = algorithm.order_graph(graph)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert sorted(order.permutation) == list(range(grid.size))
    n = grid.size
    dense_update_bytes = n * n * 8
    assert peak < PEAK_BYTES_LIMIT, (
        f"peak {peak / 1e6:.0f} MB; a dense n^2 deflation update would "
        f"need at least {dense_update_bytes / 1e6:.0f} MB"
    )


def test_scipy_deflated_values_match_dense():
    lap = laplacian(path_graph(60))
    ones = np.ones(60) / np.sqrt(60)
    values, vectors = smallest_eigenpairs(lap, 3, backend="scipy",
                                          deflate=[ones])
    reference, _ = smallest_eigenpairs(lap, 3, backend="dense",
                                       deflate=[ones])
    assert np.allclose(values, reference, atol=1e-8)
    assert np.abs(vectors.T @ ones).max() < 1e-8


def test_scipy_multi_vector_deflation():
    # Deflating several directions at once exercises the p > 1 Woodbury
    # capacitance path.
    lap = laplacian(grid_graph(Grid((9, 7))))
    n = lap.n
    ones = np.ones(n) / np.sqrt(n)
    dense_values, dense_vectors = smallest_eigenpairs(
        lap, 3, backend="dense", deflate=[ones])
    extra = dense_vectors[:, 0]
    values, _ = smallest_eigenpairs(lap, 2, backend="scipy",
                                    deflate=[ones, extra])
    assert np.allclose(values, dense_values[1:3], atol=1e-8)

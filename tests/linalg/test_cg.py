"""Unit tests for the deflation-aware conjugate-gradient inner solver.

The CG module is the inner loop of the shift-invert eigensolve path;
these tests pin its contracts in isolation: exact solutions on known
SPD systems, deflated consistency on the singular graph Laplacian, and
loud :class:`~repro.errors.ConvergenceError` failures on non-SPD input
and iteration exhaustion (the signal the backend registry's fall-back
logic keys on).
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError, InvalidParameterError
from repro.graph import laplacian, path_graph
from repro.linalg.cg import CGResult, conjugate_gradient


def dense_matvec(a):
    return lambda x: a @ x


# ----------------------------------------------------------------------
# Known SPD systems
# ----------------------------------------------------------------------
def test_identity_system_converges_immediately():
    b = np.array([3.0, -1.0, 2.0])
    result = conjugate_gradient(dense_matvec(np.eye(3)), b)
    assert result.converged
    assert result.iterations <= 1
    np.testing.assert_allclose(result.x, b, atol=1e-12)


def test_small_spd_system_exact():
    a = np.array([[4.0, 1.0], [1.0, 3.0]])
    b = np.array([1.0, 2.0])
    result = conjugate_gradient(dense_matvec(a), b, rtol=1e-12)
    assert result.converged
    np.testing.assert_allclose(result.x, np.linalg.solve(a, b),
                               atol=1e-10)
    assert result.residual <= 1e-12 * np.linalg.norm(b)


def test_diagonal_system_n_step_convergence():
    # CG terminates in at most (#distinct eigenvalues) iterations in
    # exact arithmetic; a diagonal with 3 distinct entries needs <= 3.
    diag = np.array([1.0, 1.0, 4.0, 4.0, 9.0, 9.0])
    a = np.diag(diag)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(6)
    result = conjugate_gradient(dense_matvec(a), b, rtol=1e-12)
    assert result.converged
    assert result.iterations <= 4  # 3 + float-noise slack
    np.testing.assert_allclose(result.x, b / diag, atol=1e-9)


def test_random_spd_system_matches_direct_solve():
    rng = np.random.default_rng(0)
    m = rng.standard_normal((40, 40))
    a = m @ m.T + 40 * np.eye(40)
    b = rng.standard_normal(40)
    result = conjugate_gradient(dense_matvec(a), b, rtol=1e-12)
    assert result.converged
    np.testing.assert_allclose(result.x, np.linalg.solve(a, b),
                               atol=1e-8)


def test_jacobi_preconditioner_cuts_iterations():
    rng = np.random.default_rng(3)
    diag = np.geomspace(1.0, 1e4, 60)
    q, _ = np.linalg.qr(rng.standard_normal((60, 60)))
    # Keep the matrix diagonally dominated so Jacobi helps.
    a = np.diag(diag) + 1e-2 * (q @ np.diag(diag) @ q.T)
    a = (a + a.T) / 2.0
    b = rng.standard_normal(60)
    plain = conjugate_gradient(dense_matvec(a), b, rtol=1e-10)
    inv_diag = 1.0 / np.diag(a)
    preconditioned = conjugate_gradient(
        dense_matvec(a), b, rtol=1e-10,
        preconditioner=lambda r: inv_diag * r)
    assert preconditioned.converged
    assert preconditioned.iterations < plain.iterations
    np.testing.assert_allclose(preconditioned.x, plain.x, atol=1e-5)


def test_warm_start_reduces_work():
    a = np.diag(np.linspace(1.0, 50.0, 30))
    b = np.ones(30)
    exact = b / np.diag(a)
    cold = conjugate_gradient(dense_matvec(a), b, rtol=1e-10)
    warm = conjugate_gradient(dense_matvec(a), b, rtol=1e-10,
                              x0=exact + 1e-8)
    assert warm.iterations < cold.iterations
    np.testing.assert_allclose(warm.x, exact, atol=1e-8)


def test_zero_rhs_returns_zero():
    result = conjugate_gradient(dense_matvec(np.eye(4)), np.zeros(4))
    assert result.converged
    assert result.iterations == 0
    assert np.array_equal(result.x, np.zeros(4))


def test_result_is_frozen_dataclass():
    result = conjugate_gradient(dense_matvec(np.eye(2)), np.ones(2))
    assert isinstance(result, CGResult)
    with pytest.raises(AttributeError):
        result.iterations = 99


def test_matrix_rhs_rejected():
    with pytest.raises(InvalidParameterError):
        conjugate_gradient(dense_matvec(np.eye(2)), np.ones((2, 2)))


# ----------------------------------------------------------------------
# Deflated singular Laplacian (the production inner system)
# ----------------------------------------------------------------------
def test_deflated_singular_laplacian_consistent_solve():
    n = 25
    lap = laplacian(path_graph(n))
    ones = np.ones(n) / np.sqrt(n)

    def project(x):
        return x - ones * (ones @ x)

    rng = np.random.default_rng(1)
    b = project(rng.standard_normal(n))  # consistent RHS
    result = conjugate_gradient(lap.matvec, b, rtol=1e-11,
                                project=project)
    assert result.converged
    # Solution stays in the complement of the nullspace...
    assert abs(ones @ result.x) < 1e-9
    # ...and genuinely solves the singular system.
    assert np.linalg.norm(lap.matvec(result.x) - b) <= \
        1e-9 * np.linalg.norm(b)


def test_unprojected_rhs_is_projected_for_the_caller():
    # The deflated system is only consistent after projection; the
    # solver applies `project` to b itself, so callers may pass the raw
    # right-hand side.
    n = 16
    lap = laplacian(path_graph(n))
    ones = np.ones(n) / np.sqrt(n)

    def project(x):
        return x - ones * (ones @ x)

    b = np.arange(n, dtype=np.float64)  # has a nullspace component
    result = conjugate_gradient(lap.matvec, b, rtol=1e-11,
                                project=project)
    assert result.converged
    assert np.linalg.norm(lap.matvec(result.x) - project(b)) <= 1e-8


def test_singular_laplacian_without_projection_fails_loudly():
    # Inconsistent singular system: CG must not pretend to converge.
    n = 12
    lap = laplacian(path_graph(n))
    b = np.ones(n)  # entirely in the nullspace -> no solution
    with pytest.raises(ConvergenceError):
        conjugate_gradient(lap.matvec, b, rtol=1e-12, maxiter=200)


# ----------------------------------------------------------------------
# Non-convergence raises
# ----------------------------------------------------------------------
def test_maxiter_exhaustion_raises_with_diagnostics():
    a = np.diag(np.geomspace(1.0, 1e8, 50))  # too ill-conditioned
    b = np.ones(50)
    with pytest.raises(ConvergenceError) as excinfo:
        conjugate_gradient(dense_matvec(a), b, rtol=1e-14, maxiter=3)
    assert excinfo.value.iterations == 3
    assert excinfo.value.residual > 0.0


def test_indefinite_operator_raises_curvature_error():
    a = np.diag([1.0, -1.0, 2.0])
    b = np.array([1.0, 1.0, 1.0])
    with pytest.raises(ConvergenceError, match="curvature"):
        conjugate_gradient(dense_matvec(a), b)


def test_indefinite_preconditioner_raises():
    a = np.diag([1.0, 2.0, 3.0])
    b = np.array([1.0, 1.0, 1.0])
    with pytest.raises(ConvergenceError, match="preconditioner"):
        conjugate_gradient(dense_matvec(a), b,
                           preconditioner=lambda r: -r)

"""Tests for repro.linalg.lanczos."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import grid_graph, laplacian, path_graph
from repro.linalg import (
    CSRMatrix,
    lanczos_symmetric,
    smallest_eigenpairs_shifted,
)


def random_symmetric(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2


def test_largest_eigenpairs_random():
    dense = random_symmetric(40, 0)
    mat = CSRMatrix.from_dense(dense)
    result = lanczos_symmetric(mat.matvec, 40, k=3)
    expected = np.linalg.eigvalsh(dense)[-3:]
    assert np.allclose(result.values, expected, atol=1e-7)
    for j in range(3):
        y = result.vectors[:, j]
        assert np.linalg.norm(dense @ y - result.values[j] * y) < 1e-6


def test_full_space_small_matrix():
    dense = random_symmetric(6, 1)
    mat = CSRMatrix.from_dense(dense)
    result = lanczos_symmetric(mat.matvec, 6, k=6)
    assert np.allclose(result.values, np.linalg.eigvalsh(dense),
                       atol=1e-8)


def test_deflation_excludes_direction():
    dense = random_symmetric(20, 2)
    # Plant a known dominant eigenpair.
    v = np.ones(20) / np.sqrt(20)
    dense = dense + 100.0 * np.outer(v, v)
    mat = CSRMatrix.from_dense(dense)
    undeflated = lanczos_symmetric(mat.matvec, 20, k=1)
    assert undeflated.values[0] == pytest.approx(
        np.linalg.eigvalsh(dense)[-1])
    deflated = lanczos_symmetric(mat.matvec, 20, k=1, deflate=[v])
    # The planted direction is gone; the top of the remaining spectrum
    # matches the dense solve restricted to the orthogonal complement.
    assert abs(deflated.vectors[:, 0] @ v) < 1e-8
    assert deflated.values[0] < 90.0


def test_determinism():
    dense = random_symmetric(30, 3)
    mat = CSRMatrix.from_dense(dense)
    r1 = lanczos_symmetric(mat.matvec, 30, k=2)
    r2 = lanczos_symmetric(mat.matvec, 30, k=2)
    assert np.array_equal(r1.values, r2.values)
    assert np.array_equal(r1.vectors, r2.vectors)


def test_k_validation():
    mat = CSRMatrix.from_dense(np.eye(4))
    with pytest.raises(InvalidParameterError):
        lanczos_symmetric(mat.matvec, 4, k=0)
    with pytest.raises(InvalidParameterError):
        lanczos_symmetric(mat.matvec, 4, k=5)
    with pytest.raises(InvalidParameterError):
        lanczos_symmetric(mat.matvec, 0, k=1)


def test_happy_breakdown_identity():
    # The identity's Krylov space collapses after one vector: the solver
    # must restart internally and still return k orthonormal pairs.
    mat = CSRMatrix.from_dense(np.eye(8))
    result = lanczos_symmetric(mat.matvec, 8, k=3)
    assert np.allclose(result.values, 1.0)
    basis = result.vectors
    assert np.allclose(basis.T @ basis, np.eye(3), atol=1e-8)


def test_smallest_eigenpairs_shifted_path():
    g = path_graph(50)
    lap = laplacian(g)
    ones = np.ones(50) / np.sqrt(50)
    values, vectors = smallest_eigenpairs_shifted(
        lap.matvec, 50, k=3, upper_bound=lap.gershgorin_upper_bound(),
        deflate=[ones],
    )
    expected = 2 * (1 - np.cos(np.pi * np.arange(1, 4) / 50))
    assert np.allclose(values, expected, atol=1e-8)
    assert (np.diff(values) >= -1e-12).all()


def test_smallest_eigenpairs_shifted_grid_degenerate():
    g = grid_graph(Grid((5, 5)))
    lap = laplacian(g)
    n = g.num_vertices
    ones = np.ones(n) / np.sqrt(n)
    values, _ = smallest_eigenpairs_shifted(
        lap.matvec, n, k=4, upper_bound=lap.gershgorin_upper_bound(),
        deflate=[ones],
    )
    lambda2 = 2 * (1 - np.cos(np.pi / 5))
    # Degenerate pair, then the next mode.
    assert values[0] == pytest.approx(lambda2, abs=1e-8)
    assert values[1] == pytest.approx(lambda2, abs=1e-8)
    assert values[2] > lambda2 + 1e-6


def test_full_spectrum_complete_graph_deflated():
    # Complete graph: every non-null eigenvalue equals n, so the Krylov
    # space from any start is one-dimensional and the solver must inject
    # fresh directions repeatedly.  Requesting every deflated pair used
    # to exhaust the quasi-random probes on tiny operators and crash
    # with an IndexError; the canonical-basis fallback now fills the
    # basis to n - 1 columns.
    n = 9
    dense = n * np.eye(n) - np.ones((n, n))
    mat = CSRMatrix.from_dense(dense)
    ones = np.ones(n) / np.sqrt(n)
    values, vectors = smallest_eigenpairs_shifted(
        mat.matvec, n, k=n - 1, upper_bound=mat.gershgorin_upper_bound(),
        deflate=[ones],
    )
    assert np.allclose(values, float(n), atol=1e-7)
    assert np.allclose(vectors.T @ vectors, np.eye(n - 1), atol=1e-7)
    assert np.abs(ones @ vectors).max() < 1e-8

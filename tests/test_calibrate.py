"""The cutoff calibration script: measurements in, valid env file out."""

import os

import pytest

from repro import calibrate
from repro.linalg.backends import (
    DENSE_CUTOFF,
    MULTILEVEL_CUTOFF,
    cutoff_from_env,
)


@pytest.fixture(scope="module")
def quick_result():
    return calibrate.calibrate(quick=True, repeats=1)


def test_calibrate_produces_positive_cutoffs(quick_result):
    assert quick_result.dense_cutoff >= 1
    assert quick_result.multilevel_cutoff >= 1
    assert quick_result.iterative_backend in ("scipy", "lanczos")


def test_calibrate_measures_the_quick_ladder(quick_result):
    expected_ns = [side * side for side in calibrate.QUICK_DENSE_SIDES]
    assert [m.n for m in quick_result.dense_measurements] == expected_ns
    assert all(m.cheap_s > 0 and m.expensive_s > 0
               for m in quick_result.dense_measurements)
    assert all(m.cheap_s > 0 and m.expensive_s > 0
               for m in quick_result.multilevel_measurements)


def test_cutoffs_are_grounded_in_measurements(quick_result):
    measured = {m.n for m in quick_result.dense_measurements}
    if quick_result.dense_crossed:
        assert quick_result.dense_cutoff in measured
    else:
        # No observed crossover must never LOWER the shipped default.
        assert quick_result.dense_cutoff == max(DENSE_CUTOFF,
                                                max(measured))
    if quick_result.multilevel_crossed:
        assert quick_result.multilevel_cutoff in {
            m.n for m in quick_result.multilevel_measurements}
    else:
        assert quick_result.multilevel_cutoff == MULTILEVEL_CUTOFF


def test_env_file_round_trips_through_cutoff_from_env(
        quick_result, tmp_path, monkeypatch):
    text = calibrate.render_env_file(quick_result)
    values = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition("=")
        values[name] = value
    assert set(values) == {"REPRO_DENSE_CUTOFF",
                           "REPRO_MULTILEVEL_CUTOFF"}
    monkeypatch.setenv("REPRO_DENSE_CUTOFF",
                       values["REPRO_DENSE_CUTOFF"])
    assert (cutoff_from_env("REPRO_DENSE_CUTOFF", 1)
            == quick_result.dense_cutoff)
    monkeypatch.setenv("REPRO_MULTILEVEL_CUTOFF",
                       values["REPRO_MULTILEVEL_CUTOFF"])
    assert (cutoff_from_env("REPRO_MULTILEVEL_CUTOFF", 1)
            == quick_result.multilevel_cutoff)


def test_main_writes_the_env_file(tmp_path, capsys):
    out = tmp_path / "cutoffs.env"
    assert calibrate.main(["--quick", "--repeats", "1",
                           "--out", str(out)]) == 0
    assert out.exists()
    content = out.read_text()
    assert "REPRO_DENSE_CUTOFF=" in content
    assert "REPRO_MULTILEVEL_CUTOFF=" in content
    assert "dense vs iterative" in content
    printed = capsys.readouterr().out
    assert "wrote" in printed
    # every assignment line must be shell-sourceable (NAME=int)
    for line in content.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.partition("=")
        assert name.isidentifier()
        assert int(value) >= 1
        assert " " not in line


def test_quick_ladders_are_subsets_of_full():
    assert max(calibrate.QUICK_DENSE_SIDES) <= max(calibrate.DENSE_SIDES)
    assert (max(calibrate.QUICK_MULTILEVEL_SIDES)
            <= max(calibrate.MULTILEVEL_SIDES))

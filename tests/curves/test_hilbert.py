"""Tests for the Hilbert curve (Skilling transform + 2-D oracle)."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import (
    HilbertCurve,
    hilbert2d_index,
    hilbert2d_point,
)
from repro.errors import DomainError, InvalidParameterError


@pytest.mark.parametrize("ndim,bits", [(2, 2), (2, 3), (2, 4), (3, 2),
                                       (3, 3), (4, 2), (5, 1)])
def test_unit_steps(ndim, bits):
    """The defining Hilbert property: consecutive cells are adjacent."""
    curve = HilbertCurve(ndim, bits)
    assert all(step == 1 for step in curve.step_sizes())


def test_starts_at_origin():
    for ndim, bits in [(2, 2), (3, 2), (4, 1)]:
        curve = HilbertCurve(ndim, bits)
        assert curve.index_to_point(0) == (0,) * ndim


def test_nested_self_similarity_2d():
    """The first quadrant of the 2^(b+1) curve is the 2^b curve's cells.

    Hilbert curves refine: the first quarter of the indices stays inside
    one quadrant of the grid — the recursive structure that makes the
    curve a fractal.
    """
    coarse = HilbertCurve(2, 2)
    fine = HilbertCurve(2, 3)
    quarter = {fine.index_to_point(i) for i in range(fine.size // 4)}
    # All inside a single 4x4 quadrant.
    assert all(x < 4 and y < 4 for x, y in quarter)
    assert len(quarter) == coarse.size


def test_4x4_visits_every_cell_with_unit_steps():
    curve = HilbertCurve(2, 2)
    order = [curve.index_to_point(i) for i in range(16)]
    assert len(set(order)) == 16
    assert order[0] == (0, 0)


# ----------------------------------------------------------------------
# The classic 2-D oracle
# ----------------------------------------------------------------------
def test_oracle_roundtrip():
    for side in (2, 4, 8, 16):
        for index in range(side * side):
            x, y = hilbert2d_point(side, index)
            assert hilbert2d_index(side, x, y) == index


def test_oracle_unit_steps():
    side = 16
    points = [hilbert2d_point(side, i) for i in range(side * side)]
    for a, b in zip(points, points[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def test_oracle_validation():
    with pytest.raises(InvalidParameterError):
        hilbert2d_index(3, 0, 0)
    with pytest.raises(DomainError):
        hilbert2d_index(4, 4, 0)
    with pytest.raises(InvalidParameterError):
        hilbert2d_point(5, 0)
    with pytest.raises(DomainError):
        hilbert2d_point(4, 16)


def test_skilling_and_oracle_share_locality_statistics():
    """Orientations may differ, but both are Hilbert curves: identical
    multiset of adjacent-pair index gaps on the same grid."""
    side = 8
    curve = HilbertCurve(2, 3)

    def adjacent_gaps(index_of):
        gaps = []
        for x, y in itertools.product(range(side), repeat=2):
            if x + 1 < side:
                gaps.append(abs(index_of(x, y) - index_of(x + 1, y)))
            if y + 1 < side:
                gaps.append(abs(index_of(x, y) - index_of(x, y + 1)))
        return sorted(gaps)

    skilling = adjacent_gaps(lambda x, y: curve.point_to_index((x, y)))
    oracle = adjacent_gaps(lambda x, y: hilbert2d_index(side, x, y))
    assert skilling == oracle


@given(bits=st.integers(1, 5), data=st.data())
def test_oracle_matches_unit_step_property(bits, data):
    side = 1 << bits
    index = data.draw(st.integers(0, side * side - 2))
    a = hilbert2d_point(side, index)
    b = hilbert2d_point(side, index + 1)
    assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

"""Vectorized batch encoders must agree exactly with the scalar curves."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import batch_encoder, make_curve
from repro.curves.vectorized import (
    gray_keys,
    hilbert_keys,
    morton_keys,
    snake_keys,
    sweep_keys,
)
from repro.errors import DimensionError, InvalidParameterError

VECTORIZED = {
    "peano": morton_keys,
    "gray": gray_keys,
    "sweep": sweep_keys,
    "snake": snake_keys,
    "hilbert": hilbert_keys,
}


@pytest.mark.parametrize("name,fn", sorted(VECTORIZED.items()))
@pytest.mark.parametrize("ndim,bits", [(1, 3), (2, 2), (2, 3), (3, 2),
                                       (4, 1), (5, 1)])
def test_batch_matches_scalar_exhaustive(name, fn, ndim, bits):
    curve = make_curve(name, ndim, bits)
    points = np.array(list(itertools.product(range(1 << bits),
                                             repeat=ndim)))
    batch = fn(points, bits)
    scalar = np.array([curve.point_to_key(tuple(p)) for p in points])
    assert np.array_equal(batch, scalar)


@given(
    name=st.sampled_from(sorted(VECTORIZED)),
    ndim=st.integers(1, 5),
    bits=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_batch_matches_scalar_random(name, ndim, bits, seed):
    curve = make_curve(name, ndim, bits)
    rng = np.random.default_rng(seed)
    points = rng.integers(0, 1 << bits, size=(20, ndim))
    batch = VECTORIZED[name](points, bits)
    scalar = np.array([curve.point_to_key(tuple(p)) for p in points])
    assert np.array_equal(batch, scalar)


def test_batch_encoder_registry():
    assert batch_encoder("hilbert") is hilbert_keys
    assert batch_encoder("PEANO") is morton_keys
    assert batch_encoder("diagonal") is None


def test_validation():
    with pytest.raises(DimensionError):
        morton_keys(np.zeros(4), 2)
    with pytest.raises(InvalidParameterError):
        morton_keys(np.zeros((2, 2), dtype=int), 0)
    with pytest.raises(InvalidParameterError):
        morton_keys(np.full((2, 2), 4), 2)  # out of domain
    with pytest.raises(InvalidParameterError):
        morton_keys(np.zeros((2, 8), dtype=int), 8)  # 64 bits > budget


def test_mapping_uses_vectorized_path():
    """CurveMapping results are unchanged by the vectorized fast path
    (already covered by exhaustive equality, but pin the integration)."""
    from repro.geometry import Grid
    from repro.mapping import CurveMapping
    grid = Grid((5, 7))  # non-power-of-two: embeds in 8x8
    ranks = CurveMapping("hilbert").ranks_for_grid(grid)
    assert sorted(ranks) == list(range(35))

"""Tests for the Sweep, Snake and Diagonal orders."""

import itertools

import pytest

from repro.curves import DiagonalOrder, SnakeCurve, SweepCurve
from repro.errors import InvalidParameterError


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------
def test_sweep_is_row_major():
    curve = SweepCurve(2, 2)
    order = [curve.index_to_point(i) for i in range(16)]
    assert order[:5] == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)]


def test_sweep_axis_order():
    curve = SweepCurve(2, 2, axis_order=(1, 0))  # column-major
    order = [curve.index_to_point(i) for i in range(5)]
    assert order == [(0, 0), (1, 0), (2, 0), (3, 0), (0, 1)]


def test_sweep_axis_order_validation():
    with pytest.raises(InvalidParameterError):
        SweepCurve(2, 2, axis_order=(0, 0))
    with pytest.raises(InvalidParameterError):
        SnakeCurve(2, 2, axis_order=(1, 2))


def test_sweep_matches_flat_index():
    curve = SweepCurve(3, 1)
    for point in itertools.product(range(2), repeat=3):
        expected = point[0] * 4 + point[1] * 2 + point[2]
        assert curve.point_to_index(point) == expected


def test_sweep_step_is_stride_jump():
    curve = SweepCurve(2, 2)
    steps = list(curve.step_sizes())
    # Within-row steps are 1; row changes jump across the row.
    assert steps.count(1) == 12
    assert steps.count(4) == 3  # (0,3)->(1,0): |1| + |3| = 4


# ----------------------------------------------------------------------
# Snake
# ----------------------------------------------------------------------
def test_snake_reverses_alternate_rows():
    curve = SnakeCurve(2, 2)
    order = [curve.index_to_point(i) for i in range(8)]
    assert order == [(0, 0), (0, 1), (0, 2), (0, 3),
                     (1, 3), (1, 2), (1, 1), (1, 0)]


@pytest.mark.parametrize("ndim,bits", [(1, 3), (2, 2), (2, 3), (3, 2),
                                       (4, 1), (5, 1)])
def test_snake_unit_steps(ndim, bits):
    curve = SnakeCurve(ndim, bits)
    assert all(step == 1 for step in curve.step_sizes())


def test_snake_first_cell_is_origin():
    assert SnakeCurve(3, 2).index_to_point(0) == (0, 0, 0)


# ----------------------------------------------------------------------
# Diagonal
# ----------------------------------------------------------------------
def test_diagonal_orders_by_coordinate_sum():
    order = DiagonalOrder(2, 2)
    points = sorted(itertools.product(range(4), repeat=2),
                    key=order.point_to_key)
    sums = [sum(p) for p in points]
    assert sums == sorted(sums)


def test_diagonal_lexicographic_within_diagonal():
    order = DiagonalOrder(2, 2)
    diag2 = sorted([(0, 2), (1, 1), (2, 0)], key=order.point_to_key)
    assert diag2 == [(0, 2), (1, 1), (2, 0)]


def test_diagonal_zigzag_alternates():
    order = DiagonalOrder(2, 2, zigzag=True)
    assert order.zigzag
    diag1 = sorted([(0, 1), (1, 0)], key=order.point_to_key)
    diag2 = sorted([(0, 2), (1, 1), (2, 0)], key=order.point_to_key)
    # Odd diagonal reversed, even diagonal forward.
    assert diag1 == [(1, 0), (0, 1)]
    assert diag2 == [(0, 2), (1, 1), (2, 0)]


def test_diagonal_names():
    assert DiagonalOrder(2, 2).name == "diagonal"
    assert DiagonalOrder(2, 2, zigzag=True).name == "diagonal-zigzag"

"""Tests for repro.curves.base and the registry."""

import pytest

from repro.curves import (
    CURVE_NAMES,
    PAPER_BASELINES,
    HilbertCurve,
    SpaceFillingCurve,
    ZOrderCurve,
    enclosing_bits,
    make_curve,
)
from repro.errors import (
    DimensionError,
    DomainError,
    InvalidParameterError,
)


def test_enclosing_bits():
    assert enclosing_bits(1) == 1
    assert enclosing_bits(2) == 1
    assert enclosing_bits(3) == 2
    assert enclosing_bits(4) == 2
    assert enclosing_bits(5) == 3
    assert enclosing_bits(16) == 4
    assert enclosing_bits(17) == 5
    with pytest.raises(InvalidParameterError):
        enclosing_bits(0)


def test_curve_domain_properties():
    curve = ZOrderCurve(3, 2)
    assert curve.ndim == 3
    assert curve.bits == 2
    assert curve.side == 4
    assert curve.size == 64


def test_constructor_validation():
    with pytest.raises(InvalidParameterError):
        ZOrderCurve(0, 2)
    with pytest.raises(InvalidParameterError):
        ZOrderCurve(2, 0)


def test_point_domain_validation():
    curve = ZOrderCurve(2, 2)
    with pytest.raises(DomainError):
        curve.point_to_index((4, 0))
    with pytest.raises(DomainError):
        curve.point_to_index((-1, 0))
    with pytest.raises(DimensionError):
        curve.point_to_index((1, 1, 1))
    with pytest.raises(DomainError):
        curve.index_to_point(16)


def test_points_in_order_covers_domain():
    curve = HilbertCurve(2, 2)
    points = list(curve.points_in_order())
    assert len(points) == 16
    assert len(set(points)) == 16


def test_step_sizes_length():
    curve = HilbertCurve(2, 2)
    assert len(list(curve.step_sizes())) == 15


def test_registry_names():
    assert set(PAPER_BASELINES) <= set(CURVE_NAMES)
    for name in CURVE_NAMES:
        curve = make_curve(name, 2, 2)
        assert curve.ndim == 2
    with pytest.raises(InvalidParameterError):
        make_curve("koch", 2, 2)


def test_registry_aliases():
    assert isinstance(make_curve("zorder", 2, 2), ZOrderCurve)
    assert isinstance(make_curve("morton", 2, 2), ZOrderCurve)
    assert isinstance(make_curve("PEANO", 2, 2), ZOrderCurve)


def test_curve_names_exposed_on_instances():
    assert make_curve("peano", 2, 2).name == "peano"
    assert make_curve("hilbert", 2, 2).name == "hilbert"
    assert make_curve("diagonal-zigzag", 2, 2).name == "diagonal-zigzag"
    assert isinstance(make_curve("hilbert", 2, 2), SpaceFillingCurve)

"""Bijectivity and inverse properties for every curve, incl. hypothesis."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import CURVE_NAMES, SpaceFillingCurve, make_curve

SMALL_DOMAINS = [(1, 3), (2, 1), (2, 2), (2, 3), (3, 1), (3, 2), (4, 1),
                 (5, 1)]


@pytest.mark.parametrize("name", CURVE_NAMES)
@pytest.mark.parametrize("ndim,bits", SMALL_DOMAINS)
def test_keys_are_distinct(name, ndim, bits):
    curve = make_curve(name, ndim, bits)
    points = list(itertools.product(range(1 << bits), repeat=ndim))
    keys = [curve.point_to_key(p) for p in points]
    assert len(set(keys)) == len(points)
    assert all(k >= 0 for k in keys)


@pytest.mark.parametrize("name", CURVE_NAMES)
@pytest.mark.parametrize("ndim,bits", SMALL_DOMAINS)
def test_bijection_and_inverse(name, ndim, bits):
    curve = make_curve(name, ndim, bits)
    if not isinstance(curve, SpaceFillingCurve):
        pytest.skip("keyed-only order")
    points = list(itertools.product(range(1 << bits), repeat=ndim))
    indices = [curve.point_to_index(p) for p in points]
    assert sorted(indices) == list(range(len(points)))
    for point, index in zip(points, indices):
        assert curve.index_to_point(index) == point


@given(
    name=st.sampled_from(CURVE_NAMES),
    ndim=st.integers(1, 4),
    bits=st.integers(1, 3),
    data=st.data(),
)
def test_roundtrip_property(name, ndim, bits, data):
    curve = make_curve(name, ndim, bits)
    point = tuple(
        data.draw(st.integers(0, curve.side - 1)) for _ in range(ndim)
    )
    key = curve.point_to_key(point)
    assert 0 <= key
    if isinstance(curve, SpaceFillingCurve):
        index = curve.point_to_index(point)
        assert curve.index_to_point(index) == point
        assert 0 <= index < curve.size


@given(
    name=st.sampled_from([n for n in CURVE_NAMES
                          if n not in ("diagonal", "diagonal-zigzag")]),
    ndim=st.integers(1, 3),
    bits=st.integers(1, 3),
    data=st.data(),
)
def test_index_roundtrip_property(name, ndim, bits, data):
    curve = make_curve(name, ndim, bits)
    index = data.draw(st.integers(0, curve.size - 1))
    assert curve.point_to_index(curve.index_to_point(index)) == index

"""Tests for the Z-order (Peano) and Gray-code curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import (
    GrayCurve,
    ZOrderCurve,
    deinterleave_bits,
    gray_decode,
    gray_encode,
    interleave_bits,
)


# ----------------------------------------------------------------------
# Bit interleaving
# ----------------------------------------------------------------------
def test_interleave_2d_known_values():
    # x = coordinate 0 contributes the higher bit of each pair.
    assert interleave_bits((0, 0), 2) == 0
    assert interleave_bits((0, 1), 2) == 1
    assert interleave_bits((1, 0), 2) == 2
    assert interleave_bits((3, 3), 2) == 15


def test_deinterleave_inverts():
    for bits in (1, 2, 3):
        for ndim in (1, 2, 3):
            for code in range(1 << (bits * ndim)):
                coords = deinterleave_bits(code, bits, ndim)
                assert interleave_bits(coords, bits) == code


def test_zorder_quadrant_structure():
    """Z-order visits quadrants in Z shape: each quadrant's 4 cells are
    contiguous in index space (the 'fragment' behaviour of Section 2)."""
    curve = ZOrderCurve(2, 2)
    for quadrant in range(4):
        cells = {curve.index_to_point(i)
                 for i in range(4 * quadrant, 4 * quadrant + 4)}
        xs = {x // 2 for x, _ in cells}
        ys = {y // 2 for _, y in cells}
        assert len(xs) == 1 and len(ys) == 1


def test_zorder_not_unit_step():
    curve = ZOrderCurve(2, 2)
    steps = list(curve.step_sizes())
    assert max(steps) > 1  # the diagonal jumps of the Z


# ----------------------------------------------------------------------
# Gray codes
# ----------------------------------------------------------------------
def test_gray_encode_known_values():
    assert [gray_encode(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]


def test_gray_roundtrip():
    for value in range(512):
        assert gray_decode(gray_encode(value)) == value


def test_gray_consecutive_codes_differ_one_bit():
    for value in range(255):
        diff = gray_encode(value) ^ gray_encode(value + 1)
        assert diff and (diff & (diff - 1)) == 0


def test_gray_negative_rejected():
    with pytest.raises(ValueError):
        gray_encode(-1)
    with pytest.raises(ValueError):
        gray_decode(-1)


def test_gray_curve_consecutive_cells_differ_one_coordinate_bit():
    """Gray curve steps flip exactly one bit of one coordinate — i.e.
    one coordinate changes by a power of two, the rest stay."""
    curve = GrayCurve(2, 2)
    previous = curve.index_to_point(0)
    for index in range(1, curve.size):
        current = curve.index_to_point(index)
        changed = [(a, b) for a, b in zip(previous, current) if a != b]
        assert len(changed) == 1
        delta = abs(changed[0][0] - changed[0][1])
        assert delta in (1, 2)  # a power of two within a 4-wide domain
        previous = current


def test_gray_curve_is_cyclic_on_cube():
    """The last and first cells also differ in one bit (cyclic code)."""
    curve = GrayCurve(3, 1)
    first = curve.index_to_point(0)
    last = curve.index_to_point(curve.size - 1)
    assert sum(a != b for a, b in zip(first, last)) == 1


@given(bits=st.integers(1, 4), ndim=st.integers(1, 3), data=st.data())
def test_zorder_matches_interleave(bits, ndim, data):
    curve = ZOrderCurve(ndim, bits)
    point = tuple(data.draw(st.integers(0, curve.side - 1))
                  for _ in range(ndim))
    assert curve.point_to_index(point) == interleave_bits(point, bits)

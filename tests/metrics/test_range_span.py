"""Tests for repro.metrics.range_span."""

import numpy as np
import pytest

from repro.errors import DimensionError, DomainError, InvalidParameterError
from repro.geometry import Box, Grid, boxes_with_extent
from repro.metrics import (
    box_span,
    partial_match_span_stats,
    span_field,
    span_stats,
)


def brute_force_spans(grid, ranks, extent):
    spans = []
    for box in boxes_with_extent(grid, extent):
        inside = ranks[box.cell_indices(grid)]
        spans.append(int(inside.max() - inside.min()))
    return spans


@pytest.mark.parametrize("shape,extent", [
    ((5, 5), (2, 2)),
    ((5, 5), (3, 1)),
    ((4, 6), (2, 3)),
    ((3, 3, 3), (2, 2, 2)),
    ((4, 4), (4, 4)),
])
def test_span_field_matches_brute_force(shape, extent):
    grid = Grid(shape)
    rng = np.random.default_rng(5)
    ranks = rng.permutation(grid.size)
    field = span_field(grid, ranks, extent)
    assert sorted(field.ravel()) == sorted(
        brute_force_spans(grid, ranks, extent))


def test_span_field_shape():
    grid = Grid((5, 7))
    field = span_field(grid, np.arange(35), (2, 3))
    assert field.shape == (4, 5)


def test_span_identity_row_major():
    grid = Grid((4, 4))
    stats = span_stats(grid, np.arange(16), (2, 2))
    # Every 2x2 box spans exactly one row stride + 1.
    assert stats.max == stats.min == 5
    assert stats.std == 0.0
    assert stats.query_count == 9
    assert stats.volume == 4


def test_span_single_cell_extent():
    grid = Grid((3, 3))
    stats = span_stats(grid, np.arange(9), (1, 1))
    assert stats.max == 0 and stats.mean == 0.0


def test_box_span():
    grid = Grid((4, 4))
    assert box_span(grid, np.arange(16), Box((1, 1), (2, 2))) == 5


def test_span_validation():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        span_stats(grid, np.arange(5), (2, 2))
    with pytest.raises(DimensionError):
        span_stats(grid, np.arange(9), (2,))
    with pytest.raises(DomainError):
        span_stats(grid, np.arange(9), (4, 2))
    with pytest.raises(InvalidParameterError):
        span_stats(grid, np.arange(9), (0, 2))


def test_partial_match_span_stats():
    grid = Grid((4, 4))
    ranks = np.arange(16)
    stats = partial_match_span_stats(grid, ranks, fixed_axes=[0],
                                     extent=2)
    # Boxes are 2x4 rows: span = 7 everywhere with row-major ranks.
    assert stats.max == 7 and stats.std == 0.0
    column_stats = partial_match_span_stats(grid, ranks, fixed_axes=[1],
                                            extent=2)
    # Boxes are 4x2 columns: span = 13.
    assert column_stats.max == 13


def test_partial_match_validation():
    grid = Grid((4, 4))
    with pytest.raises(InvalidParameterError):
        partial_match_span_stats(grid, np.arange(16), [], 2)
    with pytest.raises(InvalidParameterError):
        partial_match_span_stats(grid, np.arange(16), [3], 2)


def test_span_lower_bound_is_volume_minus_one():
    """Any permutation's span over a box >= box volume - 1."""
    grid = Grid((4, 4))
    rng = np.random.default_rng(11)
    for _ in range(5):
        ranks = rng.permutation(16)
        field = span_field(grid, ranks, (2, 2))
        assert (field >= 3).all()

"""Tests for repro.metrics.pairwise."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Grid
from repro.metrics import (
    adjacent_gap_stats,
    boundary_gap,
    distances_for_percentages,
    rank_distance_profile,
)


def identity_ranks(grid):
    return np.arange(grid.size)


def brute_force_profile(grid, ranks):
    """O(n^2) reference implementation with plain loops."""
    coords = grid.coordinates()
    buckets = {}
    for i in range(grid.size):
        for j in range(i + 1, grid.size):
            md = int(np.abs(coords[i] - coords[j]).sum())
            rd = abs(int(ranks[i]) - int(ranks[j]))
            current = buckets.setdefault(md, [0, 0, 0])
            current[0] = max(current[0], rd)
            current[1] += rd
            current[2] += 1
    return buckets


@pytest.mark.parametrize("shape", [(4, 4), (3, 5), (2, 3, 2)])
def test_profile_matches_brute_force(shape):
    grid = Grid(shape)
    rng = np.random.default_rng(3)
    ranks = rng.permutation(grid.size)
    profile = rank_distance_profile(grid, ranks, chunk=7)
    reference = brute_force_profile(grid, ranks)
    assert list(profile.distances) == sorted(reference)
    for k, distance in enumerate(profile.distances):
        ref_max, ref_sum, ref_count = reference[int(distance)]
        assert profile.max_rank_distance[k] == ref_max
        assert profile.pair_count[k] == ref_count
        assert profile.mean_rank_distance[k] == pytest.approx(
            ref_sum / ref_count)


def test_profile_identity_mapping_1d():
    grid = Grid((6,))
    profile = rank_distance_profile(grid, identity_ranks(grid))
    # On a 1-D grid with identity ranks, rank distance == Manhattan.
    for k, distance in enumerate(profile.distances):
        assert profile.max_rank_distance[k] == distance
        assert profile.mean_rank_distance[k] == pytest.approx(distance)


def test_profile_at_accessor():
    grid = Grid((4, 4))
    profile = rank_distance_profile(grid, identity_ranks(grid))
    worst, mean = profile.at(1)
    assert worst >= mean > 0
    with pytest.raises(InvalidParameterError):
        profile.at(99)


def test_profile_validation():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        rank_distance_profile(grid, np.arange(5))
    with pytest.raises(InvalidParameterError):
        rank_distance_profile(grid, identity_ranks(grid), chunk=0)


def test_adjacent_gap_stats_identity():
    grid = Grid((3, 3))
    worst, mean = adjacent_gap_stats(grid, identity_ranks(grid))
    # Row-major: along-row gaps are 1, along-column gaps are 3.
    assert worst == 3
    assert mean == pytest.approx((6 * 1 + 6 * 3) / 12)


def test_boundary_gap_identity():
    grid = Grid((4, 4))
    ranks = identity_ranks(grid)
    # Crossing the axis-0 midplane with row-major ranks: stride 4.
    assert boundary_gap(grid, ranks, axis=0) == 4
    assert boundary_gap(grid, ranks, axis=1) == 1


def test_boundary_gap_custom_split():
    grid = Grid((4, 4))
    ranks = identity_ranks(grid)
    assert boundary_gap(grid, ranks, axis=0, split=1) == 4
    with pytest.raises(InvalidParameterError):
        boundary_gap(grid, ranks, axis=0, split=0)
    with pytest.raises(InvalidParameterError):
        boundary_gap(grid, ranks, axis=5)


def test_distances_for_percentages():
    grid = Grid.cube(4, 5)  # max manhattan 15
    distances = distances_for_percentages(grid, np.array([10, 50, 100]))
    assert list(distances) == [2, 8, 15]
    # Tiny percentages still map to at least distance 1.
    assert distances_for_percentages(grid, np.array([0.1]))[0] == 1

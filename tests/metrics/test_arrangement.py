"""Tests for repro.metrics.arrangement."""

import numpy as np
import pytest

from repro.core import LinearOrder
from repro.errors import InvalidParameterError
from repro.graph import Graph, cycle_graph, grid_graph, path_graph
from repro.geometry import Grid
from repro.metrics import (
    arrangement_costs,
    bandwidth,
    cutwidth,
    one_sum,
    two_sum,
)


def test_identity_order_on_path():
    g = path_graph(5)
    order = LinearOrder.identity(5)
    assert two_sum(g, order) == 4.0
    assert one_sum(g, order) == 4.0
    assert bandwidth(g, order) == 1
    assert cutwidth(g, order) == 1


def test_reversed_order_same_costs():
    g = grid_graph(Grid((3, 3)))
    order = LinearOrder.identity(9)
    assert two_sum(g, order) == two_sum(g, order.reversed())
    assert one_sum(g, order) == one_sum(g, order.reversed())
    assert bandwidth(g, order) == bandwidth(g, order.reversed())
    assert cutwidth(g, order) == cutwidth(g, order.reversed())


def test_weighted_two_sum():
    g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 1.0])
    order = LinearOrder([0, 2, 1])  # ranks: 0->0, 2->1, 1->2
    # Edge (0,1): diff 2, w 2 -> 8; edge (1,2): diff 1, w 1 -> 1.
    assert two_sum(g, order) == 9.0
    assert one_sum(g, order) == 5.0


def test_cutwidth_star():
    g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
    order = LinearOrder([1, 0, 2, 3])  # center at rank 1
    # Gap 0: 1 edge; gap 1: 2 edges; gap 2: 1 edge.
    assert cutwidth(g, order) == 2
    worst = LinearOrder([0, 1, 2, 3])  # center first
    assert cutwidth(g, worst) == 3


def test_cutwidth_cycle_identity():
    g = cycle_graph(6)
    order = LinearOrder.identity(6)
    # The wrap-around edge crosses every gap: 2 everywhere + locals.
    assert cutwidth(g, order) == 2


def test_empty_graph_costs():
    g = Graph.empty(4)
    order = LinearOrder.identity(4)
    costs = arrangement_costs(g, order)
    assert costs.two_sum == costs.one_sum == 0.0
    assert costs.bandwidth == costs.cutwidth == 0


def test_size_mismatch_rejected():
    g = path_graph(4)
    with pytest.raises(InvalidParameterError):
        two_sum(g, LinearOrder.identity(5))
    with pytest.raises(InvalidParameterError):
        cutwidth(g, LinearOrder.identity(5))


def test_two_sum_equals_quadratic_form_of_ranks():
    from repro.graph import quadratic_form
    g = grid_graph(Grid((3, 4)))
    rng = np.random.default_rng(2)
    order = LinearOrder(rng.permutation(12))
    assert two_sum(g, order) == pytest.approx(
        quadratic_form(g, order.ranks.astype(float)))


def test_spectral_two_sum_beats_fractals(dense_lpm):
    """The discrete Theorem-1 objective: spectral wins on its own turf."""
    from repro.mapping import CurveMapping
    grid = Grid((8, 8))
    graph = dense_lpm.build_grid_graph(grid)
    spectral_cost = two_sum(graph, dense_lpm.order_grid(grid))
    for name in ("peano", "gray", "hilbert"):
        curve_cost = two_sum(graph, CurveMapping(name).order_for_grid(grid))
        assert spectral_cost < curve_cost


def test_identity_is_optimal_bandwidth_for_path():
    g = path_graph(8)
    rng = np.random.default_rng(4)
    identity_bw = bandwidth(g, LinearOrder.identity(8))
    for _ in range(10):
        assert bandwidth(g, LinearOrder(rng.permutation(8))) >= identity_bw

"""Tests for repro.metrics.clustering."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.geometry import Box, Grid
from repro.metrics import (
    box_cluster_count,
    cluster_count,
    cluster_stats,
)


def test_cluster_count_basics():
    assert cluster_count(np.array([])) == 0
    assert cluster_count(np.array([5])) == 1
    assert cluster_count(np.array([1, 2, 3])) == 1
    assert cluster_count(np.array([1, 3, 5])) == 3
    assert cluster_count(np.array([3, 1, 2, 7, 8])) == 2  # unsorted input


def test_box_cluster_count_row_major():
    grid = Grid((4, 4))
    ranks = np.arange(16)
    # A 2x2 box: two runs (one per row).
    assert box_cluster_count(grid, ranks, Box((0, 0), (1, 1))) == 2
    # A full row: one run.
    assert box_cluster_count(grid, ranks, Box((1, 0), (1, 3))) == 1


def test_cluster_stats_row_major():
    grid = Grid((4, 4))
    stats = cluster_stats(grid, np.arange(16), (2, 2))
    assert stats.max == 2
    assert stats.mean == 2.0
    assert stats.std == 0.0
    assert stats.query_count == 9
    assert stats.extent == (2, 2)


def test_cluster_stats_validation():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        cluster_stats(grid, np.arange(4), (2, 2))


def test_snake_halves_clusters_vs_sweep():
    """Moon et al.'s observation: continuous curves produce fewer
    clusters; snake joins row pairs at their turn, sweep never does."""
    from repro.mapping import CurveMapping
    grid = Grid((8, 8))
    sweep = cluster_stats(
        grid, CurveMapping("sweep").ranks_for_grid(grid), (2, 2))
    snake = cluster_stats(
        grid, CurveMapping("snake").ranks_for_grid(grid), (2, 2))
    assert snake.mean < sweep.mean


def test_hilbert_beats_zorder_on_clusters():
    """The classic Moon/Jagadish/Faloutsos/Salz result (reference [4])."""
    from repro.mapping import CurveMapping
    grid = Grid((16, 16))
    hilbert = cluster_stats(
        grid, CurveMapping("hilbert").ranks_for_grid(grid), (4, 4))
    zorder = cluster_stats(
        grid, CurveMapping("peano").ranks_for_grid(grid), (4, 4))
    assert hilbert.mean < zorder.mean

"""Tests for repro.metrics.fairness."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Grid
from repro.metrics import (
    axis_profile,
    axis_rank_distance,
    fairness_summary,
)


def test_axis_rank_distance_row_major():
    grid = Grid((4, 4))
    ranks = np.arange(16)
    # Along axis 1 (fast): delta cells apart -> delta ranks apart.
    assert axis_rank_distance(grid, ranks, 1, 2) == 2
    # Along axis 0 (slow): delta rows -> delta * 4 ranks.
    assert axis_rank_distance(grid, ranks, 0, 2) == 8


def test_axis_rank_distance_mean():
    grid = Grid((3, 3))
    ranks = np.arange(9)
    assert axis_rank_distance(grid, ranks, 0, 1, agg="mean") == 3.0
    with pytest.raises(InvalidParameterError):
        axis_rank_distance(grid, ranks, 0, 1, agg="median")


def test_axis_rank_distance_validation():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        axis_rank_distance(grid, np.arange(5), 0, 1)


def test_axis_profile():
    grid = Grid((5, 5))
    ranks = np.arange(25)
    profile = axis_profile(grid, ranks, 0, [1, 2, 3])
    assert list(profile) == [5.0, 10.0, 15.0]


def test_fairness_summary_sweep_is_unfair():
    grid = Grid((6, 6))
    ranks = np.arange(36)
    summary = fairness_summary(grid, ranks, delta=2)
    assert summary.per_axis[0] == 12.0
    assert summary.per_axis[1] == 2.0
    assert summary.spread == 10.0
    assert summary.ratio == 6.0


def test_fairness_summary_symmetric_order_is_fair(dense_lpm):
    grid = Grid((6, 6))
    ranks = dense_lpm.order_grid(grid).ranks
    summary = fairness_summary(grid, ranks, delta=2)
    assert summary.ratio < 1.25


def test_fairness_summary_zero_axis_ratio():
    grid = Grid((2, 2))
    # Craft ranks where one axis has zero max distance: impossible for a
    # permutation, so instead check the inf path with constant-ish ranks
    # over a degenerate 1-wide axis.
    grid = Grid((1, 4))
    ranks = np.arange(4)
    with pytest.raises(InvalidParameterError):
        # axis 0 has side 1: no valid delta, pairs_along_axis refuses.
        fairness_summary(grid, ranks, delta=1)

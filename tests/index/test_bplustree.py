"""Tests for repro.index.bplustree."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.index import BPlusTree


# ----------------------------------------------------------------------
# Bulk load
# ----------------------------------------------------------------------
def test_bulk_load_and_point_lookup():
    keys = list(range(0, 200, 2))
    tree = BPlusTree.bulk_load(keys, [f"v{k}" for k in keys], order=8)
    tree.check_invariants()
    assert len(tree) == 100
    value, accesses = tree.search(42)
    assert value == "v42"
    assert accesses == tree.height
    missing, _ = tree.search(43)
    assert missing is None


def test_bulk_load_empty():
    tree = BPlusTree.bulk_load([], [], order=4)
    assert len(tree) == 0
    assert tree.search(1) == (None, 1)
    assert tree.range_search(0, 10) == ([], 1)


def test_bulk_load_single_leaf():
    tree = BPlusTree.bulk_load([1, 2, 3], "abc", order=8)
    assert tree.height == 1
    assert [k for k, _ in tree.items()] == [1, 2, 3]


def test_bulk_load_validation():
    with pytest.raises(InvalidParameterError):
        BPlusTree.bulk_load([1, 2], [1], order=4)
    with pytest.raises(InvalidParameterError):
        BPlusTree.bulk_load([2, 1], [1, 2], order=4)
    with pytest.raises(InvalidParameterError):
        BPlusTree.bulk_load([1, 1], [1, 2], order=4)
    with pytest.raises(InvalidParameterError):
        BPlusTree.bulk_load([1], [1], order=4, fill=0.0)
    with pytest.raises(InvalidParameterError):
        BPlusTree(order=2)


def test_bulk_load_fill_factor_changes_height():
    keys = list(range(256))
    packed = BPlusTree.bulk_load(keys, keys, order=8, fill=1.0)
    slack = BPlusTree.bulk_load(keys, keys, order=8, fill=0.5)
    packed.check_invariants()
    slack.check_invariants()
    assert slack.height >= packed.height


# ----------------------------------------------------------------------
# Range search
# ----------------------------------------------------------------------
def test_range_search_inclusive_bounds():
    keys = list(range(0, 100, 5))
    tree = BPlusTree.bulk_load(keys, keys, order=5)
    values, _ = tree.range_search(10, 30)
    assert values == [10, 15, 20, 25, 30]


def test_range_search_between_keys():
    tree = BPlusTree.bulk_load([0, 10, 20], [0, 10, 20], order=4)
    assert tree.range_search(1, 9)[0] == []
    assert tree.range_search(0, 0)[0] == [0]


def test_range_search_walks_leaf_chain():
    keys = list(range(64))
    tree = BPlusTree.bulk_load(keys, keys, order=4)
    values, accesses = tree.range_search(0, 63)
    assert values == keys
    # Must have touched every leaf once plus the descent.
    assert accesses >= 64 // 4


def test_range_search_validation():
    tree = BPlusTree.bulk_load([1], [1], order=4)
    with pytest.raises(InvalidParameterError):
        tree.range_search(5, 4)


# ----------------------------------------------------------------------
# Inserts
# ----------------------------------------------------------------------
def test_insert_into_empty_tree():
    tree = BPlusTree(order=4)
    for key in [5, 1, 9, 3, 7]:
        tree.insert(key, key * 10)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == [1, 3, 5, 7, 9]
    assert tree.search(7)[0] == 70


def test_insert_splits_maintain_invariants():
    tree = BPlusTree(order=4)
    rng = np.random.default_rng(0)
    keys = rng.permutation(300)
    for key in keys:
        tree.insert(int(key), int(key))
    tree.check_invariants()
    assert len(tree) == 300
    assert tree.height >= 3
    values, _ = tree.range_search(100, 110)
    assert values == list(range(100, 111))


def test_insert_duplicate_rejected():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    with pytest.raises(InvalidParameterError):
        tree.insert(1, "b")


def test_insert_into_bulk_loaded_tree():
    keys = list(range(0, 100, 2))
    tree = BPlusTree.bulk_load(keys, keys, order=8, fill=0.5)
    for key in range(1, 100, 2):
        tree.insert(key, key)
    tree.check_invariants()
    assert len(tree) == 100
    assert [k for k, _ in tree.items()] == list(range(100))


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=200),
       st.integers(3, 16))
def test_bulk_load_equals_inserts(keys, order):
    sorted_keys = sorted(keys)
    loaded = BPlusTree.bulk_load(sorted_keys, sorted_keys, order=order)
    inserted = BPlusTree(order=order)
    for key in keys:
        inserted.insert(key, key)
    loaded.check_invariants()
    inserted.check_invariants()
    assert list(loaded.items()) == list(inserted.items())


@given(st.sets(st.integers(0, 500), min_size=1, max_size=120),
       st.tuples(st.integers(0, 500), st.integers(0, 500)))
def test_range_search_matches_filter(keys, bounds):
    lo, hi = min(bounds), max(bounds)
    sorted_keys = sorted(keys)
    tree = BPlusTree.bulk_load(sorted_keys, sorted_keys, order=6)
    values, _ = tree.range_search(lo, hi)
    assert values == [k for k in sorted_keys if lo <= k <= hi]


def test_height_is_logarithmic():
    keys = list(range(4096))
    tree = BPlusTree.bulk_load(keys, keys, order=16)
    assert tree.height <= 4  # 16^3 = 4096
    assert "height" in repr(tree)

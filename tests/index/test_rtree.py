"""Tests for repro.index.rtree."""

import numpy as np
import pytest

from repro.datasets import gaussian_cluster_cells, uniform_cells
from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Box, Grid
from repro.index import PackedRTree
from repro.mapping import CurveMapping


@pytest.fixture
def packed():
    grid = Grid((16, 16))
    cells = uniform_cells(grid, 50, seed=7)
    ranks = CurveMapping("hilbert").ranks_for_grid(grid)
    return grid, cells, PackedRTree.pack(grid, cells, ranks,
                                         leaf_capacity=4, fanout=4)


def test_every_point_in_exactly_one_leaf(packed):
    _, cells, tree = packed
    positions = []
    for leaf in tree.leaves():
        positions.extend(int(v) for v in leaf.entries)
    assert sorted(positions) == list(range(len(cells)))


def test_leaf_capacity_respected(packed):
    _, _, tree = packed
    for leaf in tree.leaves():
        assert 1 <= len(leaf.entries) <= 4


def test_mbr_containment_up_the_tree(packed):
    _, _, tree = packed

    def check(node):
        for child in node.children:
            assert node.box.contains_box(child.box)
            check(child)

    check(tree.root)
    assert tree.height >= 2
    assert tree.num_points == 50


def test_window_query_matches_brute_force(packed):
    grid, cells, tree = packed
    coords = grid.points_of(cells)
    for box in [Box((0, 0), (15, 15)), Box((3, 3), (8, 9)),
                Box((10, 0), (15, 4)), Box((15, 15), (15, 15))]:
        hits, visited = tree.window_query(box)
        expected = sorted(
            tuple(p) for p in coords
            if box.contains_point(tuple(p))
        )
        assert sorted(tuple(p) for p in hits) == expected
        assert visited >= 1


def test_pruning_saves_node_visits(packed):
    _, _, tree = packed
    total_nodes = 1 + sum(
        1 for _ in _walk(tree.root)
    )
    _, visited = tree.window_query(Box((0, 0), (1, 1)))
    assert visited < total_nodes


def _walk(node):
    for child in node.children:
        yield child
        yield from _walk(child)


def test_leaf_stats_fields(packed):
    _, _, tree = packed
    stats = tree.leaf_stats()
    assert stats.leaf_count == len(tree.leaves())
    assert stats.total_volume > 0
    assert stats.mean_volume == pytest.approx(
        stats.total_volume / stats.leaf_count)
    assert stats.total_overlap >= 0


def test_per_point_ranks_variant():
    """Ranks aligned with cells (sparse spectral order) also pack."""
    from repro.core import SpectralLPM
    grid = Grid((12, 12))
    cells = gaussian_cluster_cells(grid, 40, seed=3)
    order, ordered_cells = SpectralLPM(backend="dense").order_points(
        grid, cells)
    tree = PackedRTree.pack(grid, ordered_cells, order.ranks,
                            leaf_capacity=5, fanout=4)
    assert tree.num_points == 40
    hits, _ = tree.window_query(Box((0, 0), (11, 11)))
    assert len(hits) == 40


def test_pack_validation():
    grid = Grid((4, 4))
    ranks = np.arange(16)
    with pytest.raises(InvalidParameterError):
        PackedRTree.pack(grid, [], ranks)
    with pytest.raises(InvalidParameterError):
        PackedRTree.pack(grid, [0], ranks, leaf_capacity=0)
    with pytest.raises(InvalidParameterError):
        PackedRTree.pack(grid, [0], ranks, fanout=1)
    with pytest.raises(DimensionError):
        PackedRTree.pack(grid, [0, 1], np.arange(5))


def test_single_point_tree():
    grid = Grid((4, 4))
    tree = PackedRTree.pack(grid, [5], np.arange(16))
    assert tree.height == 1
    assert tree.root.is_leaf
    hits, _ = tree.window_query(Box((0, 0), (3, 3)))
    assert len(hits) == 1


def test_hilbert_packing_tighter_than_scrambled():
    """Packing along a locality-preserving order must beat packing along
    a scrambled order on total leaf volume."""
    grid = Grid((16, 16))
    cells = uniform_cells(grid, 64, seed=9)
    hilbert_ranks = CurveMapping("hilbert").ranks_for_grid(grid)
    scrambled_ranks = np.random.default_rng(0).permutation(grid.size)
    tight = PackedRTree.pack(grid, cells, hilbert_ranks, 4, 4).leaf_stats()
    loose = PackedRTree.pack(grid, cells, scrambled_ranks, 4,
                             4).leaf_stats()
    assert tight.total_volume < loose.total_volume

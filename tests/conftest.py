"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import SpectralLPM
from repro.geometry import Grid
from repro.graph import grid_graph

# One conservative profile for every property test: no deadline (CI boxes
# vary wildly) and a bounded example budget so the suite stays fast.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def grid3() -> Grid:
    """The paper's Figure-3 3x3 grid."""
    return Grid((3, 3))


@pytest.fixture
def grid4() -> Grid:
    """The paper's Figure-1/4 4x4 grid."""
    return Grid((4, 4))


@pytest.fixture
def grid8() -> Grid:
    return Grid((8, 8))


@pytest.fixture
def graph3(grid3):
    """4-connectivity graph of the 3x3 grid (paper Figure 3b)."""
    return grid_graph(grid3)


@pytest.fixture
def dense_lpm() -> SpectralLPM:
    """Spectral LPM pinned to the exact dense eigensolver."""
    return SpectralLPM(backend="dense")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)

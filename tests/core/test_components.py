"""Tests for repro.core.components."""

import numpy as np
import pytest

from repro.core import LinearOrder, order_components
from repro.errors import InvalidParameterError
from repro.graph import Graph


def identity_order(graph):
    return LinearOrder(np.arange(graph.num_vertices))


def reversed_order(graph):
    return LinearOrder(np.arange(graph.num_vertices)[::-1])


def test_components_concatenated_by_min_vertex():
    g = Graph.from_edges(6, [(4, 5), (0, 1)])
    order = order_components(g, identity_order)
    # Components: {0,1}, {2}, {3}, {4,5} in min-vertex order.
    assert list(order.permutation) == [0, 1, 2, 3, 4, 5]


def test_components_by_size():
    g = Graph.from_edges(5, [(2, 3), (3, 4)])
    order = order_components(g, identity_order, arrangement="by_size")
    # {2,3,4} first, then singletons 0, 1.
    assert list(order.permutation) == [2, 3, 4, 0, 1]


def test_inner_order_respected():
    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    order = order_components(g, reversed_order)
    assert list(order.permutation) == [1, 0, 3, 2]


def test_empty_graph():
    order = order_components(Graph.from_edges(0, []), identity_order)
    assert order.n == 0


def test_single_component_passthrough():
    g = Graph.from_edges(3, [(0, 1), (1, 2)])
    order = order_components(g, reversed_order)
    assert list(order.permutation) == [2, 1, 0]


def test_unknown_arrangement():
    with pytest.raises(InvalidParameterError):
        order_components(Graph.empty(2), identity_order,
                         arrangement="by_color")

"""Cross-backend equivalence of the full ordering pipeline.

The determinism contract: every *exact* backend (dense, lanczos, scipy)
produces the *identical* permutation on the same input — including the
adversarial cases, namely clustered spectra (long paths), degenerate
eigenspaces (square grids and cubes), and weighted Section-4 graphs.
The multilevel backend is approximate: it must reproduce exact orders
where the Fiedler vector is well-separated, and elsewhere stay within
its documented tolerance (vector-level closeness; on highly symmetric
instances the *exact ties* that snap_ties collapses are perturbed by
approximation noise, so rank-level equality is not guaranteed there).

All comparisons ride on the same snap_ties/canonicalization oracles the
production pipeline uses.
"""

import numpy as np
import pytest

from repro.core import SpectralLPM, fiedler_vector
from repro.core.spectral import snap_ties, symmetric_grid_probe
from repro.geometry import Grid
from repro.graph import grid_graph, path_graph
from repro.linalg import scipy_available

EXACT_BACKENDS = ["dense", "lanczos", "shift_invert", "lobpcg"] + (
    ["scipy"] if scipy_available() else [])
ALL_BACKENDS = EXACT_BACKENDS + ["multilevel"]


def orders_for(make):
    return {b: make(b) for b in ALL_BACKENDS}


# ----------------------------------------------------------------------
# Clustered spectrum: a long path's bottom eigenvalues bunch together
# (lambda_j ~ (pi j / n)^2), historically the worst case for restarted
# Lanczos.
# ----------------------------------------------------------------------
def test_long_path_identical_across_all_backends():
    graph = path_graph(300)
    orders = orders_for(
        lambda b: SpectralLPM(backend=b).order_graph(graph))
    reference = orders["dense"]
    perm = list(reference.permutation)
    assert perm == sorted(perm) or perm == sorted(perm, reverse=True)
    for backend, order in orders.items():
        assert order == reference, backend


# ----------------------------------------------------------------------
# Degenerate eigenspaces: square grids (multiplicity 2).
# ----------------------------------------------------------------------
@pytest.mark.parametrize("side", [12, 16])
def test_square_grid_identical_across_all_backends(side):
    grid = Grid((side, side))
    orders = orders_for(lambda b: SpectralLPM(backend=b).order_grid(grid))
    reference = orders["dense"]
    for backend, order in orders.items():
        assert order == reference, backend


def test_cube_grid_exact_backends_identical():
    grid = Grid((7, 7, 7))
    orders = {b: SpectralLPM(backend=b).order_grid(grid)
              for b in EXACT_BACKENDS}
    reference = orders["dense"]
    for backend, order in orders.items():
        assert order == reference, backend


def test_cube_grid_multilevel_within_tolerance():
    # Multiplicity-3 eigenspace: the canonical vector is reproduced to
    # solver accuracy, but the cube's exact symmetry ties are perturbed
    # beyond snap_ties resolution, so assert at the vector level.
    grid = Grid((7, 7, 7))
    probe = symmetric_grid_probe(grid)
    graph = grid_graph(grid)
    exact = fiedler_vector(graph, backend="dense", probe=probe)
    approx = fiedler_vector(graph, backend="multilevel", probe=probe)
    assert approx.multiplicity == exact.multiplicity == 3
    assert abs(approx.value - exact.value) <= 1e-6 * exact.value
    assert np.linalg.norm(approx.vector - exact.vector) < 0.05


# ----------------------------------------------------------------------
# Weighted Section-4 graphs (inverse_manhattan, radius 2).
# ----------------------------------------------------------------------
def test_weighted_grid_identical_across_all_backends():
    grid = Grid((12, 9))
    orders = orders_for(
        lambda b: SpectralLPM(backend=b, radius=2,
                              weight="inverse_manhattan").order_grid(grid))
    reference = orders["dense"]
    for backend, order in orders.items():
        assert order == reference, backend


# ----------------------------------------------------------------------
# The snap_ties oracle itself: backend noise below tolerance must not
# change the tie groups the pipeline sorts on.
# ----------------------------------------------------------------------
def test_snap_oracle_absorbs_backend_noise():
    grid = Grid((10, 10))
    graph = grid_graph(grid)
    probe = symmetric_grid_probe(grid)
    vectors = {b: fiedler_vector(graph, backend=b, probe=probe).vector
               for b in ALL_BACKENDS}
    reference_groups = snap_ties(vectors["dense"])
    for backend, vector in vectors.items():
        assert np.array_equal(snap_ties(vector), reference_groups), backend

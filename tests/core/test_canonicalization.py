"""Unit tests for snap_ties and symmetric_grid_probe."""

import numpy as np
import pytest

from repro.core import snap_ties, symmetric_grid_probe
from repro.core.spectral import SpectralLPM
from repro.errors import InvalidParameterError
from repro.geometry import Grid


# ----------------------------------------------------------------------
# snap_ties
# ----------------------------------------------------------------------
def test_snap_ties_groups_close_values():
    values = np.array([0.0, 1e-12, 0.5, 0.5 + 1e-12, 1.0])
    groups = snap_ties(values, tol=1e-9)
    assert groups[0] == groups[1]
    assert groups[2] == groups[3]
    assert len(set(groups)) == 3


def test_snap_ties_preserves_order():
    values = np.array([0.3, 0.1, 0.2])
    groups = snap_ties(values)
    assert list(groups) == [2, 0, 1]


def test_snap_ties_all_distinct():
    values = np.arange(10, dtype=float)
    assert list(snap_ties(values)) == list(range(10))


def test_snap_ties_all_equal():
    values = np.full(5, 3.14)
    assert list(snap_ties(values)) == [0] * 5


def test_snap_ties_empty_and_singleton():
    assert list(snap_ties(np.array([]))) == []
    assert list(snap_ties(np.array([7.0]))) == [0]


def test_snap_ties_zero_tol_keeps_float_distinctions():
    values = np.array([0.0, 1e-15])
    assert len(set(snap_ties(values, tol=0.0))) == 2


def test_snap_tol_validation():
    with pytest.raises(InvalidParameterError):
        SpectralLPM(snap_tol=-1.0)


# ----------------------------------------------------------------------
# symmetric_grid_probe
# ----------------------------------------------------------------------
def test_probe_is_unit_and_centered():
    probe = symmetric_grid_probe(Grid((4, 6)))
    assert np.linalg.norm(probe) == pytest.approx(1.0)
    assert probe.sum() == pytest.approx(0.0, abs=1e-12)


def test_probe_invariant_under_axis_permutation():
    grid = Grid((5, 5, 5))
    probe = symmetric_grid_probe(grid).reshape(5, 5, 5)
    assert np.allclose(probe, probe.transpose(1, 0, 2))
    assert np.allclose(probe, probe.transpose(2, 1, 0))


def test_probe_monotone_along_diagonal():
    grid = Grid((4, 4))
    probe = symmetric_grid_probe(grid).reshape(4, 4)
    diagonal = [probe[i, i] for i in range(4)]
    assert diagonal == sorted(diagonal)


def test_probe_single_cell_grid():
    probe = symmetric_grid_probe(Grid((1, 1)))
    assert probe.shape == (1,)
    assert probe[0] == 0.0


def test_probe_degenerate_one_wide_axes():
    probe = symmetric_grid_probe(Grid((1, 5)))
    assert np.linalg.norm(probe) == pytest.approx(1.0)

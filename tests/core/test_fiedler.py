"""Tests for repro.core.fiedler."""

import numpy as np
import pytest

from repro.core import fiedler_value, fiedler_vector
from repro.errors import GraphStructureError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    quadratic_form,
    star_graph,
)
from repro.linalg import scipy_available

BACKENDS = ["dense", "lanczos"] + (["scipy"] if scipy_available() else [])


# ----------------------------------------------------------------------
# Analytic Fiedler values
# ----------------------------------------------------------------------
def test_path_fiedler_value():
    for n in (3, 5, 10, 24):
        expected = 2 * (1 - np.cos(np.pi / n))
        assert fiedler_value(path_graph(n),
                             backend="dense") == pytest.approx(expected)


def test_cycle_fiedler_value():
    n = 9
    expected = 2 * (1 - np.cos(2 * np.pi / n))
    assert fiedler_value(cycle_graph(n),
                         backend="dense") == pytest.approx(expected)


def test_complete_graph_fiedler_value():
    # K_n: lambda_2 = n, multiplicity n-1.
    result = fiedler_vector(complete_graph(6), backend="dense")
    assert result.value == pytest.approx(6.0)
    assert result.multiplicity == 5


def test_star_graph_fiedler_value():
    # Star S_n: lambda_2 = 1 with multiplicity n-2.
    result = fiedler_vector(star_graph(6), backend="dense")
    assert result.value == pytest.approx(1.0)
    assert result.multiplicity == 4


def test_grid_fiedler_value_and_multiplicity(grid3, graph3):
    result = fiedler_vector(graph3, backend="dense")
    assert result.value == pytest.approx(1.0)  # paper Figure 3
    assert result.multiplicity == 2            # square grid symmetry


def test_cube_grid_multiplicity_matches_dimension():
    for ndim in (2, 3):
        g = grid_graph(Grid.cube(3, ndim))
        result = fiedler_vector(g, backend="dense")
        assert result.multiplicity == ndim


def test_rectangular_grid_simple_eigenvalue():
    g = grid_graph(Grid((6, 3)))
    result = fiedler_vector(g, backend="dense")
    expected = 2 * (1 - np.cos(np.pi / 6))  # longest-axis mode
    assert result.value == pytest.approx(expected)
    assert result.multiplicity == 1


# ----------------------------------------------------------------------
# Vector properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_vector_is_unit_and_centered(backend):
    g = grid_graph(Grid((5, 4)))
    result = fiedler_vector(g, backend=backend)
    assert np.linalg.norm(result.vector) == pytest.approx(1.0)
    assert result.vector.sum() == pytest.approx(0.0, abs=1e-8)


@pytest.mark.parametrize("backend", BACKENDS)
def test_vector_attains_lambda2(backend):
    g = grid_graph(Grid((4, 4)))
    result = fiedler_vector(g, backend=backend)
    assert quadratic_form(g, result.vector) == pytest.approx(
        result.value, abs=1e-7)


def test_cross_backend_vectors_agree():
    g = grid_graph(Grid((4, 4)))
    reference = fiedler_vector(g, backend="dense").vector
    for backend in BACKENDS:
        other = fiedler_vector(g, backend=backend).vector
        assert np.allclose(other, reference, atol=1e-6), backend


def test_determinism_repeated_calls():
    g = grid_graph(Grid.cube(3, 3))
    a = fiedler_vector(g, backend="dense")
    b = fiedler_vector(g, backend="dense")
    assert np.array_equal(a.vector, b.vector)


def test_custom_probe_changes_canonical_choice():
    g = grid_graph(Grid((3, 3)))
    default = fiedler_vector(g, backend="dense").vector
    # A probe favouring the x-mode picks a different eigenspace member.
    probe = Grid((3, 3)).coordinates()[:, 0].astype(float)
    probe -= probe.mean()
    custom = fiedler_vector(g, backend="dense", probe=probe).vector
    assert not np.allclose(custom, default)
    # Both attain the same optimal objective.
    assert quadratic_form(g, custom) == pytest.approx(1.0, abs=1e-8)


def test_probe_validation():
    g = path_graph(4)
    with pytest.raises(InvalidParameterError):
        fiedler_vector(g, probe=np.ones(3))


def test_optimality_against_random_vectors():
    """Theorem 1/3: no centered unit vector beats the Fiedler vector."""
    g = grid_graph(Grid((4, 5)))
    result = fiedler_vector(g, backend="dense")
    rng = np.random.default_rng(9)
    for _ in range(20):
        x = rng.normal(size=g.num_vertices)
        x -= x.mean()
        x /= np.linalg.norm(x)
        assert quadratic_form(g, x) >= result.value - 1e-9


# ----------------------------------------------------------------------
# Error handling
# ----------------------------------------------------------------------
def test_disconnected_graph_raises():
    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(GraphStructureError):
        fiedler_vector(g)


def test_too_small_graph_raises():
    with pytest.raises(InvalidParameterError):
        fiedler_vector(Graph.empty(1))


def test_two_vertex_graph():
    g = Graph.from_edges(2, [(0, 1)], weights=[3.0])
    result = fiedler_vector(g, backend="dense")
    assert result.value == pytest.approx(6.0)  # 2w
    assert np.allclose(np.abs(result.vector),
                       [1 / np.sqrt(2)] * 2, atol=1e-9)

"""Tests for repro.core.multilevel."""

import numpy as np
import pytest

from repro.core import (
    SpectralLPM,
    fiedler_vector,
    multilevel_fiedler,
    multilevel_order,
)
from repro.errors import GraphStructureError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import Graph, grid_graph, path_graph
from repro.metrics import two_sum


def test_rayleigh_close_to_lambda2():
    g = grid_graph(Grid((16, 16)))
    result = multilevel_fiedler(g, min_size=32)
    exact = fiedler_vector(g, backend="dense").value
    assert result.rayleigh <= 1.10 * exact
    assert result.rayleigh >= exact - 1e-9  # lambda_2 is a lower bound


def test_order_is_valid_permutation():
    g = grid_graph(Grid((12, 12)))
    order = multilevel_order(g, min_size=24)
    assert sorted(order.permutation) == list(range(144))


def test_quality_competitive_with_exact():
    grid = Grid((16, 16))
    g = grid_graph(grid)
    exact_cost = two_sum(g, SpectralLPM(backend="dense").order_grid(grid))
    ml_cost = two_sum(g, multilevel_order(g, min_size=32))
    assert ml_cost <= 1.5 * exact_cost


def test_deterministic():
    g = grid_graph(Grid((10, 10)))
    a = multilevel_fiedler(g)
    b = multilevel_fiedler(g)
    assert a.order == b.order
    assert np.array_equal(a.vector, b.vector)


def test_small_graph_skips_coarsening():
    g = path_graph(10)
    result = multilevel_fiedler(g, min_size=64)
    assert result.levels == 0
    perm = list(result.order.permutation)
    assert perm == sorted(perm) or perm == sorted(perm, reverse=True)


def test_levels_reported():
    g = grid_graph(Grid((16, 16)))
    result = multilevel_fiedler(g, min_size=32)
    assert result.levels >= 2
    assert result.coarsest_size <= 32


def test_smoothing_improves_quotient():
    g = grid_graph(Grid((16, 16)))
    rough = multilevel_fiedler(g, min_size=32, smoothing_steps=0)
    smooth = multilevel_fiedler(g, min_size=32, smoothing_steps=60)
    assert smooth.rayleigh <= rough.rayleigh + 1e-12


def test_disconnected_rejected():
    g = Graph.from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(GraphStructureError):
        multilevel_fiedler(g)


def test_validation():
    g = path_graph(6)
    with pytest.raises(InvalidParameterError):
        multilevel_fiedler(Graph.empty(1))
    with pytest.raises(InvalidParameterError):
        multilevel_fiedler(g, smoothing_steps=-1)

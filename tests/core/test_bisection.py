"""Tests for repro.core.bisection (recursive spectral bisection)."""

import numpy as np
import pytest

from repro.core import spectral_bisection_order
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import Graph, grid_graph, path_graph
from repro.metrics import two_sum


def test_path_recovered():
    order = spectral_bisection_order(path_graph(16), backend="dense",
                                     leaf_size=4)
    perm = list(order.permutation)
    assert perm == list(range(16)) or perm == list(range(15, -1, -1))


def test_order_is_permutation():
    g = grid_graph(Grid((6, 6)))
    order = spectral_bisection_order(g, backend="dense")
    assert sorted(order.permutation) == list(range(36))


def test_deterministic():
    g = grid_graph(Grid((5, 5)))
    a = spectral_bisection_order(g, backend="dense")
    b = spectral_bisection_order(g, backend="dense")
    assert a == b


def test_halves_are_contiguous():
    """The defining property: the first n//2 ranks form one side of the
    median cut — a contiguous half of the grid (here: along an axis
    mode, so one half of the cells)."""
    grid = Grid((4, 8))  # rectangular => simple lambda_2 along axis 1
    g = grid_graph(grid)
    order = spectral_bisection_order(g, backend="dense")
    first_half = {int(v) for v in order.permutation[:16]}
    columns = {grid.point_of(v)[1] for v in first_half}
    # The long axis has 8 columns; one side of the cut takes 4 of them.
    assert columns in ({0, 1, 2, 3}, {4, 5, 6, 7})


def test_leaf_size_controls_recursion():
    g = grid_graph(Grid((4, 4)))
    fine = spectral_bisection_order(g, backend="dense", leaf_size=2)
    coarse = spectral_bisection_order(g, backend="dense", leaf_size=16)
    assert sorted(fine.permutation) == sorted(coarse.permutation)
    with pytest.raises(InvalidParameterError):
        spectral_bisection_order(g, leaf_size=1)


def test_disconnected_graph():
    g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    order = spectral_bisection_order(g, backend="dense")
    assert sorted(order.permutation) == list(range(6))
    ranks = order.ranks
    assert sorted(int(ranks[v]) for v in (0, 1, 2)) == [0, 1, 2]


def test_empty_and_tiny():
    assert spectral_bisection_order(Graph.from_edges(0, [])).n == 0
    assert list(spectral_bisection_order(
        Graph.empty(1)).permutation) == [0]
    assert sorted(spectral_bisection_order(
        Graph.from_edges(2, [(0, 1)])).permutation) == [0, 1]


def test_global_spectral_beats_bisection_on_two_sum():
    """The library's measured support for the paper's thesis: recursive
    bisection makes each cut final, so it pays a boundary penalty at
    every cut boundary — a *fractal-like* local optimization — and the
    one-global-sort Spectral LPM beats it by severalfold on the
    quadratic objective.  (Measured: 3678 vs 13720 on 8x8.)"""
    from repro.core import SpectralLPM
    from repro.mapping import CurveMapping
    grid = Grid((8, 8))
    g = grid_graph(grid)
    global_cost = two_sum(g, SpectralLPM(backend="dense").order_grid(grid))
    bisect_cost = two_sum(g, spectral_bisection_order(g, backend="dense"))
    assert global_cost < bisect_cost
    # Still a structured order: no worse than the worst fractal curve.
    gray_cost = two_sum(g, CurveMapping("gray").order_for_grid(grid))
    assert bisect_cost <= gray_cost


def test_mapping_registry_integration():
    from repro.api import make_mapping
    mapping = make_mapping("spectral-rb", backend="dense")
    ranks = mapping.ranks_for_grid(Grid((5, 5)))
    assert sorted(ranks) == list(range(25))
    assert mapping.name == "spectral-rb"

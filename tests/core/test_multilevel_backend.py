"""The 'multilevel' backend as dispatched through fiedler_vector.

Covers the registration surface added with the multilevel-accelerated
``auto`` backend: explicit ``backend="multilevel"`` requests, the
size-cutoff dispatch under ``auto``, and the quality gate that falls
back to an exact solver when the approximation misses its
relative-residual bound.
"""

import numpy as np
import pytest

import repro.linalg.backends as backends
from repro.core import SpectralLPM, fiedler_vector
from repro.core.multilevel import multilevel_eigenspace
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import grid_graph, path_graph


def test_explicit_multilevel_backend_returns_result():
    graph = grid_graph(Grid((16, 16)))
    result = fiedler_vector(graph, backend="multilevel")
    assert result.backend == "multilevel"
    assert result.multiplicity == 2
    expected = 2 * (1 - np.cos(np.pi / 16))
    assert result.value == pytest.approx(expected, rel=1e-6)
    assert np.linalg.norm(result.vector) == pytest.approx(1.0)
    assert result.vector.sum() == pytest.approx(0.0, abs=1e-8)


def test_spectral_lpm_accepts_multilevel():
    order = SpectralLPM(backend="multilevel").order_grid(Grid((12, 12)))
    assert sorted(order.permutation) == list(range(144))


def test_auto_selects_multilevel_above_cutoff(monkeypatch):
    monkeypatch.setattr(backends, "MULTILEVEL_CUTOFF", 100)
    graph = grid_graph(Grid((16, 16)))  # 256 > 100
    result = fiedler_vector(graph, backend="auto")
    assert result.backend == "multilevel"


def test_auto_below_cutoff_stays_exact():
    graph = grid_graph(Grid((8, 8)))  # far below the real cutoff
    result = fiedler_vector(graph, backend="auto")
    assert result.backend != "multilevel"


def test_auto_quality_gate_falls_back(monkeypatch):
    # A zero quality tolerance rejects any nonzero residual, so auto
    # must serve the exact answer instead.
    monkeypatch.setattr(backends, "MULTILEVEL_CUTOFF", 100)
    graph = grid_graph(Grid((16, 16)))
    result = fiedler_vector(graph, backend="auto", multilevel_tol=0.0)
    assert result.backend != "multilevel"
    expected = 2 * (1 - np.cos(np.pi / 16))
    assert result.value == pytest.approx(expected)


def test_explicit_multilevel_ignores_quality_gate():
    graph = grid_graph(Grid((16, 16)))
    result = fiedler_vector(graph, backend="multilevel", multilevel_tol=0.0)
    assert result.backend == "multilevel"


def test_unknown_backend_still_rejected():
    graph = path_graph(8)
    with pytest.raises(InvalidParameterError):
        fiedler_vector(graph, backend="magma")


def test_eigenspace_residuals_are_true_residuals():
    from repro.graph import laplacian
    graph = grid_graph(Grid((16, 16)))
    space = multilevel_eigenspace(graph)
    lap = laplacian(graph)
    for j in range(len(space.values)):
        y = space.vectors[:, j]
        recomputed = np.linalg.norm(lap.matvec(y) - space.values[j] * y)
        assert recomputed == pytest.approx(space.residuals[j],
                                           rel=1e-6, abs=1e-12)


def test_eigenspace_block_is_orthonormal():
    graph = grid_graph(Grid((12, 12)))
    space = multilevel_eigenspace(graph)
    block = space.vectors
    gram = block.T @ block
    assert np.allclose(gram, np.eye(block.shape[1]), atol=1e-10)
    ones = np.ones(graph.num_vertices) / np.sqrt(graph.num_vertices)
    assert np.abs(ones @ block).max() < 1e-10

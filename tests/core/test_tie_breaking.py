"""Tests for repro.core.tie_breaking."""

import numpy as np
import pytest

from repro.core import tie_break_keys
from repro.errors import InvalidParameterError
from repro.graph import Graph, path_graph


def test_index_strategy():
    assert list(tie_break_keys("index", 4)) == [0, 1, 2, 3]


def test_bfs_strategy_orders_from_min_value():
    g = path_graph(5)
    values = np.array([3.0, 2.0, 0.0, 2.0, 3.0])  # min at vertex 2
    keys = tie_break_keys("bfs", 5, values=values, graph=g)
    # BFS from 2 visits 2, then 1,3, then 0,4.
    assert keys[2] == 0
    assert sorted([keys[1], keys[3]]) == [1, 2]
    assert sorted([keys[0], keys[4]]) == [3, 4]


def test_bfs_strategy_unreached_vertices_last():
    g = Graph.from_edges(4, [(0, 1)])
    values = np.array([0.0, 1.0, 2.0, 3.0])
    keys = tie_break_keys("bfs", 4, values=values, graph=g)
    assert keys[0] == 0 and keys[1] == 1
    assert keys[2] == 4 and keys[3] == 4  # sentinel: after everyone


def test_bfs_requires_graph_and_values():
    with pytest.raises(InvalidParameterError):
        tie_break_keys("bfs", 4)
    with pytest.raises(InvalidParameterError):
        tie_break_keys("bfs", 4, values=np.zeros(4))


def test_bfs_size_mismatch():
    g = path_graph(3)
    with pytest.raises(InvalidParameterError):
        tie_break_keys("bfs", 4, values=np.zeros(4), graph=g)


def test_unknown_strategy():
    with pytest.raises(InvalidParameterError):
        tie_break_keys("alphabetical", 4)

"""Tests for repro.core.ordering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import LinearOrder, order_by_values
from repro.errors import InvalidParameterError


def test_permutation_and_ranks_are_inverse():
    order = LinearOrder([2, 0, 1])
    assert list(order.permutation) == [2, 0, 1]
    assert list(order.ranks) == [1, 2, 0]
    assert order.item_at(0) == 2
    assert order.rank_of(2) == 0


def test_from_ranks():
    order = LinearOrder.from_ranks([1, 2, 0])
    assert list(order.permutation) == [2, 0, 1]


def test_identity():
    order = LinearOrder.identity(4)
    assert list(order.permutation) == [0, 1, 2, 3]


def test_empty_order():
    order = LinearOrder([])
    assert order.n == 0
    assert len(order) == 0


def test_invalid_permutations_rejected():
    with pytest.raises(InvalidParameterError):
        LinearOrder([0, 0, 1])
    with pytest.raises(InvalidParameterError):
        LinearOrder([0, 3])
    with pytest.raises(InvalidParameterError):
        LinearOrder([[0, 1]])
    with pytest.raises(InvalidParameterError):
        LinearOrder([-1, 0])


def test_invalid_ranks_rejected():
    with pytest.raises(InvalidParameterError):
        LinearOrder.from_ranks([0, 0])
    with pytest.raises(InvalidParameterError):
        LinearOrder.from_ranks([0, 5])
    with pytest.raises(InvalidParameterError):
        LinearOrder.from_ranks(np.zeros((2, 2)))


def test_arrays_are_readonly():
    order = LinearOrder([1, 0])
    with pytest.raises(ValueError):
        order.permutation[0] = 5
    with pytest.raises(ValueError):
        order.ranks[0] = 5


def test_reversed():
    order = LinearOrder([0, 1, 2])
    assert list(order.reversed().permutation) == [2, 1, 0]
    assert order.reversed().reversed() == order


def test_equality_and_hash():
    assert LinearOrder([1, 0]) == LinearOrder([1, 0])
    assert LinearOrder([1, 0]) != LinearOrder([0, 1])
    assert hash(LinearOrder([1, 0])) == hash(LinearOrder([1, 0]))
    assert LinearOrder([1, 0]) != "something"


def test_footrule_distance():
    a = LinearOrder([0, 1, 2, 3])
    b = LinearOrder([3, 2, 1, 0])
    assert a.footrule_distance(a) == 0
    assert a.footrule_distance(b) == 3 + 1 + 1 + 3
    with pytest.raises(InvalidParameterError):
        a.footrule_distance(LinearOrder([0, 1]))


def test_displacement():
    a = LinearOrder([0, 1, 2])
    b = LinearOrder([2, 1, 0])
    assert list(a.displacement(b)) == [2, 0, -2]


def test_agrees_up_to_reversal():
    a = LinearOrder([0, 1, 2])
    assert a.agrees_up_to_reversal(LinearOrder([2, 1, 0]))
    assert a.agrees_up_to_reversal(a)
    assert not a.agrees_up_to_reversal(LinearOrder([1, 0, 2]))


def test_repr_small_and_large():
    assert "LinearOrder([1, 0])" == repr(LinearOrder([1, 0]))
    big = LinearOrder(np.arange(100))
    assert "n=100" in repr(big)


# ----------------------------------------------------------------------
# order_by_values
# ----------------------------------------------------------------------
def test_order_by_values_sorts_ascending():
    order = order_by_values([0.3, 0.1, 0.2])
    assert list(order.permutation) == [1, 2, 0]


def test_order_by_values_ties_break_by_index():
    order = order_by_values([0.5, 0.5, 0.1])
    assert list(order.permutation) == [2, 0, 1]


def test_order_by_values_custom_tie_break():
    order = order_by_values([0.5, 0.5, 0.1], tie_break=[1, 0, 0])
    assert list(order.permutation) == [2, 1, 0]


def test_order_by_values_validation():
    with pytest.raises(InvalidParameterError):
        order_by_values(np.zeros((2, 2)))
    with pytest.raises(InvalidParameterError):
        order_by_values([1.0, 2.0], tie_break=[0])


@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40))
def test_order_by_values_is_sorted_property(values):
    order = order_by_values(values)
    sorted_values = [values[i] for i in order.permutation]
    assert sorted_values == sorted(values)


@given(perm=st.permutations(list(range(8))))
def test_roundtrip_property(perm):
    order = LinearOrder(perm)
    assert LinearOrder.from_ranks(order.ranks) == order
    for rank, item in enumerate(perm):
        assert order.rank_of(item) == rank

"""Tests for repro.core.refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearOrder, SpectralLPM, refine_order
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import Graph, grid_graph, path_graph
from repro.metrics import one_sum, two_sum


def test_optimal_order_is_a_fixed_point():
    g = path_graph(10)
    result = refine_order(g, LinearOrder.identity(10))
    assert result.order == LinearOrder.identity(10)
    assert result.swaps == 0
    assert result.improvement == 0.0


def test_refinement_never_worsens():
    g = grid_graph(Grid((5, 5)))
    rng = np.random.default_rng(3)
    for _ in range(10):
        start = LinearOrder(rng.permutation(25))
        result = refine_order(g, start)
        assert result.final_cost <= result.initial_cost
        assert result.final_cost == pytest.approx(
            two_sum(g, result.order))


def test_refinement_reaches_local_optimum():
    """At the fixed point, no adjacent swap improves the objective."""
    g = grid_graph(Grid((4, 4)))
    start = LinearOrder(np.random.default_rng(1).permutation(16))
    refined = refine_order(g, start, max_passes=100).order
    base = two_sum(g, refined)
    perm = refined.permutation.copy()
    for position in range(15):
        candidate = perm.copy()
        candidate[position], candidate[position + 1] = \
            candidate[position + 1], candidate[position]
        assert two_sum(g, LinearOrder(candidate)) >= base - 1e-9


def test_refinement_improves_scrambled_order():
    g = grid_graph(Grid((5, 5)))
    scrambled = LinearOrder(np.random.default_rng(7).permutation(25))
    result = refine_order(g, scrambled, max_passes=200)
    assert result.improvement > 0.2
    assert result.swaps > 0


def test_one_sum_objective():
    g = grid_graph(Grid((4, 4)))
    scrambled = LinearOrder(np.random.default_rng(5).permutation(16))
    result = refine_order(g, scrambled, objective="one_sum")
    assert result.final_cost == pytest.approx(one_sum(g, result.order))
    assert result.final_cost <= result.initial_cost


def test_refining_spectral_changes_little():
    """Spectral starts near a local optimum of its own objective; the
    greedy pass should find only marginal gains (a few percent)."""
    grid = Grid((8, 8))
    g = grid_graph(grid)
    spectral = SpectralLPM(backend="dense").order_grid(grid)
    result = refine_order(g, spectral)
    assert result.improvement <= 0.10
    assert result.final_cost <= result.initial_cost


def test_max_passes_zero_is_noop():
    g = path_graph(6)
    start = LinearOrder(np.array([3, 1, 2, 0, 5, 4]))
    result = refine_order(g, start, max_passes=0)
    assert result.order == start
    assert result.passes == 0


def test_validation():
    g = path_graph(4)
    with pytest.raises(InvalidParameterError):
        refine_order(g, LinearOrder.identity(5))
    with pytest.raises(InvalidParameterError):
        refine_order(g, LinearOrder.identity(4), objective="bandwidth")
    with pytest.raises(InvalidParameterError):
        refine_order(g, LinearOrder.identity(4), max_passes=-1)


def test_empty_and_tiny_graphs():
    assert refine_order(Graph.empty(1), LinearOrder.identity(1)).swaps == 0
    g2 = Graph.from_edges(2, [(0, 1)])
    assert refine_order(g2, LinearOrder.identity(2)).swaps == 0


@given(n=st.integers(2, 12), seed=st.integers(0, 100))
@settings(max_examples=25)
def test_refined_path_cost_bounded_by_start(n, seed):
    g = path_graph(n)
    start = LinearOrder(np.random.default_rng(seed).permutation(n))
    result = refine_order(g, start, max_passes=50)
    assert result.final_cost <= two_sum(g, start) + 1e-9

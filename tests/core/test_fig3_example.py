"""The paper's Figure-3 worked example as an executable test."""

import numpy as np
import pytest

from repro.core import LinearOrder, SpectralLPM, fiedler_vector
from repro.experiments import PAPER_FIG3_LAMBDA2, PAPER_FIG3_ORDER
from repro.geometry import Grid
from repro.graph import grid_graph, laplacian_dense, quadratic_form
from repro.metrics import two_sum


@pytest.fixture
def example(grid3, graph3):
    return grid3, graph3


def test_laplacian_matches_figure_3c(example):
    """Figure 3c prints L(G) for the 3x3 grid; verify entry by entry."""
    _, graph = example
    expected = np.array([
        [2, -1, 0, -1, 0, 0, 0, 0, 0],
        [-1, 3, -1, 0, -1, 0, 0, 0, 0],
        [0, -1, 2, 0, 0, -1, 0, 0, 0],
        [-1, 0, 0, 3, -1, 0, -1, 0, 0],
        [0, -1, 0, -1, 4, -1, 0, -1, 0],
        [0, 0, -1, 0, -1, 3, 0, 0, -1],
        [0, 0, 0, -1, 0, 0, 2, -1, 0],
        [0, 0, 0, 0, -1, 0, -1, 3, -1],
        [0, 0, 0, 0, 0, -1, 0, -1, 2],
    ], dtype=float)
    assert np.array_equal(laplacian_dense(graph), expected)


def test_lambda2_is_exactly_one(example):
    _, graph = example
    result = fiedler_vector(graph, backend="dense")
    assert result.value == pytest.approx(PAPER_FIG3_LAMBDA2, abs=1e-10)


def test_eigenspace_is_two_dimensional(example):
    _, graph = example
    assert fiedler_vector(graph, backend="dense").multiplicity == 2


def test_paper_vector_lies_in_lambda2_eigenspace(example):
    """The paper's X attains the optimal continuous objective."""
    _, graph = example
    paper_x = np.array([-0.01, -0.29, -0.57, 0.28, 0, -0.28,
                        0.57, 0.29, 0.01])
    paper_x = paper_x / np.linalg.norm(paper_x)
    # Printed to 2 decimals, so allow a loose tolerance around 1.0.
    assert quadratic_form(graph, paper_x) == pytest.approx(1.0, abs=0.02)


def test_our_order_at_least_as_good_as_papers(example):
    grid, graph = example
    ours = SpectralLPM(backend="dense").order_grid(grid)
    paper = LinearOrder(np.array(PAPER_FIG3_ORDER))
    assert two_sum(graph, ours) <= two_sum(graph, paper)


def test_published_order_values():
    """Anchor the exact comparison both ways: 60 (ours) vs 62 (paper)."""
    grid = Grid((3, 3))
    graph = SpectralLPM(backend="dense").build_grid_graph(grid)
    ours = SpectralLPM(backend="dense").order_grid(grid)
    paper = LinearOrder(np.array(PAPER_FIG3_ORDER))
    assert two_sum(graph, paper) == 62.0
    assert two_sum(graph, ours) <= 62.0


def test_outcome_dataclass_flags():
    from repro.experiments import run_fig3
    outcome = run_fig3(backend="dense")
    assert outcome.matches_paper_lambda2
    assert outcome.at_least_as_good_as_paper
    assert outcome.fiedler_multiplicity == 2


def test_render_fig3_mentions_key_facts():
    from repro.experiments import render_fig3
    text = render_fig3(backend="dense")
    assert "lambda_2 = 1.000000" in text
    assert "paper order S = (2, 1, 5, 0, 4, 8, 3, 7, 6)" in text

"""Tests for repro.core.spectral — the paper's algorithm end to end."""

import numpy as np
import pytest

from repro.core import (
    LinearOrder,
    SpectralLPM,
    spectral_order,
    symmetric_grid_probe,
)
from repro.errors import GraphStructureError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import Graph, cycle_graph, path_graph, quadratic_form
from repro.linalg import scipy_available
from repro.metrics import two_sum

BACKENDS = ["dense", "lanczos"] + (["scipy"] if scipy_available() else [])


# ----------------------------------------------------------------------
# Classic graphs: known-correct orders
# ----------------------------------------------------------------------
def test_path_graph_recovers_path_order(dense_lpm):
    order = dense_lpm.order_graph(path_graph(11))
    assert (list(order.permutation) == list(range(11))
            or list(order.permutation) == list(range(10, -1, -1)))


def test_longer_path_still_exact(dense_lpm):
    order = dense_lpm.order_graph(path_graph(40))
    perm = list(order.permutation)
    assert perm == sorted(perm) or perm == sorted(perm, reverse=True)


def test_cycle_order_has_tiny_edge_bandwidth(dense_lpm):
    """A cycle's spectral order is the classic two-interleaved-arcs
    arrangement: every ring edge stretches at most 2 ranks (the known
    optimal linear arrangement of a cycle)."""
    from repro.metrics import bandwidth
    order = dense_lpm.order_graph(cycle_graph(12))
    assert bandwidth(cycle_graph(12), order) <= 3


def test_rectangular_grid_orders_along_long_axis(dense_lpm):
    grid = Grid((8, 3))
    order = dense_lpm.order_grid(grid)
    # lambda_2's mode varies along the long axis, so the first and last
    # ranked cells sit at opposite ends of axis 0.
    first = grid.point_of(order.item_at(0))
    last = grid.point_of(order.item_at(grid.size - 1))
    assert abs(first[0] - last[0]) == 7


# ----------------------------------------------------------------------
# Determinism and backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", [(3, 3), (4, 4), (6, 6), (4, 4, 4),
                                   (5, 3)])
def test_cross_backend_orders_identical(shape):
    orders = [SpectralLPM(backend=b).order_grid(Grid(shape))
              for b in BACKENDS]
    for other in orders[1:]:
        assert other == orders[0]


def test_repeated_runs_identical(dense_lpm, grid8):
    assert dense_lpm.order_grid(grid8) == dense_lpm.order_grid(grid8)


def test_order_is_permutation(dense_lpm, grid8):
    order = dense_lpm.order_grid(grid8)
    assert sorted(order.permutation) == list(range(grid8.size))


# ----------------------------------------------------------------------
# Optimality (Theorem 1 family)
# ----------------------------------------------------------------------
def test_spectral_beats_random_orders_on_two_sum(dense_lpm, grid8):
    graph = dense_lpm.build_grid_graph(grid8)
    spectral = dense_lpm.order_grid(grid8)
    spectral_cost = two_sum(graph, spectral)
    rng = np.random.default_rng(17)
    for _ in range(20):
        random_order = LinearOrder(rng.permutation(grid8.size))
        assert spectral_cost < two_sum(graph, random_order)


def test_continuous_objective_at_most_discrete(dense_lpm, grid4):
    """The Fiedler value lower-bounds any normalized discrete order."""
    graph = dense_lpm.build_grid_graph(grid4)
    fiedler = dense_lpm.fiedler(graph)
    order = dense_lpm.order_grid(grid4)
    ranks = order.ranks.astype(float)
    ranks -= ranks.mean()
    ranks /= np.linalg.norm(ranks)
    assert quadratic_form(graph, ranks) >= fiedler.value - 1e-9


# ----------------------------------------------------------------------
# Small and degenerate inputs
# ----------------------------------------------------------------------
def test_empty_graph(dense_lpm):
    order = dense_lpm.order_graph(Graph.from_edges(0, []))
    assert order.n == 0


def test_single_vertex(dense_lpm):
    order = dense_lpm.order_graph(Graph.empty(1))
    assert list(order.permutation) == [0]


def test_two_vertices(dense_lpm):
    order = dense_lpm.order_graph(Graph.from_edges(2, [(0, 1)]))
    assert list(order.permutation) == [0, 1]


def test_single_cell_grid(dense_lpm):
    order = dense_lpm.order_grid(Grid((1, 1)))
    assert order.n == 1


def test_1d_grid_is_path_order(dense_lpm):
    order = dense_lpm.order_grid(Grid((9,)))
    perm = list(order.permutation)
    assert perm == sorted(perm) or perm == sorted(perm, reverse=True)


# ----------------------------------------------------------------------
# Disconnected graphs
# ----------------------------------------------------------------------
def test_disconnected_per_component(dense_lpm):
    g = Graph.from_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6)])
    order = dense_lpm.order_graph(g)
    ranks = order.ranks
    # Components occupy contiguous rank blocks, ordered by min vertex.
    assert sorted(int(ranks[v]) for v in (0, 1, 2)) == [0, 1, 2]
    assert int(ranks[3]) == 3
    assert sorted(int(ranks[v]) for v in (4, 5, 6)) == [4, 5, 6]


def test_disconnected_error_policy():
    lpm = SpectralLPM(backend="dense", on_disconnected="error")
    with pytest.raises(GraphStructureError):
        lpm.order_graph(Graph.from_edges(4, [(0, 1), (2, 3)]))


def test_disconnected_by_size_arrangement():
    lpm = SpectralLPM(backend="dense", component_arrangement="by_size")
    g = Graph.from_edges(5, [(3, 4)])  # singletons 0,1,2 + pair {3,4}
    order = lpm.order_graph(g)
    # Largest component first.
    assert sorted(int(order.ranks[v]) for v in (3, 4)) == [0, 1]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_invalid_config_rejected():
    with pytest.raises(InvalidParameterError):
        SpectralLPM(tie_break="random")
    with pytest.raises(InvalidParameterError):
        SpectralLPM(on_disconnected="ignore")
    with pytest.raises(InvalidParameterError):
        SpectralLPM(component_arrangement="shuffled")


def test_config_reporting():
    lpm = SpectralLPM(connectivity="moore", radius=2,
                      weight="inverse_manhattan", backend="dense")
    config = lpm.config
    assert config.connectivity == "moore"
    assert config.radius == 2
    assert config.weight == "inverse_manhattan"
    assert "SpectralLPM" in repr(lpm)


def test_callable_weight_named_in_config():
    def my_weight(offset):
        return 2.0

    # The "callable:" prefix keeps a lossy config from ever aliasing a
    # registered weight model of the same name (a cache-key hazard).
    assert SpectralLPM(weight=my_weight).config.weight == \
        "callable:my_weight"


def test_connectivity_variants_give_valid_orders(grid4):
    for kwargs in ({"connectivity": "moore"},
                   {"radius": 2, "weight": "inverse_manhattan"}):
        order = SpectralLPM(backend="dense", **kwargs).order_grid(grid4)
        assert sorted(order.permutation) == list(range(16))


def test_bfs_tie_break_differs_but_valid(grid3):
    by_index = SpectralLPM(backend="dense",
                           tie_break="index").order_grid(grid3)
    by_bfs = SpectralLPM(backend="dense", tie_break="bfs").order_grid(grid3)
    assert sorted(by_bfs.permutation) == list(range(9))
    assert sorted(by_index.permutation) == list(range(9))


# ----------------------------------------------------------------------
# order_points (sparse subsets)
# ----------------------------------------------------------------------
def test_order_points_connected_subset(dense_lpm):
    grid = Grid((4, 4))
    # A connected 2x3 block.
    cells = [grid.index_of((r, c)) for r in (1, 2) for c in (0, 1, 2)]
    order, ordered_cells = dense_lpm.order_points(grid, cells)
    assert list(ordered_cells) == sorted(cells)
    assert order.n == 6


def test_order_points_disconnected_subset(dense_lpm):
    grid = Grid((5, 5))
    cells = [grid.index_of((0, 0)), grid.index_of((0, 1)),
             grid.index_of((4, 4))]
    order, ordered_cells = dense_lpm.order_points(grid, cells)
    assert order.n == 3
    assert sorted(order.permutation) == [0, 1, 2]


# ----------------------------------------------------------------------
# Convenience API
# ----------------------------------------------------------------------
def test_spectral_order_dispatch():
    grid = Grid((3, 3))
    by_grid = spectral_order(grid, backend="dense")
    by_graph = spectral_order(
        SpectralLPM(backend="dense").build_grid_graph(grid),
        backend="dense")
    assert by_grid.n == by_graph.n == 9
    with pytest.raises(InvalidParameterError):
        spectral_order([1, 2, 3])


# ----------------------------------------------------------------------
# The symmetric grid probe
# ----------------------------------------------------------------------
def test_symmetric_probe_is_axis_invariant():
    probe = symmetric_grid_probe(Grid((5, 5)))
    grid = Grid((5, 5))
    matrix = probe.reshape(5, 5)
    # Swapping the axes leaves the probe unchanged.
    assert np.allclose(matrix, matrix.T)
    assert probe.sum() == pytest.approx(0.0, abs=1e-12)
    assert np.linalg.norm(probe) == pytest.approx(1.0)
    assert grid.size == probe.size


def test_grid_order_treats_axes_symmetrically(dense_lpm):
    """The fairness property behind Figure 5b: axis profiles coincide."""
    from repro.metrics import axis_rank_distance
    grid = Grid((8, 8))
    ranks = dense_lpm.order_grid(grid).ranks
    for delta in (1, 3, 5):
        x = axis_rank_distance(grid, ranks, 0, delta)
        y = axis_rank_distance(grid, ranks, 1, delta)
        # Tie-breaking perturbs the two profiles by a couple of ranks.
        assert abs(x - y) <= max(2.0, 0.1 * max(x, y))

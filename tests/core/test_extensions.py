"""Tests for repro.core.extensions (Section 4)."""

import numpy as np
import pytest

from repro.core import (
    SpectralLPM,
    access_pattern_weights,
    add_access_pattern,
    correlated_pairs_from_trace,
    weighted_radius_model,
)
from repro.errors import InvalidParameterError
from repro.geometry import Grid


def test_add_access_pattern_adds_edge():
    grid = Grid((4, 4))
    lpm = SpectralLPM(backend="dense")
    base = lpm.build_grid_graph(grid)
    a, b = grid.index_of((0, 0)), grid.index_of((3, 3))
    augmented = add_access_pattern(base, [(a, b)], weight=2.0)
    assert augmented.has_edge(a, b)
    assert augmented.edge_weight(a, b) == 2.0
    assert not base.has_edge(a, b)  # original untouched


def test_add_access_pattern_pulls_points_together():
    """The paper's Section-4 scenario, quantitatively."""
    grid = Grid((8, 8))
    lpm = SpectralLPM(backend="dense")
    base = lpm.build_grid_graph(grid)
    a, b = grid.index_of((0, 0)), grid.index_of((7, 7))
    before = lpm.order_graph(base)
    after = lpm.order_graph(add_access_pattern(base, [(a, b)],
                                               weight=5.0))
    gap_before = abs(before.rank_of(a) - before.rank_of(b))
    gap_after = abs(after.rank_of(a) - after.rank_of(b))
    assert gap_after < gap_before / 2


def test_add_access_pattern_empty_noop():
    grid = Grid((3, 3))
    base = SpectralLPM(backend="dense").build_grid_graph(grid)
    assert add_access_pattern(base, []) is base


def test_add_access_pattern_weight_validation():
    grid = Grid((3, 3))
    base = SpectralLPM(backend="dense").build_grid_graph(grid)
    with pytest.raises(InvalidParameterError):
        add_access_pattern(base, [(0, 1)], weight=0.0)


def test_weighted_radius_model_weights():
    grid = Grid((4, 4))
    g = weighted_radius_model(grid, radius=2)
    a = grid.index_of((0, 0))
    assert g.edge_weight(a, grid.index_of((0, 1))) == 1.0
    assert g.edge_weight(a, grid.index_of((1, 1))) == 0.5
    with pytest.raises(InvalidParameterError):
        weighted_radius_model(grid, radius=0)


# ----------------------------------------------------------------------
# Trace mining
# ----------------------------------------------------------------------
def test_correlated_pairs_counts_cooccurrences():
    trace = [1, 2, 1, 2, 1, 2, 5]
    pairs = correlated_pairs_from_trace(trace, window=1, min_support=2)
    assert pairs[0][:2] == (1, 2)
    assert pairs[0][2] == 5  # five adjacent (1,2)/(2,1) occurrences


def test_correlated_pairs_window():
    trace = [1, 9, 2, 1, 9, 2]
    narrow = correlated_pairs_from_trace(trace, window=1, min_support=2)
    wide = correlated_pairs_from_trace(trace, window=2, min_support=2)
    assert (1, 2) not in [(p, q) for p, q, _ in narrow]
    assert (1, 2) in [(p, q) for p, q, _ in wide]


def test_correlated_pairs_min_support_and_top_k():
    trace = [1, 2] * 5 + [3, 4]
    pairs = correlated_pairs_from_trace(trace, min_support=3)
    assert [(p, q) for p, q, _ in pairs] == [(1, 2)]
    top = correlated_pairs_from_trace(trace, min_support=1, top_k=1)
    assert len(top) == 1


def test_correlated_pairs_deterministic_tiebreak():
    trace = [1, 2, 3, 4]  # pairs (1,2),(2,3),(3,4) each once
    pairs = correlated_pairs_from_trace(trace, min_support=1)
    assert pairs == [(1, 2, 1), (2, 3, 1), (3, 4, 1)]


def test_correlated_pairs_validation():
    with pytest.raises(InvalidParameterError):
        correlated_pairs_from_trace([1, 2], window=0)
    with pytest.raises(InvalidParameterError):
        correlated_pairs_from_trace([1, 2], min_support=0)


def test_access_pattern_weights_normalized():
    pairs = [(0, 1, 10), (2, 3, 5)]
    edges, weights = access_pattern_weights(pairs, base_weight=4.0)
    assert edges == [(0, 1), (2, 3)]
    assert list(weights) == [4.0, 2.0]
    empty_edges, empty_weights = access_pattern_weights([])
    assert empty_edges == [] and len(empty_weights) == 0

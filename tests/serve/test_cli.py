"""``repro-serve``: the standalone fleet runner.

The CLI is the deployment face of the harness, so the test drives the
real thing — a spawned fleet over a real cache directory — and pins the
restart-warm story end to end: the second run over the same
``--cache-dir`` reports zero solver calls.
"""

from __future__ import annotations

import pytest

from repro.serve.cli import build_parser, main

pytestmark = pytest.mark.multiproc


def test_demo_run_and_restart_warm(tmp_path, capsys):
    args = ["--shards", "2", "--cache-dir", str(tmp_path / "cache"),
            "--demo-side", "8"]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "fleet up: 2 shards on 2 workers" in cold
    assert "warm-up: ordered 5 grids" in cold

    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "total solver calls: 0" in warm


def test_memory_only_run(capsys):
    assert main(["--shards", "1", "--demo-side", "5"]) == 0
    out = capsys.readouterr().out
    assert "(memory-only)" in out
    assert "worker 0" in out


def test_parser_defaults_and_validation(capsys):
    parser = build_parser()
    args = parser.parse_args([])
    assert args.shards == 4 and args.workers is None
    # --demo-side defaults open (None) so main() can tell "omitted"
    # from "explicit" when --listen is present; without --listen the
    # warm-up still defaults to a side of 16.
    assert args.demo_side is None and args.listen is None
    assert not args.keep_alive
    assert main(["--demo-side", "-3"]) == 2
    assert "demo-side" in capsys.readouterr().err


@pytest.mark.parametrize("spec, complaint", [
    ("127.0.0.1", "HOST:PORT"),         # no port at all
    ("127.0.0.1:http", "port"),         # non-numeric port
    ("127.0.0.1:70000", "port"),        # port out of range
    ("127.0.0.1:80", "privileged"),     # binding would need root
])
def test_listen_flag_rejects_bad_addresses(capsys, spec, complaint):
    with pytest.raises(SystemExit) as excinfo:
        main(["--listen", spec])
    assert excinfo.value.code == 2
    assert complaint in capsys.readouterr().err


def test_listen_conflicts_with_demo_side(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--listen", "127.0.0.1:0", "--demo-side", "8"])
    assert excinfo.value.code == 2
    assert "--demo-side" in capsys.readouterr().err


@pytest.mark.parametrize("argv, complaint", [
    (["--listen", "127.0.0.1:0", "--queue-depth", "0"], "--queue-depth"),
    (["--listen", "127.0.0.1:0", "--dispatchers", "0"], "--dispatchers"),
    (["--listen", "127.0.0.1:0", "--request-timeout", "0"],
     "--request-timeout"),
])
def test_listen_tuning_flags_are_validated(capsys, argv, complaint):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert complaint in capsys.readouterr().err


def test_bad_fleet_configuration_is_a_clean_failure(capsys):
    assert main(["--shards", "2", "--workers", "5",
                 "--demo-side", "0"]) == 1
    assert "failed to start fleet" in capsys.readouterr().err

"""The multi-process fleet: spawn, bit-identity, warm restarts, crashes.

The acceptance contracts of the serving harness:

* a 4-shard fleet answers ``order_many`` / ``query_many`` /
  ``range`` / ``nn`` / ``join`` **bit-identically** to the in-process
  :class:`~repro.service.ShardedIndexFrontend`;
* a full fleet kill-and-restart over warm per-shard stores performs
  **zero eigensolves** (pinned through the workers' ``solver_calls``
  counters, which accumulate the worker-side
  ``solver_invocations`` deltas, and through ``disk_hits``);
* a crashed worker is detected at the next dispatch, restarted, and
  rehydrates from its shard stores.

Everything here spawns real processes, so the module carries the
``multiproc`` mark and keeps domains small.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    JoinQuery,
    NNQuery,
    ProcessPoolFrontend,
    RangeQuery,
)
from repro.core.spectral import SpectralConfig
from repro.errors import (
    FleetShutdownError,
    GraphStructureError,
    InvalidParameterError,
)
from repro.geometry import Grid
from repro.graph.adjacency import Graph
from repro.graph.builders import grid_graph
from repro.linalg.backends import solver_invocations
from repro.service import OrderRequest, ShardedIndexFrontend
from repro.serve import ProcessFleet

pytestmark = pytest.mark.multiproc

GRIDS = [Grid((6, 6)), Grid((7, 7)), Grid((8, 8)), Grid((9, 9))]


@pytest.fixture(scope="module")
def front():
    """One 4-shard / 4-worker frontend shared by the read-only tests."""
    with ProcessPoolFrontend(shards=4) as front:
        yield front


def _query_batch():
    return [
        NNQuery(10, k=4),
        RangeQuery(((1, 1), (4, 4))),
        JoinQuery([0, 1, 2], [9, 17, 33], epsilon=2, window=12),
        NNQuery((3, 3), k=5),
    ]


def test_routing_agrees_with_in_process_frontend(front):
    sharded = ShardedIndexFrontend(shards=4)
    for domain in GRIDS + [grid_graph(Grid((5, 5)))]:
        assert front.shard_of(domain) == sharded.shard_of(domain)


def test_orders_bit_identical_to_sharded_frontend(front):
    sharded = ShardedIndexFrontend(shards=4)
    grid = Grid((9, 9))
    graph = grid_graph(Grid((5, 5)))
    assert front.order_grid(grid) == sharded.order_grid(grid)
    assert front.order_graph(graph) == sharded.order_graph(graph)
    assert (front.grid_artifact(grid).key
            == sharded.grid_artifact(grid).key)
    assert (front.graph_artifact(graph).key
            == sharded.graph_artifact(graph).key)


@pytest.mark.parametrize("parallelism", [None, 4])
def test_order_many_bit_identical_and_aligned(front, parallelism):
    requests = [
        OrderRequest(Grid((7, 7))),
        OrderRequest(Grid((8, 8)), SpectralConfig(weight="gaussian")),
        OrderRequest(Grid((7, 7)), SpectralConfig(weight="gaussian")),
        OrderRequest(Grid((9, 9))),
    ]
    fleet_orders = front.order_many(requests, parallelism=parallelism)
    sharded_orders = ShardedIndexFrontend(shards=4).order_many(requests)
    assert fleet_orders == sharded_orders


def test_query_many_bit_identical_to_sharded_frontend(front):
    grid = Grid((8, 8))
    batch = _query_batch()
    remote = front.query_many(grid, batch)
    local = ShardedIndexFrontend(shards=4).query_many(grid, batch)
    for ours, theirs in zip(remote, local):
        if hasattr(theirs, "results"):
            assert np.array_equal(ours.results, theirs.results)
        elif hasattr(theirs, "neighbors"):
            assert np.array_equal(ours.neighbors, theirs.neighbors)
        else:
            assert ours == theirs


def test_single_queries_bit_identical(front):
    grid = Grid((8, 8))
    sharded = ShardedIndexFrontend(shards=4)
    assert np.array_equal(front.nn(grid, 10, 3).neighbors,
                          sharded.nn(grid, 10, 3).neighbors)
    assert np.array_equal(
        front.range(grid, ((1, 1), (4, 4))).results,
        sharded.range(grid, ((1, 1), (4, 4))).results)
    assert (front.join(grid, [0, 1], [9, 17], epsilon=2, window=12)
            == sharded.join(grid, [0, 1], [9, 17], epsilon=2,
                            window=12))


def test_order_entry_points_fix_the_domain_kind(front):
    """order_grid/order_graph reject the other family loudly, like the
    in-process fronts — the worker dispatches on the value's type, so
    silent acceptance here would serve the wrong order family."""
    with pytest.raises(InvalidParameterError):
        front.order_graph(Grid((6, 6)))
    with pytest.raises(InvalidParameterError):
        front.order_grid(grid_graph(Grid((4, 4))))


def test_order_many_amortizes_topology_inside_workers(front):
    grid = Grid((11, 11))  # unseen by the other tests on this fleet
    weights = ("unit", "inverse_manhattan", "gaussian")
    before = front.stats()[front.shard_of(grid)]
    front.order_many([OrderRequest(grid, SpectralConfig(weight=w))
                      for w in weights])
    after = front.stats()[front.shard_of(grid)]
    assert after.topology_builds - before.topology_builds == 1
    assert after.computed - before.computed == len(weights)


def test_worker_errors_reraise_locally(front):
    disconnected = Graph.from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(GraphStructureError):
        front.order_graph(disconnected,
                          SpectralConfig(on_disconnected="error"))
    # The worker survives the failure and keeps serving.
    assert front.order_grid(Grid((6, 6))).n == 36


def test_fleet_restart_over_warm_stores_pays_zero_eigensolves(tmp_path):
    """The acceptance pin: kill the whole fleet, restart, no solves."""
    with ProcessPoolFrontend(shards=4,
                             cache_dir=tmp_path / "fleet") as front:
        cold = [front.order_grid(g) for g in GRIDS]
        assert front.combined_stats().computed == len(GRIDS)

    with ProcessPoolFrontend(shards=4,
                             cache_dir=tmp_path / "fleet") as front:
        before = solver_invocations()  # dispatcher-side: must not move
        warm = [front.order_grid(g) for g in GRIDS]
        stats = front.combined_stats()
        assert solver_invocations() - before == 0
        assert stats.solver_calls == 0       # worker-side eigensolves
        assert stats.computed == 0
        assert stats.disk_hits == len(GRIDS)
        assert warm == cold


def test_crashed_worker_restarts_and_rehydrates(tmp_path):
    with ProcessPoolFrontend(shards=2,
                             cache_dir=tmp_path / "fleet") as front:
        grid = Grid((8, 8))
        first = front.order_grid(grid)
        worker_id = front.worker_of(grid)

        handle = front.fleet._handles[worker_id]
        handle.process.kill()
        handle.process.join()

        # Next dispatch detects the corpse, restarts, retries, and the
        # replacement answers from its warmed shard store.
        again = front.order_grid(grid)
        assert again == first
        assert front.fleet.stats.worker_restarts == 1
        assert front.fleet.stats.retried_requests == 1
        stats = front.combined_stats()
        assert stats.solver_calls == 0   # rehydrated, not recomputed
        assert stats.disk_hits == 1


def test_check_workers_restarts_every_corpse(tmp_path):
    with ProcessPoolFrontend(shards=2,
                             cache_dir=tmp_path / "fleet") as front:
        grid = Grid((8, 8))
        front.order_grid(grid)
        for handle in front.fleet._handles:
            handle.process.kill()
            handle.process.join()
        assert sorted(front.fleet.check_workers()) == [0, 1]
        assert front.order_grid(grid).n == 64
        assert front.combined_stats().solver_calls == 0


def test_fewer_workers_than_shards(tmp_path):
    with ProcessPoolFrontend(shards=4, workers=2,
                             cache_dir=tmp_path / "fleet") as front:
        assert front.num_workers == 2
        hellos = front.fleet.hellos()
        assert [h.shard_ids for h in hellos] == [(0, 2), (1, 3)]
        plain = ShardedIndexFrontend(shards=4)
        orders = front.order_many([OrderRequest(g) for g in GRIDS])
        assert orders == plain.order_many([OrderRequest(g)
                                           for g in GRIDS])


def test_lifecycle_validation_and_shutdown(tmp_path):
    with pytest.raises(InvalidParameterError):
        ProcessFleet(shards=0)
    with pytest.raises(InvalidParameterError):
        ProcessFleet(shards=2, workers=3)
    with pytest.raises(InvalidParameterError):
        ProcessPoolFrontend(fleet="not a fleet")

    front = ProcessPoolFrontend(shards=1)
    pids = [h.pid for h in front.fleet.hellos()]
    front.close()
    front.close()  # idempotent
    with pytest.raises(FleetShutdownError):
        front.order_grid(Grid((5, 5)))
    # A crash-retry racing close() must refuse to respawn a worker
    # into the closed fleet, not leak a fresh process.
    with pytest.raises(FleetShutdownError):
        front.fleet.restart_worker(0)
    # The worker really exited (not just abandoned).
    import os
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)

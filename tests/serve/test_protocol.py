"""Wire-value contracts: failures travel as values, and survive pickling."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import GraphStructureError, WorkerError
from repro.serve.protocol import (
    ErrorResponse,
    OkResponse,
    OrderManyMessage,
    OrderRequestMessage,
    error_response,
)
from repro.geometry import Grid


def test_requests_pickle_roundtrip():
    message = OrderRequestMessage(domain=Grid((5, 5)),
                                  want_artifact=True)
    back = pickle.loads(pickle.dumps(message))
    assert back.domain == Grid((5, 5))
    assert back.want_artifact
    batch = OrderManyMessage(((Grid((4, 4)), None),))
    back = pickle.loads(pickle.dumps(batch))
    assert back.requests[0][0] == Grid((4, 4))


def test_error_response_carries_library_exceptions():
    try:
        raise GraphStructureError("graph is disconnected")
    except GraphStructureError as exc:
        response = error_response(exc)
    response = pickle.loads(pickle.dumps(response))  # crosses the pipe
    assert response.kind == "GraphStructureError"
    with pytest.raises(GraphStructureError, match="disconnected") as info:
        response.raise_()
    # The worker-side frames survive as the chained cause (pickling
    # drops __traceback__ from the exception itself).
    assert isinstance(info.value.__cause__, WorkerError)
    assert "test_protocol" in info.value.__cause__.remote_traceback


def test_error_response_falls_back_for_unpicklable_exceptions():
    class Unpicklable(Exception):  # local class: cannot be re-imported
        pass

    try:
        raise Unpicklable("worker-local failure")
    except Unpicklable as exc:
        response = error_response(exc)
    assert response.exception is None
    assert "Unpicklable" in response.kind
    with pytest.raises(WorkerError, match="worker-local failure") as info:
        response.raise_()
    assert "Unpicklable" in info.value.remote_traceback


def test_ok_response_is_transparent():
    assert OkResponse(41).payload == 41
    assert ErrorResponse("K", "m", "tb").exception is None

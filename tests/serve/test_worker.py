"""ShardWorker driven synchronously: the worker logic without processes.

Everything a spawned worker does — routing verification, per-shard
re-grouping, index caching, failure-as-value — runs through
:class:`~repro.serve.worker.ShardWorker.handle` identically whether a
pipe or a test calls it; these tests pin the logic at full speed so the
``multiproc``-marked fleet tests only need to cover the *process*
concerns (spawn, crash, restart, IPC).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import NNQuery, SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.service import OrderingService, shard_of_domain
from repro.serve.protocol import (
    ErrorResponse,
    IndexQueryMessage,
    OkResponse,
    OrderManyMessage,
    OrderRequestMessage,
    PingRequest,
    ShutdownRequest,
    StatsRequest,
)
from repro.serve.worker import ShardWorker


def all_shards_worker(num_shards: int = 2, **kwargs) -> ShardWorker:
    return ShardWorker(0, tuple(range(num_shards)), num_shards, {},
                       **kwargs)


def test_hello_and_shutdown():
    worker = all_shards_worker()
    response, keep = worker.handle(PingRequest())
    assert keep and response.payload.num_shards == 2
    response, keep = worker.handle(ShutdownRequest())
    assert not keep and isinstance(response, OkResponse)


def test_order_one_matches_plain_service():
    worker = all_shards_worker()
    grid = Grid((7, 7))
    response, _ = worker.handle(OrderRequestMessage(grid))
    assert response.payload == OrderingService().order_grid(grid)
    response, _ = worker.handle(
        OrderRequestMessage(grid, SpectralConfig(weight="gaussian"),
                            want_artifact=True))
    artifact = response.payload
    assert artifact.config.weight == "gaussian"
    assert artifact.key


def test_worker_refuses_unowned_shard():
    """Routing is verified, not trusted: a mis-routed domain errors."""
    grids = [Grid((s, s)) for s in range(4, 12)]
    owned = next(g for g in grids if shard_of_domain(g, 2) == 0)
    foreign = next(g for g in grids if shard_of_domain(g, 2) == 1)
    worker = ShardWorker(0, (0,), 2, {})
    ok, _ = worker.handle(OrderRequestMessage(owned))
    assert isinstance(ok, OkResponse)
    err, keep = worker.handle(OrderRequestMessage(foreign))
    assert keep  # a routing error must not kill the worker
    assert isinstance(err, ErrorResponse)
    with pytest.raises(InvalidParameterError, match="routing disagree"):
        err.raise_()


def test_order_many_regroups_per_shard():
    worker = all_shards_worker()
    grid = Grid((10, 10))
    weights = ("unit", "inverse_manhattan", "gaussian")
    message = OrderManyMessage(tuple(
        (grid, SpectralConfig(weight=w)) for w in weights))
    response, _ = worker.handle(message)
    plain = OrderingService()
    for w, order in zip(weights, response.payload):
        assert order == plain.order_grid(grid,
                                         SpectralConfig(weight=w))
    # One topology build on the owning shard: the amortization survived.
    shard = shard_of_domain(grid, 2)
    assert worker.services[shard].stats.topology_builds == 1


def test_order_many_mixed_shards_aligns_results():
    worker = all_shards_worker()
    grids = [Grid((s, s)) for s in range(4, 9)]
    response, _ = worker.handle(
        OrderManyMessage(tuple((g, None) for g in grids)))
    plain = OrderingService()
    for grid, order in zip(grids, response.payload):
        assert order == plain.order_grid(grid)


def test_index_query_ops_and_cache():
    worker = all_shards_worker(index_defaults={"buffer_capacity": 8})
    grid = Grid((8, 8))
    direct = SpectralIndex.build(grid, buffer_capacity=8)

    response, _ = worker.handle(IndexQueryMessage(grid, "nn", (10, 3)))
    assert np.array_equal(response.payload.neighbors,
                          direct.nn(10, 3).neighbors)
    response, _ = worker.handle(
        IndexQueryMessage(grid, "query_many", ([NNQuery(5, k=4)],)))
    assert np.array_equal(response.payload[0].neighbors,
                          direct.nn(5, 4).neighbors)
    response, _ = worker.handle(
        IndexQueryMessage(grid, "range", (((1, 1), (4, 4)),)))
    assert np.array_equal(response.payload.results,
                          direct.range(((1, 1), (4, 4))).results)
    # Same domain -> same cached index object.
    assert worker._index_for(grid) is worker._index_for(grid)


def test_index_query_rejects_unknown_op():
    worker = all_shards_worker()
    response, keep = worker.handle(
        IndexQueryMessage(Grid((6, 6)), "drop_tables", ()))
    assert keep and isinstance(response, ErrorResponse)
    with pytest.raises(InvalidParameterError):
        response.raise_()


def test_unknown_request_type_is_an_error_value():
    response, keep = all_shards_worker().handle(StatsRequest())
    assert keep and isinstance(response, OkResponse)
    response, keep = all_shards_worker().handle(object())
    assert keep and isinstance(response, ErrorResponse)


def test_stats_are_per_owned_shard():
    worker = all_shards_worker()
    grid = Grid((6, 6))
    worker.handle(OrderRequestMessage(grid))
    response, _ = worker.handle(StatsRequest())
    stats = response.payload
    assert set(stats) == {0, 1}
    assert stats[shard_of_domain(grid, 2)].computed == 1

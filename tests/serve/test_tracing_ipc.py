"""Trace propagation across the serving IPC boundary.

The synchronous tests drive :meth:`ShardWorker.handle` directly with
:class:`TracedRequest` envelopes — the worker logic including span
capture, without processes.  The ``multiproc``-marked tests then pin
the stitched end-to-end trace through a real
:class:`ProcessPoolFrontend`: one ``trace_id`` from the dispatcher's
span, across the pickle pipe, down to the eigensolver's iteration
counts — spanning two pids.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.spectral import SpectralConfig
from repro.geometry import Grid
from repro.api import NNQuery, RangeQuery
from repro.obs import TraceContext, collector, tracing, tracing_enabled
from repro.serve.protocol import (
    ErrorResponse,
    HealthRequest,
    IndexQueryMessage,
    MetricsRequest,
    OkResponse,
    OrderRequestMessage,
    TracedRequest,
    TracedResponse,
)
from repro.serve.worker import ShardWorker


@pytest.fixture(autouse=True)
def clean_collector():
    collector().clear()
    yield
    collector().clear()


def worker() -> ShardWorker:
    return ShardWorker(0, (0, 1), 2, {})


CTX = TraceContext(trace_id="f" * 16, span_id="d" * 16)


def traced(request) -> TracedRequest:
    return TracedRequest(request=request, trace_context=CTX.as_wire())


def test_traced_request_ships_spans_back():
    response, keep = worker().handle(
        traced(OrderRequestMessage(Grid((6, 6)))))
    assert keep
    assert isinstance(response, TracedResponse)
    assert isinstance(response.response, OkResponse)
    assert response.response.payload.n == 36

    spans = response.spans
    assert spans, "traced request produced no spans"
    # Every worker-side span continues the dispatcher's trace, and the
    # envelope span parents directly on the shipped context.
    assert {r.trace_id for r in spans} == {CTX.trace_id}
    envelope = next(r for r in spans if r.name == "serve.worker")
    assert envelope.parent_id == CTX.span_id
    assert envelope.attributes["request"] == "OrderRequestMessage"
    names = {r.name for r in spans}
    assert "service.order" in names
    assert "linalg.solve" in names


def test_traced_request_does_not_leak_tracing_state():
    """The capture scope force-enables tracing for the request only."""
    w = worker()
    assert not tracing_enabled()
    w.handle(traced(OrderRequestMessage(Grid((5, 5)))))
    assert not tracing_enabled()
    # After the capture scope closes, new work records nothing.
    collector().clear()
    w.handle(OrderRequestMessage(Grid((7, 7))))
    assert collector().spans() == []


def test_traced_error_response_still_ships_spans():
    response, keep = worker().handle(
        traced(IndexQueryMessage(Grid((6, 6)), "drop_tables", ())))
    assert keep
    assert isinstance(response, TracedResponse)
    assert isinstance(response.response, ErrorResponse)
    assert response.spans, "error path dropped the spans"
    envelope = next(r for r in response.spans
                    if r.name == "serve.worker")
    assert envelope.attributes["error"] == response.response.kind


def test_untraced_wire_format_is_the_bare_response():
    response, _ = worker().handle(OrderRequestMessage(Grid((6, 6))))
    assert isinstance(response, OkResponse)
    assert not isinstance(response, TracedResponse)


def test_traced_response_pickles_whole():
    """The envelope crosses a real pipe: everything must pickle."""
    response, _ = worker().handle(
        traced(OrderRequestMessage(Grid((6, 6)))))
    clone = pickle.loads(pickle.dumps(response))
    assert clone.spans == response.spans
    assert clone.response.payload == response.response.payload


def test_health_request_reports_stores_and_uptime():
    response, keep = worker().handle(HealthRequest())
    assert keep
    health = response.payload
    assert health.worker_id == 0
    assert health.pid == os.getpid()
    assert health.shard_ids == (0, 1)
    assert health.uptime_seconds >= 0.0
    assert set(health.stores) == {0, 1}


def test_metrics_request_returns_prometheus_text():
    w = worker()
    w.handle(OrderRequestMessage(Grid((6, 6))))
    response, keep = w.handle(MetricsRequest())
    assert keep
    text = response.payload
    assert "# TYPE repro_service_requests_total counter" in text
    for line in text.strip().splitlines():
        if not line.startswith("#"):
            float(line.rsplit(" ", 1)[1])


# ---------------------------------------------------------------------------
# Real processes: the stitched cross-process trace.
# ---------------------------------------------------------------------------


@pytest.mark.multiproc
def test_query_many_yields_one_stitched_trace():
    """The issue's acceptance pin: a single traced
    ``ProcessPoolFrontend.query_many`` produces one trace spanning
    dispatcher -> worker -> service tier -> eigensolver, with the
    solver's iteration counts as span attributes."""
    from repro.api.process_pool import ProcessPoolFrontend

    config = SpectralConfig(backend="lanczos")
    with ProcessPoolFrontend(shards=2,
                             index_defaults={"config": config}) as front:
        grid = Grid((12, 12))
        with tracing():
            collector().clear()
            results = front.query_many(
                grid, [RangeQuery(((1, 1), (5, 5))), NNQuery(10, k=4)])
            records = collector().drain()

    assert len(results) == 2

    # One trace: every span — local and shipped back over the pipe —
    # shares the root's trace_id.
    trace_ids = {r.trace_id for r in records}
    assert len(trace_ids) == 1

    by_name = {}
    for r in records:
        by_name.setdefault(r.name, []).append(r)
    for name in ("pool.index_op", "serve.dispatch", "serve.worker",
                 "api.query_many", "service.order", "service.solve",
                 "linalg.solve"):
        assert name in by_name, f"missing {name} span"

    # The trace crosses the process boundary: dispatcher-side spans
    # carry this pid, worker-side spans a different one.
    here = os.getpid()
    assert by_name["serve.dispatch"][0].pid == here
    worker_span = by_name["serve.worker"][0]
    assert worker_span.pid != here
    # ...and the parent chain stitches across it.
    assert worker_span.parent_id == by_name["serve.dispatch"][0].span_id

    solves = by_name["linalg.solve"]
    assert any(s.attributes.get("backend") == "lanczos" for s in solves)
    lanczos = next(s for s in solves
                   if s.attributes.get("backend") == "lanczos")
    assert lanczos.attributes["restart_cycles"] >= 1
    assert lanczos.attributes["basis_size"] >= 1
    assert lanczos.attributes["residual_history"]


@pytest.mark.multiproc
def test_restarted_worker_still_traces(tmp_path):
    """The crash-retry path keeps the trace: the retried request on the
    replacement worker ships its spans like any other."""
    from repro.api.process_pool import ProcessPoolFrontend

    with ProcessPoolFrontend(shards=1,
                             cache_dir=tmp_path / "fleet") as front:
        grid = Grid((8, 8))
        first = front.order_grid(grid)

        handle = front.fleet._handles[0]
        handle.process.kill()
        handle.process.join()

        with tracing():
            collector().clear()
            again = front.order_grid(grid)
            records = collector().drain()

        assert again == first
        assert front.fleet.stats.worker_restarts == 1
        names = {r.name for r in records}
        assert "serve.dispatch" in names
        assert "serve.worker" in names      # from the replacement
        assert len({r.trace_id for r in records}) == 1
        assert {r.pid for r in records if r.name == "serve.worker"} != {
            os.getpid()}

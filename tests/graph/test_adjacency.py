"""Tests for repro.graph.adjacency."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph import Graph

# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_from_edges_basic():
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert g.num_vertices == 4
    assert g.num_edges == 3
    assert list(g.degrees()) == [1, 2, 2, 1]


def test_edges_canonicalized_to_u_lt_v():
    g = Graph.from_edges(3, [(2, 0), (1, 0)])
    edges = list(g.edges())
    assert edges == [(0, 1, 1.0), (0, 2, 1.0)]


def test_empty_graph():
    g = Graph.empty(5)
    assert g.num_vertices == 5
    assert g.num_edges == 0
    assert list(g.degrees()) == [0] * 5


def test_zero_vertex_graph():
    g = Graph.from_edges(0, [])
    assert g.num_vertices == 0
    assert g.num_edges == 0


def test_self_loop_rejected():
    with pytest.raises(GraphStructureError):
        Graph.from_edges(3, [(1, 1)])


def test_out_of_range_endpoint_rejected():
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(0, 3)])
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(-1, 0)])


def test_nonpositive_weight_rejected():
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(0, 1)], weights=[0.0])
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(0, 1)], weights=[-2.0])


def test_weight_count_mismatch_rejected():
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(0, 1), (1, 2)], weights=[1.0])


def test_bad_edge_shape_rejected():
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, np.array([[0, 1, 2]]))


# ----------------------------------------------------------------------
# Duplicate policies
# ----------------------------------------------------------------------
def test_duplicates_max_policy_keeps_heaviest():
    g = Graph.from_edges(3, [(0, 1), (1, 0)], weights=[1.0, 5.0])
    assert g.num_edges == 1
    assert g.edge_weight(0, 1) == 5.0


def test_duplicates_sum_policy_adds():
    g = Graph.from_edges(3, [(0, 1), (1, 0)], weights=[1.0, 5.0],
                         duplicate_policy="sum")
    assert g.edge_weight(0, 1) == 6.0


def test_duplicates_error_policy_raises():
    with pytest.raises(GraphStructureError):
        Graph.from_edges(3, [(0, 1), (1, 0)], duplicate_policy="error")


def test_unknown_duplicate_policy_rejected():
    with pytest.raises(InvalidParameterError):
        Graph.from_edges(3, [(0, 1)], duplicate_policy="first")


# ----------------------------------------------------------------------
# Accessors
# ----------------------------------------------------------------------
def test_neighbors_sorted_and_weights_aligned():
    g = Graph.from_edges(4, [(2, 0), (2, 3), (2, 1)],
                         weights=[3.0, 4.0, 5.0])
    assert list(g.neighbors(2)) == [0, 1, 3]
    assert list(g.neighbor_weights(2)) == [3.0, 5.0, 4.0]


def test_has_edge_and_edge_weight():
    g = Graph.from_edges(4, [(0, 1)], weights=[2.5])
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)
    assert not g.has_edge(1, 1)
    assert g.edge_weight(1, 0) == 2.5
    with pytest.raises(GraphStructureError):
        g.edge_weight(0, 2)


def test_vertex_range_checked():
    g = Graph.empty(3)
    with pytest.raises(InvalidParameterError):
        g.neighbors(3)
    with pytest.raises(InvalidParameterError):
        g.degree(-1)


def test_weighted_degrees():
    g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
    assert list(g.weighted_degrees()) == [2.0, 5.0, 3.0]


def test_total_weight_and_num_edges():
    g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
    assert g.total_weight == 5.0
    assert g.num_edges == 2


def test_edge_arrays_u_less_than_v():
    g = Graph.from_edges(5, [(4, 0), (3, 1), (2, 4)])
    u, v, w = g.edge_arrays()
    assert (u < v).all()
    assert len(u) == 3


# ----------------------------------------------------------------------
# Derived graphs
# ----------------------------------------------------------------------
def test_with_edges_added_layers_and_maxes():
    g = Graph.from_edges(4, [(0, 1)], weights=[1.0])
    g2 = g.with_edges_added([(0, 1), (2, 3)], [10.0, 4.0])
    assert g2.edge_weight(0, 1) == 10.0
    assert g2.edge_weight(2, 3) == 4.0
    # Original untouched (immutability).
    assert g.num_edges == 1


def test_with_edges_added_empty_noop():
    g = Graph.from_edges(4, [(0, 1)])
    g2 = g.with_edges_added([])
    assert g2.num_edges == 1


def test_subgraph_relabels_and_filters():
    g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    sub, ids = g.subgraph([1, 2, 4])
    assert list(ids) == [1, 2, 4]
    assert sub.num_vertices == 3
    # Only the (1,2) edge survives; relabelled to (0,1).
    assert sub.num_edges == 1
    assert sub.has_edge(0, 1)


def test_subgraph_rejects_duplicates():
    g = Graph.empty(3)
    with pytest.raises(InvalidParameterError):
        g.subgraph([1, 1])


def test_to_dense_adjacency_symmetric():
    g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
    dense = g.to_dense_adjacency()
    assert np.allclose(dense, dense.T)
    assert dense[0, 1] == 2.0 and dense[2, 1] == 3.0
    assert dense.diagonal().sum() == 0


def test_repr():
    assert repr(Graph.from_edges(3, [(0, 1)])) == "Graph(n=3, m=1)"


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------
@given(
    n=st.integers(2, 12),
    data=st.data(),
)
def test_degree_sum_is_twice_edges(n, data):
    max_edges = n * (n - 1) // 2
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda t: t[0] != t[1]
    )
    edges = data.draw(st.lists(pairs, max_size=max_edges))
    g = Graph.from_edges(n, edges)
    assert g.degrees().sum() == 2 * g.num_edges


@given(n=st.integers(2, 10), data=st.data())
def test_neighbor_symmetry(n, data):
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda t: t[0] != t[1]
    )
    edges = data.draw(st.lists(pairs, max_size=20))
    g = Graph.from_edges(n, edges)
    for u in range(n):
        for v in g.neighbors(u):
            assert u in g.neighbors(int(v))

"""Tests for repro.graph.coarsening."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import (
    Graph,
    coarsen,
    coarsen_hierarchy,
    grid_graph,
    heavy_edge_matching,
    is_connected,
    path_graph,
)


def test_matching_is_symmetric_involution():
    g = grid_graph(Grid((6, 6)))
    match = heavy_edge_matching(g)
    for v in range(g.num_vertices):
        assert match[match[v]] == v


def test_matching_pairs_are_edges():
    g = grid_graph(Grid((5, 4)))
    match = heavy_edge_matching(g)
    for v in range(g.num_vertices):
        if match[v] != v:
            assert g.has_edge(v, int(match[v]))


def test_matching_prefers_heavy_edges():
    # A path with one heavy middle edge: 0 -1- 1 =9= 2 -1- 3.
    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)],
                         weights=[1.0, 9.0, 1.0])
    match = heavy_edge_matching(g)
    # Vertex 0 is visited first and grabs its only neighbour 1 — after
    # which 2 and 3 pair.  Deterministic ascending-id processing.
    assert match[0] == 1
    assert match[2] == 3


def test_matching_deterministic():
    g = grid_graph(Grid((7, 7)))
    assert np.array_equal(heavy_edge_matching(g),
                          heavy_edge_matching(g))


def test_coarsen_halves_grid():
    g = grid_graph(Grid((8, 8)))
    coarse, projection = coarsen(g)
    assert coarse.num_vertices == 32  # perfect matching on even grids
    assert projection.shape == (64,)
    assert projection.max() == coarse.num_vertices - 1


def test_coarsen_preserves_total_crossing_weight():
    """Coarse edges carry the summed fine weights between clusters."""
    g = grid_graph(Grid((4, 4)))
    coarse, projection = coarsen(g)
    u, v, w = g.edge_arrays()
    crossing = w[projection[u] != projection[v]].sum()
    assert coarse.total_weight == pytest.approx(crossing)


def test_coarsen_preserves_connectivity():
    g = grid_graph(Grid((6, 6)))
    coarse, _ = coarsen(g)
    assert is_connected(coarse)


def test_coarsen_edgeless_graph():
    g = Graph.empty(4)
    coarse, projection = coarsen(g)
    assert coarse.num_vertices == 4  # nothing to contract
    assert list(projection) == [0, 1, 2, 3]


def test_hierarchy_reaches_min_size():
    g = grid_graph(Grid((16, 16)))
    levels = coarsen_hierarchy(g, min_size=32)
    assert levels
    assert levels[-1].graph.num_vertices <= 32
    sizes = [lvl.graph.num_vertices for lvl in levels]
    assert sizes == sorted(sizes, reverse=True)


def test_hierarchy_stops_on_no_progress():
    g = Graph.empty(10)  # cannot coarsen at all
    levels = coarsen_hierarchy(g, min_size=2)
    assert levels == []


def test_hierarchy_small_input_no_levels():
    g = path_graph(8)
    assert coarsen_hierarchy(g, min_size=16) == []


def test_hierarchy_validation():
    g = path_graph(8)
    with pytest.raises(InvalidParameterError):
        coarsen_hierarchy(g, min_size=1)
    with pytest.raises(InvalidParameterError):
        coarsen_hierarchy(g, max_levels=0)

"""Tests for repro.graph.traversal."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph import (
    Graph,
    bfs_order,
    component_vertex_lists,
    connected_components,
    cycle_graph,
    grid_graph,
    is_connected,
    path_graph,
    star_graph,
)
from repro.geometry import Grid


def test_bfs_order_path():
    g = path_graph(5)
    assert list(bfs_order(g, 0)) == [0, 1, 2, 3, 4]
    assert list(bfs_order(g, 2)) == [2, 1, 3, 0, 4]


def test_bfs_visits_ascending_neighbors():
    g = star_graph(5)
    assert list(bfs_order(g, 0)) == [0, 1, 2, 3, 4]


def test_bfs_restricted_to_component():
    g = Graph.from_edges(5, [(0, 1), (2, 3)])
    assert set(bfs_order(g, 0)) == {0, 1}
    assert set(bfs_order(g, 3)) == {2, 3}
    assert list(bfs_order(g, 4)) == [4]


def test_bfs_start_validation():
    with pytest.raises(InvalidParameterError):
        bfs_order(path_graph(3), 3)


def test_connected_components_labels():
    g = Graph.from_edges(6, [(0, 1), (1, 2), (4, 5)])
    labels, count = connected_components(g)
    assert count == 3
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[3] == 1
    assert labels[4] == labels[5] == 2


def test_component_vertex_lists():
    g = Graph.from_edges(5, [(0, 4), (1, 2)])
    labels, count = connected_components(g)
    groups = component_vertex_lists(labels, count)
    assert [list(grp) for grp in groups] == [[0, 4], [1, 2], [3]]


def test_is_connected():
    assert is_connected(grid_graph(Grid((4, 4))))
    assert is_connected(cycle_graph(5))
    assert not is_connected(Graph.from_edges(3, [(0, 1)]))
    assert is_connected(Graph.empty(1))
    assert is_connected(Graph.from_edges(0, []))
    assert not is_connected(Graph.empty(2))

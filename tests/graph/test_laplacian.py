"""Tests for repro.graph.laplacian."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphStructureError
from repro.geometry import Grid
from repro.graph import (
    Graph,
    grid_graph,
    laplacian,
    laplacian_dense,
    normalized_laplacian_dense,
    path_graph,
    quadratic_form,
    rayleigh_quotient,
)


def test_laplacian_matches_dense(graph3):
    assert np.allclose(laplacian(graph3).to_dense(),
                       laplacian_dense(graph3))


def test_laplacian_figure3c_values(grid3, graph3):
    """The paper's Figure 3c prints the 3x3 grid Laplacian explicitly."""
    dense = laplacian_dense(graph3)
    # Degrees: corners 2, edges 3, center 4.
    assert dense[0, 0] == 2 and dense[1, 1] == 3 and dense[4, 4] == 4
    assert dense[0, 1] == -1 and dense[0, 3] == -1 and dense[0, 4] == 0
    assert np.allclose(dense, dense.T)


def test_laplacian_row_sums_zero():
    g = grid_graph(Grid((4, 5)))
    dense = laplacian_dense(g)
    assert np.allclose(dense.sum(axis=1), 0.0)
    assert np.allclose(laplacian(g).matvec(np.ones(g.num_vertices)), 0.0)


def test_laplacian_psd():
    g = grid_graph(Grid((4, 4)), connectivity="moore")
    values = np.linalg.eigvalsh(laplacian_dense(g))
    assert values.min() > -1e-10


def test_weighted_laplacian_diagonal():
    g = Graph.from_edges(3, [(0, 1), (1, 2)], weights=[2.0, 3.0])
    dense = laplacian_dense(g)
    assert list(dense.diagonal()) == [2.0, 5.0, 3.0]
    assert dense[0, 1] == -2.0


def test_quadratic_form_identity():
    g = grid_graph(Grid((4, 4)))
    rng = np.random.default_rng(0)
    for _ in range(5):
        x = rng.normal(size=g.num_vertices)
        direct = x @ laplacian_dense(g) @ x
        assert quadratic_form(g, x) == pytest.approx(direct)


def test_quadratic_form_constant_vector_is_zero():
    g = grid_graph(Grid((3, 3)))
    assert quadratic_form(g, np.full(9, 3.7)) == pytest.approx(0.0)


def test_quadratic_form_shape_check():
    g = path_graph(4)
    with pytest.raises(GraphStructureError):
        quadratic_form(g, np.ones(5))


def test_quadratic_form_empty_graph():
    g = Graph.empty(4)
    assert quadratic_form(g, np.ones(4)) == 0.0


def test_rayleigh_quotient_bounds_lambda2():
    g = path_graph(10)
    lambda2 = 2 * (1 - np.cos(np.pi / 10))
    rng = np.random.default_rng(1)
    for _ in range(10):
        x = rng.normal(size=10)
        assert rayleigh_quotient(g, x) >= lambda2 - 1e-9


def test_rayleigh_quotient_constant_rejected():
    g = path_graph(4)
    with pytest.raises(GraphStructureError):
        rayleigh_quotient(g, np.full(4, 2.0))


def test_normalized_laplacian_spectrum_range():
    g = grid_graph(Grid((4, 4)))
    values = np.linalg.eigvalsh(normalized_laplacian_dense(g))
    assert values.min() > -1e-10
    assert values.max() <= 2.0 + 1e-10


def test_normalized_laplacian_isolated_vertex():
    g = Graph.from_edges(3, [(0, 1)])
    norm = normalized_laplacian_dense(g)
    assert norm[2, 2] == 0.0
    assert np.allclose(norm[2, :], 0.0)


@given(n=st.integers(2, 10), data=st.data())
def test_quadratic_form_nonnegative(n, data):
    pairs = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda t: t[0] != t[1]
    )
    edges = data.draw(st.lists(pairs, max_size=15))
    g = Graph.from_edges(n, edges)
    x = np.array(data.draw(st.lists(
        st.floats(-100, 100), min_size=n, max_size=n)))
    assert quadratic_form(g, x) >= 0.0

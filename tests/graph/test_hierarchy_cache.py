"""Tests for repro.graph.coarsening.HierarchyCache (coarse-level reuse)."""

import numpy as np
import pytest

from repro.core.multilevel import multilevel_eigenspace, multilevel_fiedler
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import (
    HierarchyCache,
    coarsen_hierarchy,
    contract,
    grid_graph,
    matching_invocations,
)


def test_miss_equals_direct_hierarchy():
    graph = grid_graph(Grid((12, 12)))
    direct = coarsen_hierarchy(graph, min_size=16)
    cached = HierarchyCache().hierarchy(graph, min_size=16)
    assert len(cached) == len(direct)
    for a, b in zip(direct, cached):
        assert np.array_equal(a.fine_to_coarse, b.fine_to_coarse)
        ia, ja, wa = a.graph.csr_arrays()
        ib, jb, wb = b.graph.csr_arrays()
        assert np.array_equal(ia, ib)
        assert np.array_equal(ja, jb)
        assert np.array_equal(wa, wb)


def test_hit_skips_matching_and_reweights():
    grid = Grid((14, 14))
    cache = HierarchyCache()
    unit = grid_graph(grid)
    cache.hierarchy(unit, min_size=16)

    weighted = grid_graph(grid, weight="inverse_manhattan", radius=2)
    # radius=2 changes the structure -> different fingerprint -> miss.
    before = matching_invocations()
    cache.hierarchy(weighted, min_size=16)
    assert matching_invocations() > before

    # Same structure, different weights -> hit, no matchings.
    reweighted = grid_graph(grid, weight="gaussian")
    before = matching_invocations()
    replayed = cache.hierarchy(reweighted, min_size=16)
    assert matching_invocations() == before, \
        "a topology hit must not recompute matchings"
    # The replayed chain carries the *new* weights: each level is the
    # Galerkin contraction of the level above.
    current = reweighted
    for level in replayed:
        expected = contract(current, level.fine_to_coarse)
        _, _, w_expected = expected.csr_arrays()
        _, _, w_actual = level.graph.csr_arrays()
        assert np.allclose(w_actual, w_expected)
        current = level.graph
    assert cache.hits == 1 and cache.misses == 2


def test_small_graph_produces_empty_hierarchy():
    graph = grid_graph(Grid((4, 4)))
    cache = HierarchyCache()
    assert cache.hierarchy(graph, min_size=64) == []
    # And the (empty) result is itself cached.
    before = matching_invocations()
    assert cache.hierarchy(graph, min_size=64) == []
    assert matching_invocations() == before
    assert cache.hits == 1


def test_min_size_participates_in_key():
    graph = grid_graph(Grid((12, 12)))
    cache = HierarchyCache()
    deep = cache.hierarchy(graph, min_size=8)
    shallow = cache.hierarchy(graph, min_size=100)
    assert cache.misses == 2
    assert len(deep) > len(shallow)


def test_lru_eviction():
    cache = HierarchyCache(max_entries=1)
    g1 = grid_graph(Grid((10, 10)))
    g2 = grid_graph(Grid((11, 11)))
    cache.hierarchy(g1, min_size=16)
    cache.hierarchy(g2, min_size=16)  # evicts g1's chain
    cache.hierarchy(g1, min_size=16)
    assert cache.misses == 3 and cache.hits == 0
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_invalid_capacity_rejected():
    with pytest.raises(InvalidParameterError):
        HierarchyCache(max_entries=0)


def test_replay_is_history_independent():
    """The chain served for a graph is a pure function of its structure.

    Regression test: a cache that stored whatever weighting arrived
    first would make multilevel orders depend on request history, and
    two services with different histories could persist conflicting
    artifacts under one content-keyed order key.
    """
    grid = Grid((14, 14))
    g_gauss = grid_graph(grid, weight="gaussian", connectivity="moore")
    g_inv = grid_graph(grid, weight="inverse_euclidean",
                       connectivity="moore")

    warmed_by_other = HierarchyCache()
    warmed_by_other.hierarchy(g_gauss, min_size=16)   # foreign history
    via_history = warmed_by_other.hierarchy(g_inv, min_size=16)

    cold = HierarchyCache()
    direct = cold.hierarchy(g_inv, min_size=16)

    assert len(via_history) == len(direct)
    for a, b in zip(via_history, direct):
        assert np.array_equal(a.fine_to_coarse, b.fine_to_coarse)
        _, _, wa = a.graph.csr_arrays()
        _, _, wb = b.graph.csr_arrays()
        assert np.array_equal(wa, wb)


def test_contract_validates_projection_shape():
    graph = grid_graph(Grid((3, 3)))
    with pytest.raises(InvalidParameterError):
        contract(graph, np.zeros(4, dtype=np.int64))


# ----------------------------------------------------------------------
# Integration with the multilevel solver
# ----------------------------------------------------------------------
def test_multilevel_eigenspace_identical_with_cache():
    graph = grid_graph(Grid((16, 16)))
    cache = HierarchyCache()
    plain = multilevel_eigenspace(graph, min_size=32)
    warm = multilevel_eigenspace(graph, min_size=32,
                                 hierarchy_cache=cache)   # miss
    again = multilevel_eigenspace(graph, min_size=32,
                                  hierarchy_cache=cache)  # hit
    assert np.array_equal(plain.values, warm.values)
    assert np.array_equal(plain.vectors, warm.vectors)
    assert np.array_equal(warm.values, again.values)
    assert np.array_equal(warm.vectors, again.vectors)
    assert cache.hits == 1 and cache.misses == 1


def test_multilevel_fiedler_accepts_cache():
    graph = grid_graph(Grid((12, 12)))
    cache = HierarchyCache()
    a = multilevel_fiedler(graph, min_size=32, hierarchy_cache=cache)
    before = matching_invocations()
    b = multilevel_fiedler(graph, min_size=32, hierarchy_cache=cache)
    assert matching_invocations() == before
    assert a.order == b.order

"""Tests for repro.graph.builders."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    induced_grid_graph,
    knn_graph,
    path_graph,
    radius_graph,
    star_graph,
)

# ----------------------------------------------------------------------
# Grid graphs
# ----------------------------------------------------------------------
def test_grid_graph_edge_count_2d():
    # s x s orthogonal grid: 2 * s * (s-1) edges.
    for side in (2, 3, 5):
        g = grid_graph(Grid((side, side)))
        assert g.num_edges == 2 * side * (side - 1)


def test_grid_graph_edge_count_3d():
    grid = Grid((3, 3, 3))
    g = grid_graph(grid)
    assert g.num_edges == 3 * (3 * 3 * 2)  # 3 axes x 9 lines x 2 edges


def test_grid_graph_edges_are_manhattan_1():
    grid = Grid((4, 3))
    g = grid_graph(grid)
    for u, v, _ in g.edges():
        assert Grid.manhattan(grid.point_of(u), grid.point_of(v)) == 1


def test_grid_graph_moore_edges_are_chebyshev_1():
    grid = Grid((4, 4))
    g = grid_graph(grid, connectivity="moore")
    for u, v, _ in g.edges():
        assert Grid.chebyshev(grid.point_of(u), grid.point_of(v)) == 1
    # Moore adds the diagonals: 2*4*3 orthogonal + 2*3*3 diagonal pairs.
    assert g.num_edges == 24 + 18


def test_grid_graph_matches_neighbors_method():
    grid = Grid((3, 4))
    for connectivity in ("orthogonal", "moore"):
        g = grid_graph(grid, connectivity=connectivity)
        for index in range(grid.size):
            expected = sorted(
                grid.index_of(p)
                for p in grid.neighbors(grid.point_of(index), connectivity)
            )
            assert list(g.neighbors(index)) == expected


def test_grid_graph_radius2_weighted():
    grid = Grid((4, 4))
    g = grid_graph(grid, radius=2, weight="inverse_manhattan")
    # Distance-1 edges weigh 1, distance-2 edges weigh 1/2.
    a = grid.index_of((0, 0))
    assert g.edge_weight(a, grid.index_of((0, 1))) == 1.0
    assert g.edge_weight(a, grid.index_of((0, 2))) == 0.5
    assert g.edge_weight(a, grid.index_of((1, 1))) == 0.5
    assert not g.has_edge(a, grid.index_of((2, 2)))


def test_grid_graph_custom_weight_callable():
    grid = Grid((3, 3))
    g = grid_graph(grid, weight=lambda off: 7.0)
    assert g.edge_weight(0, 1) == 7.0


def test_grid_graph_radius_validation():
    with pytest.raises(InvalidParameterError):
        grid_graph(Grid((3, 3)), radius=0)


def test_grid_graph_rejects_non_positive_weights():
    # The direct-CSR fast path must enforce the same positive-weight
    # invariant Graph.from_edges does (PSD Laplacian assumption).
    with pytest.raises(InvalidParameterError):
        grid_graph(Grid((4, 4)), weight=lambda off: 0.0)
    with pytest.raises(InvalidParameterError):
        grid_graph(Grid((4, 4)), weight=lambda off: -1.0)


def test_grid_graph_1d_is_path():
    g = grid_graph(Grid((5,)))
    p = path_graph(5)
    assert g.num_edges == p.num_edges
    for u, v, _ in p.edges():
        assert g.has_edge(u, v)


def test_single_cell_grid_graph():
    g = grid_graph(Grid((1, 1)))
    assert g.num_vertices == 1
    assert g.num_edges == 0


# ----------------------------------------------------------------------
# Induced grid graphs
# ----------------------------------------------------------------------
def test_induced_grid_graph_subset():
    grid = Grid((3, 3))
    # An L-shape: (0,0),(1,0),(2,0),(2,1)
    cells = [grid.index_of(p) for p in [(0, 0), (1, 0), (2, 0), (2, 1)]]
    sub, ids = induced_grid_graph(grid, cells)
    assert list(ids) == sorted(cells)
    assert sub.num_vertices == 4
    assert sub.num_edges == 3  # the chain along the L


def test_induced_grid_graph_dedupes_cells():
    grid = Grid((3, 3))
    sub, ids = induced_grid_graph(grid, [0, 0, 1])
    assert sub.num_vertices == 2
    assert list(ids) == [0, 1]


def test_induced_grid_graph_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        induced_grid_graph(grid, [9])


# ----------------------------------------------------------------------
# Classic families
# ----------------------------------------------------------------------
def test_path_graph():
    g = path_graph(5)
    assert g.num_edges == 4
    assert list(g.degrees()) == [1, 2, 2, 2, 1]
    with pytest.raises(InvalidParameterError):
        path_graph(0)


def test_cycle_graph():
    g = cycle_graph(5)
    assert g.num_edges == 5
    assert all(d == 2 for d in g.degrees())
    with pytest.raises(InvalidParameterError):
        cycle_graph(2)


def test_complete_graph():
    g = complete_graph(5)
    assert g.num_edges == 10
    assert all(d == 4 for d in g.degrees())


def test_star_graph():
    g = star_graph(5)
    assert g.num_edges == 4
    assert g.degree(0) == 4
    assert all(g.degree(i) == 1 for i in range(1, 5))
    with pytest.raises(InvalidParameterError):
        star_graph(1)


# ----------------------------------------------------------------------
# Point-cloud graphs
# ----------------------------------------------------------------------
def test_knn_graph_symmetrized():
    points = np.array([[0, 0], [0, 1], [0, 2], [5, 5]])
    g = knn_graph(points, k=1)
    # 0<->1 and 1<->2 from their nearest choices; 3's nearest is 2.
    assert g.has_edge(0, 1)
    assert g.has_edge(2, 3)
    for u in range(4):
        for v in g.neighbors(u):
            assert u in g.neighbors(int(v))


def test_knn_graph_validation():
    points = np.array([[0, 0], [1, 1]])
    with pytest.raises(InvalidParameterError):
        knn_graph(points, k=2)
    with pytest.raises(DimensionError):
        knn_graph(np.array([1, 2, 3]), k=1)


def test_radius_graph_edges_and_weights():
    points = np.array([[0, 0], [0, 1], [0, 3]])
    g = radius_graph(points, radius=2, weight="inverse_manhattan")
    assert g.has_edge(0, 1)
    assert g.has_edge(1, 2)
    assert not g.has_edge(0, 2)
    assert g.edge_weight(1, 2) == 0.5


def test_radius_graph_metrics():
    points = np.array([[0, 0], [1, 1]])
    assert radius_graph(points, 1, metric="chebyshev").num_edges == 1
    assert radius_graph(points, 1, metric="manhattan").num_edges == 0
    assert radius_graph(points, 1.5, metric="euclidean").num_edges == 1
    with pytest.raises(InvalidParameterError):
        radius_graph(points, 1, metric="cosine")
    with pytest.raises(InvalidParameterError):
        radius_graph(points, 0)


def test_full_grid_radius_graph_equals_grid_graph():
    grid = Grid((3, 3))
    by_radius = radius_graph(grid.coordinates(), radius=1)
    by_grid = grid_graph(grid)
    assert by_radius.num_edges == by_grid.num_edges
    for u, v, _ in by_grid.edges():
        assert by_radius.has_edge(u, v)


def test_grid_graph_fast_path_matches_from_edges():
    """The direct-CSR fast path must equal the generic from_edges route
    entry for entry (structure, neighbour order, and weights)."""
    cases = [
        (Grid((7, 5)), "orthogonal", 1, "unit"),
        (Grid((6, 6)), "moore", 1, "unit"),
        (Grid((5, 4, 3)), "orthogonal", 2, "inverse_manhattan"),
        (Grid((9,)), "orthogonal", 3, "inverse_manhattan"),
    ]
    from repro.graph.builders import _canonical_offsets
    from repro.graph.weights import weight_function

    for grid, connectivity, radius, weight in cases:
        fast = grid_graph(grid, connectivity, radius, weight)
        wfn = weight_function(weight)
        coords = grid.coordinates()
        strides = np.array(grid.strides)
        shape = np.array(grid.shape)
        edges, weights = [], []
        for off in _canonical_offsets(grid.ndim, connectivity, radius):
            valid = np.ones(grid.size, dtype=bool)
            for axis, delta in enumerate(off):
                if delta > 0:
                    valid &= coords[:, axis] + delta < shape[axis]
                elif delta < 0:
                    valid &= coords[:, axis] + delta >= 0
            src = np.flatnonzero(valid)
            if not len(src):
                continue
            dst = src + int(np.array(off) @ strides)
            edges.append(np.stack([src, dst], axis=1))
            weights.append(np.full(len(src), wfn(off)))
        reference = Graph.from_edges(grid.size, np.concatenate(edges),
                                     np.concatenate(weights))
        f_indptr, f_indices, f_weights = fast.csr_arrays()
        r_indptr, r_indices, r_weights = reference.csr_arrays()
        assert np.array_equal(f_indptr, r_indptr)
        assert np.array_equal(f_indices, r_indices)
        assert np.allclose(f_weights, r_weights)

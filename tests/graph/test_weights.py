"""Tests for repro.graph.weights."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.graph import (
    gaussian,
    inverse_euclidean,
    inverse_manhattan,
    unit_weight,
    weight_function,
    weight_names,
)


def test_unit_weight():
    assert unit_weight((3, -4)) == 1.0
    assert unit_weight((0,)) == 1.0


def test_inverse_manhattan():
    assert inverse_manhattan((1, 0)) == 1.0
    assert inverse_manhattan((1, -1)) == 0.5
    assert inverse_manhattan((2, 2)) == 0.25
    with pytest.raises(InvalidParameterError):
        inverse_manhattan((0, 0))


def test_inverse_euclidean():
    assert inverse_euclidean((3, 4)) == pytest.approx(0.2)
    with pytest.raises(InvalidParameterError):
        inverse_euclidean((0,))


def test_gaussian():
    assert gaussian((0, 1)) == pytest.approx(math.exp(-0.5))
    assert gaussian((0, 0)) == 1.0
    assert gaussian((0, 2), sigma=2.0) == pytest.approx(math.exp(-0.5))
    with pytest.raises(InvalidParameterError):
        gaussian((1,), sigma=0.0)


def test_weight_function_resolves_names():
    assert weight_function("unit") is unit_weight
    assert weight_function("inverse_manhattan") is inverse_manhattan


def test_weight_function_passes_callables_through():
    fn = lambda off: 2.0  # noqa: E731
    assert weight_function(fn) is fn


def test_weight_function_rejects_unknown():
    with pytest.raises(InvalidParameterError):
        weight_function("mystery")
    with pytest.raises(InvalidParameterError):
        weight_function(42)


def test_weight_names_lists_registry():
    names = weight_names()
    assert "unit" in names and "inverse_manhattan" in names
    assert names == tuple(sorted(names))

"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BackendUnavailableError,
    ConvergenceError,
    DimensionError,
    DomainError,
    GraphStructureError,
    InvalidParameterError,
    ReproError,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (BackendUnavailableError, ConvergenceError,
                       DimensionError, DomainError, GraphStructureError,
                       InvalidParameterError):
        assert issubclass(error_type, ReproError)


def test_value_error_compatibility():
    """Parameter/domain errors double as ValueError so idiomatic
    caller-side handling works."""
    assert issubclass(InvalidParameterError, ValueError)
    assert issubclass(DimensionError, ValueError)
    assert issubclass(DomainError, ValueError)


def test_convergence_error_payload():
    error = ConvergenceError("no luck", iterations=7, residual=0.5)
    assert error.iterations == 7
    assert error.residual == 0.5
    assert "no luck" in str(error)
    bare = ConvergenceError("bare")
    assert bare.iterations is None and bare.residual is None


def test_backend_unavailable_is_import_error():
    assert issubclass(BackendUnavailableError, ImportError)


def test_one_catch_handles_everything():
    from repro.geometry import Grid
    with pytest.raises(ReproError):
        Grid(())
    with pytest.raises(ReproError):
        Grid((3, 3)).index_of((9, 9))

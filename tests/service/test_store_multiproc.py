"""Cross-process ArtifactStore safety: the flock contract.

The store's in-process ``RLock`` says nothing about a *second process*
writing the same directory — exactly the deployment the multi-process
serving harness allows (two workers configured onto one shard
directory).  Without the flock tier, one process's eviction sweep can
interleave with the other's two-file save and orphan a ``.npy`` half.
These tests hammer one directory from two ``spawn``-context processes
and assert the directory stays *consistent*: every surviving metadata
file loads, no permutation file survives without its metadata, and no
temp files are left behind.

Helpers live at module top level so the ``spawn`` children can import
them by reference.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.service.artifacts import OrderArtifact
from repro.service.store import ArtifactStore

if os.name == "nt":  # pragma: no cover
    pytest.skip("flock tests are POSIX-only", allow_module_level=True)

pytestmark = pytest.mark.multiproc

#: Small shared key population so the two writers collide constantly.
KEY_POPULATION = 4


def _key(slot: int) -> str:
    return hashlib.sha256(f"hammer-{slot}".encode()).hexdigest()


def _artifact(slot: int, n: int = 64) -> OrderArtifact:
    rng = np.random.default_rng(slot)
    return OrderArtifact(
        key=_key(slot),
        config=SpectralConfig(),
        domain=f"hammer[{slot}]",
        order=LinearOrder(rng.permutation(n)),
        backend="dense",
    )


def _hammer(root: str, seed: int, iterations: int) -> None:
    """One writer: interleaved saves, deletes, and eviction sweeps."""
    store = ArtifactStore(root, max_bytes=2_500)  # ~2-3 artifacts fit
    rng = np.random.default_rng(seed)
    for i in range(iterations):
        slot = int(rng.integers(KEY_POPULATION))
        action = int(rng.integers(10))
        if action < 7:
            store.save(_artifact(slot))
        elif action < 9:
            store.delete(_key(slot))
        else:
            store.evict_to(1_000)
        if i % 5 == 0:
            store.load(_key(int(rng.integers(KEY_POPULATION))))


def _assert_consistent(root) -> None:
    store = ArtifactStore(root)
    for key in store.keys():
        assert store.load(key) is not None, f"unloadable artifact {key}"
    json_stems = {p.name[: -len(".json")] for p in root.glob("*.json")}
    npy_stems = {p.name[: -len(".npy")] for p in root.glob("*.npy")}
    assert npy_stems <= json_stems, (
        f"orphaned permutations: {npy_stems - json_stems}"
    )
    assert list(root.glob("*.tmp")) == []


def test_two_process_hammer_keeps_store_consistent(tmp_path):
    root = tmp_path / "shared-shard"
    root.mkdir()
    ctx = multiprocessing.get_context("spawn")
    procs = [
        ctx.Process(target=_hammer, args=(str(root), seed, 40))
        for seed in (1, 2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    try:
        for p in procs:
            assert p.exitcode == 0, f"hammer process died: {p.exitcode}"
    finally:
        for p in procs:
            if p.is_alive():  # pragma: no cover - hang diagnostics
                p.kill()
                p.join()
    _assert_consistent(root)


def test_hammer_against_in_process_threads(tmp_path):
    """The flock tier must compose with the thread tier, not replace it."""
    import threading

    root = tmp_path / "shared-shard"
    root.mkdir()
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(target=_hammer, args=(str(root), 3, 30))
    proc.start()
    store = ArtifactStore(root, max_bytes=2_500)
    threads = [
        threading.Thread(target=_hammer_thread, args=(store, seed))
        for seed in (4, 5)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    proc.join(timeout=120)
    assert proc.exitcode == 0
    _assert_consistent(root)


def _hammer_thread(store: ArtifactStore, seed: int) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(30):
        slot = int(rng.integers(KEY_POPULATION))
        if rng.integers(3) < 2:
            store.save(_artifact(slot))
        else:
            store.evict_to(1_000)


def test_refused_flock_degrades_without_leaking_fds(tmp_path,
                                                    monkeypatch):
    """Filesystems that refuse flock (some NFS mounts) degrade to
    in-process locking — without orphaning one fd per write."""
    import repro.service.store as store_mod

    def refuse(fd, op):
        raise OSError("no locks on this filesystem")

    monkeypatch.setattr(store_mod.fcntl, "flock", refuse)
    store = ArtifactStore(tmp_path / "s")
    fd_dir = "/proc/self/fd"
    before = len(os.listdir(fd_dir)) if os.path.isdir(fd_dir) else None
    for i in range(20):
        store.save(_artifact(i % KEY_POPULATION))
    assert store._write_lock._handle is None
    if before is not None:
        assert len(os.listdir(fd_dir)) <= before + 1
    assert store.load(_key(0)) is not None


def test_flock_degrades_to_noop_without_fcntl(tmp_path, monkeypatch):
    """Windows path: no fcntl means in-process locking only, not a crash."""
    import repro.service.store as store_mod

    monkeypatch.setattr(store_mod, "fcntl", None)
    store = ArtifactStore(tmp_path / "s")
    store.save(_artifact(0))
    assert store.load(_key(0)) is not None
    assert store.delete(_key(0))


def test_lock_file_is_invisible_to_accounting(tmp_path):
    store = ArtifactStore(tmp_path / "s")
    store.save(_artifact(0))
    lock_files = [p for p in (tmp_path / "s").iterdir()
                  if p.name.startswith(".")]
    assert lock_files, "expected the flock lock file to exist"
    assert store.keys() == [_key(0)]
    meta = (tmp_path / "s" / f"{_key(0)}.json").stat().st_size
    perm = (tmp_path / "s" / f"{_key(0)}.npy").stat().st_size
    assert store.total_bytes() == meta + perm


def test_child_process_sees_parent_saves(tmp_path):
    """Smoke the actual cross-process read path, not just survival."""
    root = tmp_path / "s"
    parent = ArtifactStore(root)
    parent.save(_artifact(1))
    ctx = multiprocessing.get_context("spawn")
    ok = ctx.Value("i", 0)
    proc = ctx.Process(target=_load_probe, args=(str(root), _key(1), ok))
    proc.start()
    proc.join(timeout=120)
    assert proc.exitcode == 0
    assert ok.value == 1


def _load_probe(root: str, key: str, ok) -> None:
    artifact = ArtifactStore(root).load(key)
    if artifact is not None and artifact.key == key:
        ok.value = 1

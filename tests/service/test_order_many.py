"""Tests for OrderingService.order_many (batched, topology-grouped)."""

import numpy as np
import pytest

from repro.core import SpectralConfig, SpectralLPM
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import matching_invocations, path_graph
from repro.linalg import solver_invocations
from repro.service import OrderingService, OrderRequest

WEIGHTS = ("unit", "inverse_manhattan", "inverse_euclidean", "gaussian")


def test_order_many_matches_individual_orders():
    grid = Grid((9, 9))
    requests = [OrderRequest(grid, SpectralConfig(weight=w))
                for w in WEIGHTS]
    batch = OrderingService().order_many(requests)
    for w, order in zip(WEIGHTS, batch):
        direct = SpectralLPM(weight=w).order_grid(grid)
        assert order == direct, w


def test_same_topology_builds_graph_once():
    grid = Grid((12, 12))
    service = OrderingService()
    requests = [(grid, SpectralConfig(weight=w)) for w in WEIGHTS]
    service.order_many(requests)
    assert service.stats.topology_builds == 1
    assert service.stats.computed == len(WEIGHTS)


def test_same_topology_coarsens_once_under_multilevel():
    grid = Grid((16, 16))
    # Reference cost: one multilevel solve from scratch runs the full
    # matching chain.
    baseline_service = OrderingService()
    before = matching_invocations()
    baseline_service.order_grid(
        grid, SpectralConfig(weight="unit", backend="multilevel"))
    one_chain = matching_invocations() - before
    assert one_chain >= 1

    service = OrderingService()
    requests = [OrderRequest(grid, SpectralConfig(weight=w,
                                                  backend="multilevel"))
                for w in WEIGHTS]
    before = matching_invocations()
    orders = service.order_many(requests)
    delta = matching_invocations() - before
    assert delta == one_chain, \
        "N same-topology configs must run the coarsening matchings once"
    assert len(orders) == len(WEIGHTS)
    for order in orders:
        assert sorted(order.permutation) == list(range(grid.size))


def test_fully_warm_batch_builds_nothing():
    grid = Grid((8, 8))
    service = OrderingService()
    requests = [OrderRequest(grid, SpectralConfig(weight=w))
                for w in WEIGHTS]
    service.order_many(requests)
    builds = service.stats.topology_builds
    before = solver_invocations()
    again = service.order_many(requests)
    assert solver_invocations() == before
    assert service.stats.topology_builds == builds, \
        "a fully-warm group must not rebuild its topology"
    assert len(again) == len(WEIGHTS)


def test_distinct_topologies_group_separately():
    service = OrderingService()
    requests = [
        OrderRequest(Grid((8, 8)), SpectralConfig()),
        OrderRequest(Grid((8, 8)), SpectralConfig(weight="gaussian")),
        OrderRequest(Grid((8, 8)), SpectralConfig(connectivity="moore")),
        OrderRequest(Grid((6, 6)), SpectralConfig()),
    ]
    service.order_many(requests)
    # (8x8, orthogonal), (8x8, moore), (6x6, orthogonal).
    assert service.stats.topology_builds == 3


def test_mixed_domains_and_result_alignment():
    grid = Grid((7, 7))
    graph = path_graph(12)
    requests = [
        OrderRequest(graph),
        OrderRequest(grid, SpectralConfig(weight="inverse_manhattan")),
        OrderRequest(grid),
        (graph, SpectralConfig()),  # bare tuples are accepted too
    ]
    service = OrderingService()
    results = service.order_many(requests)
    assert len(results) == 4
    assert results[0].n == 12 and results[3].n == 12
    assert results[0] == results[3]
    assert results[1].n == grid.size and results[2].n == grid.size
    assert results[1] == SpectralLPM(
        weight="inverse_manhattan").order_grid(grid)
    assert results[2] == SpectralLPM().order_grid(grid)


def test_batch_cache_interoperates_with_single_calls():
    grid = Grid((9, 9))
    service = OrderingService()
    single = service.order_grid(grid, SpectralConfig(weight="gaussian"))
    before = solver_invocations()
    [from_batch] = service.order_many(
        [OrderRequest(grid, SpectralConfig(weight="gaussian"))])
    assert solver_invocations() == before
    assert np.array_equal(single.permutation, from_batch.permutation)


def test_invalid_requests_rejected():
    with pytest.raises(InvalidParameterError):
        OrderRequest("not a domain")
    with pytest.raises(InvalidParameterError):
        OrderRequest(Grid((3, 3)), config="unit")

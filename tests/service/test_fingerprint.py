"""Tests for repro.service.fingerprint (cache-key stability)."""

import itertools
import subprocess
import sys

import numpy as np
import pytest

from repro.core import SpectralConfig
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import grid_graph, path_graph
from repro.service import (
    config_fingerprint,
    domain_fingerprint,
    graph_fingerprint,
    grid_fingerprint,
    order_key,
    points_fingerprint,
)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_config_fingerprint_deterministic_within_process():
    a = SpectralConfig(weight="inverse_manhattan", radius=2)
    b = SpectralConfig(weight="inverse_manhattan", radius=2)
    assert config_fingerprint(a) == config_fingerprint(b)


SUBPROCESS_SNIPPET = """\
from repro.core import SpectralConfig
from repro.geometry import Grid
from repro.service import config_fingerprint, grid_fingerprint, order_key
config = SpectralConfig(weight="inverse_manhattan", radius=2,
                        backend="lanczos", snap_tol=1e-8)
print(config_fingerprint(config))
print(grid_fingerprint(Grid((17, 5, 3))))
print(order_key(config, grid_fingerprint(Grid((17, 5, 3)))))
"""


def _fingerprints_in_subprocess(hash_seed: str):
    import os

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + \
        env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", SUBPROCESS_SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return out.stdout.split()


def test_fingerprints_stable_across_processes():
    """The digests cannot depend on interpreter hash randomization."""
    first = _fingerprints_in_subprocess("0")
    second = _fingerprints_in_subprocess("424242")
    assert first == second
    # ... and they match the current process too.
    config = SpectralConfig(weight="inverse_manhattan", radius=2,
                            backend="lanczos", snap_tol=1e-8)
    grid_digest = grid_fingerprint(Grid((17, 5, 3)))
    assert first == [config_fingerprint(config), grid_digest,
                     order_key(config, grid_digest)]


# ----------------------------------------------------------------------
# Collision freedom
# ----------------------------------------------------------------------
def test_distinct_configs_never_collide():
    variants = [
        SpectralConfig(connectivity=c, radius=r, weight=w, backend=b,
                       tie_break=t, snap_tol=s)
        for c, r, w, b, t, s in itertools.product(
            ("orthogonal", "moore"), (1, 2),
            ("unit", "inverse_manhattan"), ("auto", "dense"),
            ("index", "bfs"), (1e-9, 0.0),
        )
    ]
    digests = [config_fingerprint(v) for v in variants]
    assert len(set(digests)) == len(variants)


def test_field_rename_cannot_alias():
    # The serialization is name=value per field, so a value moving from
    # one field to another changes the digest.
    a = SpectralConfig(connectivity="moore", weight="unit")
    b = SpectralConfig(connectivity="unit", weight="moore")  # nonsense
    assert config_fingerprint(a) != config_fingerprint(b)


def test_grid_fingerprints_by_shape():
    assert grid_fingerprint(Grid((4, 4))) == grid_fingerprint(Grid((4, 4)))
    assert grid_fingerprint(Grid((4, 4))) != grid_fingerprint(Grid((4, 5)))
    assert grid_fingerprint(Grid((16,))) != grid_fingerprint(Grid((4, 4)))


def test_graph_fingerprints_by_content():
    a = path_graph(10)
    b = path_graph(10)
    assert graph_fingerprint(a) == graph_fingerprint(b)
    assert graph_fingerprint(a) != graph_fingerprint(path_graph(11))
    # Same structure, different weights -> different content.  (At
    # radius 1, "inverse_manhattan" degenerates to unit weights, so the
    # gaussian model is the discriminating choice here.)
    grid = Grid((4, 4))
    unit = grid_graph(grid)
    weighted = grid_graph(grid, weight="gaussian")
    assert unit.structure_fingerprint() == weighted.structure_fingerprint()
    assert graph_fingerprint(unit) != graph_fingerprint(weighted)


def test_points_fingerprint_canonicalizes_cells():
    grid = Grid((8, 8))
    a = points_fingerprint(grid, [5, 1, 3, 3, 1])
    b = points_fingerprint(grid, np.array([1, 3, 5]))
    assert a == b
    assert a != points_fingerprint(grid, [1, 3, 6])
    assert a != points_fingerprint(Grid((8, 9)), [1, 3, 5])


def test_domain_dispatch_and_validation():
    grid = Grid((3, 3))
    assert domain_fingerprint(grid) == grid_fingerprint(grid)
    graph = path_graph(4)
    assert domain_fingerprint(graph) == graph_fingerprint(graph)
    with pytest.raises(InvalidParameterError):
        domain_fingerprint("not a domain")
    with pytest.raises(InvalidParameterError):
        config_fingerprint({"weight": "unit"})


def test_domain_and_config_keys_compose():
    config_a = SpectralConfig()
    config_b = SpectralConfig(weight="inverse_manhattan")
    grid_a = grid_fingerprint(Grid((4, 4)))
    grid_b = grid_fingerprint(Grid((5, 4)))
    keys = {order_key(c, d) for c in (config_a, config_b)
            for d in (grid_a, grid_b)}
    assert len(keys) == 4

"""ShardedIndexFrontend: keyspace routing over per-shard services.

The contracts: routing is a pure, process-stable function of the
domain's content-hash fingerprint; every answer is bit-identical to an
unsharded service; batches route per shard without losing alignment;
per-shard disk stores give a restarted frontend zero-solve warm-up; and
the shard partition actually spreads a workload (no degenerate
all-on-one-shard routing for a mixed domain population).
"""

import numpy as np
import pytest

from repro.api import NNQuery, SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.geometry.pointset import PointSet
from repro.graph.builders import grid_graph
from repro.linalg.backends import solver_invocations
from repro.service import (
    OrderingService,
    OrderRequest,
    ShardedIndexFrontend,
)


def test_routing_is_deterministic_and_in_range():
    front_a = ShardedIndexFrontend(shards=4)
    front_b = ShardedIndexFrontend(shards=4)
    domains = [Grid((8, 8)), Grid((9, 9)), (10, 10),
               PointSet(Grid((6, 6)), range(9)),
               grid_graph(Grid((5, 5)))]
    for domain in domains:
        shard = front_a.shard_of(domain)
        assert 0 <= shard < 4
        assert shard == front_b.shard_of(domain)
        assert front_a.service_for(domain) is front_a.services[shard]


def test_mixed_domains_spread_across_shards():
    front = ShardedIndexFrontend(shards=4)
    shards = {front.shard_of(Grid((side, side)))
              for side in range(4, 40)}
    assert len(shards) > 1  # the keyspace partition is non-degenerate


def test_sharded_orders_match_unsharded_service():
    front = ShardedIndexFrontend(shards=3)
    plain = OrderingService()
    grid = Grid((9, 9))
    graph = grid_graph(Grid((5, 5)))
    assert front.order_grid(grid) == plain.order_grid(grid)
    assert front.order_graph(graph) == plain.order_graph(graph)
    assert (front.grid_artifact(grid).key
            == plain.grid_artifact(grid).key)
    assert (front.graph_artifact(graph).key
            == plain.graph_artifact(graph).key)


@pytest.mark.parametrize("parallelism", [None, 4])
def test_order_many_routes_and_aligns(parallelism):
    front = ShardedIndexFrontend(shards=3)
    requests = [
        OrderRequest(Grid((7, 7))),
        OrderRequest(Grid((8, 8)), SpectralConfig(weight="gaussian")),
        OrderRequest(Grid((7, 7)), SpectralConfig(weight="gaussian")),
        OrderRequest(Grid((9, 9))),
    ]
    orders = front.order_many(requests, parallelism=parallelism)
    plain = OrderingService()
    for request, order in zip(requests, orders):
        assert order == plain.order_grid(request.domain, request.config)
    # Each (domain, config) solved exactly once, on its owning shard.
    assert front.combined_stats().computed == len(requests)


def test_order_many_keeps_topology_amortization_per_shard():
    front = ShardedIndexFrontend(shards=2)
    grid = Grid((10, 10))
    weights = ("unit", "inverse_manhattan", "gaussian")
    front.order_many([OrderRequest(grid, SpectralConfig(weight=w))
                      for w in weights])
    shard = front.service_for(grid)
    # All three configs landed on one shard and shared one topology.
    assert shard.stats.topology_builds == 1
    assert shard.stats.computed == len(weights)


def test_per_shard_disk_stores_survive_restart(tmp_path):
    stores = [str(tmp_path / f"shard-{i}") for i in range(3)]
    front = ShardedIndexFrontend(shards=3, stores=stores)
    grids = [Grid((6, 6)), Grid((7, 7)), Grid((8, 8)), Grid((9, 9))]
    first = [front.order_grid(g) for g in grids]

    restarted = ShardedIndexFrontend(shards=3, stores=stores)
    before = solver_invocations()
    second = [restarted.order_grid(g) for g in grids]
    assert solver_invocations() - before == 0  # all from disk
    assert restarted.combined_stats().disk_hits == len(grids)
    for a, b in zip(first, second):
        assert a == b


def test_index_for_caches_and_routes_queries():
    front = ShardedIndexFrontend(shards=2)
    index = front.index_for((8, 8))
    assert index is front.index_for((8, 8))
    assert index is front.index_for(Grid((8, 8)))
    assert index.service is front.service_for(Grid((8, 8)))
    # Distinct build kwargs get distinct indexes.
    buffered = front.index_for((8, 8), buffer_capacity=4)
    assert buffered is not index

    direct = SpectralIndex.build((8, 8))
    result = front.nn((8, 8), 10, 3)
    assert np.array_equal(result.neighbors,
                          direct.nn(10, 3).neighbors)
    many = front.query_many((8, 8), [NNQuery(5, k=4)], parallelism=2)
    assert np.array_equal(many[0].neighbors,
                          direct.nn(5, 4).neighbors)
    execution = front.range((8, 8), ((1, 1), (4, 4)))
    assert np.array_equal(execution.results,
                          direct.range(((1, 1), (4, 4))).results)
    report = front.join((8, 8), [0, 1], [9, 17], epsilon=2, window=12)
    assert report == direct.join([0, 1], [9, 17], epsilon=2, window=12)


def test_stats_are_per_shard_and_combined():
    front = ShardedIndexFrontend(shards=2)
    front.order_grid(Grid((6, 6)))
    front.order_grid(Grid((6, 6)))  # memory hit on the same shard
    per_shard = front.stats()
    assert len(per_shard) == 2
    combined = front.combined_stats()
    assert combined.computed == sum(s.computed for s in per_shard) == 1
    assert combined.memory_hits == 1


def test_prebuilt_services_are_used_verbatim():
    services = [OrderingService(), OrderingService()]
    front = ShardedIndexFrontend(services=services)
    assert front.num_shards == 2
    grid = Grid((7, 7))
    front.order_grid(grid)
    assert services[front.shard_of(grid)].stats.computed == 1


def test_constructor_validation():
    with pytest.raises(InvalidParameterError):
        ShardedIndexFrontend(shards=0)
    with pytest.raises(InvalidParameterError):
        ShardedIndexFrontend(shards=2, stores=["only-one"])
    with pytest.raises(InvalidParameterError):
        ShardedIndexFrontend(services=[])
    with pytest.raises(InvalidParameterError):
        ShardedIndexFrontend(services=["not a service"])
    with pytest.raises(InvalidParameterError):
        ShardedIndexFrontend(services=[OrderingService()],
                             stores=["dir"])
    front = ShardedIndexFrontend(shards=2)
    with pytest.raises(InvalidParameterError):
        front.shard_of("not a domain")
    with pytest.raises(InvalidParameterError):
        front.order_many([OrderRequest(Grid((5, 5)))], parallelism=0)

"""Size-bounded eviction in the ArtifactStore."""

import os
import time

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.service import ArtifactStore, OrderingService
from repro.service.store import StoreEntry


def _fill(store_dir, sides, max_bytes=None):
    store = ArtifactStore(store_dir, max_bytes=max_bytes)
    service = OrderingService(store=store)
    keys = []
    for side in sides:
        artifact = service.grid_artifact(Grid((side, side)))
        keys.append(artifact.key)
    return store, keys


def _age(store, key, seconds):
    """Backdate an artifact's recency."""
    path = store.root / f"{key}.json"
    past = time.time() - seconds
    os.utime(path, (past, past))


def test_entries_and_total_bytes(tmp_path):
    store, keys = _fill(tmp_path, (4, 5, 6))
    entries = store.entries()
    assert sorted(e.key for e in entries) == sorted(keys)
    assert all(isinstance(e, StoreEntry) for e in entries)
    assert all(e.bytes > 0 for e in entries)
    assert store.total_bytes() == sum(e.bytes for e in entries)
    assert {e.domain for e in entries} == {"grid(4, 4)", "grid(5, 5)",
                                           "grid(6, 6)"}


def test_evict_to_removes_least_recently_used_first(tmp_path):
    store, keys = _fill(tmp_path, (4, 5, 6))
    # Make the middle artifact the stalest, then the first, then last.
    _age(store, keys[1], 300)
    _age(store, keys[0], 200)
    survivor_budget = store.entry(keys[2]).bytes
    evicted = store.evict_to(survivor_budget)
    assert evicted == [keys[1], keys[0]]
    assert store.keys() == [keys[2]]
    assert store.evictions == 2


def test_evict_to_protects_keys(tmp_path):
    store, keys = _fill(tmp_path, (4, 5))
    _age(store, keys[0], 100)
    evicted = store.evict_to(0, protect=keys)
    assert evicted == []
    assert len(store) == 2


def test_evict_to_rejects_negative_budget(tmp_path):
    store, _ = _fill(tmp_path, (4,))
    with pytest.raises(InvalidParameterError):
        store.evict_to(-1)


def test_save_enforces_max_bytes_but_never_evicts_the_new_artifact(
        tmp_path):
    # A bound smaller than any single artifact: every save evicts all
    # the *others* and keeps what it just wrote.
    store = ArtifactStore(tmp_path, max_bytes=1)
    service = OrderingService(store=store)
    service.grid_artifact(Grid((4, 4)))
    assert len(store) == 1
    art = service.grid_artifact(Grid((5, 5)))
    assert store.keys() == [art.key]


def test_successful_load_refreshes_recency(tmp_path):
    store, keys = _fill(tmp_path, (4, 5))
    _age(store, keys[0], 500)
    _age(store, keys[1], 100)
    # Loading the stalest artifact rescues it from next eviction.
    assert store.load(keys[0]) is not None
    budget = store.entry(keys[0]).bytes
    evicted = store.evict_to(budget)
    assert evicted == [keys[1]]
    assert store.keys() == [keys[0]]


def test_max_bytes_validation(tmp_path):
    with pytest.raises(InvalidParameterError):
        ArtifactStore(tmp_path, max_bytes=0)
    assert ArtifactStore(tmp_path).max_bytes is None
    assert ArtifactStore(tmp_path, max_bytes=123).max_bytes == 123

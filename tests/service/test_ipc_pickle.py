"""The IPC contract: every value that crosses a process boundary
pickle-round-trips *stably*.

The multi-process serving harness (:mod:`repro.serve`) ships
``SpectralConfig``, domains (``Grid`` / ``PointSet`` / ``Graph``),
``LinearOrder``, and ``OrderArtifact`` between dispatcher and workers
as pickles.  Three properties make that sound, pinned here over
hypothesis-generated values:

* **equality**: ``loads(dumps(x)) == x`` (and hashes agree for the
  hashable types);
* **fingerprint stability**: the content-hash fingerprints that key
  every cache tier are identical before and after a round-trip — a
  worker must find the artifact the dispatcher's key promised;
* **routing agreement**: ``shard_of`` assigns the round-tripped domain
  to the same shard, for every shard count — otherwise a worker could
  be handed a domain whose warm store lives elsewhere;

plus the invariant the round-trip must not launder away: the internal
arrays come back *read-only*.
"""

from __future__ import annotations

import pickle

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.geometry import Grid
from repro.geometry.pointset import PointSet
from repro.graph.adjacency import Graph
from repro.service import (
    OrderingService,
    config_fingerprint,
    graph_fingerprint,
    grid_fingerprint,
    order_key,
    points_fingerprint,
    shard_of_domain,
)

SHARD_COUNTS = (1, 2, 3, 4, 7, 16)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
configs = st.builds(
    SpectralConfig,
    connectivity=st.sampled_from(("orthogonal", "moore")),
    radius=st.integers(1, 3),
    weight=st.sampled_from(("unit", "gaussian", "inverse_manhattan",
                            "inverse_euclidean")),
    backend=st.sampled_from(("auto", "dense", "lanczos", "multilevel")),
    tie_break=st.sampled_from(("index", "bfs")),
    on_disconnected=st.sampled_from(("per-component", "error")),
    component_arrangement=st.sampled_from(("by_min_vertex", "by_size")),
    snap_tol=st.floats(1e-12, 1e-6, allow_nan=False),
)

grids = st.lists(st.integers(1, 9), min_size=1, max_size=3).map(Grid)


@st.composite
def point_sets(draw):
    grid = draw(st.lists(st.integers(2, 8), min_size=1, max_size=3)
                .map(Grid))
    cells = draw(st.lists(st.integers(0, grid.size - 1),
                          min_size=1, max_size=min(grid.size, 12)))
    return PointSet(grid, cells)


@st.composite
def graphs(draw):
    n = draw(st.integers(2, 10))
    m = draw(st.integers(1, min(12, n * (n - 1) // 2)))
    edges, seen = [], set()
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and (min(u, v), max(u, v)) not in seen:
            seen.add((min(u, v), max(u, v)))
            edges.append((u, v))
    if not edges:
        edges = [(0, 1)]
    weights = [float(draw(st.integers(1, 5))) for _ in edges]
    return Graph.from_edges(n, edges, weights)


# ---------------------------------------------------------------------------
# Configs
# ---------------------------------------------------------------------------
@given(configs)
def test_config_roundtrip_equality_and_fingerprint(config):
    back = roundtrip(config)
    assert back == config
    assert hash(back) == hash(config)
    assert config_fingerprint(back) == config_fingerprint(config)


# ---------------------------------------------------------------------------
# Domains
# ---------------------------------------------------------------------------
@given(grids)
def test_grid_roundtrip(grid):
    back = roundtrip(grid)
    assert back == grid
    assert hash(back) == hash(grid)
    assert grid_fingerprint(back) == grid_fingerprint(grid)
    for shards in SHARD_COUNTS:
        assert (shard_of_domain(back, shards)
                == shard_of_domain(grid, shards))


@given(point_sets())
def test_pointset_roundtrip(points):
    back = roundtrip(points)
    assert back == points
    assert hash(back) == hash(points)
    assert (points_fingerprint(back.grid, back.cells)
            == points_fingerprint(points.grid, points.cells))
    for shards in SHARD_COUNTS:
        assert (shard_of_domain(back, shards)
                == shard_of_domain(points, shards))
    assert not back.cells.flags.writeable


@given(graphs())
def test_graph_roundtrip(graph):
    back = roundtrip(graph)
    assert back.num_vertices == graph.num_vertices
    assert back.content_fingerprint() == graph.content_fingerprint()
    assert back.structure_fingerprint() == graph.structure_fingerprint()
    assert graph_fingerprint(back) == graph_fingerprint(graph)
    for shards in SHARD_COUNTS:
        assert (shard_of_domain(back, shards)
                == shard_of_domain(graph, shards))


# ---------------------------------------------------------------------------
# Orders and artifacts
# ---------------------------------------------------------------------------
@given(st.integers(1, 40).flatmap(
    lambda n: st.permutations(range(n))))
def test_linear_order_roundtrip(perm):
    order = LinearOrder(perm)
    back = roundtrip(order)
    assert back == order
    assert hash(back) == hash(order)
    assert not back.permutation.flags.writeable
    assert not back.ranks.flags.writeable


small_grids = st.lists(st.integers(2, 5), min_size=1, max_size=2).map(Grid)


@given(configs, small_grids)
def test_artifact_roundtrip_preserves_key_and_order(config, grid):
    service = OrderingService()
    artifact = service.grid_artifact(grid, config)
    back = roundtrip(artifact)
    assert back == artifact
    assert back.key == artifact.key
    assert back.order == artifact.order
    assert back.config == artifact.config
    # The key a restarted worker would derive matches the shipped one.
    assert order_key(back.config, grid_fingerprint(grid)) == back.key


def test_order_key_agreement_between_processes_is_pure():
    """order_key is a pure function of round-trippable values — the
    exact property the dispatcher relies on when it routes a request
    to a worker that then derives the same cache key independently."""
    config = SpectralConfig(weight="gaussian")
    grid = Grid((9, 9))
    key_here = order_key(config, grid_fingerprint(grid))
    key_there = order_key(roundtrip(config),
                          grid_fingerprint(roundtrip(grid)))
    assert key_here == key_there

"""Atomic stats snapshots: no torn reads, no shared mutable state."""

from __future__ import annotations

import threading

from repro.geometry import Grid
from repro.service import OrderingService, ShardedIndexFrontend


def test_snapshot_is_an_independent_copy():
    service = OrderingService()
    service.order_grid(Grid((6, 6)))
    snap = service.snapshot()
    assert snap.computed == 1
    # Mutating the snapshot must not write through to the service.
    snap.computed = 999
    assert service.snapshot().computed == 1


def test_stats_property_returns_a_snapshot():
    """The migration shim: ``.stats`` reads are snapshot reads."""
    service = OrderingService()
    service.order_grid(Grid((5, 5)))
    stats = service.stats
    stats.memory_hits = 999
    assert service.stats.memory_hits == 0
    assert service.stats is not service.stats


def test_bracketing_snapshots_give_exact_deltas():
    service = OrderingService()
    service.order_grid(Grid((6, 6)))
    before = service.snapshot()
    service.order_grid(Grid((6, 6)))   # memory hit
    service.order_grid(Grid((7, 7)))   # fresh solve
    after = service.snapshot()
    assert after.memory_hits - before.memory_hits == 1
    assert after.computed - before.computed == 1


def test_snapshots_never_tear_under_concurrent_traffic():
    """Counters move while we snapshot; every snapshot must still be
    internally consistent: the cacheable partition sums to the number
    of requests finished so far, so a torn (mid-update) read shows up
    as a sum that matches no request count."""
    service = OrderingService(memory_entries=4)
    grids = [Grid((s, s)) for s in range(4, 8)]
    stop = threading.Event()

    def traffic() -> None:
        while not stop.is_set():
            for grid in grids:
                service.order_grid(grid)

    threads = [threading.Thread(target=traffic) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for _ in range(200):
            snap = service.snapshot()
            served = (snap.memory_hits + snap.disk_hits + snap.computed
                      + snap.coalesced)
            assert served >= 0
            again = service.snapshot()
            served_again = (again.memory_hits + again.disk_hits
                            + again.computed + again.coalesced)
            assert served_again >= served  # monotone across snapshots
    finally:
        stop.set()
        for t in threads:
            t.join()


def test_combined_stats_sums_per_shard_snapshots():
    front = ShardedIndexFrontend(shards=3)
    grids = [Grid((s, s)) for s in range(4, 10)]
    for grid in grids:
        front.order_grid(grid)
        front.order_grid(grid)
    per_shard = front.stats()
    combined = front.combined_stats()
    assert combined.computed == sum(s.computed for s in per_shard)
    assert combined.computed == len(grids)
    assert combined.memory_hits == len(grids)
    # The combined snapshot is detached from the live counters too.
    combined.computed = 999
    assert front.combined_stats().computed == len(grids)

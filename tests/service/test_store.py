"""Tests for repro.service.store (the on-disk artifact tier)."""

import json

import numpy as np
import pytest

from repro.core import LinearOrder, SpectralConfig
from repro.errors import InvalidParameterError
from repro.service import ArtifactStore, OrderArtifact
from repro.service.store import STORE_VERSION


def _artifact(key="ab12", n=9):
    return OrderArtifact(
        key=key,
        config=SpectralConfig(),
        domain="grid(3, 3)",
        order=LinearOrder(np.random.default_rng(7).permutation(n)),
        lambda2=0.25,
        multiplicity=2,
        backend="dense",
        residual=1e-12,
        eigenvalues=(0.25, 0.25, 0.5),
        solver_calls=1,
    )


def test_round_trip(tmp_path):
    store = ArtifactStore(tmp_path)
    artifact = _artifact()
    store.save(artifact)
    loaded = store.load("ab12")
    assert loaded is not None
    assert loaded.order == artifact.order
    assert loaded.config == artifact.config
    assert loaded.domain == artifact.domain
    assert loaded.lambda2 == pytest.approx(0.25)
    assert loaded.multiplicity == 2
    assert loaded.backend == "dense"
    assert loaded.eigenvalues == pytest.approx((0.25, 0.25, 0.5))
    assert loaded.source == "disk"
    assert loaded.solver_calls == 0  # loads never cost a solve


def test_missing_key_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.load("beef") is None
    assert store.load_failures == 0  # absence is not corruption


def test_meta_without_permutation_counts_as_failure(tmp_path):
    """A crash between the two writes leaves a half artifact; that is
    corruption (counted), not a cold miss (regression test)."""
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    (tmp_path / "ab12.npy").unlink()
    assert store.load("ab12") is None
    assert store.load_failures == 1


def test_corrupt_metadata_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    (tmp_path / "ab12.json").write_text("{not json")
    assert store.load("ab12") is None
    assert store.load_failures == 1


def test_version_mismatch_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    meta = json.loads((tmp_path / "ab12.json").read_text())
    meta["version"] = STORE_VERSION + 1
    (tmp_path / "ab12.json").write_text(json.dumps(meta))
    assert store.load("ab12") is None
    assert store.load_failures == 1


def test_key_mismatch_is_a_miss(tmp_path):
    """A renamed/copied artifact file cannot be served under a new key."""
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    (tmp_path / "ab12.json").rename(tmp_path / "cd34.json")
    (tmp_path / "ab12.npy").rename(tmp_path / "cd34.npy")
    assert store.load("cd34") is None
    assert store.load_failures == 1


def test_corrupt_permutation_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    (tmp_path / "ab12.npy").write_bytes(b"\x00" * 16)
    assert store.load("ab12") is None
    assert store.load_failures == 1


def test_truncated_permutation_is_a_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(_artifact(n=9))
    # A valid .npy of the wrong length (metadata says n=9).
    with open(tmp_path / "ab12.npy", "wb") as handle:
        np.save(handle, np.arange(4, dtype=np.int64))
    assert store.load("ab12") is None
    assert store.load_failures == 1


def test_keys_listing_and_delete(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.keys() == [] and len(store) == 0
    store.save(_artifact(key="aa"))
    store.save(_artifact(key="bb"))
    assert store.keys() == ["aa", "bb"]
    assert "aa" in store and "cc" not in store
    assert store.delete("aa")
    assert not store.delete("aa")
    assert store.keys() == ["bb"]


def test_non_hex_keys_rejected(tmp_path):
    store = ArtifactStore(tmp_path)
    for bad in ("../escape", "ABCD", "a b", ""):
        with pytest.raises(InvalidParameterError):
            store.load(bad)


def test_no_temp_files_left_behind(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(_artifact())
    leftovers = [p.name for p in tmp_path.iterdir()
                 if p.suffix == ".tmp"]
    assert leftovers == []

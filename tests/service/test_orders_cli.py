"""The repro-orders CLI: ls / inspect / evict over a store directory."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.service import ArtifactStore, OrderingService
from repro.service.cli import format_size, main, parse_size


@pytest.fixture
def store_dir(tmp_path):
    service = OrderingService(store=str(tmp_path))
    for side in (4, 5, 6):
        service.grid_artifact(Grid((side, side)))
    return tmp_path


def test_parse_size_plain_and_suffixed():
    assert parse_size("4096") == 4096
    assert parse_size("64K") == 64 * 1024
    assert parse_size("16M") == 16 * 1024 ** 2
    assert parse_size("2G") == 2 * 1024 ** 3
    assert parse_size("2g") == 2 * 1024 ** 3
    assert parse_size("10KB") == 10 * 1024
    with pytest.raises(InvalidParameterError):
        parse_size("lots")
    with pytest.raises(InvalidParameterError):
        parse_size("-5")


def test_format_size_round_trips_magnitudes():
    assert format_size(512) == "512"
    assert format_size(2048) == "2K"
    assert "M" in format_size(3 * 1024 ** 2)


def test_ls_lists_every_artifact(store_dir, capsys):
    assert main(["ls", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "grid(4, 4)" in out
    assert "grid(6, 6)" in out
    assert "total: 3 artifacts" in out


def test_ls_sorts(store_dir, capsys):
    for sort in ("age", "size", "key"):
        assert main(["ls", str(store_dir), "--sort", sort]) == 0
    out = capsys.readouterr().out
    assert "total: 3 artifacts" in out


def test_inspect_by_unique_prefix(store_dir, capsys):
    store = ArtifactStore(store_dir)
    key = store.keys()[0]
    assert main(["inspect", str(store_dir), key[:12]]) == 0
    out = capsys.readouterr().out
    meta = json.loads(out[:out.rindex("}") + 1])
    assert meta["key"] == key
    assert "# footprint:" in out


def test_inspect_unknown_prefix_fails(store_dir, capsys):
    assert main(["inspect", str(store_dir), "ffff_no_such"]) == 1
    assert "repro-orders:" in capsys.readouterr().err


def test_inspect_ambiguous_prefix_fails(store_dir, capsys):
    assert main(["inspect", str(store_dir), ""]) == 1
    assert "ambiguous" in capsys.readouterr().err


def test_evict_to_size_bound(store_dir, capsys):
    store = ArtifactStore(store_dir)
    keep = store.total_bytes() - 1  # forces exactly one eviction
    assert main(["evict", str(store_dir), "--max-bytes",
                 str(keep)]) == 0
    out = capsys.readouterr().out
    assert "1 evicted" in out
    assert len(ArtifactStore(store_dir).keys()) == 2


def test_evict_dry_run_deletes_nothing(store_dir, capsys):
    assert main(["evict", str(store_dir), "--max-bytes", "0",
                 "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert out.count("would evict") == 3
    assert len(ArtifactStore(store_dir).keys()) == 3


def test_evict_single_key(store_dir, capsys):
    store = ArtifactStore(store_dir)
    victim = store.keys()[1]
    assert main(["evict", str(store_dir), "--key", victim[:10]]) == 0
    assert victim not in ArtifactStore(store_dir).keys()


def test_evict_requires_exactly_one_mode(store_dir, capsys):
    assert main(["evict", str(store_dir)]) == 2
    assert main(["evict", str(store_dir), "--max-bytes", "1",
                 "--key", "ab"]) == 2

"""Tests for repro.service.ordering (the OrderingService cache tiers)."""

import numpy as np
import pytest

from repro.core import SpectralConfig, SpectralLPM
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.graph import path_graph
from repro.linalg import solver_invocations
from repro.api import make_mapping
from repro.mapping import SpectralMapping
from repro.query import LinearStore
from repro.service import ArtifactStore, OrderingService


@pytest.fixture
def grid():
    return Grid((10, 10))


# ----------------------------------------------------------------------
# Memory tier
# ----------------------------------------------------------------------
def test_warm_memory_hit_is_bit_identical_and_solve_free(grid):
    service = OrderingService()
    cold = service.order_grid(grid)
    before = solver_invocations()
    warm = service.order_grid(grid)
    assert solver_invocations() == before, \
        "a warm cache hit must not invoke the eigensolver"
    assert np.array_equal(cold.permutation, warm.permutation)
    assert np.array_equal(cold.ranks, warm.ranks)
    assert service.stats.memory_hits == 1
    assert service.stats.computed == 1


def test_cache_matches_direct_pipeline(grid):
    config = SpectralConfig(weight="inverse_manhattan", backend="dense")
    service = OrderingService()
    via_service = service.order_grid(grid, config)
    direct = SpectralLPM.from_config(config).order_grid(grid)
    assert via_service == direct


def test_distinct_configs_get_distinct_entries(grid):
    service = OrderingService()
    a = service.order_grid(grid, SpectralConfig())
    b = service.order_grid(grid, SpectralConfig(weight="inverse_manhattan",
                                                radius=2))
    assert service.stats.computed == 2
    assert a != b  # different weight models order this grid differently


def test_artifact_provenance(grid):
    service = OrderingService()
    artifact = service.grid_artifact(grid, SpectralConfig(backend="dense"))
    assert artifact.source == "computed"
    assert artifact.backend == "dense"
    assert artifact.solver_calls >= 1
    assert artifact.lambda2 is not None and artifact.lambda2 > 0
    assert artifact.multiplicity is not None and artifact.multiplicity >= 1
    assert artifact.residual is not None and artifact.residual < 1e-6
    assert artifact.domain == "grid(10, 10)"
    # A memory hit reports its tier and zero spent solves.
    again = service.grid_artifact(grid, SpectralConfig(backend="dense"))
    assert again.source == "memory"
    assert again.solver_calls == 0


def test_lru_eviction_recomputes():
    service = OrderingService(memory_entries=1)
    g1, g2 = Grid((6, 6)), Grid((7, 7))
    service.order_grid(g1)
    service.order_grid(g2)  # evicts g1
    service.order_grid(g1)
    assert service.stats.computed == 3
    assert service.stats.memory_hits == 0


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
def test_disk_tier_survives_restart_with_zero_solves(grid, tmp_path):
    config = SpectralConfig(weight="inverse_euclidean")
    first = OrderingService(store=str(tmp_path / "orders"))
    cold = first.grid_artifact(grid, config)

    restarted = OrderingService(store=str(tmp_path / "orders"))
    before = solver_invocations()
    warm = restarted.grid_artifact(grid, config)
    assert solver_invocations() == before, \
        "a service restart over a warm store must pay zero eigensolves"
    assert warm.source == "disk"
    assert np.array_equal(warm.order.permutation, cold.order.permutation)
    # Provenance round-trips through the store.
    assert warm.backend == cold.backend
    assert warm.lambda2 == pytest.approx(cold.lambda2)
    assert warm.residual == pytest.approx(cold.residual)
    assert warm.config == config
    assert restarted.stats.disk_hits == 1
    # Second ask is then served from memory.
    assert restarted.grid_artifact(grid, config).source == "memory"


def test_store_accepts_artifactstore_instance(grid, tmp_path):
    store = ArtifactStore(tmp_path / "orders")
    service = OrderingService(store=store)
    service.order_grid(grid)
    assert len(store) == 1


# ----------------------------------------------------------------------
# Non-grid domains
# ----------------------------------------------------------------------
def test_graph_domain_cached_by_content():
    service = OrderingService()
    first = service.order_graph(path_graph(24))
    before = solver_invocations()
    second = service.order_graph(path_graph(24))  # fresh object, same graph
    assert solver_invocations() == before
    assert first == second
    # Path graphs order as the path itself (up to reversal).
    assert list(first.permutation) in (list(range(24)),
                                       list(range(23, -1, -1)))


def test_points_domain_cached_and_canonicalized():
    service = OrderingService()
    grid = Grid((8, 8))
    order1, cells1 = service.order_points(grid, [9, 10, 11, 3, 2, 1])
    before = solver_invocations()
    order2, cells2 = service.order_points(grid, [1, 2, 3, 9, 10, 11])
    assert solver_invocations() == before
    assert order1 == order2
    assert np.array_equal(cells1, cells2)
    direct, _ = SpectralLPM().order_points(grid, [1, 2, 3, 9, 10, 11])
    assert order1 == direct


# ----------------------------------------------------------------------
# Cacheability guard
# ----------------------------------------------------------------------
def test_callable_weight_bypasses_cache(grid):
    def cliff(offset):
        return 0.5

    service = OrderingService()
    algorithm = SpectralLPM(weight=cliff)
    assert not algorithm.cacheable
    a = service.order_grid(grid, algorithm)
    b = service.order_grid(grid, algorithm)
    assert service.stats.uncacheable == 2
    assert service.stats.computed == 0
    assert a == b
    assert a == algorithm.order_grid(grid)


def test_config_from_callable_weight_rejected_loudly(grid):
    """A config lifted off a callable-weight algorithm must not silently
    resolve to a same-named registry model (regression test)."""
    def unit(offset):  # deliberately collides with the registry name
        return 10.0 if offset[0] != 0 else 0.1

    algorithm = SpectralLPM(weight=unit)
    assert algorithm.config.weight == "callable:unit"
    service = OrderingService()
    with pytest.raises(InvalidParameterError):
        service.order_grid(grid, algorithm.config)
    # The instance itself still works (uncached).
    assert service.order_grid(grid, algorithm) == \
        algorithm.order_grid(grid)


def test_multilevel_orders_are_history_independent():
    """Same (config, domain) through services with different request
    histories must produce identical orders (regression test: the
    hierarchy cache's matchings are canonical, not first-come)."""
    grid = Grid((14, 14))
    target = SpectralConfig(weight="inverse_euclidean",
                            connectivity="moore", backend="multilevel")
    other = SpectralConfig(weight="gaussian", connectivity="moore",
                           backend="multilevel")

    with_history = OrderingService()
    with_history.order_grid(grid, other)     # warms the hierarchy cache
    a = with_history.order_grid(grid, target)

    cold = OrderingService()
    b = cold.order_grid(grid, target)
    assert np.array_equal(a.permutation, b.permutation)


def test_explicit_probe_bypasses_cache(grid):
    probe = np.linspace(-1.0, 1.0, grid.size)
    algorithm = SpectralLPM(probe=probe)
    assert not algorithm.cacheable
    service = OrderingService()
    service.order_grid(grid, algorithm)
    assert service.stats.uncacheable == 1


def test_cacheable_algorithm_uses_cache(grid):
    service = OrderingService()
    algorithm = SpectralLPM(weight="inverse_manhattan")
    assert algorithm.cacheable
    a = service.order_grid(grid, algorithm)
    # Same config as a value object hits the same entry.
    before = solver_invocations()
    b = service.order_grid(grid, algorithm.config)
    assert solver_invocations() == before
    assert a == b


def test_invalid_config_rejected(grid):
    service = OrderingService()
    with pytest.raises(InvalidParameterError):
        service.order_grid(grid, config="spectral")


# ----------------------------------------------------------------------
# Wiring: mapping and LinearStore
# ----------------------------------------------------------------------
def test_spectral_mapping_routes_through_service(grid):
    service = OrderingService()
    m1 = SpectralMapping(service=service)
    m2 = make_mapping("spectral", service=service)
    a = m1.order_for_grid(grid)
    before = solver_invocations()
    b = m2.order_for_grid(grid)
    assert solver_invocations() == before, \
        "two mappings sharing a service must share one eigensolve"
    assert a == b
    assert m2.service is service


def test_make_mapping_ignores_service_for_curves(grid):
    service = OrderingService()
    mapping = make_mapping("hilbert", service=service)
    mapping.order_for_grid(grid)
    assert service.stats.computed == 0


def test_linear_store_shares_service_orders(grid):
    service = OrderingService()
    mapping = SpectralMapping()  # no service of its own
    store1 = LinearStore._from_api(grid, mapping, page_size=8,
                                   service=service)
    before = solver_invocations()
    store2 = LinearStore._from_api(grid, SpectralMapping(), page_size=4,
                                   service=service)
    assert solver_invocations() == before, \
        "stores sharing a service must share one eigensolve"
    assert np.array_equal(store1._ranks, store2._ranks)
    assert service.stats.computed == 1


def test_linear_store_keeps_memo_for_uncacheable_mapping(grid):
    """A non-cacheable mapping's per-grid memo must not be bypassed by
    the store-level service (regression test: routing it through the
    cache-bypassing service re-solved per store)."""
    mapping = SpectralMapping(weight=lambda offset: 1.0)
    service = OrderingService()
    LinearStore._from_api(grid, mapping, page_size=8, service=service)
    before = solver_invocations()
    LinearStore._from_api(grid, mapping, page_size=4, service=service)
    assert solver_invocations() == before, \
        "the second store must reuse the mapping's memoized order"
    assert service.stats.uncacheable == 0  # service never consulted


def test_linear_store_respects_mapping_own_service(grid):
    mapping_service = OrderingService()
    store_service = OrderingService()
    mapping = SpectralMapping(service=mapping_service)
    LinearStore._from_api(grid, mapping, page_size=8,
                          service=store_service)
    assert mapping_service.stats.computed == 1
    assert store_service.stats.computed == 0

"""Temp-file hygiene: orphaned ``*.tmp`` files are swept, never counted.

Atomic writes go through ``<name>.tmp`` + ``os.replace``; a worker
killed between the two leaves the temp behind.  The contracts pinned
here: store startup sweeps temps older than the age gate (and *only*
those — a concurrent in-flight save's fresh temp survives), accounting
and eviction never see temps, and a failed write cleans up after
itself.
"""

from __future__ import annotations

import hashlib
import os
import time

import numpy as np
import pytest

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.service.artifacts import OrderArtifact
from repro.service.store import STALE_TEMP_SECONDS, ArtifactStore


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _artifact(tag: str, n: int = 32) -> OrderArtifact:
    rng = np.random.default_rng(abs(hash(tag)) % 2**32)
    return OrderArtifact(key=_key(tag), config=SpectralConfig(),
                         domain=tag, order=LinearOrder(rng.permutation(n)))


def _age(path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


def test_startup_sweeps_stale_temps_only(tmp_path):
    root = tmp_path / "s"
    root.mkdir()
    stale_meta = root / f"{_key('a')}.json.tmp"
    stale_perm = root / f"{_key('a')}.npy.tmp"
    fresh = root / f"{_key('b')}.json.tmp"
    for p in (stale_meta, stale_perm, fresh):
        p.write_bytes(b"partial write")
    _age(stale_meta, STALE_TEMP_SECONDS + 60)
    _age(stale_perm, STALE_TEMP_SECONDS + 60)

    store = ArtifactStore(root)
    assert not stale_meta.exists()
    assert not stale_perm.exists()
    assert fresh.exists()  # in-flight save is never reaped
    assert store.temps_swept == 2


def test_explicit_sweep_with_zero_age_gate(tmp_path):
    root = tmp_path / "s"
    root.mkdir()
    tmp = root / f"{_key('a')}.npy.tmp"
    tmp.write_bytes(b"x")
    _age(tmp, 5)
    store = ArtifactStore(root)
    assert tmp.exists()  # 5 s old: under the default gate
    swept = store.sweep_stale_temps(max_age=0)
    assert swept == [tmp]
    assert not tmp.exists()
    with pytest.raises(InvalidParameterError):
        store.sweep_stale_temps(max_age=-1)


def test_accounting_and_eviction_ignore_temps(tmp_path):
    store = ArtifactStore(tmp_path / "s")
    store.save(_artifact("kept"))
    clean_total = store.total_bytes()

    orphan = tmp_path / "s" / f"{_key('dead')}.npy.tmp"
    orphan.write_bytes(b"z" * 10_000)
    assert store.total_bytes() == clean_total
    assert store.keys() == [_key("kept")]

    # Eviction neither counts nor deletes the temp: the store already
    # fits, so nothing is evicted despite the 10 kB orphan on disk.
    assert store.evict_to(clean_total) == []
    assert (tmp_path / "s" / f"{_key('kept')}.json").exists()
    assert orphan.exists()


def test_missing_store_dir_needs_no_sweep(tmp_path):
    # Construction must not create the directory just to sweep it.
    store = ArtifactStore(tmp_path / "never-written")
    assert not (tmp_path / "never-written").exists()
    assert store.temps_swept == 0


def test_failed_save_leaves_no_temp(tmp_path, monkeypatch):
    store = ArtifactStore(tmp_path / "s")
    store.save(_artifact("first"))  # create the directory

    def boom(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(np, "save", boom)
    with pytest.raises(OSError):
        store.save(_artifact("second"))
    assert list((tmp_path / "s").glob("*.tmp")) == []
    # The metadata half of the failed save was written before the
    # permutation failed; a later load treats the pair defensively.
    assert store.load(_key("second")) is None

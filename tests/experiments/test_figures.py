"""Tests for the figure harnesses (small parameters for speed)."""

import pytest

from repro.experiments import (
    PAPER_FIG1_GAPS,
    fig4_metrics_table,
    paper_fig5a,
    paper_fig5b,
    paper_fig6a,
    paper_fig6b,
    render_fig1_orders,
    render_fig4,
    run_fig1,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6a,
    run_fig6b,
)
from repro.experiments.runner import ranking_agreement


# ----------------------------------------------------------------------
# Figure 1
# ----------------------------------------------------------------------
def test_fig1_fractals_pay_boundary_effect():
    result = run_fig1(side=4, backend="dense")
    worst = {s.name: s.y[result.x.index("any-adjacent-max")]
             for s in result.series}
    # Every fractal's worst adjacent gap exceeds sweep's; the exact paper
    # values (PAPER_FIG1_GAPS) are orientation-dependent, but the gaps
    # must be of at least that order of magnitude collectively.
    for fractal in ("peano", "gray", "hilbert"):
        assert worst[fractal] > worst["sweep"]
    assert worst["hilbert"] + worst["gray"] + worst["peano"] >= sum(
        PAPER_FIG1_GAPS.values())
    assert worst["spectral"] <= min(
        worst[f] for f in ("peano", "gray", "hilbert"))


def test_fig1_render_contains_all_mappings():
    art = render_fig1_orders(side=4, backend="dense")
    for name in ("sweep", "peano", "gray", "hilbert", "spectral"):
        assert f"[{name}]" in art


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------
def test_fig4_models_produce_distinct_valid_orders():
    outcome = run_fig4(side=4, backend="dense")
    orders = list(outcome.orders.values())
    assert len(orders) == 3
    for order in orders:
        assert sorted(order.permutation) == list(range(16))


def test_fig4_metrics_table_shape():
    table = fig4_metrics_table(side=4, backend="dense")
    assert table.series_names == ["4-connectivity", "8-connectivity",
                                  "weighted-r2"]
    assert len(table.x) == 4


def test_fig4_render():
    art = render_fig4(side=4, backend="dense")
    assert "[4-connectivity]" in art and "[8-connectivity]" in art


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def test_fig5a_small_reproduces_story():
    # 3-D side-4 keeps the test fast; the paper's ordering story must
    # still hold: spectral <= every fractal at every x.
    result = run_fig5a(side=4, ndim=3, backend="dense")
    spectral = result.series_by_name("spectral").y
    for fractal in ("peano", "gray", "hilbert"):
        curve = result.series_by_name(fractal).y
        assert all(s <= c + 1e-9 for s, c in zip(spectral, curve))


def test_fig5a_values_are_percentages():
    result = run_fig5a(side=3, ndim=3, backend="dense")
    for series in result.series:
        assert all(0.0 <= y <= 100.0 for y in series.y)


def test_fig5b_sweep_unfair_spectral_fair():
    result = run_fig5b(side=8, backend="dense")
    sweep_gap = [
        abs(a - b) for a, b in zip(result.series_by_name("sweep-X").y,
                                   result.series_by_name("sweep-Y").y)
    ]
    spectral_gap = [
        abs(a - b)
        for a, b in zip(result.series_by_name("spectral-X").y,
                        result.series_by_name("spectral-Y").y)
    ]
    assert all(s <= max(2.0, 0.15 * g + 2.0)
               for s, g in zip(spectral_gap, sweep_gap))
    assert sum(sweep_gap) > 4 * sum(spectral_gap)


def test_fig5b_optional_hilbert_series():
    result = run_fig5b(side=8, backend="dense", include_hilbert=True)
    assert "hilbert-X" in result.series_names
    assert "hilbert-Y" in result.series_names


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def test_fig6a_small_spectral_beats_fractals():
    result = run_fig6a(side=4, ndim=3, backend="dense")
    spectral = result.series_by_name("spectral").y
    for fractal in ("gray", "hilbert"):
        curve = result.series_by_name(fractal).y
        assert all(s <= c + 1e-9 for s, c in zip(spectral, curve))


def test_fig6b_spectral_lowest_stdev():
    result = run_fig6b(side=4, ndim=3, backend="dense")
    spectral = result.series_by_name("spectral").y
    for other in ("sweep", "peano", "gray", "hilbert"):
        curve = result.series_by_name(other).y
        assert sum(spectral) < sum(curve)


# ----------------------------------------------------------------------
# Digitized paper data sanity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", [paper_fig5a, paper_fig5b,
                                     paper_fig6a, paper_fig6b])
def test_paper_reference_results_well_formed(factory):
    result = factory()
    assert len(result.series) >= 4
    for series in result.series:
        assert len(series.y) == len(result.x)


def test_paper_fig5a_story_internally_consistent():
    """In the digitized curves, spectral < sweep < fractals at x=10."""
    reference = paper_fig5a()
    assert reference.series_by_name("spectral").y[0] < \
        reference.series_by_name("sweep").y[0] < \
        reference.series_by_name("peano").y[0]


def test_measured_fig5a_agrees_with_paper_shape():
    measured = run_fig5a(side=4, ndim=3, backend="dense")
    agreement = ranking_agreement(measured, paper_fig5a())
    assert agreement >= 0.6

"""Tests for the summary matrix and scaling study harnesses."""

import pytest

from repro.experiments import SUMMARY_METRICS, run_summary
from repro.experiments.scaling import DEFAULT_DOMAINS, run_scaling


def test_summary_shape():
    result = run_summary(side=8, backend="dense")
    assert result.x == list(SUMMARY_METRICS)
    assert set(result.series_names) == {
        "sweep", "peano", "gray", "hilbert", "spectral"}
    for series in result.series:
        assert len(series.y) == len(SUMMARY_METRICS)
        assert all(y >= 0 for y in series.y)


def test_summary_spectral_wins_two_sum():
    result = run_summary(side=8, backend="dense")
    index = list(SUMMARY_METRICS).index("two-sum")
    spectral = result.series_by_name("spectral").y[index]
    for name in ("peano", "gray", "hilbert"):
        assert spectral < result.series_by_name(name).y[index]


def test_summary_miss_rate_is_probability():
    result = run_summary(side=8, backend="dense")
    index = list(SUMMARY_METRICS).index("nn-miss-rate")
    for series in result.series:
        assert 0.0 <= series.y[index] <= 1.0


def test_scaling_shape_and_normalization():
    domains = ((2, 8), (3, 4))
    result = run_scaling(domains=domains, backend="dense")
    assert result.x == [2, 3]
    for series in result.series:
        assert all(0.0 < y <= 1.0 for y in series.y)


def test_scaling_default_domains_have_comparable_sizes():
    sizes = [side ** ndim for ndim, side in DEFAULT_DOMAINS]
    assert min(sizes) >= 256
    assert max(sizes) <= 1296


def test_scaling_fractals_worse_than_spectral():
    result = run_scaling(domains=((2, 8), (3, 4)), backend="dense")
    spectral = result.series_by_name("spectral").y
    gray = result.series_by_name("gray").y
    assert all(s < g for s, g in zip(spectral, gray))


def test_cli_summary(capsys):
    from repro.experiments.__main__ import main
    assert main(["summary", "--backend", "dense", "--side", "8"]) == 0
    output = capsys.readouterr().out
    assert "two-sum" in output

"""Tests for repro.experiments.runner and tables."""

import pytest

from repro.errors import InvalidParameterError
from repro.experiments import (
    ExperimentResult,
    ranking_agreement,
    ranking_at,
    render_report,
    render_table,
    winner_per_x,
)


@pytest.fixture
def result():
    r = ExperimentResult(
        exp_id="toy",
        title="A toy experiment",
        xlabel="x",
        ylabel="y",
        x=(1, 2, 3),
    )
    r.add_series("alpha", [3.0, 2.0, 1.0])
    r.add_series("beta", [1.0, 2.0, 3.0])
    return r


def test_add_series_validates_length(result):
    with pytest.raises(InvalidParameterError):
        result.add_series("gamma", [1.0])


def test_series_lookup(result):
    assert result.series_by_name("alpha").y == (3.0, 2.0, 1.0)
    assert result.series_names == ["alpha", "beta"]
    with pytest.raises(InvalidParameterError):
        result.series_by_name("gamma")


def test_ranking_at(result):
    assert ranking_at(result, 0) == ["beta", "alpha"]
    assert ranking_at(result, 2) == ["alpha", "beta"]
    # Tie at x=2: stable (series order).
    assert ranking_at(result, 1) == ["alpha", "beta"]
    with pytest.raises(InvalidParameterError):
        ranking_at(result, 3)


def test_winner_per_x(result):
    assert winner_per_x(result) == ["beta", "alpha", "alpha"]


def test_ranking_agreement_perfect(result):
    assert ranking_agreement(result, result) == 1.0


def test_ranking_agreement_flipped(result):
    flipped = ExperimentResult(exp_id="flip", title="", xlabel="x",
                               ylabel="y", x=(1, 2, 3))
    flipped.add_series("alpha", [1.0, 2.0, 3.0])
    flipped.add_series("beta", [3.0, 2.0, 1.0])
    # x=1 and x=3 disagree; x=2 is a tie in both (counts as agreement).
    assert ranking_agreement(result, flipped) == pytest.approx(1 / 3)


def test_ranking_agreement_needs_common_series(result):
    other = ExperimentResult(exp_id="o", title="", xlabel="x",
                             ylabel="y", x=(1, 2, 3))
    other.add_series("gamma", [1, 2, 3])
    with pytest.raises(InvalidParameterError):
        ranking_agreement(result, other)


def test_ranking_agreement_needs_matching_x(result):
    other = ExperimentResult(exp_id="o", title="", xlabel="x",
                             ylabel="y", x=(1, 2))
    other.add_series("alpha", [1, 2])
    other.add_series("beta", [2, 1])
    with pytest.raises(InvalidParameterError):
        ranking_agreement(result, other)


def test_render_table_contains_everything(result):
    result.notes = "a note"
    text = render_table(result)
    assert "toy: A toy experiment" in text
    assert "alpha" in text and "beta" in text
    assert "a note" in text
    # Integer-valued floats print without decimals.
    assert " 3" in text


def test_render_report_with_reference(result):
    text = render_report(result, result)
    assert "winner per x" in text
    assert "ranking agreement" in text
    assert "1.00" in text


def test_render_report_without_reference(result):
    text = render_report(result)
    assert "ranking agreement" not in text

"""Tests for repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    dataset_by_name,
    gaussian_cluster_cells,
    uniform_cells,
    zipf_cells,
)
from repro.errors import InvalidParameterError
from repro.geometry import Grid

GENERATORS = [uniform_cells, gaussian_cluster_cells, zipf_cells]


@pytest.mark.parametrize("generator", GENERATORS)
def test_exact_count_distinct_in_range(generator):
    grid = Grid((10, 10))
    cells = generator(grid, 30, seed=0)
    assert len(cells) == 30
    assert len(np.unique(cells)) == 30
    assert (cells >= 0).all() and (cells < 100).all()
    assert np.array_equal(cells, np.sort(cells))


@pytest.mark.parametrize("generator", GENERATORS)
def test_seeded_reproducibility(generator):
    grid = Grid((8, 8))
    assert np.array_equal(generator(grid, 20, seed=5),
                          generator(grid, 20, seed=5))
    assert not np.array_equal(generator(grid, 20, seed=5),
                              generator(grid, 20, seed=6))


@pytest.mark.parametrize("generator", GENERATORS)
def test_full_grid_request(generator):
    grid = Grid((4, 4))
    cells = generator(grid, 16, seed=1)
    assert list(cells) == list(range(16))


@pytest.mark.parametrize("generator", GENERATORS)
def test_count_validation(generator):
    grid = Grid((4, 4))
    with pytest.raises(InvalidParameterError):
        generator(grid, 0)
    with pytest.raises(InvalidParameterError):
        generator(grid, 17)


def test_gaussian_parameters_validated():
    grid = Grid((8, 8))
    with pytest.raises(InvalidParameterError):
        gaussian_cluster_cells(grid, 5, clusters=0)
    with pytest.raises(InvalidParameterError):
        gaussian_cluster_cells(grid, 5, spread=0.0)


def test_gaussian_clusters_are_concentrated():
    """Clustered data has a smaller mean pairwise distance than uniform."""
    grid = Grid((32, 32))
    clustered = gaussian_cluster_cells(grid, 60, clusters=2,
                                       spread=0.04, seed=2)
    uniform = uniform_cells(grid, 60, seed=2)

    def mean_pairwise(cells):
        pts = grid.points_of(cells)
        return float(np.abs(pts[:, None, :] - pts[None, :, :])
                     .sum(axis=2).mean())

    assert mean_pairwise(clustered) < mean_pairwise(uniform)


def test_zipf_skews_toward_origin():
    grid = Grid((32, 32))
    skewed = zipf_cells(grid, 100, alpha=1.5, seed=3)
    uniform = uniform_cells(grid, 100, seed=3)
    assert grid.points_of(skewed).mean() < grid.points_of(uniform).mean()
    with pytest.raises(InvalidParameterError):
        zipf_cells(grid, 5, alpha=0.0)


def test_dataset_by_name():
    grid = Grid((6, 6))
    for name in DATASET_NAMES:
        cells = dataset_by_name(name, grid, 10, seed=1)
        assert len(cells) == 10
    with pytest.raises(InvalidParameterError):
        dataset_by_name("fractal", grid, 10)

"""Tests for repro.mapping.interface."""

import numpy as np
import pytest

from repro.core import LinearOrder
from repro.errors import InvalidParameterError
from repro.geometry import Grid
from repro.api import make_mapping
from repro.mapping import (
    MAPPING_NAMES,
    PAPER_MAPPING_NAMES,
    CurveMapping,
    ExplicitMapping,
    SpectralMapping,
    paper_mappings,
)


def test_every_registered_mapping_produces_a_permutation(grid4):
    for name in MAPPING_NAMES:
        mapping = make_mapping(name, backend="dense") \
            if name == "spectral" else make_mapping(name)
        ranks = mapping.ranks_for_grid(grid4)
        assert sorted(ranks) == list(range(grid4.size))


def test_sweep_mapping_is_row_major_flat_index(grid4):
    ranks = CurveMapping("sweep").ranks_for_grid(grid4)
    assert list(ranks) == list(range(grid4.size))


def test_non_power_of_two_grid_compaction():
    """Bit curves on a 5x5 grid embed in 8x8 and compact to dense ranks."""
    grid = Grid((5, 5))
    for name in ("hilbert", "peano", "gray"):
        ranks = CurveMapping(name).ranks_for_grid(grid)
        assert sorted(ranks) == list(range(25))


def test_compaction_preserves_relative_order():
    """Compacted ranks keep the curve's visit sequence on kept cells."""
    from repro.curves import make_curve
    grid = Grid((3, 3))
    curve = make_curve("hilbert", 2, 2)
    keys = [curve.point_to_index(p) for p in grid.points()]
    ranks = CurveMapping("hilbert").ranks_for_grid(grid)
    by_key = np.argsort(keys, kind="stable")
    by_rank = np.argsort(ranks, kind="stable")
    assert list(by_key) == list(by_rank)


def test_rectangular_grid_support():
    grid = Grid((4, 7))
    for name in ("hilbert", "sweep", "diagonal"):
        ranks = CurveMapping(name).ranks_for_grid(grid)
        assert sorted(ranks) == list(range(28))


def test_mapping_cache_returns_same_object(grid4):
    mapping = CurveMapping("hilbert")
    assert mapping.order_for_grid(grid4) is mapping.order_for_grid(grid4)
    other = Grid((4, 4))
    assert mapping.order_for_grid(other) is mapping.order_for_grid(grid4)


def test_spectral_mapping_forwards_kwargs(grid4):
    mapping = SpectralMapping(backend="dense", connectivity="moore")
    assert mapping.algorithm.config.connectivity == "moore"
    assert sorted(mapping.ranks_for_grid(grid4)) == list(range(16))
    assert mapping.name == "spectral"


def test_make_mapping_validation():
    with pytest.raises(InvalidParameterError):
        make_mapping("voronoi")
    with pytest.raises(InvalidParameterError):
        make_mapping("hilbert", backend="dense")


def test_paper_mappings_roster():
    mappings = paper_mappings(backend="dense")
    assert [m.name for m in mappings] == list(PAPER_MAPPING_NAMES)


def test_explicit_mapping(grid3):
    order = LinearOrder(np.arange(9)[::-1])
    mapping = ExplicitMapping(grid3, order, name="reversed")
    assert mapping.name == "reversed"
    assert list(mapping.ranks_for_grid(grid3)) == list(order.ranks)
    with pytest.raises(InvalidParameterError):
        mapping.order_for_grid(Grid((2, 2)))
    with pytest.raises(InvalidParameterError):
        ExplicitMapping(Grid((2, 2)), order)


def test_repr_shows_name():
    assert "hilbert" in repr(CurveMapping("hilbert"))

"""Tests for the spectral mapping variants in the registry."""

import pytest

from repro.geometry import Grid
from repro.graph import grid_graph
from repro.api import make_mapping
from repro.mapping import (
    MAPPING_NAMES,
    SpectralMultilevelMapping,
)
from repro.metrics import two_sum


def test_registry_includes_all_spectral_variants():
    assert "spectral" in MAPPING_NAMES
    assert "spectral-rb" in MAPPING_NAMES
    assert "spectral-ml" in MAPPING_NAMES


@pytest.mark.parametrize("name", ["spectral-rb", "spectral-ml"])
def test_variants_produce_permutations(name):
    grid = Grid((6, 6))
    mapping = make_mapping(name, backend="dense")
    ranks = mapping.ranks_for_grid(grid)
    assert sorted(ranks) == list(range(36))
    assert mapping.name == name


def test_multilevel_mapping_kwargs():
    mapping = SpectralMultilevelMapping(min_size=16, smoothing_steps=20)
    grid = Grid((10, 10))
    assert sorted(mapping.ranks_for_grid(grid)) == list(range(100))


def test_variant_quality_ordering():
    """On the quadratic objective: global ~ multilevel << bisection."""
    grid = Grid((8, 8))
    graph = grid_graph(grid)
    costs = {}
    for name in ("spectral", "spectral-ml", "spectral-rb"):
        mapping = make_mapping(name, backend="dense")
        costs[name] = two_sum(graph, mapping.order_for_grid(grid))
    assert costs["spectral-ml"] <= 1.5 * costs["spectral"]
    assert costs["spectral-rb"] > 2.0 * costs["spectral"]

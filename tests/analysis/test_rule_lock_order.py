"""RPR002: the static lock-acquisition graph and its cycle check."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.resolve import ProjectIndex
from repro.analysis.rules.lock_order import build_lock_graph
from repro.analysis.source import load_sources

SRC = Path(__file__).resolve().parents[2] / "src"

CYCLE_TREE = {
    "repro/service/a.py": '''
        import threading
        from repro.service.b import B

        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self._b = B(self)

            def forward(self):
                with self._lock:
                    self._b.poke()

            def poke(self):
                with self._lock:
                    pass
    ''',
    "repro/service/b.py": '''
        import threading

        class B:
            def __init__(self, a: "A"):
                self._lock = threading.Lock()
                self._a = a

            def backward(self):
                with self._lock:
                    self._a.poke()

            def poke(self):
                with self._lock:
                    pass
    ''',
}


def test_cycle_flagged(lint_tree):
    findings = lint_tree(CYCLE_TREE, select=["RPR002"])
    assert [f.rule for f in findings] == ["RPR002"]
    message = findings[0].message
    assert "A._lock" in message and "B._lock" in message
    assert findings[0].path.startswith("repro/service/")
    assert findings[0].line > 0


def test_one_direction_clean(lint_tree):
    acyclic = dict(CYCLE_TREE)
    acyclic["repro/service/b.py"] = acyclic["repro/service/b.py"].replace(
        "            def backward(self):\n"
        "                with self._lock:\n"
        "                    self._a.poke()\n", "")
    assert lint_tree(acyclic, select=["RPR002"]) == []


def _real_graph():
    sources, failures = load_sources([SRC])
    assert failures == []
    return build_lock_graph(ProjectIndex(sources))


def test_real_tree_reconstructs_known_hierarchy():
    """The graph recovers the hierarchy the serving PRs built by hand:

    the sharded frontend and the ordering service both take their own
    lock first and the shared LRU cache's lock second, and the fleet
    nests the per-worker handle lock and the stats lock under the
    fleet lock.
    """
    graph = _real_graph()
    edges = set(graph.edges)
    assert ("ShardedIndexFrontend._lock", "LRUCache._lock") in edges
    assert ("OrderingService._lock", "LRUCache._lock") in edges
    assert ("ProcessFleet._lock", "_WorkerHandle.lock") in edges
    # Every node the serving stack's known locks should produce.
    for node in ("ArtifactStore._write_lock", "SpectralIndex._lock",
                 "OrderingService._lock", "ShardedIndexFrontend._lock",
                 "_StoreLock._thread_lock"):
        assert node in graph.nodes, node


def test_real_tree_store_io_outside_service_lock():
    """Disk saves happen *outside* the ordering-service lock (the PR-4
    contract: compute and I/O never run under the hot-path mutex), so
    the graph must not contain a service-lock -> store-lock edge."""
    graph = _real_graph()
    assert ("OrderingService._lock", "ArtifactStore._write_lock") \
        not in graph.edges


def test_real_tree_acyclic():
    assert _real_graph().cycles() == []


def test_edge_sites_point_at_source():
    graph = _real_graph()
    sites = graph.edges[("ShardedIndexFrontend._lock", "LRUCache._lock")]
    assert all(site.path.endswith("sharding.py") for site in sites)
    assert all(site.line > 0 for site in sites)

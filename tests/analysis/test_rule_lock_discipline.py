"""RPR001: guarded attributes only under their lock."""

from __future__ import annotations

GUARDED_CLASS = '''
    import threading

    class Service:
        def __init__(self):
            self._lock = threading.RLock()
            self._stats = 0  # guarded-by: _lock

        def good(self):
            with self._lock:
                self._stats += 1

        def bad(self):
            return self._stats
'''


def test_unguarded_access_flagged(lint_tree):
    findings = lint_tree({"repro/service/thing.py": GUARDED_CLASS})
    assert [f.rule for f in findings] == ["RPR001"]
    finding = findings[0]
    assert finding.path == "repro/service/thing.py"
    assert "_stats" in finding.message and "_lock" in finding.message
    # Points at the access in bad(), not the annotated declaration.
    assert finding.line == GUARDED_CLASS.splitlines().index(
        "            return self._stats") + 1


def test_guarded_access_clean(lint_tree):
    clean = GUARDED_CLASS.replace(
        "        def bad(self):\n            return self._stats\n", "")
    assert lint_tree({"repro/service/thing.py": clean}) == []


def test_init_is_exempt(lint_tree):
    findings = lint_tree({"repro/service/thing.py": '''
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock
                self._n += 1
    '''})
    assert findings == []


def test_locked_suffix_methods_exempt(lint_tree):
    findings = lint_tree({"repro/service/thing.py": '''
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self._bump_locked()

            def _bump_locked(self):
                self._n += 1
    '''})
    assert findings == []


def test_closure_resets_held_set(lint_tree):
    findings = lint_tree({"repro/service/thing.py": '''
        import threading

        class Service:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock

            def schedule(self):
                with self._lock:
                    def later():
                        return self._n
                    return later
    '''})
    assert [f.rule for f in findings] == ["RPR001"]


def test_unknown_lock_name_flagged(lint_tree):
    findings = lint_tree({"repro/service/thing.py": '''
        class Service:
            def __init__(self):
                self._n = 0  # guarded-by: _missing
    '''})
    assert [f.rule for f in findings] == ["RPR001"]
    assert "_missing" in findings[0].message


def test_inline_suppression(lint_tree):
    suppressed = GUARDED_CLASS.replace(
        "            return self._stats",
        "            return self._stats  # repro-lint: disable=RPR001")
    assert lint_tree({"repro/service/thing.py": suppressed}) == []


def test_inherited_lock_recognized(lint_tree):
    findings = lint_tree({"repro/obs/thing.py": '''
        import threading

        class Base:
            def __init__(self):
                self._lock = threading.Lock()

        class Child(Base):
            def __init__(self):
                super().__init__()
                self._n = 0  # guarded-by: _lock

            def read(self):
                with self._lock:
                    return self._n
    '''})
    assert findings == []

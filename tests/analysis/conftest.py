"""Fixture plumbing for the repro-lint test suite.

Rule tests build throwaway ``repro/...`` trees under ``tmp_path`` —
:func:`repro.analysis.source.module_name_for` anchors module names at
the innermost ``repro`` directory, so a snippet written to
``tmp/repro/core/thing.py`` is linted exactly as ``repro.core.thing``
would be.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

import pytest

from repro.analysis import Finding, run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write a dict of ``relpath -> source`` and lint it.

    Returns a callable: ``lint_tree({"repro/core/x.py": '...'},
    select=["RPR006"])`` -> list of findings, with display paths
    relative to ``tmp_path``.
    """

    def _lint(files: Dict[str, str], **kwargs) -> List[Finding]:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        run = run_lint([tmp_path], root=tmp_path, **kwargs)
        return run.findings

    return _lint


def rules_of(findings) -> List[str]:
    return [finding.rule for finding in findings]

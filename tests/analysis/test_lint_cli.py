"""repro-lint CLI behavior: exit codes, formats, baseline round-trip."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.cli import main

CLEAN = '''
    def add(a, b):
        return a + b
'''

DIRTY = '''
    import time

    def order(cells):
        return sorted(cells), time.time()
'''


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_exit_zero_on_clean_tree(in_tmp, capsys):
    _write(in_tmp, "repro/util.py", CLEAN)
    assert main([str(in_tmp), "--root", str(in_tmp)]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_exit_one_on_findings(in_tmp, capsys):
    _write(in_tmp, "repro/core/ordering.py", DIRTY)
    assert main([str(in_tmp), "--root", str(in_tmp)]) == 1
    out = capsys.readouterr().out
    assert "RPR006" in out
    assert "repro/core/ordering.py:5" in out


def test_exit_two_on_unknown_rule(in_tmp, capsys):
    _write(in_tmp, "repro/util.py", CLEAN)
    assert main([str(in_tmp), "--select", "RPR999"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_json_format_is_valid(in_tmp, capsys):
    _write(in_tmp, "repro/core/ordering.py", DIRTY)
    code = main([str(in_tmp), "--root", str(in_tmp), "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["counts"]["new"] == 1
    (finding,) = document["findings"]
    assert finding["rule"] == "RPR006"
    assert finding["new"] is True
    assert finding["path"] == "repro/core/ordering.py"
    assert finding["fingerprint"]


def test_baseline_round_trip(in_tmp, capsys):
    """write-baseline -> rerun -> zero new findings -> exit 0."""
    _write(in_tmp, "repro/core/ordering.py", DIRTY)
    argv = [str(in_tmp), "--root", str(in_tmp)]
    assert main(argv) == 1
    assert main(argv + ["--write-baseline"]) == 0
    assert Path(".repro-lint-baseline.json").is_file()
    capsys.readouterr()
    assert main(argv) == 0
    assert "pinned by baseline" in capsys.readouterr().out
    # A second violation on top of the pinned one is still new.
    _write(in_tmp, "repro/core/extra.py", DIRTY)
    assert main(argv) == 1


def test_baseline_fingerprints_survive_line_shifts(in_tmp):
    """Inserting unrelated lines above a pinned finding stays clean."""
    path = _write(in_tmp, "repro/core/ordering.py", DIRTY)
    argv = [str(in_tmp), "--root", str(in_tmp)]
    assert main(argv + ["--write-baseline"]) == 0
    shifted = "'''module docstring'''\nX = 1\n" + path.read_text()
    path.write_text(shifted, encoding="utf-8")
    assert main(argv) == 0


def test_no_baseline_flag(in_tmp):
    _write(in_tmp, "repro/core/ordering.py", DIRTY)
    argv = [str(in_tmp), "--root", str(in_tmp)]
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0
    assert main(argv + ["--no-baseline"]) == 1


def test_select_and_ignore(in_tmp):
    _write(in_tmp, "repro/core/ordering.py", DIRTY)
    argv = [str(in_tmp), "--root", str(in_tmp)]
    assert main(argv + ["--select", "RPR001"]) == 0
    assert main(argv + ["--ignore", "RPR006"]) == 0
    assert main(argv + ["--select", "RPR006"]) == 1


def test_parse_failure_reported(in_tmp, capsys):
    _write(in_tmp, "repro/broken.py", "def f(:\n")
    assert main([str(in_tmp), "--root", str(in_tmp)]) == 1
    assert "RPR000" in capsys.readouterr().out


def test_list_rules(in_tmp, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                    "RPR006"):
        assert rule_id in out


def test_print_knob_table(in_tmp, capsys):
    from repro.knobs import render_knob_table
    assert main(["--print-knob-table"]) == 0
    assert capsys.readouterr().out == render_knob_table()

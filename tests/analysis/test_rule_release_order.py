"""RPR008: manual acquire/release discipline and unwind order."""

from __future__ import annotations


def _select(findings, rule="RPR008"):
    return [f for f in findings if f.rule == rule]


def test_acquire_with_early_return_flagged(lint_tree):
    source = '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.free = []

            def take(self):
                self._lock.acquire()
                if not self.free:
                    self._lock.release()
                    return None
                item = self.free.pop()
                self._lock.release()
                return item
    '''
    findings = _select(lint_tree({"repro/service/pool.py": source}))
    assert len(findings) == 1
    finding = findings[0]
    assert "try/finally" in finding.message
    assert finding.line == source.splitlines().index(
        "                self._lock.acquire()") + 1


def test_acquire_then_try_finally_is_clean(lint_tree):
    findings = _select(lint_tree({"repro/service/pool.py": '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.free = []

            def take(self):
                self._lock.acquire()
                try:
                    if not self.free:
                        return None
                    return self.free.pop()
                finally:
                    self._lock.release()
    '''}))
    assert findings == []


def test_acquire_inside_guarding_try_is_clean(lint_tree):
    findings = _select(lint_tree({"repro/service/pool.py": '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def hold(self):
                try:
                    self._lock.acquire()
                    return self.work()
                finally:
                    self._lock.release()

            def work(self):
                return 1
    '''}))
    assert findings == []


def test_exception_path_without_finally_flagged(lint_tree):
    """A bare try/except releases on neither the raise nor the return."""
    findings = _select(lint_tree({"repro/service/pool.py": '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def hold(self):
                self._lock.acquire()
                try:
                    value = self.work()
                except ValueError:
                    value = None
                self._lock.release()
                return value

            def work(self):
                return 1
    '''}))
    assert len(findings) == 1
    assert "try/finally" in findings[0].message


def test_enter_exit_split_is_exempt(lint_tree):
    """The _StoreLock pattern: acquire in __enter__, release in __exit__."""
    findings = _select(lint_tree({"repro/service/storelock.py": '''
        import threading

        class _StoreLock:
            def __init__(self):
                self._thread_lock = threading.RLock()

            def __enter__(self):
                self._thread_lock.acquire()
                return self

            def __exit__(self, exc_type, exc, tb):
                self._thread_lock.release()
    '''}))
    assert findings == []


def test_enter_without_exit_release_flagged(lint_tree):
    findings = _select(lint_tree({"repro/service/badlock.py": '''
        import threading

        class _BadLock:
            def __init__(self):
                self._thread_lock = threading.RLock()

            def __enter__(self):
                self._thread_lock.acquire()
                return self

            def __exit__(self, exc_type, exc, tb):
                pass
    '''}))
    assert len(findings) == 1


def test_out_of_order_release_flagged(lint_tree):
    source = '''
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def shuffle(self):
                self._a.acquire()
                try:
                    self._b.acquire()
                    try:
                        pass
                    finally:
                        self._a.release()
                        self._b.release()
                finally:
                    self._a.release()
    '''
    findings = _select(lint_tree({"repro/service/pair.py": source}))
    assert len(findings) == 1
    finding = findings[0]
    assert "reverse acquisition order" in finding.message
    assert "'self._a'" in finding.message and \
        "'self._b'" in finding.message


def test_lifo_release_is_clean(lint_tree):
    findings = _select(lint_tree({"repro/service/pair.py": '''
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def nest(self):
                self._a.acquire()
                try:
                    self._b.acquire()
                    try:
                        pass
                    finally:
                        self._b.release()
                finally:
                    self._a.release()
    '''}))
    assert findings == []


def test_manual_hold_then_with_inversion_flagged(lint_tree):
    """RPR002's blind spot: it never extends held context through a
    manual acquire, so this inversion is RPR008's to catch."""
    source = '''
        import threading

        class Pair:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def establishes_order(self):
                with self._a:
                    with self._b:
                        pass

            def inverts(self):
                self._b.acquire()
                try:
                    with self._a:
                        pass
                finally:
                    self._b.release()
    '''
    findings = _select(lint_tree({"repro/service/pair.py": source}))
    assert len(findings) == 1
    finding = findings[0]
    assert "inverts the established lock order" in finding.message
    assert "Pair._a" in finding.message and "Pair._b" in finding.message
    # RPR002 alone does not see it: the graph has a->b only, no cycle.
    assert _select(lint_tree({"repro/service/pair.py": source}),
                   rule="RPR002") == []


def test_expression_position_acquire_flagged(lint_tree):
    findings = _select(lint_tree({"repro/service/cond.py": '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def poll(self):
                if self._lock.acquire(False):
                    self._lock.release()
                    return True
                return False
    '''}))
    assert len(findings) == 1
    assert "expression position" in findings[0].message


def test_local_lock_variables_are_checked(lint_tree):
    findings = _select(lint_tree({"repro/service/local.py": '''
        import threading

        class Job:
            def run(self):
                gate = threading.Lock()
                gate.acquire()
                return gate
    '''}))
    assert len(findings) == 1
    assert "'gate.acquire()'" in findings[0].message


def test_with_statements_alone_are_exempt(lint_tree):
    findings = _select(lint_tree({"repro/service/withs.py": '''
        import threading

        class Plain:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def bump(self):
                with self._lock:
                    self.n += 1
    '''}))
    assert findings == []

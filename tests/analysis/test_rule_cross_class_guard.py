"""RPR007: another object's guarded attributes only under *its* lock."""

from __future__ import annotations

#: A lock-owning class plus a peer that touches it both ways.
CONN_PAIR = '''
    import threading

    class Conn:
        def __init__(self):
            self.lock = threading.Lock()
            self.inflight = 0  # guarded-by: lock

    class Server:
        def route(self, conn: Conn):
            with conn.lock:
                conn.inflight += 1

        def leak(self, conn: Conn):
            return conn.inflight
'''


def _select(findings, rule="RPR007"):
    return [f for f in findings if f.rule == rule]


def test_unlocked_cross_class_access_flagged(lint_tree):
    findings = _select(lint_tree({"repro/net/pair.py": CONN_PAIR}))
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "repro/net/pair.py"
    assert "Conn.inflight" in finding.message
    assert "with conn.lock" in finding.message
    assert finding.line == CONN_PAIR.splitlines().index(
        "            return conn.inflight") + 1


def test_access_under_owners_lock_is_clean(lint_tree):
    clean = CONN_PAIR.replace(
        "        def leak(self, conn: Conn):\n"
        "            return conn.inflight\n", "")
    assert _select(lint_tree({"repro/net/pair.py": clean})) == []


def test_wrong_objects_lock_does_not_guard(lint_tree):
    findings = _select(lint_tree({"repro/net/two.py": '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def shuffle(self, a: Conn, b: Conn):
                with a.lock:
                    b.inflight += 1
    '''}))
    assert len(findings) == 1
    assert "'b.inflight'" in findings[0].message


def test_locked_suffix_helper_is_exempt(lint_tree):
    findings = _select(lint_tree({"repro/net/helper.py": '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def _bump_locked(self, conn: Conn):
                conn.inflight += 1
    '''}))
    assert findings == []


def test_attribute_typed_owner_resolves(lint_tree):
    """``self._cache`` typed by annotation resolves to the owner class."""
    findings = _select(lint_tree({"repro/service/cachey.py": '''
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

        class Reporter:
            def __init__(self, cache: Cache):
                self._cache = cache

            def report(self):
                return self._cache.hits

            def report_safely(self):
                with self._cache._lock:
                    return self._cache.hits
    '''}))
    assert len(findings) == 1
    assert "self._cache.hits" in findings[0].message


def test_closure_resets_held_locks(lint_tree):
    """A closure built under the lock may run after it is released."""
    findings = _select(lint_tree({"repro/net/closure.py": '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def defer(self, conn: Conn):
                with conn.lock:
                    def later():
                        return conn.inflight
                    return later
    '''}))
    assert len(findings) == 1


def test_unresolvable_owner_is_skipped(lint_tree):
    """No annotation, no inference — no finding (never a false alarm)."""
    findings = _select(lint_tree({"repro/net/opaque.py": '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def route(self, conn):
                conn.inflight += 1
    '''}))
    assert findings == []


def test_inline_suppression_with_reason(lint_tree):
    findings = _select(lint_tree({"repro/net/sup.py": '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def peek(self, conn: Conn):
                # Advisory read; torn values acceptable for reporting.
                return conn.inflight  # repro-lint: disable=RPR007
    '''}))
    assert findings == []

"""Meta-checks: the linter handles the whole real tree, and every rule
actually fires — one deliberate violation per rule id, each reported
with the right rule and file:line."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import ALL_RULE_IDS, run_lint
from repro.analysis.cli import main
from repro.analysis.source import load_sources

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"

#: One self-contained violation per rule, in its own scratch module.
VIOLATIONS = {
    "RPR001": ("repro/scratch/v1.py", '''
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0  # guarded-by: _lock

            def peek(self):
                return self._n
    '''),
    "RPR002": ("repro/scratch/v2.py", '''
        import threading

        class Left:
            def __init__(self, other: "Right"):
                self._lock = threading.Lock()
                self._other = other

            def go(self):
                with self._lock:
                    self._other.stop()

            def stop(self):
                with self._lock:
                    pass

        class Right:
            def __init__(self, other: Left):
                self._lock = threading.Lock()
                self._other = other

            def go(self):
                with self._lock:
                    self._other.stop()

            def stop(self):
                with self._lock:
                    pass
    '''),
    "RPR003": ("repro/serve/protocol.py", '''
        import threading
        from dataclasses import dataclass

        @dataclass
        class BadRequest:
            guard: threading.Lock = None
    '''),
    "RPR004": ("repro/scratch/v4.py", '''
        import os
        MYSTERY = os.environ.get("REPRO_MYSTERY_KNOB", "1")
    '''),
    "RPR005": ("repro/scratch/v5.py", '''
        from repro.obs.tracing import span

        def serve(key):
            with span("scratch", extras={"key": key}):
                pass
    '''),
    "RPR006": ("repro/core/scratch6.py", '''
        import time

        def order(cells):
            return sorted(cells), time.time()
    '''),
    "RPR007": ("repro/scratch/v7.py", '''
        import threading

        class Conn:
            def __init__(self):
                self.lock = threading.Lock()
                self.inflight = 0  # guarded-by: lock

        class Server:
            def route(self, conn: Conn):
                conn.inflight += 1
    '''),
    "RPR008": ("repro/scratch/v8.py", '''
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.free = []

            def take(self):
                self._lock.acquire()
                if not self.free:
                    self._lock.release()
                    return None
                item = self.free.pop()
                self._lock.release()
                return item
    '''),
}


def test_linter_parses_entire_src_tree():
    sources, failures = load_sources([SRC])
    assert failures == []
    assert len(sources) > 100  # the whole library, not a subset


def test_src_tree_is_clean_against_checked_in_baseline(monkeypatch):
    monkeypatch.chdir(REPO)
    assert main(["src"]) == 0


def test_every_rule_fires_with_location(tmp_path, monkeypatch, capsys):
    """Acceptance: one deliberate violation of each rule in a scratch
    file exits non-zero with the correct rule id and file:line."""
    for rule_id, (rel, text) in VIOLATIONS.items():
        root = tmp_path / rule_id
        path = root / rel
        path.parent.mkdir(parents=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
        monkeypatch.chdir(root)
        code = main([str(root), "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 1, f"{rule_id} did not fail the gate"
        assert rule_id in out, f"{rule_id} missing from output:\n{out}"
        reported = [line for line in out.splitlines()
                    if line.startswith(rel + ":")]
        assert reported, f"{rule_id} lacks a {rel}:line anchor:\n{out}"
        location = reported[0].split(" ")[0]
        line_no = int(location.split(":")[1])
        assert line_no > 0


def test_all_rule_ids_are_stable():
    assert ALL_RULE_IDS == ("RPR001", "RPR002", "RPR003", "RPR004",
                            "RPR005", "RPR006", "RPR007", "RPR008")


def test_full_run_finding_paths_are_relative():
    run = run_lint([SRC], root=REPO)
    # Clean tree: nothing to assert per finding, but the run must have
    # loaded every module with repo-relative display paths.
    assert run.findings == []
    assert all(s.display_path.startswith("src/") for s in run.sources)

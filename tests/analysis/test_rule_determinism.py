"""RPR006: no wall-clock or randomness in deterministic modules."""

from __future__ import annotations


def test_wall_clock_flagged_in_core(lint_tree):
    findings = lint_tree({"repro/core/ordering.py": '''
        import time

        def order(cells):
            stamp = time.time()
            return sorted(cells), stamp
    '''}, select=["RPR006"])
    assert [f.rule for f in findings] == ["RPR006"]
    assert "time.time" in findings[0].message


def test_perf_counter_allowed(lint_tree):
    findings = lint_tree({"repro/core/ordering.py": '''
        import time

        def order(cells):
            started = time.perf_counter()
            result = sorted(cells)
            return result, time.perf_counter() - started
    '''}, select=["RPR006"])
    assert findings == []


def test_random_import_flagged(lint_tree):
    findings = lint_tree({"repro/graph/laplacian.py": '''
        import random
    '''}, select=["RPR006"])
    assert [f.rule for f in findings] == ["RPR006"]


def test_np_random_flagged(lint_tree):
    findings = lint_tree({"repro/linalg/solver.py": '''
        import numpy as np

        def start_vector(n):
            return np.random.default_rng().normal(size=n)
    '''}, select=["RPR006"])
    assert [f.rule for f in findings] == ["RPR006"]


def test_wall_clock_fine_outside_deterministic_closure(lint_tree):
    findings = lint_tree({"repro/obs/metrics.py": '''
        import time

        def stamp():
            return time.time()
    '''}, select=["RPR006"])
    assert findings == []


def test_builtin_hash_flagged_in_fingerprint(lint_tree):
    findings = lint_tree({"repro/service/fingerprint.py": '''
        def digest(config):
            return hash(config)
    '''}, select=["RPR006"])
    assert [f.rule for f in findings] == ["RPR006"]
    assert "PYTHONHASHSEED" in findings[0].message


def test_dunder_hash_exempt(lint_tree):
    findings = lint_tree({"repro/service/routing.py": '''
        class Key:
            def __init__(self, parts):
                self.parts = tuple(parts)

            def __hash__(self):
                return hash(self.parts)
    '''}, select=["RPR006"])
    assert findings == []


def test_from_time_import_time_flagged(lint_tree):
    findings = lint_tree({"repro/curves/hilbert.py": '''
        from time import time

        def order(cells):
            return sorted(cells), time()
    '''}, select=["RPR006"])
    assert [f.rule for f in findings] == ["RPR006"]

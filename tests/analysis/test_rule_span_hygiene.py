"""RPR005: span sites stay allocation-free on the disabled path."""

from __future__ import annotations


def test_dict_attribute_flagged(lint_tree):
    findings = lint_tree({"repro/service/ordering.py": '''
        from repro.obs.tracing import span

        def serve(key):
            with span("service.order", extras={"key": key}):
                pass
    '''}, select=["RPR005"])
    assert [f.rule for f in findings] == ["RPR005"]
    assert "extras" in findings[0].message
    assert findings[0].severity == "warning"


def test_kwargs_unpack_flagged(lint_tree):
    findings = lint_tree({"repro/service/ordering.py": '''
        from repro.obs.tracing import span

        def serve(key, attrs):
            with span("service.order", **attrs):
                pass
    '''}, select=["RPR005"])
    assert [f.rule for f in findings] == ["RPR005"]
    assert "kwargs" in findings[0].message


def test_scalar_attributes_clean(lint_tree):
    findings = lint_tree({"repro/service/ordering.py": '''
        from repro.obs.tracing import span

        def serve(key, request, n):
            with span("service.order", key=key[:12], n=len(key),
                      request=type(request).__name__,
                      big=n > 100):
                pass
    '''}, select=["RPR005"])
    assert findings == []


def test_direct_span_instantiation_flagged(lint_tree):
    findings = lint_tree({"repro/service/ordering.py": '''
        from repro.obs.tracing import Span

        def serve(key):
            with Span("service.order", {"key": key}):
                pass
    '''}, select=["RPR005"])
    assert [f.rule for f in findings] == ["RPR005"]
    assert "Span(" in findings[0].message


def test_span_instantiation_allowed_inside_obs(lint_tree):
    findings = lint_tree({"repro/obs/tracing.py": '''
        class Span:
            def __init__(self, name, attributes):
                self.name = name

        def span(name, **attributes):
            return Span(name, attributes)
    '''}, select=["RPR005"])
    assert findings == []

"""RPR003: pickle-safety of wire-reachable dataclasses."""

from __future__ import annotations


def test_lambda_default_flagged(lint_tree):
    findings = lint_tree({"repro/net/messages.py": '''
        from dataclasses import dataclass, field

        @dataclass
        class Request:
            callback: object = field(default_factory=lambda: None)
    '''}, select=["RPR003"])
    assert [f.rule for f in findings] == ["RPR003"]
    assert "lambda" in findings[0].message
    assert findings[0].path == "repro/net/messages.py"


def test_lock_field_flagged(lint_tree):
    findings = lint_tree({"repro/serve/protocol.py": '''
        import threading
        from dataclasses import dataclass

        @dataclass
        class Request:
            guard: threading.Lock = None
    '''}, select=["RPR003"])
    assert [f.rule for f in findings] == ["RPR003"]
    assert "unpicklable" in findings[0].message


def test_reachability_through_nested_dataclass(lint_tree):
    findings = lint_tree({
        "repro/net/messages.py": '''
            from dataclasses import dataclass
            from repro.net.payload import Payload

            @dataclass
            class Envelope:
                payload: Payload = None
        ''',
        "repro/net/payload.py": '''
            import socket
            from dataclasses import dataclass

            @dataclass
            class Payload:
                conn: socket.socket = None
        ''',
    }, select=["RPR003"])
    assert [f.rule for f in findings] == ["RPR003"]
    assert findings[0].path == "repro/net/payload.py"


def test_array_field_requires_reduce_hook(lint_tree):
    tree = {"repro/serve/protocol.py": '''
        from dataclasses import dataclass
        import numpy as np

        @dataclass
        class Result:
            order: np.ndarray = None
    '''}
    findings = lint_tree(dict(tree), select=["RPR003"])
    assert [f.rule for f in findings] == ["RPR003"]
    assert "__reduce__" in findings[0].message

    with_hook = {"repro/serve/protocol.py": tree[
        "repro/serve/protocol.py"].replace(
        "            order: np.ndarray = None",
        "            order: np.ndarray = None\n"
        "            def __reduce__(self):\n"
        "                return (Result, (self.order,))")}
    assert lint_tree(with_hook, select=["RPR003"]) == []


def test_plain_fields_clean(lint_tree):
    findings = lint_tree({"repro/net/messages.py": '''
        from dataclasses import dataclass
        from typing import Dict, Optional, Tuple

        @dataclass
        class Request:
            key: str = ""
            shard: int = 0
            extras: Optional[Dict[str, float]] = None
            path: Tuple[int, ...] = ()
    '''}, select=["RPR003"])
    assert findings == []


def test_real_wire_modules_clean():
    from pathlib import Path

    from repro.analysis import run_lint
    src = Path(__file__).resolve().parents[2] / "src"
    run = run_lint([src], select=["RPR003"])
    assert run.findings == []

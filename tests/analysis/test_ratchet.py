"""The typing ratchet: regression fails, improvement shrinks, --write
rewrites.  A fake runner stands in for mypy so the arithmetic is
covered on machines without the [dev] extra."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import ratchet
from repro.analysis.ratchet import (
    DEFAULT_BUDGET_NAME,
    PackageBudget,
    RatchetConfig,
    RatchetError,
    load_config,
    main,
    mypy_available,
    package_target,
    write_config,
)

REPO = Path(__file__).resolve().parents[2]


def make_repo(tmp_path, budgets, flags=("--strict-ish",)):
    """A scratch repo root with src/ packages and a budget file."""
    config = RatchetConfig(
        mypy="mypy==1.14.1", common_flags=tuple(flags),
        packages=tuple(PackageBudget(name, budget)
                       for name, budget in sorted(budgets.items())))
    write_config(tmp_path / DEFAULT_BUDGET_NAME, config)
    for name in budgets:
        pkg = tmp_path / "src" / Path(*name.split("."))
        pkg.mkdir(parents=True, exist_ok=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
    return tmp_path


def fake_runner(counts):
    """A runner returning canned per-package error counts."""
    calls = []

    def run(package, flags, root):
        calls.append((package, tuple(flags), root))
        return counts[package], f"{package}: {counts[package]} error(s)"

    run.calls = calls
    return run


def test_at_budget_exits_zero(tmp_path, capsys):
    root = make_repo(tmp_path, {"repro.net": 2, "repro.obs": 0})
    runner = fake_runner({"repro.net": 2, "repro.obs": 0})
    assert main(["--root", str(root)], runner=runner) == 0
    out = capsys.readouterr().out
    assert "[ok]" in out and "regressed" not in out
    # Budgets untouched on an at-budget run.
    config = load_config(root / DEFAULT_BUDGET_NAME)
    assert {e.package: e.budget for e in config.packages} == \
        {"repro.net": 2, "repro.obs": 0}


def test_regression_fails_and_keeps_budget(tmp_path, capsys):
    root = make_repo(tmp_path, {"repro.net": 0})
    runner = fake_runner({"repro.net": 3})
    assert main(["--root", str(root)], runner=runner) == 1
    captured = capsys.readouterr()
    assert "typing regressed in repro.net (3 > 0)" in captured.err
    # The raw mypy output for the regressed package is surfaced.
    assert "repro.net: 3 error(s)" in captured.out
    config = load_config(root / DEFAULT_BUDGET_NAME)
    assert config.packages[0].budget == 0


def test_improvement_auto_shrinks_budget(tmp_path, capsys):
    root = make_repo(tmp_path, {"repro.net": 5, "repro.obs": 1})
    runner = fake_runner({"repro.net": 2, "repro.obs": 1})
    assert main(["--root", str(root)], runner=runner) == 0
    assert "ratcheted down for repro.net (5 -> 2)" in \
        capsys.readouterr().out
    config = load_config(root / DEFAULT_BUDGET_NAME)
    assert {e.package: e.budget for e in config.packages} == \
        {"repro.net": 2, "repro.obs": 1}
    # The shrunk budget now binds: the old count is a regression.
    assert main(["--root", str(root)],
                runner=fake_runner({"repro.net": 5, "repro.obs": 1})) == 1


def test_write_records_both_directions(tmp_path):
    root = make_repo(tmp_path, {"repro.net": 1, "repro.obs": 1})
    runner = fake_runner({"repro.net": 4, "repro.obs": 0})
    assert main(["--root", str(root), "--write"], runner=runner) == 0
    config = load_config(root / DEFAULT_BUDGET_NAME)
    assert {e.package: e.budget for e in config.packages} == \
        {"repro.net": 4, "repro.obs": 0}


def test_subset_run_checks_only_named_packages(tmp_path):
    root = make_repo(tmp_path, {"repro.net": 0, "repro.obs": 0})
    runner = fake_runner({"repro.net": 0})
    assert main(["--root", str(root), "repro.net"], runner=runner) == 0
    assert [call[0] for call in runner.calls] == ["repro.net"]


def test_unknown_package_is_a_usage_error(tmp_path, capsys):
    root = make_repo(tmp_path, {"repro.net": 0})
    assert main(["--root", str(root), "repro.nope"],
                runner=fake_runner({})) == 2
    assert "not in the budget file" in capsys.readouterr().err


def test_per_package_flags_extend_common_flags(tmp_path):
    root = make_repo(tmp_path, {"repro.net": 0})
    config = load_config(root / DEFAULT_BUDGET_NAME)
    entry = config.packages[0]
    entry = PackageBudget(entry.package, entry.budget,
                          flags=("--extra",))
    write_config(root / DEFAULT_BUDGET_NAME,
                 RatchetConfig(config.mypy, config.common_flags,
                               (entry,)))
    runner = fake_runner({"repro.net": 0})
    assert main(["--root", str(root)], runner=runner) == 0
    assert runner.calls[0][1] == ("--strict-ish", "--extra")


def test_missing_budget_file_is_a_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path)], runner=fake_runner({})) == 2
    assert "no budget file" in capsys.readouterr().err


def test_corrupt_budget_file_is_a_usage_error(tmp_path, capsys):
    (tmp_path / DEFAULT_BUDGET_NAME).write_text("{", encoding="utf-8")
    assert main(["--root", str(tmp_path)], runner=fake_runner({})) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_missing_mypy_skips_unless_required(tmp_path, monkeypatch,
                                            capsys):
    root = make_repo(tmp_path, {"repro.net": 0})
    monkeypatch.setattr(ratchet, "mypy_available", lambda: False)
    assert main(["--root", str(root)]) == 0
    assert "skipping the typecheck gate" in capsys.readouterr().out
    assert main(["--root", str(root), "--require"]) == 2
    assert "--require makes that fatal" in capsys.readouterr().err


def test_package_target_resolves_dirs_and_modules(tmp_path):
    root = make_repo(tmp_path, {"repro.net": 0})
    (root / "src" / "repro" / "parallel.py").write_text(
        "", encoding="utf-8")
    assert package_target("repro.net", root).name == "net"
    assert package_target("repro.parallel", root).name == "parallel.py"
    with pytest.raises(RatchetError):
        package_target("repro.absent", root)


def test_checked_in_budgets_are_zero_for_the_strict_packages():
    config = load_config(REPO / DEFAULT_BUDGET_NAME)
    budgets = {e.package: e.budget for e in config.packages}
    assert budgets == {
        "repro.analysis": 0,
        "repro.knobs": 0,
        "repro.net": 0,
        "repro.obs": 0,
        "repro.parallel": 0,
    }
    for entry in config.packages:
        package_target(entry.package, REPO)  # all targets exist


def test_budget_file_round_trips_verbatim(tmp_path):
    source = REPO / DEFAULT_BUDGET_NAME
    config = load_config(source)
    out = tmp_path / DEFAULT_BUDGET_NAME
    write_config(out, config)
    assert json.loads(out.read_text(encoding="utf-8")) == \
        json.loads(source.read_text(encoding="utf-8"))


@pytest.mark.skipif(not mypy_available(),
                    reason="mypy not installed (dev extra)")
def test_real_mypy_meets_the_checked_in_budget():
    """With the [dev] extra present, the smallest package must really
    hold its zero-error budget under the checked-in flags."""
    assert main(["--root", str(REPO), "repro.knobs"]) == 0

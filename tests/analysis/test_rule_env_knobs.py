"""RPR004: REPRO_* environment reads route through the knob registry."""

from __future__ import annotations

import re
from pathlib import Path

from repro.knobs import KNOBS, knob, knob_names, render_knob_table

REPO = Path(__file__).resolve().parents[2]


def test_unregistered_knob_flagged(lint_tree):
    findings = lint_tree({"repro/net/config.py": '''
        import os
        SECRET = os.environ.get("REPRO_UNREGISTERED_KNOB", "0")
    '''}, select=["RPR004"])
    assert [f.rule for f in findings] == ["RPR004"]
    assert "not registered" in findings[0].message
    assert findings[0].path == "repro/net/config.py"


def test_read_outside_reader_module_flagged(lint_tree):
    findings = lint_tree({"repro/service/ordering.py": '''
        import os
        TIMEOUT = os.environ.get("REPRO_NET_TIMEOUT", "30")
    '''}, select=["RPR004"])
    assert [f.rule for f in findings] == ["RPR004"]
    assert "repro.net.config" in findings[0].message


def test_harness_only_knob_flagged_in_library(lint_tree):
    findings = lint_tree({"repro/linalg/backends.py": '''
        import os
        NO_SCIPY = os.getenv("REPRO_NO_SCIPY")
    '''}, select=["RPR004"])
    assert [f.rule for f in findings] == ["RPR004"]
    assert "harness" in findings[0].message or \
        "library code" in findings[0].message


def test_helper_in_reader_module_clean(lint_tree):
    findings = lint_tree({"repro/net/config.py": '''
        import os

        def positive_float_from_env(name, default):
            raw = os.environ.get(name)
            return float(raw) if raw else default

        NET_TIMEOUT = positive_float_from_env("REPRO_NET_TIMEOUT", 30.0)
    '''}, select=["RPR004"])
    assert findings == []


def test_module_constant_key_resolved(lint_tree):
    findings = lint_tree({"repro/serve/worker.py": '''
        import os
        KEY = "REPRO_QUERY_WORKERS"
        WORKERS = os.environ.get(KEY)
    '''}, select=["RPR004"])
    assert [f.rule for f in findings] == ["RPR004"]
    assert "repro.api.executor" in findings[0].message


def test_registry_covers_every_repro_name_in_src():
    """Every REPRO_* literal in the library appears in the registry."""
    pattern = re.compile(r"REPRO_[A-Z0-9_]+")
    names = set()
    for path in (REPO / "src").rglob("*.py"):
        if "__pycache__" in path.parts:
            continue
        names.update(pattern.findall(path.read_text(encoding="utf-8")))
    unknown = {name for name in names if knob(name) is None}
    assert not unknown, f"unregistered REPRO_* names: {sorted(unknown)}"


def test_registry_is_well_formed():
    assert len(set(knob_names())) == len(KNOBS)
    for entry in KNOBS:
        assert entry.name.startswith("REPRO_")
        assert entry.description
        assert entry.reader is None or entry.reader.startswith("repro.")


def test_readme_knob_table_in_sync():
    """The README's knob table is exactly the generated one."""
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    start = "<!-- knob-table:start -->"
    end = "<!-- knob-table:end -->"
    assert start in readme and end in readme
    committed = readme.split(start, 1)[1].split(end, 1)[0].strip("\n")
    assert committed == render_knob_table().strip("\n")

"""``repro-stats`` CLI: every subcommand driven through ``main``."""

from __future__ import annotations

import pytest

from repro.obs import SpanRecord, export_jsonl
from repro.obs.cli import main


@pytest.fixture()
def trace_file(tmp_path):
    records = [
        SpanRecord(trace_id="t1", span_id="a", parent_id=None,
                   name="api.query_many", start_time=1.0, duration=0.02,
                   attributes={"queries": 3}, pid=7),
        SpanRecord(trace_id="t1", span_id="b", parent_id="a",
                   name="service.solve", start_time=1.001,
                   duration=0.015, pid=7),
        SpanRecord(trace_id="t1", span_id="c", parent_id="a",
                   name="service.solve", start_time=1.017,
                   duration=0.001, pid=7),
    ]
    path = tmp_path / "spans.jsonl"
    export_jsonl(records, path)
    return path


def test_trace_renders_tree(trace_file, capsys):
    assert main(["trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace t1")
    assert "api.query_many" in out
    assert "queries=3" in out
    # Children indent under the root.
    child_lines = [l for l in out.splitlines() if "service.solve" in l]
    assert len(child_lines) == 2
    assert all(l.startswith("    ") for l in child_lines)


def test_summary_aggregates_per_name(trace_file, capsys):
    assert main(["summary", str(trace_file)]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert "span" in lines[0] and "total_ms" in lines[0]
    # api.query_many totals 20ms > service.solve's 16ms: sorted first.
    assert lines[1].split()[0] == "api.query_many"
    solve = next(l for l in lines if l.startswith("service.solve"))
    count, total_ms, mean_ms, max_ms = solve.split()[1:]
    assert int(count) == 2
    assert float(total_ms) == pytest.approx(16.0)
    assert float(mean_ms) == pytest.approx(8.0)
    assert float(max_ms) == pytest.approx(15.0)


def test_empty_trace_file_errors(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", str(empty)]) == 1
    assert main(["summary", str(empty)]) == 1
    assert "no spans" in capsys.readouterr().err


def test_missing_file_is_an_error_not_a_traceback(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1
    assert "error:" in capsys.readouterr().err


def test_metrics_dumps_prometheus_text(capsys):
    assert main(["metrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE" in out
    for line in out.strip().splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        float(value)


def test_demo_end_to_end(tmp_path, capsys):
    out_path = tmp_path / "demo.jsonl"
    assert main(["demo", "--size", "8", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("trace ")
    assert "api.query_many" in out
    assert "service.order" in out
    assert "linalg.solve" in out
    assert "# TYPE repro_linalg_solve_seconds histogram" in out
    assert out_path.exists()
    # The exported file round-trips through the trace subcommand.
    assert main(["trace", str(out_path)]) == 0


def test_demo_rejects_tiny_size(capsys):
    assert main(["demo", "--size", "2"]) == 1
    assert "--size" in capsys.readouterr().err

"""Timer and best_of: the shared wall-clock measurement helpers."""

from __future__ import annotations

import time

import pytest

from repro.obs import Timer, best_of


def test_timer_freezes_on_exit():
    with Timer() as timer:
        time.sleep(0.01)
    frozen = timer.seconds
    assert frozen >= 0.01
    time.sleep(0.005)
    assert timer.seconds == frozen
    assert timer.millis == pytest.approx(frozen * 1e3)


def test_timer_reads_live_inside_scope():
    with Timer() as timer:
        first = timer.seconds
        time.sleep(0.005)
        assert timer.seconds > first


def test_best_of_returns_minimum():
    calls = []

    def fn():
        calls.append(None)
        time.sleep(0.002 if len(calls) > 1 else 0.02)

    assert best_of(fn, repeats=3) < 0.02
    assert len(calls) == 3


def test_best_of_rejects_zero_repeats():
    with pytest.raises(ValueError):
        best_of(lambda: None, repeats=0)


def test_exit_without_enter_is_a_noop():
    # Regression: __exit__ used to do arithmetic on the None _start.
    timer = Timer()
    assert timer.__exit__(None, None, None) is False
    assert timer.seconds == 0.0

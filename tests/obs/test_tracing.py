"""Span tracing contracts: nesting, propagation, export, no-op cost."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs import (
    SpanRecord,
    TraceContext,
    TraceCollector,
    capture_spans,
    collector,
    current_context,
    export_jsonl,
    format_trace,
    load_jsonl,
    phase_totals,
    remote_capture,
    span,
    trace_tree,
    tracing,
    tracing_enabled,
    use_context,
)
from repro.obs.tracing import _NOOP
from repro.parallel import map_in_threads


@pytest.fixture(autouse=True)
def clean_collector():
    collector().clear()
    yield
    collector().clear()


def test_disabled_span_is_shared_noop_singleton():
    assert not tracing_enabled()
    sp = span("anything", key=1)
    assert sp is _NOOP
    assert sp is span("something.else")
    assert not sp.is_recording
    with sp:
        sp.set_attribute("k", "v")   # all no-ops
        sp.set_attributes(a=1)
    assert collector().spans() == []


def test_tracing_scope_restores_prior_state():
    assert not tracing_enabled()
    with tracing() as coll:
        assert tracing_enabled()
        assert coll is collector()
        with tracing():
            assert tracing_enabled()
        assert tracing_enabled()  # inner exit restores *its* prior state
    assert not tracing_enabled()


def test_nesting_builds_parent_child_ids():
    with tracing():
        with span("outer", layer="api") as outer:
            assert current_context() == outer.context
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        assert current_context() is None

    records = {r.name: r for r in collector().drain()}
    assert records["inner"].parent_id == records["outer"].span_id
    assert records["outer"].parent_id is None
    assert records["outer"].attributes == {"layer": "api"}
    # inner closed first, so durations nest.
    assert records["inner"].duration <= records["outer"].duration


def test_sibling_roots_get_distinct_traces():
    with tracing():
        with span("a"):
            pass
        with span("b"):
            pass
    a, b = collector().drain()
    assert a.trace_id != b.trace_id
    assert a.span_id != b.span_id


def test_error_status_recorded_and_exception_propagates():
    with tracing():
        with pytest.raises(ValueError, match="boom"):
            with span("failing") as sp:
                sp.set_attribute("phase", "pre")
                raise ValueError("boom")
    (record,) = collector().drain()
    assert record.status == "error"
    assert "boom" in record.error
    assert record.attributes["phase"] == "pre"


def test_set_attribute_after_entry():
    with tracing():
        with span("solve", n=100) as sp:
            sp.set_attribute("backend", "lanczos")
            sp.set_attributes(iterations=7, converged=True)
    (record,) = collector().drain()
    assert record.attributes == {"n": 100, "backend": "lanczos",
                                 "iterations": 7, "converged": True}


def test_map_in_threads_propagates_trace_context():
    """Fan-out threads continue the caller's trace: every span recorded
    inside the pool shares the root's trace_id and parents on it."""
    def work(i: int) -> int:
        with span("pool.item", index=i):
            return i * i

    with tracing():
        with span("fanout") as root:
            results = map_in_threads(work, list(range(8)), workers=4)
    assert results == [i * i for i in range(8)]

    records = collector().drain()
    items = [r for r in records if r.name == "pool.item"]
    assert len(items) == 8
    assert {r.trace_id for r in items} == {root.trace_id}
    assert {r.parent_id for r in items} == {root.span_id}


def test_use_context_parents_root_spans():
    ctx = TraceContext(trace_id="t" * 16, span_id="s" * 16)
    with tracing():
        with use_context(ctx):
            assert current_context() == ctx
            with span("adopted"):
                pass
        assert current_context() is None
    (record,) = collector().drain()
    assert record.trace_id == ctx.trace_id
    assert record.parent_id == ctx.span_id


def test_capture_spans_sees_other_threads():
    def work() -> None:
        with span("threaded"):
            pass

    with tracing():
        with capture_spans() as records:
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
            with span("local"):
                pass
    assert sorted(r.name for r in records) == ["local", "threaded"]


def test_remote_capture_enables_adopts_and_restores():
    """The worker-side scope: tracing forced on, the shipped context
    adopted as parent, spans captured — then everything restored."""
    assert not tracing_enabled()
    wire = ("a" * 16, "b" * 16)
    with remote_capture(wire) as captured:
        assert tracing_enabled()
        with span("worker.op"):
            pass
    assert not tracing_enabled()
    (record,) = captured
    assert record.trace_id == "a" * 16
    assert record.parent_id == "b" * 16
    assert current_context() is None


def test_remote_capture_without_context_still_captures():
    with remote_capture(None) as captured:
        with span("orphan"):
            pass
    (record,) = captured
    assert record.parent_id is None


def test_trace_context_wire_round_trip():
    ctx = TraceContext(trace_id="0" * 16, span_id="1" * 16)
    assert TraceContext.from_wire(ctx.as_wire()) == ctx
    assert TraceContext.from_wire(None) is None


def test_span_record_and_context_pickle_round_trip():
    """The IPC payloads must survive pickling unchanged."""
    record = SpanRecord(trace_id="t", span_id="s", parent_id="p",
                        name="x", start_time=1.0, duration=0.5,
                        attributes={"k": [1, 2]}, status="error",
                        error="ValueError('x')", pid=42)
    assert pickle.loads(pickle.dumps(record)) == record
    ctx = TraceContext(trace_id="t", span_id="s")
    assert pickle.loads(pickle.dumps(ctx)) == ctx


def test_jsonl_round_trip(tmp_path):
    with tracing():
        with span("outer", n=3):
            with span("inner"):
                pass
    records = collector().drain()
    path = tmp_path / "trace.jsonl"
    assert export_jsonl(records, path) == 2
    loaded = load_jsonl(path)
    assert loaded == records


def test_collector_is_bounded_ring():
    coll = TraceCollector(maxlen=4)
    for i in range(10):
        coll.add(SpanRecord(trace_id="t", span_id=str(i), parent_id=None,
                            name="s", start_time=0.0, duration=0.0))
    kept = coll.spans()
    assert [r.span_id for r in kept] == ["6", "7", "8", "9"]
    assert coll.drain() == kept
    assert coll.spans() == []


def test_collector_trace_filter_and_ids():
    coll = TraceCollector()
    for tid in ("a", "b", "a"):
        coll.add(SpanRecord(trace_id=tid, span_id=tid + "1",
                            parent_id=None, name="s", start_time=0.0,
                            duration=0.0))
    assert coll.trace_ids() == ["a", "b"]
    assert len(coll.spans(trace_id="a")) == 2


def test_trace_tree_and_format():
    with tracing():
        with span("root", n=9):
            with span("child"):
                pass
    records = collector().drain()
    forests = trace_tree(records)
    ((root, children),) = forests[records[0].trace_id]
    assert root.name == "root"
    assert [c[0].name for c in children] == ["child"]

    text = format_trace(records)
    lines = text.splitlines()
    assert lines[0].startswith("trace ")
    assert "root" in lines[1] and "n=9" in lines[1]
    # The child renders indented one level deeper than the root.
    assert lines[2].startswith("  " + lines[1][:2].strip() or "  ")
    assert "child" in lines[2]


def test_trace_tree_orphan_parent_becomes_root():
    record = SpanRecord(trace_id="t", span_id="s", parent_id="gone",
                        name="orphan", start_time=0.0, duration=0.0)
    ((root, children),) = trace_tree([record])["t"]
    assert root is record and children == []


def test_phase_totals_sums_and_filters():
    def rec(name, duration):
        return SpanRecord(trace_id="t", span_id=name, parent_id=None,
                          name=name, start_time=0.0, duration=duration)

    records = [rec("service.solve", 0.25), rec("service.solve", 0.25),
               rec("api.range", 0.1)]
    totals = phase_totals(records)
    assert totals == {"service.solve": pytest.approx(0.5),
                      "api.range": pytest.approx(0.1)}
    assert phase_totals(records, prefix="service.") == {
        "service.solve": pytest.approx(0.5)}


def test_from_dict_defaults_missing_optional_fields():
    """Regression: sparse dicts (older JSONL schemas) used to land as
    ``None`` attributes/status, breaking every consumer that iterates
    or compares them."""
    record = SpanRecord.from_dict({
        "trace_id": "t1", "span_id": "s1", "name": "solve",
    })
    assert record.attributes == {}
    assert record.status == "ok"
    assert record.parent_id is None
    assert record.error is None
    assert record.start_time == 0.0
    assert record.duration == 0.0
    assert record.pid == 0
    # Still renders and groups like a fully populated record.
    assert "solve" in format_trace([record])

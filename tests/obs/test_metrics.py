"""MetricsRegistry contracts: exactness, atomicity, Prometheus text."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    dump_metrics,
    registry,
)


def test_counter_exact_under_thread_hammer():
    """8 threads x 1000 increments lose nothing and tear nothing."""
    reg = MetricsRegistry()
    counter = reg.counter("hits_total", "test counter")
    threads = 8
    per_thread = 1000
    barrier = threading.Barrier(threads)

    def hammer(i: int) -> None:
        barrier.wait()
        for _ in range(per_thread):
            counter.inc()
            counter.inc(2.0, shard=str(i % 2))

    pool = [threading.Thread(target=hammer, args=(i,))
            for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()

    snap = reg.snapshot()["hits_total"]
    assert snap["type"] == "counter"
    assert snap["series"][""] == threads * per_thread
    assert snap["series"]['{shard="0"}'] == 2.0 * 4 * per_thread
    assert snap["series"]['{shard="1"}'] == 2.0 * 4 * per_thread


def test_histogram_exact_under_thread_hammer():
    reg = MetricsRegistry()
    hist = reg.histogram("lat_seconds", "test histogram",
                         buckets=(0.1, 1.0))
    threads = 8
    per_thread = 500
    barrier = threading.Barrier(threads)

    def hammer() -> None:
        barrier.wait()
        for i in range(per_thread):
            hist.observe(0.05 if i % 2 else 0.5)

    pool = [threading.Thread(target=hammer) for _ in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()

    series = reg.snapshot()["lat_seconds"]["series"][""]
    assert series["count"] == threads * per_thread
    # Cumulative per-bucket counts: <= 0.1, <= 1.0, <= +Inf.
    assert series["cumulative"] == [
        threads * per_thread // 2,
        threads * per_thread,
        threads * per_thread,
    ]
    assert series["sum"] == pytest.approx(
        threads * (250 * 0.05 + 250 * 0.5))
    assert hist.count() == threads * per_thread
    assert hist.sum() == pytest.approx(series["sum"])


def test_counter_rejects_negative_and_gauge_moves_both_ways():
    reg = MetricsRegistry()
    counter = reg.counter("ops_total", "counter")
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    gauge = reg.gauge("depth", "gauge")
    gauge.set(5.0)
    gauge.dec(2.0)
    gauge.inc(1.0)
    assert gauge.value() == 4.0
    assert reg.snapshot()["depth"]["series"][""] == 4.0


def test_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "x")
    assert reg.counter("x_total", "x") is a
    with pytest.raises(ValueError):
        reg.gauge("x_total", "x")
    with pytest.raises(ValueError):
        reg.histogram("x_total", "x")


def test_prometheus_render_format():
    """The dump parses as Prometheus text: HELP/TYPE headers, label
    rendering, cumulative buckets, sum and count lines."""
    reg = MetricsRegistry()
    counter = reg.counter("req_total", "requests served")
    counter.inc(3.0, outcome="memory")
    counter.inc(1.0)
    hist = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)

    text = reg.render()
    lines = text.strip().splitlines()
    assert "# HELP req_total requests served" in lines
    assert "# TYPE req_total counter" in lines
    assert "# TYPE lat_seconds histogram" in lines
    assert 'req_total{outcome="memory"} 3' in text
    assert "req_total 1" in text
    # Cumulative buckets: each le-line includes everything below it,
    # +Inf equals the count.
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text
    assert any(line.startswith("lat_seconds_sum ") for line in lines)
    # Every non-comment line is "name{labels} value" with a float value.
    for line in lines:
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)


def test_render_json_round_trips():
    reg = MetricsRegistry()
    reg.counter("a_total", "a").inc(2.0, kind="x")
    payload = json.loads(reg.render_json())
    assert payload["a_total"]["type"] == "counter"
    assert payload["a_total"]["series"]['{kind="x"}'] == 2.0


def test_process_registry_is_shared_and_dumpable():
    assert registry() is registry()
    text = dump_metrics()
    assert "# HELP" in text
    # The instrumented layers register their families at import time.
    assert "repro_service_requests_total" in text
    assert "repro_linalg_solve_seconds" in text


def test_default_buckets_ascend():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
        DEFAULT_LATENCY_BUCKETS)
    assert len(set(DEFAULT_LATENCY_BUCKETS)) == len(
        DEFAULT_LATENCY_BUCKETS)

"""Tests for repro.viz.ascii_art."""

import numpy as np
import pytest

from repro.errors import DimensionError
from repro.geometry import Grid
from repro.viz import render_order_path, render_ranks, render_values


def test_render_ranks_2x2():
    grid = Grid((2, 2))
    text = render_ranks(grid, np.array([0, 1, 3, 2]))
    assert text == " 0  1\n 3  2"


def test_render_ranks_width_scales():
    grid = Grid((2, 2))
    text = render_ranks(grid, np.array([0, 1, 2, 100]))
    assert "100" in text
    rows = text.splitlines()
    assert len(rows) == 2


def test_render_ranks_validation():
    with pytest.raises(DimensionError):
        render_ranks(Grid((2, 2, 2)), np.arange(8))
    with pytest.raises(DimensionError):
        render_ranks(Grid((2, 2)), np.arange(5))


def test_render_values():
    grid = Grid((2, 2))
    text = render_values(grid, np.array([0.5, -0.5, 0.25, 0.0]),
                         precision=2)
    assert "0.50" in text and "-0.50" in text
    with pytest.raises(DimensionError):
        render_values(Grid((3,)), np.arange(3.0))


def test_render_order_path_sweep():
    grid = Grid((2, 3))
    # Row-major sweep: right, right, jump, right, right, end.
    text = render_order_path(grid, np.arange(6))
    assert text == "> > *\n> > o"


def test_render_order_path_snake():
    grid = Grid((2, 2))
    from repro.mapping import CurveMapping
    ranks = CurveMapping("snake").ranks_for_grid(grid)
    text = render_order_path(grid, ranks)
    assert "o" in text
    assert "*" not in text  # snake is continuous


def test_render_order_path_validation():
    with pytest.raises(DimensionError):
        render_order_path(Grid((2, 2, 2)), np.arange(8))

"""Cross-metric invariants: the evaluation quantities constrain each
other mathematically; violating any of these would mean a metric is
mis-implemented.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, Grid, boxes_with_extent
from repro.api import make_mapping
from repro.mapping import CurveMapping
from repro.metrics import (
    adjacent_gap_stats,
    bandwidth,
    box_cluster_count,
    box_span,
    cluster_stats,
    one_sum,
    span_stats,
    two_sum,
)
from repro.graph import grid_graph


@given(
    shape=st.tuples(st.integers(2, 5), st.integers(2, 5)),
    seed=st.integers(0, 200),
    data=st.data(),
)
@settings(max_examples=30)
def test_span_bounds_clusters(shape, seed, data):
    """span >= cells + clusters - 2: every extra cluster needs at least
    one missing rank inside the span."""
    grid = Grid(shape)
    ranks = np.random.default_rng(seed).permutation(grid.size)
    extent = tuple(data.draw(st.integers(1, s)) for s in shape)
    box = Box.from_origin_extent(
        tuple(data.draw(st.integers(0, s - e))
              for s, e in zip(shape, extent)),
        extent,
    )
    cells = box.volume
    span = box_span(grid, ranks, box)
    clusters = box_cluster_count(grid, ranks, box)
    assert span >= cells + clusters - 2
    assert 1 <= clusters <= cells


def test_bandwidth_equals_worst_adjacent_gap_on_grid_graph():
    """The arrangement 'bandwidth' on the orthogonal grid graph IS the
    max adjacent rank gap: two views of the same quantity."""
    grid = Grid((6, 7))
    graph = grid_graph(grid)
    for name in ("sweep", "snake", "hilbert", "gray"):
        mapping = CurveMapping(name)
        order = mapping.order_for_grid(grid)
        worst, _ = adjacent_gap_stats(grid, order.ranks)
        assert bandwidth(graph, order) == worst


def test_one_sum_bounds_two_sum():
    """Cauchy-Schwarz: one_sum^2 <= m * two_sum (unit weights)."""
    grid = Grid((6, 6))
    graph = grid_graph(grid)
    for name in ("sweep", "peano", "hilbert"):
        order = CurveMapping(name).order_for_grid(grid)
        m = graph.num_edges
        assert one_sum(graph, order) ** 2 <= m * two_sum(graph,
                                                         order) + 1e-6


def test_one_sum_at_least_edge_count():
    """Each edge stretches >= 1 rank in any permutation."""
    grid = Grid((5, 5))
    graph = grid_graph(grid)
    rng = np.random.default_rng(0)
    from repro.core import LinearOrder
    for _ in range(5):
        order = LinearOrder(rng.permutation(25))
        assert one_sum(graph, order) >= graph.num_edges


def test_span_stats_max_dominates_mean():
    grid = Grid((6, 6))
    for name in ("sweep", "hilbert"):
        ranks = CurveMapping(name).ranks_for_grid(grid)
        stats = span_stats(grid, ranks, (3, 3))
        assert stats.min <= stats.mean <= stats.max
        assert stats.std <= (stats.max - stats.min)


def test_full_domain_query_has_full_span():
    """The query covering everything spans n-1 under any mapping."""
    grid = Grid((4, 5))
    for name in ("sweep", "gray", "hilbert"):
        ranks = CurveMapping(name).ranks_for_grid(grid)
        stats = span_stats(grid, ranks, grid.shape)
        assert stats.max == stats.min == grid.size - 1


def test_unit_step_curves_have_unit_mean_gap():
    """Snake and Hilbert take only unit steps, so their *mean* adjacent
    gap is low; sweep's contains the row-jump average."""
    grid = Grid((8, 8))
    snake_worst, snake_mean = adjacent_gap_stats(
        grid, CurveMapping("snake").ranks_for_grid(grid))
    # A unit-step curve still has large gaps between non-consecutive
    # adjacents, but the minimum possible gap (1) occurs n-1 times.
    assert snake_mean < 8


def test_cluster_mean_of_unit_step_curve_bounded_by_rows():
    """A continuous curve enters a k x k box at most ~perimeter times."""
    grid = Grid((8, 8))
    stats = cluster_stats(
        grid, CurveMapping("hilbert").ranks_for_grid(grid), (4, 4))
    assert stats.max <= 8  # half the box perimeter


def test_spectral_consistency_across_entry_points():
    """order_grid == order_graph(grid_graph) == mapping ranks."""
    from repro.core import SpectralLPM, symmetric_grid_probe
    grid = Grid((5, 5))
    lpm = SpectralLPM(backend="dense")
    direct = lpm.order_grid(grid)
    via_graph = lpm.order_graph(lpm.build_grid_graph(grid),
                                probe=symmetric_grid_probe(grid))
    via_mapping = make_mapping(
        "spectral", backend="dense").order_for_grid(grid)
    assert direct == via_graph == via_mapping

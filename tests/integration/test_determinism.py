"""Determinism guarantees, exhaustively.

DESIGN.md promises: every API that could be order-ambiguous resolves
deterministically, and spectral orders are identical across eigensolver
backends.  This file is the single place that pins all of it.
"""

import numpy as np
import pytest

from repro.core import (
    SpectralLPM,
    multilevel_order,
    spectral_bisection_order,
)
from repro.datasets import dataset_by_name
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.linalg import scipy_available
from repro.api import make_mapping
from repro.mapping import MAPPING_NAMES
from repro.query import knn_window_recall, random_boxes

BACKENDS = ["dense", "lanczos"] + (["scipy"] if scipy_available() else [])


@pytest.mark.parametrize("shape", [(4, 4), (3, 3, 3), (6, 4), (2, 9)])
def test_spectral_orders_identical_across_backends(shape):
    orders = [SpectralLPM(backend=b).order_grid(Grid(shape))
              for b in BACKENDS]
    assert all(order == orders[0] for order in orders)


@pytest.mark.parametrize("shape", [(4, 4), (5, 3)])
def test_weighted_and_moore_models_cross_backend(shape):
    for kwargs in ({"connectivity": "moore"},
                   {"radius": 2, "weight": "inverse_manhattan"}):
        orders = [SpectralLPM(backend=b, **kwargs).order_grid(Grid(shape))
                  for b in BACKENDS]
        assert all(order == orders[0] for order in orders)


@pytest.mark.parametrize("name", MAPPING_NAMES)
def test_every_mapping_is_repeatable(name):
    grid = Grid((5, 5))
    first = make_mapping(name).ranks_for_grid(grid)
    second = make_mapping(name).ranks_for_grid(grid)
    assert np.array_equal(first, second)


def test_bisection_and_multilevel_cross_backend():
    grid = Grid((6, 6))
    graph = grid_graph(grid)
    bisection_orders = [
        spectral_bisection_order(graph, backend=b) for b in BACKENDS
    ]
    assert all(o == bisection_orders[0] for o in bisection_orders)
    ml_orders = [multilevel_order(graph, backend=b) for b in
                 ("dense", "lanczos")]
    assert ml_orders[0] == ml_orders[1]


def test_datasets_are_pure_functions_of_seed():
    grid = Grid((16, 16))
    for name in ("uniform", "gaussian", "zipf"):
        assert np.array_equal(dataset_by_name(name, grid, 30, seed=9),
                              dataset_by_name(name, grid, 30, seed=9))


def test_workloads_are_pure_functions_of_seed():
    grid = Grid((16, 16))
    assert random_boxes(grid, (4, 4), 10, seed=3) == \
        random_boxes(grid, (4, 4), 10, seed=3)
    ranks = make_mapping("hilbert").ranks_for_grid(grid)
    assert knn_window_recall(grid, ranks, 4, 8, seed=2) == \
        knn_window_recall(grid, ranks, 4, 8, seed=2)


def test_experiment_harnesses_are_deterministic():
    from repro.experiments import run_fig1, run_fig5b
    a = run_fig5b(side=8, backend="dense")
    b = run_fig5b(side=8, backend="dense")
    assert [s.y for s in a.series] == [s.y for s in b.series]
    a1 = run_fig1(side=4, backend="dense")
    b1 = run_fig1(side=4, backend="dense")
    assert [s.y for s in a1.series] == [s.y for s in b1.series]

"""Integration tests: the full pipeline from points to disk I/O."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    Box,
    Grid,
    LinearOrder,
    SpectralLPM,
    make_mapping,
    paper_mappings,
)
from repro.datasets import gaussian_cluster_cells
from repro.index import PackedRTree
from repro.query import random_boxes
from repro.storage import DiskCostModel, PageLayout, query_io

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def test_full_pipeline_spectral_beats_scrambled_io():
    """Points -> spectral order -> pages -> range queries -> I/O cost."""
    grid = Grid((16, 16))
    spectral = SpectralLPM(backend="dense").order_grid(grid)
    scrambled = LinearOrder(np.random.default_rng(0).permutation(256))
    model = DiskCostModel(seek_cost=5.0, transfer_cost=0.1)
    queries = random_boxes(grid, (4, 4), count=40, seed=2)

    def total_cost(order):
        layout = PageLayout(order, page_size=8)
        return sum(
            query_io(layout, box.cell_indices(grid), model).cost
            for box in queries
        )

    assert total_cost(spectral) < 0.5 * total_cost(scrambled)


def test_all_paper_mappings_work_on_odd_grid():
    """Non-power-of-two, non-square, 3-D: everything still composes."""
    grid = Grid((5, 3, 6))
    for mapping in paper_mappings(backend="dense"):
        ranks = mapping.ranks_for_grid(grid)
        assert sorted(ranks) == list(range(grid.size))


def test_spectral_order_feeds_rtree_and_queries():
    grid = Grid((16, 16))
    cells = gaussian_cluster_cells(grid, 80, seed=4)
    mapping = make_mapping("spectral", backend="dense")
    tree = PackedRTree.pack(grid, cells, mapping.ranks_for_grid(grid),
                            leaf_capacity=8, fanout=8)
    hits, visited = tree.window_query(Box((4, 4), (11, 11)))
    coords = grid.points_of(cells)
    expected = sum(
        1 for p in coords if 4 <= p[0] <= 11 and 4 <= p[1] <= 11
    )
    assert len(hits) == expected
    assert visited > 0


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "access_patterns.py",
    "disk_layout.py",
    "rtree_packing.py",
    "spatial_store.py",
])
def test_examples_run_clean(script, capsys, monkeypatch):
    """Every example must execute end to end without errors."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report


def test_cli_main_runs_fig3(capsys):
    from repro.experiments.__main__ import main
    assert main(["fig3", "--backend", "dense"]) == 0
    output = capsys.readouterr().out
    assert "lambda_2 = 1.000000" in output


def test_cli_main_runs_fig1_with_side_override(capsys):
    from repro.experiments.__main__ import main
    assert main(["fig1", "--backend", "dense", "--side", "4"]) == 0
    output = capsys.readouterr().out
    assert "Boundary effect" in output

"""Cross-module property-based tests on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinearOrder, SpectralLPM, fiedler_vector
from repro.geometry import Grid
from repro.graph import Graph, grid_graph, quadratic_form
from repro.metrics import span_field, two_sum

small_grids = st.tuples(st.integers(2, 5), st.integers(2, 5))


@given(shape=small_grids)
def test_spectral_order_is_always_a_permutation(shape):
    order = SpectralLPM(backend="dense").order_grid(Grid(shape))
    assert sorted(order.permutation) == list(range(Grid(shape).size))


@given(shape=small_grids, seed=st.integers(0, 100))
def test_spectral_two_sum_never_worse_than_random(shape, seed):
    grid = Grid(shape)
    graph = grid_graph(grid)
    spectral_cost = two_sum(graph,
                            SpectralLPM(backend="dense").order_grid(grid))
    random_order = LinearOrder(
        np.random.default_rng(seed).permutation(grid.size))
    assert spectral_cost <= two_sum(graph, random_order)


@given(shape=small_grids)
def test_fiedler_value_lower_bounds_all_unit_centered_vectors(shape):
    graph = grid_graph(Grid(shape))
    result = fiedler_vector(graph, backend="dense")
    rng = np.random.default_rng(0)
    x = rng.normal(size=graph.num_vertices)
    x -= x.mean()
    norm = np.linalg.norm(x)
    if norm < 1e-12:
        return
    x /= norm
    assert quadratic_form(graph, x) >= result.value - 1e-9


@given(
    shape=small_grids,
    seed=st.integers(0, 50),
    data=st.data(),
)
@settings(max_examples=25)
def test_span_field_bounds(shape, seed, data):
    grid = Grid(shape)
    ranks = np.random.default_rng(seed).permutation(grid.size)
    extent = tuple(
        data.draw(st.integers(1, s)) for s in shape
    )
    field = span_field(grid, ranks, extent)
    volume = int(np.prod(extent))
    assert (field >= volume - 1).all()
    assert (field <= grid.size - 1).all()


@given(n=st.integers(2, 20), m=st.integers(0, 30),
       seed=st.integers(0, 1000))
@settings(max_examples=30)
def test_random_graph_spectral_order_valid(n, m, seed):
    """Spectral LPM handles arbitrary (possibly disconnected) graphs."""
    rng = np.random.default_rng(seed)
    edges = []
    for _ in range(m):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    graph = Graph.from_edges(n, edges)
    order = SpectralLPM(backend="dense").order_graph(graph)
    assert sorted(order.permutation) == list(range(n))


@given(n=st.integers(3, 24))
def test_path_recovery_property(n):
    """The strongest exact guarantee: a path's spectral order is the
    path itself (up to reversal), for every size."""
    from repro.graph import path_graph
    order = SpectralLPM(backend="dense").order_graph(path_graph(n))
    perm = list(order.permutation)
    assert perm == list(range(n)) or perm == list(range(n - 1, -1, -1))

"""Tests for repro.storage.declustering."""

import numpy as np
import pytest

from repro.core import LinearOrder
from repro.errors import InvalidParameterError
from repro.storage import (
    PageLayout,
    disk_of_pages,
    query_response_time,
    workload_response_stats,
)


def test_round_robin_assignment():
    assert list(disk_of_pages(6, 3)) == [0, 1, 2, 0, 1, 2]
    with pytest.raises(InvalidParameterError):
        disk_of_pages(6, 0)
    with pytest.raises(InvalidParameterError):
        disk_of_pages(6, 3, scheme="random")


def test_contiguous_pages_stripe_perfectly():
    layout = PageLayout(LinearOrder.identity(16), page_size=2)
    # Items 0..7 occupy pages 0..3; on 4 disks that is 1 page each.
    report = query_response_time(layout, list(range(8)), num_disks=4)
    assert report.pages == 4
    assert report.response_time == 1
    assert report.optimal_response_time == 1
    assert report.slowdown == 1.0


def test_pathological_stride_hits_one_disk():
    layout = PageLayout(LinearOrder.identity(16), page_size=2)
    # Pages 0 and 2 both live on disk 0 of 2 disks.
    items = [0, 1, 4, 5]
    report = query_response_time(layout, items, num_disks=2)
    assert report.pages == 2
    assert report.response_time == 2
    assert report.optimal_response_time == 1
    assert report.slowdown == 2.0


def test_empty_query():
    layout = PageLayout(LinearOrder.identity(8), page_size=2)
    report = query_response_time(layout, [], num_disks=2)
    assert report.response_time == 0
    assert report.slowdown == 1.0


def test_workload_response_stats():
    layout = PageLayout(LinearOrder.identity(16), page_size=2)
    mean_response, mean_slowdown = workload_response_stats(
        layout, [[0, 1, 2, 3], [8, 9]], num_disks=2)
    # First query: pages 0,1 -> disks 0,1 -> response 1.
    # Second query: page 4 -> response 1.
    assert mean_response == 1.0
    assert mean_slowdown == 1.0
    assert workload_response_stats(layout, [], 2) == (0.0, 1.0)


def test_locality_helps_declustering():
    """Contiguous (locality-preserved) queries stripe better than
    scattered ones on average."""
    layout = PageLayout(LinearOrder.identity(64), page_size=2)
    rng = np.random.default_rng(1)
    contiguous = [list(range(start, start + 8))
                  for start in range(0, 56, 8)]
    scattered = [list(rng.choice(64, size=8, replace=False))
                 for _ in range(7)]
    _, slow_contig = workload_response_stats(layout, contiguous, 4)
    _, slow_scatter = workload_response_stats(layout, scattered, 4)
    assert slow_contig <= slow_scatter

"""Shared-state safety of the storage/caching counters under threads.

The serving front (``query_many(parallelism=...)``, the asyncio facade)
executes queries concurrently against shared stores, so the buffer
pool's accounting must obey its conservation law — ``hits + misses ==
accesses`` — under any interleaving, and the generic LRU cache behind
the service tiers must keep exact hit/miss counters when constructed
with ``lock=True``.  Before the locks landed, N threads hammering one
pool corrupted the recency ``OrderedDict`` and under/over-counted hits;
these tests are the regression net.
"""

import threading

import pytest

from repro.caching import LRUCache
from repro.errors import InvalidParameterError
from repro.storage.buffer import LRUBufferPool


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            target(i)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


THREADS = 8
ACCESSES_PER_THREAD = 2000


def test_buffer_pool_conserves_stats_under_threads():
    pool = LRUBufferPool(capacity=16)
    hits_seen = [0] * THREADS

    def hammer(i):
        # Overlapping, per-thread-skewed page ranges: plenty of both
        # hits and capacity evictions.
        count = 0
        for j in range(ACCESSES_PER_THREAD):
            page = (i * 7 + j) % 64
            if pool.access(page):
                count += 1
        hits_seen[i] = count

    _run_threads(THREADS, hammer)

    stats = pool.stats()
    total = THREADS * ACCESSES_PER_THREAD
    assert stats.accesses == total
    assert stats.hits + stats.misses == stats.accesses
    # Every hit the callers observed is a hit the pool counted: the
    # access is atomic, so the two tallies cannot drift apart.
    assert stats.hits == sum(hits_seen)
    assert stats.evictions <= stats.misses
    assert pool.resident <= pool.capacity


def test_buffer_pool_access_many_conserves_under_threads():
    pool = LRUBufferPool(capacity=8)
    returned = [0] * THREADS

    def hammer(i):
        total = 0
        for j in range(200):
            total += pool.access_many(range(j % 16, j % 16 + 6))
        returned[i] = total

    _run_threads(THREADS, hammer)
    stats = pool.stats()
    assert stats.accesses == THREADS * 200 * 6
    assert stats.hits + stats.misses == stats.accesses
    assert stats.hits == sum(returned)


def test_buffer_pool_reset_and_contains_are_safe():
    pool = LRUBufferPool(capacity=4)
    pool.access_many([1, 2, 3])
    assert pool.contains(2)
    pool.reset()
    assert pool.stats().accesses == 0
    assert not pool.contains(2)


def test_lru_cache_lock_keeps_counters_exact_under_threads():
    cache: LRUCache[int, int] = LRUCache(32, lock=True)
    assert cache.thread_safe
    gets_per_thread = 3000

    def hammer(i):
        for j in range(gets_per_thread):
            key = (i + j) % 48
            if cache.get(key) is None:
                cache.put(key, key)

    _run_threads(THREADS, hammer)
    assert cache.hits + cache.misses == THREADS * gets_per_thread
    assert len(cache) <= cache.capacity


def test_lru_cache_lock_defaults_off():
    cache: LRUCache[str, int] = LRUCache(4)
    assert not cache.thread_safe
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.hits == 1


def test_lru_cache_capacity_still_validated():
    with pytest.raises(InvalidParameterError):
        LRUCache(0, lock=True)

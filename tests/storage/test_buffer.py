"""Tests for repro.storage.buffer."""

import pytest

from repro.errors import InvalidParameterError
from repro.storage import LRUBufferPool, replay_query_stream


def test_cold_misses_then_hits():
    pool = LRUBufferPool(capacity=2)
    assert pool.access(1) is False
    assert pool.access(1) is True
    assert pool.access(2) is False
    assert pool.access(2) is True
    stats = pool.stats()
    assert stats.accesses == 4
    assert stats.hits == 2
    assert stats.misses == 2
    assert stats.evictions == 0
    assert stats.hit_rate == 0.5


def test_lru_eviction_order():
    pool = LRUBufferPool(capacity=2)
    pool.access(1)
    pool.access(2)
    pool.access(3)          # evicts 1 (least recently used)
    assert pool.contains(2) and pool.contains(3)
    assert not pool.contains(1)
    assert pool.stats().evictions == 1


def test_touch_refreshes_recency():
    pool = LRUBufferPool(capacity=2)
    pool.access(1)
    pool.access(2)
    pool.access(1)          # 1 becomes most recent
    pool.access(3)          # evicts 2, not 1
    assert pool.contains(1)
    assert not pool.contains(2)


def test_contains_does_not_touch():
    pool = LRUBufferPool(capacity=2)
    pool.access(1)
    pool.access(2)
    pool.contains(1)        # must NOT refresh 1
    pool.access(3)          # evicts 1
    assert not pool.contains(1)


def test_access_many_counts_hits():
    pool = LRUBufferPool(capacity=4)
    assert pool.access_many([1, 2, 1, 2]) == 2


def test_reset():
    pool = LRUBufferPool(capacity=2)
    pool.access(1)
    pool.reset()
    assert pool.resident == 0
    assert pool.stats().accesses == 0


def test_capacity_validation():
    with pytest.raises(InvalidParameterError):
        LRUBufferPool(0)


def test_empty_stats_hit_rate():
    assert LRUBufferPool(1).stats().hit_rate == 0.0


def test_replay_query_stream():
    stats = replay_query_stream(2, [[1, 2], [1, 2], [3], [1]])
    # [1,2] cold; [1,2] both hit; [3] evicts 1; [1] misses.
    assert stats.hits == 2
    assert stats.misses == 4

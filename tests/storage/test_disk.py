"""Tests for repro.storage.disk."""

import pytest

from repro.core import LinearOrder
from repro.errors import InvalidParameterError
from repro.storage import (
    DiskCostModel,
    PageLayout,
    query_io,
    span_scan_io,
    workload_io,
)


@pytest.fixture
def identity_layout():
    return PageLayout(LinearOrder.identity(16), page_size=2)


def test_cost_model_formula():
    model = DiskCostModel(seek_cost=10.0, transfer_cost=1.0)
    assert model.cost(pages=4, runs=2) == 24.0
    assert model.cost(pages=0, runs=0) == 0.0


def test_cost_model_validation():
    with pytest.raises(InvalidParameterError):
        DiskCostModel(seek_cost=-1.0)
    model = DiskCostModel()
    with pytest.raises(InvalidParameterError):
        model.cost(pages=1, runs=2)
    with pytest.raises(InvalidParameterError):
        model.cost(pages=-1, runs=0)


def test_query_io_contiguous(identity_layout):
    io = query_io(identity_layout, [0, 1, 2, 3],
                  DiskCostModel(seek_cost=5.0, transfer_cost=1.0))
    assert io.pages == 2
    assert io.runs == 1
    assert io.cost == 7.0


def test_query_io_fragmented(identity_layout):
    # Items 0 and 15 are on pages 0 and 7: two runs.
    io = query_io(identity_layout, [0, 15])
    assert io.pages == 2
    assert io.runs == 2


def test_query_io_empty(identity_layout):
    io = query_io(identity_layout, [])
    assert io.pages == io.runs == 0
    assert io.cost == 0.0


def test_workload_io_sums(identity_layout):
    model = DiskCostModel(seek_cost=1.0, transfer_cost=1.0)
    total = workload_io(identity_layout, [[0, 1], [14, 15]], model)
    assert total.pages == 2
    assert total.runs == 2
    assert total.cost == 4.0


def test_span_scan_io(identity_layout):
    model = DiskCostModel(seek_cost=5.0, transfer_cost=1.0)
    io = span_scan_io(identity_layout, [0, 15], model)
    # Scan from page 0 through page 7: 8 transfers, one seek.
    assert io.pages == 8
    assert io.runs == 1
    assert io.cost == 13.0
    assert span_scan_io(identity_layout, []).cost == 0.0


def test_better_order_costs_less():
    """A locality-preserving order beats a scrambled one on clustered
    queries — the end-to-end premise of the paper."""
    import numpy as np
    from repro.geometry import Box, Grid
    from repro.mapping import CurveMapping

    grid = Grid((8, 8))
    query = Box((2, 2), (5, 5)).cell_indices(grid)
    model = DiskCostModel(seek_cost=5.0, transfer_cost=0.1)
    snake = PageLayout(CurveMapping("snake").order_for_grid(grid), 4)
    scrambled = PageLayout(
        LinearOrder(np.random.default_rng(0).permutation(64)), 4)
    assert query_io(snake, query, model).cost < \
        query_io(scrambled, query, model).cost

"""Tests for repro.storage.pages."""

import numpy as np
import pytest

from repro.core import LinearOrder
from repro.errors import InvalidParameterError
from repro.storage import PageLayout


def test_page_of_follows_ranks():
    order = LinearOrder([3, 1, 0, 2])  # ranks: item0->2,1->1,2->3,3->0
    layout = PageLayout(order, page_size=2)
    assert list(layout.page_of) == [1, 0, 1, 0]
    assert layout.num_pages == 2
    assert layout.num_items == 4
    assert layout.page_size == 2


def test_last_page_may_be_partial():
    layout = PageLayout(LinearOrder.identity(5), page_size=2)
    assert layout.num_pages == 3
    assert list(layout.items_on_page(2)) == [4]


def test_items_on_page_partition():
    order = LinearOrder(np.random.default_rng(0).permutation(20))
    layout = PageLayout(order, page_size=4)
    seen = []
    for page in range(layout.num_pages):
        seen.extend(int(v) for v in layout.items_on_page(page))
    assert sorted(seen) == list(range(20))


def test_items_on_page_in_rank_order():
    order = LinearOrder([2, 0, 3, 1])
    layout = PageLayout(order, page_size=2)
    assert list(layout.items_on_page(0)) == [2, 0]
    assert list(layout.items_on_page(1)) == [3, 1]


def test_items_on_page_validation():
    layout = PageLayout(LinearOrder.identity(4), page_size=2)
    with pytest.raises(InvalidParameterError):
        layout.items_on_page(2)
    with pytest.raises(InvalidParameterError):
        PageLayout(LinearOrder.identity(4), page_size=0)


def test_pages_for_items_sorted_unique():
    layout = PageLayout(LinearOrder.identity(12), page_size=3)
    pages = layout.pages_for_items([0, 1, 2, 5, 11, 11])
    assert list(pages) == [0, 1, 3]
    assert list(layout.pages_for_items([])) == []


def test_page_run_lengths():
    layout = PageLayout(LinearOrder.identity(20), page_size=1)
    assert layout.page_run_lengths(np.array([0, 1, 2, 5, 6, 9])) == \
        [3, 2, 1]
    assert layout.page_run_lengths(np.array([])) == []
    assert layout.page_run_lengths(np.array([4])) == [1]


def test_empty_layout():
    layout = PageLayout(LinearOrder([]), page_size=4)
    assert layout.num_pages == 0
    assert layout.num_items == 0


def test_repr():
    layout = PageLayout(LinearOrder.identity(10), page_size=4)
    assert "pages=3" in repr(layout)

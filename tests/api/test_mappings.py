"""The Mapping protocol: capabilities, resolution, and domain dispatch."""

import numpy as np
import pytest

from repro.api import Mapping, PointSet, make_mapping
from repro.api.mappings import MappingSpec  # noqa: F401 - exported type
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import DomainError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.mapping import (
    CurveMapping,
    ExplicitMapping,
    SpectralBisectionMapping,
    SpectralMapping,
    SpectralMultilevelMapping,
)
from repro.service import OrderingService


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
def test_make_mapping_resolves_names():
    assert isinstance(make_mapping("hilbert"), CurveMapping)
    assert isinstance(make_mapping("spectral"), SpectralMapping)
    assert isinstance(make_mapping("spectral-rb"),
                      SpectralBisectionMapping)
    assert isinstance(make_mapping("spectral-ml"),
                      SpectralMultilevelMapping)


def test_make_mapping_accepts_spectral_config_as_spec():
    mapping = make_mapping(SpectralConfig(weight="gaussian"))
    assert isinstance(mapping, SpectralMapping)
    assert mapping.algorithm.config.weight == "gaussian"


def test_make_mapping_passes_instances_through():
    mapping = CurveMapping("gray")
    assert make_mapping(mapping) is mapping
    with pytest.raises(InvalidParameterError):
        make_mapping(mapping, config=SpectralConfig())
    with pytest.raises(InvalidParameterError):
        make_mapping(mapping, backend="dense")


def test_make_mapping_config_applies_to_spectral_and_not_curves():
    config = SpectralConfig(backend="dense", weight="inverse_manhattan")
    spectral = make_mapping("spectral", config=config)
    assert spectral.algorithm.config.backend == "dense"
    assert spectral.algorithm.config.weight == "inverse_manhattan"
    # kwargs override the config
    override = make_mapping("spectral", config=config, weight="unit")
    assert override.algorithm.config.weight == "unit"
    # curves accept (and ignore) the config, reject kwargs
    assert isinstance(make_mapping("sweep", config=config), CurveMapping)
    with pytest.raises(InvalidParameterError):
        make_mapping("sweep", backend="dense")


def test_make_mapping_rejects_junk_specs():
    with pytest.raises(InvalidParameterError):
        make_mapping("no-such-mapping")
    with pytest.raises(InvalidParameterError):
        make_mapping(42)
    with pytest.raises(InvalidParameterError):
        make_mapping(SpectralConfig(), config=SpectralConfig())


# ----------------------------------------------------------------------
# Protocol and capabilities
# ----------------------------------------------------------------------
def test_every_family_satisfies_the_protocol():
    grid = Grid((3, 3))
    families = [
        make_mapping("hilbert"),
        make_mapping("spectral"),
        make_mapping("spectral-rb"),
        make_mapping("spectral-ml"),
        ExplicitMapping(grid, LinearOrder(np.arange(9))),
    ]
    for mapping in families:
        assert isinstance(mapping, Mapping)
        caps = mapping.capabilities
        assert isinstance(caps.batch_encode, bool)
        assert isinstance(caps.cacheable, bool)
        assert isinstance(caps.provenance, bool)


def test_capabilities_reflect_reality():
    assert make_mapping("hilbert").capabilities.batch_encode
    assert not make_mapping("hilbert").capabilities.provenance
    spectral = make_mapping("spectral")
    assert spectral.capabilities.cacheable
    assert spectral.capabilities.provenance
    assert not spectral.capabilities.batch_encode
    # callable weights / explicit state defeat cacheability
    custom = make_mapping("spectral", weight=lambda d: 1.0 / d)
    assert not custom.capabilities.cacheable
    explicit = ExplicitMapping(Grid((2, 2)), LinearOrder(np.arange(4)))
    assert not explicit.capabilities.cacheable


# ----------------------------------------------------------------------
# order_domain across the union
# ----------------------------------------------------------------------
def test_order_domain_grid_matches_order_for_grid():
    grid = Grid((5, 5))
    for name in ("hilbert", "spectral", "spectral-rb", "spectral-ml"):
        mapping = make_mapping(name)
        assert (mapping.order_domain(grid)
                == mapping.order_for_grid(grid))


def test_order_domain_rejects_unknown_domains():
    with pytest.raises(InvalidParameterError):
        make_mapping("hilbert").order_domain("nope")


def test_curve_point_set_order_is_the_restricted_grid_order():
    """A curve orders a subset exactly as the full-grid order restricted
    to that subset (both are sorted by curve key)."""
    grid = Grid((6, 6))
    cells = np.array([1, 7, 8, 14, 20, 26, 32, 33])
    ps = PointSet(grid, cells)
    for name in ("hilbert", "peano", "gray", "sweep"):
        mapping = make_mapping(name)
        subset_order = mapping.order_domain(ps)
        full_ranks = mapping.ranks_for_grid(grid)
        expected = np.argsort(full_ranks[cells], kind="stable")
        assert np.array_equal(subset_order.permutation, expected)


def test_spectral_point_set_order_matches_order_points():
    grid = Grid((6, 6))
    cells = np.arange(12)
    ps = PointSet(grid, cells)
    mapping = make_mapping("spectral", backend="dense")
    via_domain = mapping.order_domain(ps)
    expected, _ = mapping.algorithm.order_points(grid, cells)
    assert via_domain == expected


def test_spectral_point_set_routes_through_service():
    grid = Grid((6, 6))
    ps = PointSet(grid, np.arange(10))
    service = OrderingService()
    mapping = make_mapping("spectral")
    mapping.order_domain(ps, service=service)
    assert service.stats.computed == 1
    mapping2 = make_mapping("spectral")
    mapping2.order_domain(ps, service=service)
    assert service.stats.memory_hits == 1


def test_graph_domain_dispatch():
    graph = grid_graph(Grid((4, 4)))
    spectral = make_mapping("spectral", backend="dense")
    order = spectral.order_domain(graph)
    assert order == spectral.algorithm.order_graph(graph)
    rb = make_mapping("spectral-rb")
    assert rb.order_domain(graph).n == graph.num_vertices
    ml = make_mapping("spectral-ml")
    assert ml.order_domain(graph).n == graph.num_vertices
    with pytest.raises(DomainError):
        make_mapping("hilbert").order_domain(graph)


def test_rb_and_ml_point_set_orders_cover_positions():
    grid = Grid((6, 6))
    ps = PointSet(grid, np.arange(14))
    for name in ("spectral-rb", "spectral-ml"):
        order = make_mapping(name).order_domain(ps)
        assert sorted(order.permutation) == list(range(len(ps)))

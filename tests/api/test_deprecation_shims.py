"""Deprecation shims: old entry points warn and stay bit-identical.

The pre-``repro.api`` front doors — :func:`repro.mapping.mapping_by_name`
and direct :class:`repro.query.LinearStore` construction — must keep
working for downstream code: same orders, same query results, plus a
:class:`DeprecationWarning` pointing at the replacement.
"""

import warnings

import numpy as np
import pytest

from repro import mapping_by_name
from repro.api import SpectralIndex, make_mapping
from repro.core.spectral import SpectralConfig
from repro.geometry import Box, Grid
from repro.mapping import (
    CurveMapping,
    SpectralBisectionMapping,
    SpectralMapping,
)
from repro.query import LinearStore
from repro.service import OrderingService


def test_mapping_by_name_warns():
    with pytest.warns(DeprecationWarning, match="make_mapping"):
        mapping_by_name("hilbert")


def test_mapping_by_name_resolves_like_make_mapping():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert isinstance(mapping_by_name("gray"), CurveMapping)
        assert isinstance(mapping_by_name("spectral"), SpectralMapping)
        assert isinstance(mapping_by_name("spectral-rb"),
                          SpectralBisectionMapping)
        spectral = mapping_by_name("spectral", backend="dense",
                                   weight="gaussian")
        assert spectral.algorithm.config.backend == "dense"
        assert spectral.algorithm.config.weight == "gaussian"


@pytest.mark.parametrize("name", ("sweep", "peano", "gray", "hilbert",
                                  "spectral", "spectral-rb",
                                  "spectral-ml"))
def test_shim_orders_are_bit_identical_to_the_facade(name):
    grid = Grid((7, 7))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old = mapping_by_name(name).ranks_for_grid(grid)
    new = SpectralIndex.build(grid, mapping=name).ranks
    assert np.array_equal(old, new)


def test_linear_store_construction_warns(grid8):
    with pytest.warns(DeprecationWarning, match="SpectralIndex"):
        LinearStore(grid8, make_mapping("sweep"))


def test_linear_store_results_match_the_facade(grid8):
    service = OrderingService()
    mapping = make_mapping("spectral", service=service)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        store = LinearStore(grid8, mapping, page_size=8, tree_order=8)
    index = SpectralIndex.build(grid8, service=service,
                                page_size=8, tree_order=8)
    for box in (Box((0, 0), (3, 3)), Box((2, 1), (6, 5))):
        for plan in ("span-scan", "page-fetch"):
            old = store.range_query(box, plan=plan)
            new = index.range(box, plan=plan)
            assert np.array_equal(old.results, new.results)
            assert old.pages_fetched == new.pages_fetched
            assert old.seeks == new.seeks
            assert old.cost == new.cost
    # and the shared service solved exactly once for both stacks
    assert service.stats.computed == 1


def test_linear_store_service_routing_still_works(grid8):
    """The old store-level service= parameter keeps its semantics."""
    service = OrderingService()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        LinearStore(grid8, make_mapping("spectral"), service=service)
        LinearStore(grid8, make_mapping("spectral"), service=service)
    assert service.stats.computed == 1
    assert service.stats.memory_hits == 1

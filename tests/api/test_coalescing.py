"""Request coalescing: concurrent identical misses run one eigensolve.

The serving-layer contract from the ROADMAP: two (or N) concurrent
misses on one (config, domain) fingerprint must trigger exactly one
solver invocation, asserted against the process-wide
``solver_invocations`` counter; and a ``query_many`` batch over K
same-topology mappings must pay at most one graph build, asserted
against the service's topology counter (and the coarsening matching
counter staying flat).
"""

import threading
import time

import numpy as np
import pytest

from repro.api import NNQuery, SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.geometry import Grid
from repro.graph.coarsening import matching_invocations
from repro.linalg.backends import solver_invocations
from repro.service import OrderingService


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            target(i)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


@pytest.fixture
def slow_compute(monkeypatch):
    """Stretch the leader's solve so waiters reliably overlap it.

    The coalescing assertions are about *concurrent* misses; without
    this, a fast dense solve can finish before the OS even schedules
    the other threads, turning would-be waiters into memory hits and
    the test into a coin flip.
    """
    real = OrderingService._compute_grid

    def slowed(self, key, grid, config, graph):
        time.sleep(0.15)
        return real(self, key, grid, config, graph)

    monkeypatch.setattr(OrderingService, "_compute_grid", slowed)


def test_concurrent_cold_misses_run_exactly_one_solve(slow_compute):
    service = OrderingService()
    grid = Grid((13, 13))
    results = [None] * 8

    before = solver_invocations()

    def hit(i):
        results[i] = service.order_grid(grid)

    _run_threads(8, hit)

    assert solver_invocations() - before == 1
    stats = service.stats
    assert stats.computed == 1
    assert stats.coalesced + stats.memory_hits == 7
    assert stats.coalesced >= 1  # overlap forced by slow_compute
    reference = results[0]
    for order in results[1:]:
        assert order == reference


def test_coalesced_artifacts_carry_the_coalesced_source(slow_compute):
    service = OrderingService()
    grid = Grid((16, 16))
    sources = []
    lock = threading.Lock()

    def hit(_):
        artifact = service.grid_artifact(grid)
        with lock:
            sources.append(artifact.source)

    _run_threads(6, hit)
    assert sorted(set(sources)) <= ["coalesced", "computed", "memory"]
    assert sources.count("computed") == 1
    assert "coalesced" in sources


def test_concurrent_distinct_domains_do_not_serialize_to_one():
    """Different keys each solve (single-flight is per key, not global)."""
    service = OrderingService()
    grids = [Grid((7, 7)), Grid((8, 8)), Grid((9, 9)), Grid((10, 10))]

    before = solver_invocations()
    _run_threads(4, lambda i: service.order_grid(grids[i]))
    assert solver_invocations() - before == len(grids)
    assert service.stats.computed == len(grids)


def test_concurrent_solves_attribute_solver_calls_per_artifact():
    """Provenance counts only the owning thread's invocations, even
    while other threads solve other keys (thread-local tally)."""
    service = OrderingService()
    grids = [Grid((7, 7)), Grid((8, 8)), Grid((9, 9)), Grid((10, 10))]
    artifacts = [None] * len(grids)

    before = solver_invocations()
    _run_threads(len(grids),
                 lambda i: artifacts.__setitem__(
                     i, service.grid_artifact(grids[i])))
    total = solver_invocations() - before
    # Each artifact records exactly one solve (connected grid, dense
    # backend) and the stats sum matches reality — no cross-counting.
    assert [a.solver_calls for a in artifacts] == [1] * len(grids)
    assert service.stats.solver_calls == total == len(grids)


def test_concurrent_graph_and_point_requests_coalesce():
    service = OrderingService()
    grid = Grid((11, 11))
    cells = np.arange(0, 60)  # a connected block of rows

    before = solver_invocations()
    _run_threads(6, lambda i: service.order_points(grid, cells))
    assert solver_invocations() - before == 1


def test_failed_leader_does_not_wedge_the_key(monkeypatch):
    """Waiters retry when the leading computation raises."""
    service = OrderingService()
    grid = Grid((6, 6))
    calls = {"n": 0}
    real = OrderingService._compute_grid

    def flaky(self, key, g, config, graph):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected solve failure")
        return real(self, key, g, config, graph)

    monkeypatch.setattr(OrderingService, "_compute_grid", flaky)
    with pytest.raises(RuntimeError):
        service.order_grid(grid)
    # The key is not wedged: the next request computes normally.
    order = service.order_grid(grid)
    assert order.n == grid.size


def test_query_many_same_topology_batch_builds_one_graph():
    """K spectral configs over one grid: <= 1 topology build, and the
    coarsening matcher is never re-invoked by the batch."""
    service = OrderingService()
    grid = Grid((10, 10))
    index = SpectralIndex.build(grid, service=service)
    topology_before = service.stats.topology_builds
    matching_before = matching_invocations()
    solves_before = solver_invocations()

    weights = ("inverse_manhattan", "gaussian", "inverse_euclidean")
    results = index.query_many([
        NNQuery(17, k=4, mapping=SpectralConfig(weight=w))
        for w in weights
    ])

    assert len(results) == len(weights)
    assert service.stats.topology_builds - topology_before == 1
    assert matching_invocations() - matching_before == 0
    # Each distinct weight config still needs its own eigensolve; the
    # amortized quantity is the graph build, not the solve.
    assert solver_invocations() - solves_before == len(weights)

    # Re-running the same batch is fully warm: no new topology builds.
    index.query_many([
        NNQuery(17, k=4, mapping=SpectralConfig(weight=w))
        for w in weights
    ])
    assert service.stats.topology_builds - topology_before == 1


def test_query_many_order_acquisition_goes_through_order_many():
    """The batch path materializes via order_many, not one-by-one."""
    service = OrderingService()
    grid = Grid((9, 9))
    index = SpectralIndex.build(grid, service=service)
    seen = {}
    real = OrderingService.order_many

    def spy(self, requests):
        seen["count"] = len(list(requests))
        return real(self, requests)

    OrderingService.order_many = spy
    try:
        index.query_many([
            NNQuery(3, k=2, mapping=SpectralConfig(weight=w))
            for w in ("inverse_manhattan", "gaussian")
        ])
    finally:
        OrderingService.order_many = real
    assert seen["count"] == 2

"""Domain union: PointSet semantics and as_domain coercion."""

import numpy as np
import pytest

from repro.api import PointSet, as_domain
from repro.errors import DomainError, InvalidParameterError
from repro.geometry import Grid
from repro.graph import Graph, grid_graph


def test_pointset_canonicalizes_cells():
    ps = PointSet(Grid((4, 4)), [9, 2, 9, 5, 2])
    assert list(ps.cells) == [2, 5, 9]
    assert len(ps) == 3
    assert ps.cells.dtype == np.int64


def test_pointset_cells_are_read_only():
    ps = PointSet(Grid((4, 4)), [1, 2])
    with pytest.raises(ValueError):
        ps.cells[0] = 3


def test_pointset_equality_and_hash_ignore_input_order():
    grid = Grid((5, 5))
    a = PointSet(grid, [3, 1, 7])
    b = PointSet(grid, [7, 3, 1, 1])
    assert a == b
    assert hash(a) == hash(b)
    assert a != PointSet(grid, [3, 1, 8])
    assert a != PointSet(Grid((5, 6)), [3, 1, 7])


def test_pointset_coordinates_match_grid():
    grid = Grid((3, 4))
    ps = PointSet(grid, [0, 5, 11])
    expected = np.array([grid.point_of(c) for c in ps.cells])
    assert np.array_equal(ps.coordinates(), expected)


def test_pointset_validates_inputs():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        PointSet(grid, [])
    with pytest.raises(DomainError):
        PointSet(grid, [0, 9])
    with pytest.raises(DomainError):
        PointSet(grid, [-1])
    with pytest.raises(InvalidParameterError):
        PointSet("not a grid", [0])


def test_as_domain_passthrough_and_promotion():
    grid = Grid((4, 4))
    ps = PointSet(grid, [1, 2])
    graph = grid_graph(Grid((2, 2)))
    assert as_domain(grid) is grid
    assert as_domain(ps) is ps
    assert as_domain(graph) is graph
    promoted = as_domain((3, 5))
    assert isinstance(promoted, Grid)
    assert promoted.shape == (3, 5)
    assert as_domain([4, 4]) == Grid((4, 4))


def test_as_domain_rejects_junk():
    with pytest.raises(InvalidParameterError):
        as_domain("8x8")
    with pytest.raises(InvalidParameterError):
        as_domain(64)

"""The parallel serving front: threaded ``query_many``, asyncio facade.

Contracts pinned here:

* ``query_many(parallelism=K)`` returns **bit-identical** results to the
  sequential path — for range, nn, and join queries, over grid and
  point-set domains, including per-query mapping overrides;
* N threads hammering one index pay **exactly** the right number of
  eigensolves (the index's single-flight views compose with the
  service's request coalescing), asserted against the process-wide
  ``solver_invocations`` counter — including for *non-cacheable*
  mappings the service cannot coalesce;
* buffer accounting stays conservation-exact under concurrent
  execution;
* the worker-count knob resolves argument > ``REPRO_QUERY_WORKERS`` >
  sequential, and rejects nonsense;
* ``AsyncSpectralIndex`` serves the same answers through an event loop.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.api import (
    AsyncSpectralIndex,
    JoinQuery,
    NNQuery,
    PointSet,
    RangeQuery,
    SpectralConfig,
    SpectralIndex,
    make_mapping,
)
from repro.api.executor import (
    WORKERS_ENV,
    resolve_parallelism,
    workers_from_env,
)
from repro.errors import DomainError, InvalidParameterError
from repro.geometry import Grid
from repro.linalg.backends import solver_invocations
from repro.query.engine import QueryExecution
from repro.query.join import JoinReport
from repro.service import OrderingService


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        try:
            barrier.wait()
            target(i)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def _assert_identical(sequential, parallel):
    assert len(sequential) == len(parallel)
    for a, b in zip(sequential, parallel):
        assert type(a) is type(b)
        if isinstance(a, QueryExecution):
            assert np.array_equal(a.results, b.results)
            assert a.plan == b.plan
            assert a.index_node_accesses == b.index_node_accesses
            assert a.pages_fetched == b.pages_fetched
            assert a.seeks == b.seeks
            assert a.buffer_hits == b.buffer_hits
            assert a.cost == b.cost
        elif isinstance(a, JoinReport):
            assert a == b
        else:  # NNResult
            assert np.array_equal(a.neighbors, b.neighbors)
            assert a.window == b.window
            assert a.candidates == b.candidates


def _grid_batch():
    return [
        RangeQuery(((1, 1), (6, 6))),
        RangeQuery(((0, 3), (9, 9)), plan="page-fetch"),
        NNQuery((4, 4), k=6),
        NNQuery(17, k=4, window=12),
        JoinQuery([0, 1, 2, 12, 13], [50, 51, 62, 73], epsilon=2,
                  window=24),
        NNQuery((7, 2), k=3, mapping="hilbert"),
        NNQuery((2, 7), k=3, mapping=SpectralConfig(weight="gaussian")),
        RangeQuery(((2, 2), (5, 8)), mapping="sweep"),
    ]


# ----------------------------------------------------------------------
# Bit-identical results, grid domain
# ----------------------------------------------------------------------
def test_parallel_query_many_bit_identical_on_grid():
    index = SpectralIndex.build((12, 12))
    sequential = index.query_many(_grid_batch())
    for workers in (2, 4, 8):
        _assert_identical(sequential,
                          index.query_many(_grid_batch(),
                                           parallelism=workers))


def test_parallel_query_many_bit_identical_on_fresh_index():
    """Parallel execution on a *cold* index (views + stores not yet
    materialized) matches a sequential run on an identical twin."""
    sequential = SpectralIndex.build((11, 11)).query_many(_grid_batch())
    parallel = SpectralIndex.build((11, 11)).query_many(_grid_batch(),
                                                        parallelism=4)
    _assert_identical(sequential, parallel)


# ----------------------------------------------------------------------
# Bit-identical results, point-set domain
# ----------------------------------------------------------------------
def test_parallel_query_many_bit_identical_on_point_set():
    grid = Grid((10, 10))
    cells = list(range(0, 100, 3))
    index = SpectralIndex.build(PointSet(grid, cells))
    batch = (
        [NNQuery(cell, k=4) for cell in cells[:8]]
        + [JoinQuery(cells[:6], cells[10:16], epsilon=3, window=12)]
        + [NNQuery(cells[5], k=3, window=9)]
    )
    sequential = index.query_many(batch)
    _assert_identical(sequential, index.query_many(batch, parallelism=4))
    # Neighbours come back as flat *grid* indices of occupied cells.
    for result in sequential[:8]:
        assert all(int(c) in set(cells) for c in result.neighbors)


def test_point_set_range_queries_still_rejected():
    index = SpectralIndex.build(PointSet(Grid((6, 6)), range(12)))
    with pytest.raises(DomainError):
        index.query_many([RangeQuery(((0, 0), (2, 2)))], parallelism=2)


# ----------------------------------------------------------------------
# Exact solve accounting under threads
# ----------------------------------------------------------------------
def test_n_thread_query_many_runs_exactly_one_solve_per_config():
    service = OrderingService()
    index = SpectralIndex.build((10, 10), service=service)
    weights = ("unit", "inverse_manhattan", "gaussian")
    batch = [NNQuery(17, k=4, mapping=SpectralConfig(weight=w))
             for w in weights]
    before = solver_invocations()
    results = [None] * 6

    def hit(i):
        results[i] = index.query_many(batch, parallelism=2)

    _run_threads(6, hit)

    # 6 threads x 3 configs, but one solve per distinct config: the
    # index's view flights and the service's single-flight compose.
    assert solver_invocations() - before == len(weights)
    reference = results[0]
    for other in results[1:]:
        _assert_identical(reference, other)


def test_concurrent_non_cacheable_mapping_materializes_once():
    """The service cannot coalesce callable-weight mappings; the
    index-level single-flight is what keeps them at one solve."""
    mapping = make_mapping("spectral", weight=lambda d: 1.0)
    index = SpectralIndex.build((9, 9))
    orders = [None] * 8
    before = solver_invocations()

    _run_threads(8, lambda i: orders.__setitem__(
        i, index.order_for(mapping)))

    assert solver_invocations() - before == 1
    assert index.stats.uncacheable <= 1
    for order in orders[1:]:
        assert order == orders[0]


def test_failed_view_leader_does_not_wedge_the_index(monkeypatch):
    index = SpectralIndex.build((6, 6))
    calls = {"n": 0}
    real = SpectralIndex._build_view

    def flaky(self, mapping):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("injected materialization failure")
        return real(self, mapping)

    monkeypatch.setattr(SpectralIndex, "_build_view", flaky)
    with pytest.raises(RuntimeError):
        index.nn(3, k=2)
    # The view key is not wedged: the next request materializes.
    assert len(index.nn(3, k=2).neighbors) == 2


# ----------------------------------------------------------------------
# Buffer accounting under concurrent execution
# ----------------------------------------------------------------------
def test_buffer_stats_is_a_pure_observer():
    """buffer_stats never materializes a view (and so never solves)."""
    index = SpectralIndex.build((12, 12), buffer_capacity=4)
    before = solver_invocations()
    assert index.buffer_stats() is None
    assert index.buffer_stats("hilbert") is None
    assert solver_invocations() - before == 0


def test_buffer_accounting_exact_under_parallel_query_many():
    index = SpectralIndex.build((16, 16), buffer_capacity=8)
    batch = [RangeQuery(((i % 8, i % 8), (i % 8 + 5, i % 8 + 5)))
             for i in range(24)]
    results = index.query_many(batch, parallelism=4)
    stats = index.buffer_stats()
    assert stats is not None
    assert stats.hits + stats.misses == stats.accesses
    assert stats.accesses == sum(e.pages_fetched for e in results)
    # Result sets are interleaving-independent even though buffer-hit
    # attribution is not.
    sequential = SpectralIndex.build((16, 16)).query_many(batch)
    for a, b in zip(results, sequential):
        assert np.array_equal(a.results, b.results)


def test_workload_parallelism_conserves_accounting():
    index = SpectralIndex.build((16, 16), buffer_capacity=8)
    boxes = [((i % 6, i % 6), (i % 6 + 7, i % 6 + 7)) for i in range(20)]
    report = index.workload(boxes, parallelism=4)
    stats = index.buffer_stats()
    assert report.queries == len(boxes)
    assert stats.accesses == report.pages_fetched
    assert stats.hits == report.buffer_hits
    assert stats.hits + stats.misses == stats.accesses
    # The aggregated result count matches a sequential twin.
    twin = SpectralIndex.build((16, 16), buffer_capacity=8)
    assert twin.workload(boxes).results == report.results


# ----------------------------------------------------------------------
# The parallelism knob
# ----------------------------------------------------------------------
def test_parallelism_resolution_precedence(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert workers_from_env() is None
    assert resolve_parallelism(None) == 1
    assert resolve_parallelism(3) == 3
    monkeypatch.setenv(WORKERS_ENV, "5")
    assert workers_from_env() == 5
    assert resolve_parallelism(None) == 5
    assert resolve_parallelism(2) == 2  # explicit argument wins


def test_parallelism_rejects_nonsense(monkeypatch):
    index = SpectralIndex.build((6, 6))
    with pytest.raises(InvalidParameterError):
        index.query_many([NNQuery(3, k=2)], parallelism=0)
    with pytest.raises(InvalidParameterError):
        resolve_parallelism(-1)
    with pytest.raises(InvalidParameterError):
        resolve_parallelism(2.5)
    with pytest.raises(InvalidParameterError):
        resolve_parallelism(True)
    monkeypatch.setenv(WORKERS_ENV, "many")
    with pytest.raises(InvalidParameterError):
        workers_from_env()
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(InvalidParameterError):
        workers_from_env()


def test_env_var_drives_query_many(monkeypatch):
    """REPRO_QUERY_WORKERS alone turns the fan-out on (results pinned)."""
    index = SpectralIndex.build((10, 10))
    sequential = index.query_many(_grid_batch()[:4])
    monkeypatch.setenv(WORKERS_ENV, "4")
    _assert_identical(sequential, index.query_many(_grid_batch()[:4]))


# ----------------------------------------------------------------------
# Asyncio facade
# ----------------------------------------------------------------------
def test_async_index_smoke():
    sync_index = SpectralIndex.build((10, 10))
    expected = sync_index.query_many(_grid_batch())

    async def main():
        async with AsyncSpectralIndex.build((10, 10), workers=4) as index:
            ranks = await index.ranks()
            single = await index.nn((4, 4), k=6)
            batches = await asyncio.gather(
                index.query_many(_grid_batch()),
                index.query_many(_grid_batch()),
            )
            return ranks, single, batches

    ranks, single, batches = asyncio.run(main())
    assert np.array_equal(ranks, sync_index.ranks)
    assert np.array_equal(single.neighbors, expected[2].neighbors)
    for batch in batches:
        _assert_identical(expected, batch)


def test_async_index_shares_a_sync_index_and_service():
    service = OrderingService()
    sync_index = SpectralIndex.build((9, 9), service=service)
    before = solver_invocations()

    async def main():
        index = AsyncSpectralIndex(sync_index, workers=2)
        try:
            return await asyncio.gather(
                index.range(((0, 0), (4, 4))),
                index.nn(10, k=3),
                index.order_for("hilbert"),
            )
        finally:
            await index.aclose()

    execution, nn_result, hilbert = asyncio.run(main())
    # One spectral solve total, shared with the sync facade's state.
    assert solver_invocations() - before == 1
    assert np.array_equal(
        execution.results,
        sync_index.range(((0, 0), (4, 4))).results)
    assert np.array_equal(nn_result.neighbors,
                          sync_index.nn(10, k=3).neighbors)
    assert hilbert == sync_index.order_for("hilbert")


def test_async_index_rejects_non_index():
    with pytest.raises(InvalidParameterError):
        AsyncSpectralIndex("not an index")

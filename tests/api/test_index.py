"""SpectralIndex: the facade composes ordering, layout, and queries."""

import numpy as np
import pytest

from repro.api import (
    JoinQuery,
    NNQuery,
    NNResult,
    PointSet,
    RangeQuery,
    SpectralIndex,
    make_mapping,
)
from repro.core.spectral import SpectralConfig
from repro.errors import DomainError, InvalidParameterError
from repro.geometry import Box, Grid
from repro.graph import grid_graph
from repro.query import QueryExecution
from repro.query.nn import true_knn
from repro.service import OrderingService


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_build_from_shape_tuple():
    index = SpectralIndex.build((6, 6))
    assert isinstance(index.domain, Grid)
    assert index.domain.shape == (6, 6)
    assert index.mapping.name == "spectral"
    assert sorted(index.order.permutation) == list(range(36))


def test_build_is_lazy_and_shares_one_solve_per_domain(grid8):
    service = OrderingService()
    first = SpectralIndex.build(grid8, service=service)
    second = SpectralIndex.build(grid8, service=service)
    # build() itself never solves — only first use does.
    assert service.stats.computed == 0
    assert first.order == second.order
    assert service.stats.computed == 1
    assert service.stats.memory_hits >= 1


def test_build_with_curve_default():
    index = SpectralIndex.build((8, 8), mapping="hilbert")
    assert index.mapping.name == "hilbert"
    assert index.provenance is None  # curves have no solve provenance


def test_build_applies_config_to_named_spectral_mappings(grid8):
    config = SpectralConfig(backend="dense", weight="inverse_manhattan")
    index = SpectralIndex.build(grid8, config=config)
    assert index.mapping.algorithm.config.weight == "inverse_manhattan"
    # names resolved later inherit the same config
    order_a = index.order_for("spectral")
    assert order_a == index.order


def test_provenance_for_spectral(grid8):
    index = SpectralIndex.build(grid8)
    art = index.provenance
    assert art is not None
    assert art.backend is not None
    assert art.lambda2 is not None
    assert art.order == index.order


def test_config_built_index_accepts_spectral_config_specs(grid8):
    """A SpectralConfig spec must not collide with the index's config."""
    index = SpectralIndex.build(grid8,
                                config=SpectralConfig(backend="dense"))
    order = index.order_for(SpectralConfig(weight="gaussian",
                                           backend="dense"))
    expected = make_mapping("spectral", weight="gaussian",
                            backend="dense").order_for_grid(grid8)
    assert order == expected


def test_rb_and_ml_views_are_cached_per_index(grid8):
    from repro.linalg.backends import solver_invocations
    index = SpectralIndex.build(grid8, mapping="hilbert")
    for name in ("spectral-rb", "spectral-ml"):
        first = index.ranks_for(name)
        before = solver_invocations()
        second = index.ranks_for(name)
        assert solver_invocations() - before == 0, name
        assert np.array_equal(first, second)


def test_ranks_for_matches_direct_mappings(grid8):
    index = SpectralIndex.build(grid8)
    for name in ("sweep", "peano", "gray", "hilbert"):
        expected = make_mapping(name).ranks_for_grid(grid8)
        assert np.array_equal(index.ranks_for(name), expected)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_range_accepts_box_and_corner_pair(grid8):
    index = SpectralIndex.build(grid8)
    via_box = index.range(Box((1, 1), (4, 4)))
    via_pair = index.range(((1, 1), (4, 4)))
    assert isinstance(via_box, QueryExecution)
    assert np.array_equal(via_box.results, via_pair.results)
    expected = Box((1, 1), (4, 4)).cell_indices(grid8)
    assert np.array_equal(via_box.results, np.sort(expected))


def test_range_rejects_junk_boxes(grid8):
    index = SpectralIndex.build(grid8)
    with pytest.raises(InvalidParameterError):
        index.range("not a box")


def test_range_per_mapping_and_plan(grid8):
    index = SpectralIndex.build(grid8)
    box = Box((2, 2), (5, 5))
    for mapping in (None, "hilbert"):
        scan = index.range(box, plan="span-scan", mapping=mapping)
        fetch = index.range(box, plan="page-fetch", mapping=mapping)
        assert np.array_equal(scan.results, fetch.results)


def test_nn_returns_true_neighbours_when_window_covers_them(grid8):
    index = SpectralIndex.build(grid8)
    result = index.nn((3, 3), k=4)
    assert isinstance(result, NNResult)
    assert len(result.neighbors) == 4
    assert result.candidates >= 4
    # the adaptive window re-ranks by Manhattan distance: all returned
    # neighbours must be at distance <= the true 4th neighbour distance
    cell = grid8.index_of((3, 3))
    truth = true_knn(grid8, cell, 4)
    coords = grid8.coordinates()
    max_true = np.abs(coords[truth] - coords[cell]).sum(axis=1).max()
    dist = np.abs(coords[result.neighbors] - coords[cell]).sum(axis=1)
    assert (dist >= 1).all()
    assert dist.max() <= max_true + 2  # window approximation slack


def test_nn_accepts_flat_index_and_fixed_window(grid8):
    index = SpectralIndex.build(grid8)
    res = index.nn(27, k=3, window=10)
    assert res.window == 10
    assert len(res.neighbors) <= 3


def test_nn_validates_inputs(grid8):
    index = SpectralIndex.build(grid8)
    with pytest.raises(InvalidParameterError):
        index.nn(0, k=0)
    with pytest.raises(DomainError):
        index.nn(9999, k=2)


def test_join_matches_query_module(grid8):
    from repro.query import window_join_report
    index = SpectralIndex.build(grid8)
    a = [0, 1, 2, 10, 11]
    b = [8, 9, 17, 40]
    got = index.join(a, b, epsilon=2, window=12)
    expected = window_join_report(grid8, index.ranks, a, b,
                                  epsilon=2, window=12)
    assert got == expected


def test_workload_aggregates(grid8):
    from repro.query import random_boxes
    index = SpectralIndex.build(grid8, page_size=8)
    boxes = random_boxes(grid8, extent=(3, 3), count=12, seed=5)
    report = index.workload(boxes)
    assert report.queries == 12
    assert report.pages_fetched > 0


def test_query_many_results_align_with_input(grid8):
    index = SpectralIndex.build(grid8)
    queries = [
        NNQuery((1, 1), k=2),
        RangeQuery(((0, 0), (3, 3))),
        JoinQuery([0, 1], [8, 9], epsilon=1, window=6),
        RangeQuery(((2, 2), (4, 4)), mapping="hilbert"),
    ]
    results = index.query_many(queries)
    assert isinstance(results[0], NNResult)
    assert isinstance(results[1], QueryExecution)
    assert results[2].true_pairs >= 1
    assert isinstance(results[3], QueryExecution)
    # parity with the one-at-a-time methods
    single = index.range(((0, 0), (3, 3)))
    assert np.array_equal(results[1].results, single.results)


def test_query_many_rejects_unknown_query_types(grid8):
    index = SpectralIndex.build(grid8)
    with pytest.raises(InvalidParameterError):
        index.query_many(["select *"])


# ----------------------------------------------------------------------
# Non-grid domains
# ----------------------------------------------------------------------
def test_point_set_domain_orders_positions():
    grid = Grid((6, 6))
    ps = PointSet(grid, np.arange(10))
    index = SpectralIndex.build(ps)
    assert sorted(index.order.permutation) == list(range(10))
    # Range queries need a page layout over a full grid; nn/join are
    # served directly from the point-set ranks.
    with pytest.raises(DomainError):
        index.range(((0, 0), (2, 2)))
    result = index.nn(0, k=2)
    assert len(result.neighbors) == 2
    assert all(int(c) in range(10) for c in result.neighbors)
    report = index.join([0], [1], epsilon=1, window=2)
    assert report.true_pairs == 1
    # Cells outside the occupied set are rejected, not mis-ranked.
    with pytest.raises(DomainError):
        index.nn(35, k=2)
    with pytest.raises(DomainError):
        index.join([0], [35], epsilon=1, window=2)


def test_graph_domain_orders_vertices():
    graph = grid_graph(Grid((4, 4)))
    service = OrderingService()
    index = SpectralIndex.build(graph, service=service)
    assert index.order.n == graph.num_vertices
    assert index.provenance is not None
    assert service.stats.computed == 1
    with pytest.raises(DomainError):
        index.range(((0, 0), (1, 1)))


def test_uncacheable_mapping_still_works(grid8):
    index = SpectralIndex.build(
        grid8, mapping=make_mapping("spectral", weight=lambda d: 1.0))
    assert sorted(index.order.permutation) == list(range(grid8.size))
    assert index.provenance is None
    assert index.stats.uncacheable >= 0  # served outside the cache tiers

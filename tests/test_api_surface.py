"""API-surface hygiene: exports resolve, and public items are documented.

These tests keep the library honest as it grows: every name in every
``__all__`` must import, every public module/class/function must carry a
docstring, and the version is consistent between the package and its
metadata.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.curves",
    "repro.datasets",
    "repro.experiments",
    "repro.geometry",
    "repro.graph",
    "repro.index",
    "repro.linalg",
    "repro.mapping",
    "repro.metrics",
    "repro.query",
    "repro.service",
    "repro.storage",
    "repro.viz",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    for name in module.__all__:
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert item.__doc__, f"{module_name}.{name} lacks a docstring"


def test_every_module_has_docstring():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        module = importlib.import_module(info.name)
        assert module.__doc__, f"{info.name} lacks a module docstring"


def test_version_consistency():
    assert repro.__version__ == "1.0.0"
    import importlib.metadata
    assert importlib.metadata.version("repro") == repro.__version__


def test_public_api_covers_the_paper_pipeline():
    """The README's quickstart names must exist at top level."""
    for name in ("Grid", "Box", "Graph", "SpectralLPM", "spectral_order",
                 "paper_mappings", "LinearOrder",
                 "fiedler_vector", "add_access_pattern",
                 # the unified repro.api facade
                 "SpectralIndex", "PointSet", "make_mapping",
                 "as_domain", "RangeQuery", "NNQuery", "JoinQuery",
                 "MappingCapabilities"):
        assert name in repro.__all__


def test_api_package_is_typed_and_exported():
    """repro.api ships py.typed and a curated __all__."""
    import pathlib

    import repro.api

    assert repro.api.__all__, "repro.api lacks __all__"
    package_root = pathlib.Path(repro.__file__).parent
    assert (package_root / "py.typed").exists(), \
        "py.typed marker missing from the repro package"
    # The facade itself resolves through the package root too.
    assert repro.SpectralIndex is repro.api.SpectralIndex

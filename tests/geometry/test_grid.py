"""Tests for repro.geometry.grid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    DimensionError,
    DomainError,
    InvalidParameterError,
)
from repro.geometry import Grid, pairs_along_axis

# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_shape_and_size():
    grid = Grid((3, 4, 5))
    assert grid.shape == (3, 4, 5)
    assert grid.ndim == 3
    assert grid.size == 60
    assert len(grid) == 60


def test_cube_constructor():
    grid = Grid.cube(4, 5)
    assert grid.shape == (4,) * 5
    assert grid.size == 1024


def test_strides_are_row_major():
    grid = Grid((3, 4, 5))
    assert grid.strides == (20, 5, 1)


def test_empty_shape_rejected():
    with pytest.raises(InvalidParameterError):
        Grid(())


def test_nonpositive_side_rejected():
    with pytest.raises(InvalidParameterError):
        Grid((3, 0))
    with pytest.raises(InvalidParameterError):
        Grid((-1,))


def test_cube_rejects_bad_ndim():
    with pytest.raises(InvalidParameterError):
        Grid.cube(4, 0)


# ----------------------------------------------------------------------
# Index <-> point conversion
# ----------------------------------------------------------------------
def test_index_of_matches_numpy_ravel():
    grid = Grid((3, 4, 5))
    for point in [(0, 0, 0), (2, 3, 4), (1, 2, 3)]:
        assert grid.index_of(point) == np.ravel_multi_index(point,
                                                            grid.shape)


def test_point_of_inverts_index_of():
    grid = Grid((3, 4, 5))
    for index in range(grid.size):
        assert grid.index_of(grid.point_of(index)) == index


def test_out_of_domain_point_raises():
    grid = Grid((3, 3))
    with pytest.raises(DomainError):
        grid.index_of((3, 0))
    with pytest.raises(DomainError):
        grid.index_of((0, -1))


def test_wrong_dimensionality_raises():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        grid.index_of((1, 1, 1))


def test_point_of_out_of_range_raises():
    grid = Grid((3, 3))
    with pytest.raises(DomainError):
        grid.point_of(9)
    with pytest.raises(DomainError):
        grid.point_of(-1)


def test_vectorized_conversions_roundtrip():
    grid = Grid((4, 5))
    indices = np.arange(grid.size)
    points = grid.points_of(indices)
    assert points.shape == (grid.size, 2)
    assert np.array_equal(grid.indices_of(points), indices)


def test_indices_of_rejects_out_of_domain():
    grid = Grid((3, 3))
    with pytest.raises(DomainError):
        grid.indices_of(np.array([[0, 3]]))


def test_indices_of_rejects_bad_shape():
    grid = Grid((3, 3))
    with pytest.raises(DimensionError):
        grid.indices_of(np.array([[0, 0, 0]]))


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def test_points_enumerates_row_major():
    grid = Grid((2, 3))
    assert list(grid.points()) == [
        (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
    ]


def test_coordinates_matches_points():
    grid = Grid((3, 2, 2))
    coords = grid.coordinates()
    assert coords.shape == (grid.size, 3)
    assert [tuple(row) for row in coords] == list(grid.points())


def test_iter_and_contains():
    grid = Grid((2, 2))
    assert (1, 1) in grid
    assert (2, 0) not in grid
    assert list(iter(grid)) == list(grid.points())


# ----------------------------------------------------------------------
# Metrics and neighborhoods
# ----------------------------------------------------------------------
def test_manhattan_and_chebyshev():
    assert Grid.manhattan((0, 0), (2, 3)) == 5
    assert Grid.chebyshev((0, 0), (2, 3)) == 3
    with pytest.raises(DimensionError):
        Grid.manhattan((0,), (1, 2))
    with pytest.raises(DimensionError):
        Grid.chebyshev((0,), (1, 2))


def test_max_manhattan():
    assert Grid((3, 4)).max_manhattan == 5
    assert Grid.cube(4, 5).max_manhattan == 15


def test_orthogonal_neighbors_interior_and_corner():
    grid = Grid((3, 3))
    center = set(grid.neighbors((1, 1)))
    assert center == {(0, 1), (2, 1), (1, 0), (1, 2)}
    corner = set(grid.neighbors((0, 0)))
    assert corner == {(0, 1), (1, 0)}


def test_moore_neighbors():
    grid = Grid((3, 3))
    center = set(grid.neighbors((1, 1), connectivity="moore"))
    assert len(center) == 8
    corner = set(grid.neighbors((0, 0), connectivity=8))
    assert corner == {(0, 1), (1, 0), (1, 1)}


def test_connectivity_aliases():
    grid = Grid((3, 3))
    assert (set(grid.neighbors((1, 1), connectivity=4))
            == set(grid.neighbors((1, 1), connectivity="orthogonal")))
    with pytest.raises(InvalidParameterError):
        list(grid.neighbors((1, 1), connectivity="hexagonal"))


def test_neighbors_3d_counts():
    grid = Grid((3, 3, 3))
    assert len(list(grid.neighbors((1, 1, 1)))) == 6
    assert len(list(grid.neighbors((1, 1, 1), "moore"))) == 26


# ----------------------------------------------------------------------
# pairs_along_axis
# ----------------------------------------------------------------------
def test_pairs_along_axis_values():
    grid = Grid((3, 3))
    left, right = pairs_along_axis(grid, axis=1, delta=2)
    # Only cells with column 0 have a partner two columns right.
    assert list(left) == [0, 3, 6]
    assert list(right) == [2, 5, 8]


def test_pairs_along_axis_distance_is_delta():
    grid = Grid((4, 5))
    for axis in (0, 1):
        for delta in (1, 2, 3):
            left, right = pairs_along_axis(grid, axis, delta)
            for a, b in zip(left, right):
                assert Grid.manhattan(grid.point_of(int(a)),
                                      grid.point_of(int(b))) == delta


def test_pairs_along_axis_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        pairs_along_axis(grid, axis=2, delta=1)
    with pytest.raises(InvalidParameterError):
        pairs_along_axis(grid, axis=0, delta=3)
    with pytest.raises(InvalidParameterError):
        pairs_along_axis(grid, axis=0, delta=0)


# ----------------------------------------------------------------------
# Dunder protocol / properties
# ----------------------------------------------------------------------
def test_equality_and_hash():
    assert Grid((2, 3)) == Grid((2, 3))
    assert Grid((2, 3)) != Grid((3, 2))
    assert hash(Grid((2, 3))) == hash(Grid((2, 3)))
    assert Grid((2, 3)) != "not a grid"


def test_repr_mentions_shape():
    assert "(2, 3)" in repr(Grid((2, 3)))


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------
@given(
    shape=st.lists(st.integers(1, 6), min_size=1, max_size=4),
    data=st.data(),
)
def test_index_point_roundtrip_property(shape, data):
    grid = Grid(shape)
    index = data.draw(st.integers(0, grid.size - 1))
    assert grid.index_of(grid.point_of(index)) == index


@given(shape=st.lists(st.integers(1, 5), min_size=1, max_size=4))
def test_coordinate_count_property(shape):
    grid = Grid(shape)
    coords = grid.coordinates()
    assert len(coords) == grid.size
    assert len({tuple(c) for c in coords}) == grid.size

"""Tests for repro.geometry.boxes."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    DimensionError,
    DomainError,
    InvalidParameterError,
)
from repro.geometry import (
    Box,
    Grid,
    boxes_with_extent,
    count_boxes_with_extent,
    extent_for_volume_fraction,
    partial_match_boxes,
)

# ----------------------------------------------------------------------
# Box basics
# ----------------------------------------------------------------------
def test_box_extent_and_volume():
    box = Box((1, 2), (3, 4))
    assert box.extent == (3, 3)
    assert box.volume == 9
    assert box.ndim == 2


def test_from_origin_extent():
    box = Box.from_origin_extent((1, 1), (2, 3))
    assert box.lo == (1, 1)
    assert box.hi == (2, 3)


def test_inverted_corners_rejected():
    with pytest.raises(InvalidParameterError):
        Box((2, 0), (1, 5))


def test_mismatched_corner_dims_rejected():
    with pytest.raises(DimensionError):
        Box((0,), (1, 1))


def test_zero_extent_rejected():
    with pytest.raises(InvalidParameterError):
        Box.from_origin_extent((0, 0), (0, 2))


def test_contains_point():
    box = Box((1, 1), (2, 3))
    assert box.contains_point((1, 3))
    assert not box.contains_point((0, 2))
    with pytest.raises(DimensionError):
        box.contains_point((1,))


def test_contains_box_and_intersects():
    outer = Box((0, 0), (5, 5))
    inner = Box((1, 1), (2, 2))
    disjoint = Box((6, 6), (7, 7))
    assert outer.contains_box(inner)
    assert not inner.contains_box(outer)
    assert outer.intersects(inner)
    assert not outer.intersects(disjoint)


def test_intersection():
    a = Box((0, 0), (3, 3))
    b = Box((2, 2), (5, 5))
    inter = a.intersection(b)
    assert inter == Box((2, 2), (3, 3))
    assert a.intersection(Box((4, 4), (5, 5))) is None


def test_touching_boxes_intersect():
    # Inclusive corners: sharing a face means intersecting.
    a = Box((0, 0), (1, 1))
    b = Box((1, 1), (2, 2))
    assert a.intersects(b)
    assert a.intersection(b) == Box((1, 1), (1, 1))


def test_cells_row_major():
    box = Box((1, 1), (2, 2))
    assert list(box.cells()) == [(1, 1), (1, 2), (2, 1), (2, 2)]


def test_cell_indices_match_cells():
    grid = Grid((4, 4))
    box = Box((1, 1), (2, 3))
    expected = [grid.index_of(p) for p in box.cells()]
    assert list(box.cell_indices(grid)) == expected


def test_cell_indices_requires_containment():
    grid = Grid((3, 3))
    with pytest.raises(DomainError):
        Box((1, 1), (3, 3)).cell_indices(grid)
    with pytest.raises(DimensionError):
        Box((1,), (2,)).cell_indices(grid)


def test_clipped_to():
    grid = Grid((3, 3))
    assert Box((1, 1), (5, 5)).clipped_to(grid) == Box((1, 1), (2, 2))
    assert Box((4, 4), (5, 5)).clipped_to(grid) is None


def test_box_equality_and_hash():
    assert Box((0, 0), (1, 1)) == Box((0, 0), (1, 1))
    assert hash(Box((0, 0), (1, 1))) == hash(Box((0, 0), (1, 1)))
    assert Box((0, 0), (1, 1)) != Box((0, 0), (1, 2))


# ----------------------------------------------------------------------
# Box families
# ----------------------------------------------------------------------
def test_boxes_with_extent_enumerates_all_placements():
    grid = Grid((4, 3))
    boxes = list(boxes_with_extent(grid, (2, 2)))
    assert len(boxes) == 3 * 2
    assert len(boxes) == count_boxes_with_extent(grid, (2, 2))
    for box in boxes:
        assert box.extent == (2, 2)
        assert box.clipped_to(grid) == box


def test_boxes_with_extent_full_domain():
    grid = Grid((3, 3))
    boxes = list(boxes_with_extent(grid, (3, 3)))
    assert boxes == [Box((0, 0), (2, 2))]


def test_boxes_with_extent_validation():
    grid = Grid((3, 3))
    with pytest.raises(DomainError):
        list(boxes_with_extent(grid, (4, 1)))
    with pytest.raises(InvalidParameterError):
        list(boxes_with_extent(grid, (0, 1)))
    with pytest.raises(DimensionError):
        list(boxes_with_extent(grid, (2,)))


def test_count_boxes_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        count_boxes_with_extent(grid, (4, 1))


# ----------------------------------------------------------------------
# extent_for_volume_fraction
# ----------------------------------------------------------------------
def test_extent_fraction_one_is_full_grid():
    grid = Grid((5, 7))
    assert extent_for_volume_fraction(grid, 1.0) == (5, 7)


def test_extent_fraction_bounds():
    grid = Grid.cube(6, 4)
    for pct in (0.02, 0.04, 0.08, 0.16, 0.32, 0.64):
        extent = extent_for_volume_fraction(grid, pct)
        assert all(1 <= e <= 6 for e in extent)


def test_extent_fraction_distinct_for_paper_sizes():
    grid = Grid.cube(6, 4)
    extents = [extent_for_volume_fraction(grid, p / 100)
               for p in (2, 4, 8, 16, 32, 64)]
    assert len(set(extents)) == len(extents)
    volumes = [int(np.prod(e)) for e in extents]
    assert volumes == sorted(volumes)


def test_extent_fraction_close_to_target():
    grid = Grid.cube(6, 4)
    for pct in (0.02, 0.08, 0.32):
        extent = extent_for_volume_fraction(grid, pct)
        volume = int(np.prod(extent))
        target = pct * grid.size
        # Within a factor of 2 of the requested volume.
        assert target / 2 <= volume <= target * 2


def test_extent_fraction_validation():
    grid = Grid((4, 4))
    with pytest.raises(InvalidParameterError):
        extent_for_volume_fraction(grid, 0.0)
    with pytest.raises(InvalidParameterError):
        extent_for_volume_fraction(grid, 1.5)


# ----------------------------------------------------------------------
# partial_match_boxes
# ----------------------------------------------------------------------
def test_partial_match_boxes_span_free_axes():
    grid = Grid((4, 4))
    boxes = list(partial_match_boxes(grid, fixed_axes=[0], extent=2))
    assert len(boxes) == 3
    for box in boxes:
        assert box.extent == (2, 4)


def test_partial_match_boxes_validation():
    grid = Grid((4, 4))
    with pytest.raises(InvalidParameterError):
        list(partial_match_boxes(grid, fixed_axes=[], extent=2))
    with pytest.raises(InvalidParameterError):
        list(partial_match_boxes(grid, fixed_axes=[2], extent=2))
    with pytest.raises(InvalidParameterError):
        list(partial_match_boxes(grid, fixed_axes=[0], extent=5))


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------
@given(
    side=st.integers(2, 6),
    ndim=st.integers(1, 3),
    data=st.data(),
)
def test_cell_indices_are_exactly_contained_cells(side, ndim, data):
    grid = Grid.cube(side, ndim)
    lo = tuple(data.draw(st.integers(0, side - 1)) for _ in range(ndim))
    hi = tuple(data.draw(st.integers(l, side - 1)) for l in lo)
    box = Box(lo, hi)
    inside = set(int(i) for i in box.cell_indices(grid))
    for index in range(grid.size):
        assert (index in inside) == box.contains_point(
            grid.point_of(index))

"""Tests for repro.query.join."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Grid
from repro.query import (
    true_join_pairs,
    window_join_candidates,
    window_join_report,
)


def test_true_join_pairs_small():
    grid = Grid((4, 4))
    a = [grid.index_of((0, 0)), grid.index_of((3, 3))]
    b = [grid.index_of((0, 1)), grid.index_of((2, 2))]
    pairs = true_join_pairs(grid, a, b, epsilon=1)
    assert {tuple(p) for p in pairs} == {(0, 0)}  # (0,0)~(0,1) only
    pairs2 = true_join_pairs(grid, a, b, epsilon=2)
    assert {tuple(p) for p in pairs2} == {(0, 0), (1, 1)}


def test_true_join_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        true_join_pairs(grid, [0], [1], epsilon=-1)


def test_window_join_candidates_two_pointer():
    ranks = np.arange(10)
    a = [0, 5]
    b = [1, 6, 9]
    candidates = window_join_candidates(ranks, a, b, window=1)
    assert {tuple(c) for c in candidates} == {(0, 0), (1, 1)}
    wide = window_join_candidates(ranks, a, b, window=9)
    assert len(wide) == 6


def test_window_join_empty():
    ranks = np.arange(10)
    empty = window_join_candidates(ranks, [0], [9], window=2)
    assert empty.shape == (0, 2)
    with pytest.raises(InvalidParameterError):
        window_join_candidates(ranks, [0], [1], window=-1)


def test_window_join_report_full_window_has_full_recall(grid8, dense_lpm):
    rng = np.random.default_rng(8)
    a = rng.choice(64, size=12, replace=False)
    b = rng.choice(64, size=12, replace=False)
    ranks = dense_lpm.order_grid(grid8).ranks
    report = window_join_report(grid8, ranks, a, b, epsilon=2, window=64)
    assert report.recall == 1.0
    assert report.candidate_pairs == 144


def test_window_join_report_metrics(grid8, dense_lpm):
    rng = np.random.default_rng(9)
    a = rng.choice(64, size=16, replace=False)
    b = rng.choice(64, size=16, replace=False)
    ranks = dense_lpm.order_grid(grid8).ranks
    report = window_join_report(grid8, ranks, a, b, epsilon=2, window=12)
    assert 0.0 <= report.recall <= 1.0
    assert report.matched_pairs <= report.true_pairs
    assert report.matched_pairs <= report.candidate_pairs
    assert report.candidate_ratio >= 0.0


def test_window_join_report_no_true_pairs():
    grid = Grid((8, 8))
    ranks = np.arange(64)
    report = window_join_report(grid, ranks, [0], [63], epsilon=1,
                                window=1)
    assert report.true_pairs == 0
    assert report.recall == 1.0  # vacuous
    with pytest.raises(DimensionError):
        window_join_report(grid, np.arange(5), [0], [1], 1, 1)

"""Tests for repro.query.workloads."""

import numpy as np
import pytest

from repro.errors import DomainError, InvalidParameterError
from repro.geometry import Grid
from repro.query import (
    pairs_at_manhattan_distance,
    random_boxes,
    random_cells,
    sliding_boxes,
)


def test_sliding_boxes_counts():
    grid = Grid((5, 4))
    assert len(list(sliding_boxes(grid, (2, 2)))) == 4 * 3


def test_random_boxes_in_domain_and_seeded():
    grid = Grid((8, 8))
    a = random_boxes(grid, (3, 3), count=10, seed=1)
    b = random_boxes(grid, (3, 3), count=10, seed=1)
    c = random_boxes(grid, (3, 3), count=10, seed=2)
    assert a == b
    assert a != c
    for box in a:
        assert box.extent == (3, 3)
        assert box.clipped_to(grid) == box


def test_random_boxes_validation():
    grid = Grid((4, 4))
    with pytest.raises(InvalidParameterError):
        random_boxes(grid, (2, 2), count=0)
    with pytest.raises(DomainError):
        random_boxes(grid, (5, 2), count=1)


def test_random_cells_distinct_and_seeded():
    grid = Grid((6, 6))
    a = random_cells(grid, 10, seed=3)
    assert len(np.unique(a)) == 10
    assert np.array_equal(a, random_cells(grid, 10, seed=3))
    assert (a >= 0).all() and (a < 36).all()


def test_random_cells_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        random_cells(grid, 10)
    with pytest.raises(InvalidParameterError):
        random_cells(grid, 0)
    # With replacement, more than grid.size is fine.
    cells = random_cells(grid, 20, replace=True)
    assert len(cells) == 20


def brute_force_pairs(grid, distance):
    coords = grid.coordinates()
    pairs = set()
    for i in range(grid.size):
        for j in range(i + 1, grid.size):
            if int(np.abs(coords[i] - coords[j]).sum()) == distance:
                pairs.add((i, j))
    return pairs


@pytest.mark.parametrize("shape,distance", [
    ((4, 4), 1), ((4, 4), 3), ((3, 3, 3), 2), ((5,), 2), ((3, 4), 5),
])
def test_pairs_at_distance_match_brute_force(shape, distance):
    grid = Grid(shape)
    left, right = pairs_at_manhattan_distance(grid, distance)
    ours = {(min(int(a), int(b)), max(int(a), int(b)))
            for a, b in zip(left, right)}
    assert ours == brute_force_pairs(grid, distance)


def test_pairs_at_distance_limit_subsamples():
    grid = Grid((6, 6))
    full_left, _ = pairs_at_manhattan_distance(grid, 2)
    left, right = pairs_at_manhattan_distance(grid, 2, limit=10, seed=4)
    assert len(left) == 10 < len(full_left)
    again_left, again_right = pairs_at_manhattan_distance(grid, 2,
                                                          limit=10, seed=4)
    assert np.array_equal(left, again_left)
    assert np.array_equal(right, again_right)


def test_pairs_at_distance_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        pairs_at_manhattan_distance(grid, 0)
    with pytest.raises(InvalidParameterError):
        pairs_at_manhattan_distance(grid, 5)

"""Tests for repro.query.engine (LinearStore)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.geometry import Box, Grid
from repro.api import make_mapping
from repro.mapping import CurveMapping
from repro.query import LinearStore
from repro.storage import DiskCostModel


def build_store(grid, mapping, **kwargs):
    """Engine-level store constructor (the facade's internal path)."""
    return LinearStore._from_api(grid, mapping, **kwargs)


@pytest.fixture
def store():
    grid = Grid((8, 8))
    return grid, build_store(grid, CurveMapping("hilbert"), page_size=8,
                             tree_order=8)


def test_range_query_results_exact(store):
    grid, engine = store
    box = Box((2, 3), (5, 6))
    for plan in ("span-scan", "page-fetch"):
        execution = engine.range_query(box, plan=plan)
        assert list(execution.results) == sorted(
            int(c) for c in box.cell_indices(grid))


def test_plans_agree_on_results(store):
    grid, engine = store
    for box in [Box((0, 0), (7, 7)), Box((1, 1), (2, 2)),
                Box((4, 0), (7, 3))]:
        scan = engine.range_query(box, plan="span-scan")
        fetch = engine.range_query(box, plan="page-fetch")
        assert np.array_equal(scan.results, fetch.results)


def test_span_scan_accounts_index_accesses(store):
    _, engine = store
    execution = engine.range_query(Box((0, 0), (3, 3)))
    assert execution.index_node_accesses >= engine.tree.height
    assert execution.plan == "span-scan"


def test_page_fetch_touches_no_more_pages_than_scan(store):
    grid, engine = store
    for box in [Box((1, 1), (4, 5)), Box((0, 0), (2, 7))]:
        scan = engine.range_query(box, plan="span-scan")
        fetch = engine.range_query(box, plan="page-fetch")
        assert fetch.pages_fetched <= scan.pages_fetched


def test_unknown_plan_rejected(store):
    _, engine = store
    with pytest.raises(InvalidParameterError):
        engine.range_query(Box((0, 0), (1, 1)), plan="index-only")


def test_point_query(store):
    _, engine = store
    found, accesses = engine.point_query((3, 4))
    assert found
    assert accesses == engine.tree.height


def test_buffer_absorbs_repeats():
    grid = Grid((8, 8))
    engine = build_store(grid, CurveMapping("hilbert"), page_size=8,
                         buffer_capacity=16)
    box = Box((2, 2), (5, 5))
    first = engine.range_query(box, plan="page-fetch")
    second = engine.range_query(box, plan="page-fetch")
    assert first.buffer_hits == 0
    assert second.buffer_hits == second.pages_fetched
    assert second.cost < first.cost


def test_workload_report_aggregates(store):
    grid, engine = store
    boxes = [Box((0, 0), (3, 3)), Box((4, 4), (7, 7))]
    report = engine.execute_workload(boxes, plan="page-fetch")
    assert report.queries == 2
    assert report.results == 32
    assert report.cost > 0.0
    assert report.plan == "page-fetch"


def test_spectral_store_end_to_end():
    grid = Grid((8, 8))
    engine = build_store(grid, make_mapping("spectral", backend="dense"),
                         page_size=8,
                         cost_model=DiskCostModel(5.0, 0.1))
    execution = engine.range_query(Box((2, 2), (5, 5)))
    assert len(execution.results) == 16
    assert engine.mapping_name == "spectral"
    assert engine.layout.num_pages == 8


def test_mapping_locality_reduces_span_scan_cost():
    """Hilbert's compact spans must beat a scrambled order's through
    the full engine stack."""
    from repro.core import LinearOrder
    from repro.mapping import ExplicitMapping
    grid = Grid((8, 8))
    scrambled_order = LinearOrder(
        np.random.default_rng(0).permutation(64))
    scrambled = build_store(
        grid, ExplicitMapping(grid, scrambled_order), page_size=8)
    hilbert = build_store(grid, CurveMapping("hilbert"), page_size=8)
    boxes = [Box((r, c), (r + 2, c + 2))
             for r in range(0, 6, 2) for c in range(0, 6, 2)]
    cost_hilbert = hilbert.execute_workload(boxes).cost
    cost_scrambled = scrambled.execute_workload(boxes).cost
    assert cost_hilbert < cost_scrambled

def test_direct_construction_removed():
    """The deprecation cycle is complete: the constructor raises."""
    grid = Grid((8, 8))
    with pytest.raises(TypeError, match="SpectralIndex"):
        LinearStore(grid, CurveMapping("hilbert"))

"""Tests for repro.query.nn."""

import numpy as np
import pytest

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry import Grid
from repro.query import (
    knn_window_recall,
    true_knn,
    window_candidates,
)


def test_true_knn_center_of_3x3():
    grid = Grid((3, 3))
    center = grid.index_of((1, 1))
    neighbours = true_knn(grid, center, 4)
    assert set(int(v) for v in neighbours) == {
        grid.index_of(p) for p in [(0, 1), (1, 0), (1, 2), (2, 1)]
    }


def test_true_knn_excludes_query_and_breaks_ties_by_index():
    grid = Grid((3, 3))
    neighbours = true_knn(grid, 0, 2)
    assert 0 not in neighbours
    # Distance-1 neighbours of corner (0,0): cells 1 and 3; ties by id.
    assert list(neighbours) == [1, 3]


def test_true_knn_validation():
    grid = Grid((3, 3))
    with pytest.raises(InvalidParameterError):
        true_knn(grid, 0, 0)
    with pytest.raises(InvalidParameterError):
        true_knn(grid, 0, 9)


def test_window_candidates_rank_window():
    ranks = np.array([0, 1, 2, 3, 4, 5])
    hits = window_candidates(ranks, query_cell=2, window=1)
    assert set(int(v) for v in hits) == {1, 3}
    with pytest.raises(InvalidParameterError):
        window_candidates(ranks, 2, 0)


def test_recall_perfect_on_1d_identity():
    """On a 1-D grid with identity ranks, a window of k has recall ~1
    for interior queries (the true neighbours are the adjacent cells)."""
    grid = Grid((32,))
    ranks = np.arange(32)
    report = knn_window_recall(grid, ranks, k=2, window=2,
                               query_cells=list(range(2, 30)))
    assert report.mean_recall == 1.0
    assert report.min_recall == 1.0
    assert report.query_count == 28


def test_recall_bounds_and_reproducibility(grid8, dense_lpm):
    ranks = dense_lpm.order_grid(grid8).ranks
    a = knn_window_recall(grid8, ranks, k=4, window=8, seed=5)
    b = knn_window_recall(grid8, ranks, k=4, window=8, seed=5)
    assert a == b
    assert 0.0 <= a.min_recall <= a.mean_recall <= 1.0


def test_recall_increases_with_window(grid8):
    from repro.mapping import CurveMapping
    ranks = CurveMapping("hilbert").ranks_for_grid(grid8)
    small = knn_window_recall(grid8, ranks, k=4, window=4, seed=1)
    large = knn_window_recall(grid8, ranks, k=4, window=16, seed=1)
    assert large.mean_recall >= small.mean_recall


def test_recall_validation(grid8):
    with pytest.raises(DimensionError):
        knn_window_recall(grid8, np.arange(5), k=2, window=2)

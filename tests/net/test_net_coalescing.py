"""Cross-client coalescing: N cold misses, one solve.

The acceptance property from the issue: K concurrent remote clients,
each on its own connection, all cold-missing the same fingerprint, pay
exactly ONE eigensolve — asserted three independent ways: the backing
frontend is called once, the solver-invocation counter moves by one,
and ``repro_net_coalesced_total`` moves by K-1.
"""

import threading
import time

import pytest

from repro.geometry.grid import Grid
from repro.linalg.backends import solver_invocations
from repro.net import RemoteFrontend, SpectralServer
from repro.obs import registry
from repro.service import ShardedIndexFrontend

from tests.net.gating import GatedFrontend

pytestmark = pytest.mark.net

K = 4


def _counter_value(name: str) -> float:
    return registry().counter(name).value()


def test_k_cold_clients_pay_one_solve():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    grid = Grid((13, 13))  # unique to this test: must be a cold miss
    solves_before = solver_invocations()
    coalesced_before = _counter_value("repro_net_coalesced_total")

    with SpectralServer(gated, dispatchers=K, queue_depth=2 * K) as server:
        host, port = server.address
        results = [None] * K
        errors = []

        def hit(i):
            try:
                with RemoteFrontend(host, port, read_timeout=60) as client:
                    results[i] = client.order_grid(grid)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(K)]
        for t in threads:
            t.start()
        # Hold the gate until every request is admitted, so all K are
        # provably concurrent — none can ride a warm cache.
        deadline = time.monotonic() + 20
        while server.pending < K and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pending == K, "requests never all arrived"
        gated.gate.set()
        for t in threads:
            t.join(timeout=60)

        assert not errors, errors
        assert all(r == results[0] for r in results)
        # One backend round trip...
        assert gated.calls == 1
        # ...one eigensolve...
        assert solver_invocations() - solves_before == 1
        # ...and K-1 requests served off the in-flight leader.
        assert (_counter_value("repro_net_coalesced_total")
                - coalesced_before) == K - 1


def test_distinct_fingerprints_do_not_coalesce():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    gated.gate.set()  # no need to hold anything open
    with SpectralServer(gated, dispatchers=2) as server:
        host, port = server.address
        with RemoteFrontend(host, port, read_timeout=60) as client:
            client.order_grid(Grid((14, 3)))
            client.order_grid(Grid((3, 14)))
    assert gated.calls == 2


def test_waiters_retry_when_leader_fails():
    class FailingOnce(GatedFrontend):
        def __init__(self, inner):
            super().__init__(inner)
            self.fail_first = True

        def grid_artifact(self, grid, config=None):
            with self._lock:
                self.calls += 1
                should_fail = self.fail_first
                self.fail_first = False
            if not self.gate.wait(timeout=30):  # pragma: no cover
                raise RuntimeError("test gate never opened")
            if should_fail:
                raise RuntimeError("transient backend failure")
            return self.inner.grid_artifact(grid, config)

    failing = FailingOnce(ShardedIndexFrontend(shards=1))
    grid = Grid((15, 13))
    with SpectralServer(failing, dispatchers=3,
                        request_timeout=60) as server:
        host, port = server.address
        outcomes = [None] * 3

        def hit(i):
            try:
                with RemoteFrontend(host, port, read_timeout=60) as c:
                    outcomes[i] = ("ok", c.order_grid(grid))
            except Exception as exc:
                outcomes[i] = ("err", exc)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 20
        while server.pending < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        failing.gate.set()
        for t in threads:
            t.join(timeout=60)

    kinds = [kind for kind, _ in outcomes]
    # The leader fails; the waiters elect a new leader and succeed —
    # a transient failure never wedges the flight key.
    assert kinds.count("err") == 1
    assert kinds.count("ok") == 2
    ok_orders = [value for kind, value in outcomes if kind == "ok"]
    assert ok_orders[0] == ok_orders[1]
    assert failing.calls == 2

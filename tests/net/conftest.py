"""Shared fixtures for the network-tier tests.

Everything binds port 0 (ephemeral) so parallel CI runs never collide,
and fronts an in-process :class:`ShardedIndexFrontend` — the socket
tier is what's under test; the fleet-backed path has its own
``multiproc``-marked module.
"""

import pytest

from repro.net import RemoteFrontend, SpectralServer
from repro.service import ShardedIndexFrontend


@pytest.fixture()
def frontend():
    return ShardedIndexFrontend(shards=2)


@pytest.fixture()
def server(frontend):
    with SpectralServer(frontend, dispatchers=2) as srv:
        yield srv


@pytest.fixture()
def remote(server):
    host, port = server.address
    with RemoteFrontend(host, port, read_timeout=30) as client:
        yield client

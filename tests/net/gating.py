"""Test helper: a frontend whose solves block on an event.

Lets a test hold the one in-flight solve open while it piles more
requests behind it (coalescing, queue saturation, disconnects), and
counts how many times the backend was actually asked.
"""

import threading


class GatedFrontend:
    def __init__(self, inner, gate=None):
        self.inner = inner
        self.gate = gate if gate is not None else threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def grid_artifact(self, grid, config=None):
        with self._lock:
            self.calls += 1
        if not self.gate.wait(timeout=30):  # pragma: no cover - hang guard
            raise RuntimeError("test gate never opened")
        return self.inner.grid_artifact(grid, config)

    def __getattr__(self, name):
        return getattr(self.inner, name)

"""Client failure-path hardening: regression tests for two latent
bugs the strict-typing pass surfaced.

* A ``FrameError`` mid-response used to leave the (desynchronized)
  socket installed, so the *next* request would read this response's
  leftover bytes as its own reply.
* Calling a closed client used to spin through the full
  reconnect-backoff schedule against a deterministic failure before
  surfacing ``ConnectionLostError``.
"""

import socket
import struct
import threading
import time

import pytest

from repro.geometry.grid import Grid
from repro.net import ConnectionLostError, FrameError, RemoteFrontend
from repro.net.framing import (
    HANDSHAKE_BYTES,
    NET_PROTOCOL_VERSION,
    handshake_bytes,
    recv_exact,
    recv_frame,
    send_frame,
)
from repro.net.messages import ServerHello
from repro.serve.protocol import OkResponse

pytestmark = pytest.mark.net


class _RogueServer:
    """Answers the construction ping correctly, then replies to the
    next request with a frame whose body does not unpickle."""

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        conn, _ = self._listener.accept()
        try:
            recv_exact(conn, HANDSHAKE_BYTES)
            conn.sendall(handshake_bytes())
            seq, _ = recv_frame(conn)  # the construction ping
            hello = ServerHello(
                net_protocol_version=NET_PROTOCOL_VERSION,
                serve_protocol_version=0, num_shards=1, num_workers=1,
                pid=0)
            send_frame(conn, seq, OkResponse(payload=hello))
            recv_frame(conn)  # the request under test
            body = b"\x00this is not a pickle"
            conn.sendall(struct.pack(">I", len(body)) + body)
            conn.recv(1)  # hold the connection until the client reacts
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._listener.close()


def test_malformed_frame_drops_the_desynchronized_socket():
    rogue = _RogueServer()
    host, port = rogue.address
    client = RemoteFrontend(host, port, read_timeout=10,
                            reconnect_attempts=0)
    try:
        with pytest.raises(FrameError):
            client.order_grid(Grid((24, 3)))
        # The stream is desynchronized past the bad frame; keeping the
        # socket would feed its leftovers to the next request.
        assert client._sock is None
    finally:
        client.close()
        rogue.close()


def test_closed_client_fails_fast_not_through_backoff(server):
    host, port = server.address
    client = RemoteFrontend(host, port, read_timeout=30,
                            reconnect_attempts=50, backoff_base=0.5)
    client.close()
    started = time.monotonic()
    with pytest.raises(ConnectionLostError, match="closed"):
        client.order_grid(Grid((24, 4)))
    # Deterministic failure: no walk through 50 backoff sleeps.
    assert time.monotonic() - started < 5

"""Tests for the wire format: handshake bytes and framed pickles."""

import socket
import struct
import threading

import pytest

from repro.net.errors import ConnectionLostError, FrameError, HandshakeError
from repro.net.framing import (
    HANDSHAKE_BYTES,
    MAX_FRAME_BYTES,
    NET_MAGIC,
    NET_PROTOCOL_VERSION,
    handshake_bytes,
    parse_handshake,
    recv_exact,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestHandshake:
    def test_round_trip(self):
        assert parse_handshake(handshake_bytes()) == NET_PROTOCOL_VERSION

    def test_spoofed_version_round_trips(self):
        assert parse_handshake(handshake_bytes(version=42)) == 42

    def test_length(self):
        assert len(handshake_bytes()) == HANDSHAKE_BYTES == 8

    def test_bad_magic_rejected(self):
        bogus = b"HTTP" + struct.pack(">I", NET_PROTOCOL_VERSION)
        with pytest.raises(HandshakeError) as excinfo:
            parse_handshake(bogus)
        assert repr(NET_MAGIC) in str(excinfo.value)

    def test_short_handshake_rejected(self):
        with pytest.raises(HandshakeError):
            parse_handshake(b"SLP")


class TestFrames:
    def test_round_trip(self, pair):
        a, b = pair
        payload = {"orders": [1, 2, 3], "nested": ("x", 4.5)}
        send_frame(a, 7, payload)
        seq, got = recv_frame(b)
        assert seq == 7
        assert got == payload

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for seq in range(5):
            send_frame(a, seq, f"payload-{seq}")
        for seq in range(5):
            got_seq, got = recv_frame(b)
            assert (got_seq, got) == (seq, f"payload-{seq}")

    def test_eof_raises_connection_lost(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionLostError):
            recv_frame(b)

    def test_truncated_frame_raises_connection_lost(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b"short")
        a.close()
        with pytest.raises(ConnectionLostError):
            recv_frame(b)

    def test_oversized_length_prefix_rejected_before_allocation(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError) as excinfo:
            recv_frame(b)
        assert str(MAX_FRAME_BYTES) in str(excinfo.value)

    def test_garbage_body_rejected(self, pair):
        a, b = pair
        body = b"\x00not a pickle at all"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError):
            recv_frame(b)

    def test_non_envelope_pickle_rejected(self, pair):
        import pickle

        a, b = pair
        body = pickle.dumps(["no", "seq", "here"])
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError) as excinfo:
            recv_frame(b)
        assert "envelope" in str(excinfo.value)

    def test_large_payload_chunked_reads(self, pair):
        a, b = pair
        blob = b"x" * (1 << 20)
        done = threading.Event()

        def sender():
            send_frame(a, 1, blob)
            done.set()

        thread = threading.Thread(target=sender, daemon=True)
        thread.start()
        seq, got = recv_frame(b)
        assert done.wait(5)
        assert seq == 1
        assert got == blob


class TestRecvExact:
    def test_collects_partial_reads(self, pair):
        a, b = pair
        a.sendall(b"hello world")
        assert recv_exact(b, 11) == b"hello world"

    def test_eof_mid_read(self, pair):
        a, b = pair
        a.sendall(b"hel")
        a.close()
        with pytest.raises(ConnectionLostError) as excinfo:
            recv_exact(b, 10)
        assert "3 of 10" in str(excinfo.value)

"""Tests for the REPRO_NET_* environment knobs and address parsing."""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError, InvalidParameterError
from repro.net.config import (
    parse_address,
    positive_float_from_env,
    positive_int_from_env,
)


class TestPositiveIntFromEnv:
    def test_default_when_absent(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_QUEUE_DEPTH", raising=False)
        assert positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64) == 64

    def test_blank_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_QUEUE_DEPTH", "   ")
        assert positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64) == 64

    def test_valid_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_QUEUE_DEPTH", " 128 ")
        assert positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64) == 128

    @pytest.mark.parametrize("bad", ["abc", "1.5", "-3", "0", "1e6"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_NET_QUEUE_DEPTH", bad)
        with pytest.raises(ConfigurationError) as excinfo:
            positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64)
        assert "REPRO_NET_QUEUE_DEPTH" in str(excinfo.value)

    def test_is_an_invalid_parameter_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_QUEUE_DEPTH", "-1")
        with pytest.raises(InvalidParameterError):
            positive_int_from_env("REPRO_NET_QUEUE_DEPTH", 64)


class TestPositiveFloatFromEnv:
    def test_default_when_absent(self, monkeypatch):
        monkeypatch.delenv("REPRO_NET_TIMEOUT", raising=False)
        assert positive_float_from_env("REPRO_NET_TIMEOUT", 30.0) == 30.0

    def test_valid_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NET_TIMEOUT", "2.5")
        assert positive_float_from_env("REPRO_NET_TIMEOUT", 30.0) == 2.5

    @pytest.mark.parametrize("bad", ["abc", "-3", "0", "0.0", "inf", "nan"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_NET_TIMEOUT", bad)
        with pytest.raises(ConfigurationError) as excinfo:
            positive_float_from_env("REPRO_NET_TIMEOUT", 30.0)
        assert "REPRO_NET_TIMEOUT" in str(excinfo.value)


def _resolved_knobs(env_extra):
    env = dict(os.environ)
    env.update(env_extra)
    src_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    snippet = ("from repro.net import config as c; "
               "print(c.NET_TIMEOUT); print(c.NET_QUEUE_DEPTH)")
    return subprocess.run([sys.executable, "-c", snippet],
                          capture_output=True, text=True, env=env)


def test_overrides_take_effect_at_import():
    out = _resolved_knobs({"REPRO_NET_TIMEOUT": "7.5",
                           "REPRO_NET_QUEUE_DEPTH": "9"})
    assert out.returncode == 0, out.stderr
    assert out.stdout.split() == ["7.5", "9"]


def test_invalid_override_fails_loudly_at_import():
    out = _resolved_knobs({"REPRO_NET_QUEUE_DEPTH": "soon"})
    assert out.returncode != 0
    assert "REPRO_NET_QUEUE_DEPTH" in out.stderr


class TestParseAddress:
    @pytest.mark.parametrize("spec,expected", [
        ("127.0.0.1:4730", ("127.0.0.1", 4730)),
        ("localhost:0", ("localhost", 0)),
        ("example.com:65535", ("example.com", 65535)),
        ("::1:8080", ("::1", 8080)),
    ])
    def test_well_formed(self, spec, expected):
        assert parse_address(spec) == expected

    @pytest.mark.parametrize("spec", [
        "nonsense", "host:", "host:abc", ":1234",
        "host:-1", "host:65536", "", "host:12.5",
    ])
    def test_malformed_rejected(self, spec):
        with pytest.raises(InvalidParameterError):
            parse_address(spec)

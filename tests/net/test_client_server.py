"""End-to-end client/server tests over an in-process frontend.

The acceptance property throughout: ``RemoteFrontend`` is a drop-in
for the local frontends — same results bit for bit, same exception
types, same introspection shapes.
"""

import pickle

import pytest

from repro.api.queries import JoinQuery, NNQuery, RangeQuery
from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.builders import grid_graph
from repro.net import (
    RemoteFrontend,
    ServerBusy,
    ServerHealth,
    ServerHello,
    SpectralServer,
)
from repro.net.framing import NET_PROTOCOL_VERSION
from repro.obs import (
    collector,
    disable_tracing,
    enable_tracing,
)
from repro.serve.protocol import PROTOCOL_VERSION

pytestmark = pytest.mark.net


class TestOrderingSurface:
    def test_order_grid_bit_identical(self, remote, frontend):
        grid = Grid((9, 9))
        assert remote.order_grid(grid) == frontend.order_grid(grid)

    def test_grid_artifact_bit_identical(self, remote):
        # A *separate* local frontend, so both sides compute cold and
        # the artifacts match including their provenance fields.
        from repro.service import ShardedIndexFrontend

        grid = Grid((8, 8))
        local = ShardedIndexFrontend(shards=2)
        assert remote.grid_artifact(grid) == local.grid_artifact(grid)

    def test_order_graph_bit_identical(self, remote, frontend):
        graph = grid_graph(Grid((5, 5)))
        assert remote.order_graph(graph) == frontend.order_graph(graph)

    def test_graph_artifact_bit_identical(self, remote):
        from repro.service import ShardedIndexFrontend

        graph = grid_graph(Grid((4, 6)))
        local = ShardedIndexFrontend(shards=2)
        assert (remote.graph_artifact(graph)
                == local.graph_artifact(graph))

    def test_order_many_bit_identical(self, remote, frontend):
        requests = [(Grid((6, 6)), None), (Grid((5, 7)), None),
                    (grid_graph(Grid((4, 4))), None)]
        assert remote.order_many(requests) == frontend.order_many(requests)

    def test_order_many_empty(self, remote):
        assert remote.order_many([]) == []

    def test_order_many_validates_parallelism(self, remote):
        with pytest.raises(InvalidParameterError):
            remote.order_many([(Grid((5, 5)), None)], parallelism=0)

    def test_wrong_domain_type_rejected_client_side(self, remote):
        with pytest.raises(InvalidParameterError):
            remote.order_grid(grid_graph(Grid((4, 4))))
        with pytest.raises(InvalidParameterError):
            remote.order_graph(Grid((4, 4)))


class TestQuerySurface:
    def test_query_many_bit_identical(self, remote, frontend):
        grid = Grid((10, 10))
        queries = [RangeQuery(box=((1, 1), (5, 5))),
                   NNQuery(cell=(3, 3), k=5),
                   JoinQuery(cells_a=[0, 1, 2], cells_b=[50, 60],
                             epsilon=4, window=8)]
        got = remote.query_many(grid, queries)
        want = frontend.query_many(grid, queries)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert type(g) is type(w)
        assert list(got[1].neighbors) == list(want[1].neighbors)

    def test_range_matches_local(self, remote, frontend):
        grid = Grid((8, 8))
        got = remote.range(grid, ((0, 0), (3, 3)))
        want = frontend.range(grid, ((0, 0), (3, 3)))
        assert list(got.results) == list(want.results)

    def test_nn_matches_local(self, remote, frontend):
        grid = Grid((8, 8))
        got = remote.nn(grid, (2, 2), 4)
        want = frontend.nn(grid, (2, 2), 4)
        assert list(got.neighbors) == list(want.neighbors)

    def test_query_many_validates_parallelism(self, remote):
        with pytest.raises(InvalidParameterError):
            remote.query_many(Grid((6, 6)), [], parallelism=-1)

    def test_server_side_error_reraises_original_type(self, remote):
        # An out-of-domain NN cell fails inside the server's frontend;
        # the client re-raises the same exception type, not a wrapper.
        with pytest.raises(InvalidParameterError):
            remote.query_many(Grid((6, 6)), ["not a query"])


class TestIntrospection:
    def test_hello_shape(self, remote, frontend):
        hello = remote.hello()
        assert isinstance(hello, ServerHello)
        assert hello.net_protocol_version == NET_PROTOCOL_VERSION
        assert hello.serve_protocol_version == PROTOCOL_VERSION
        assert hello.num_shards == frontend.num_shards
        assert remote.num_shards == frontend.num_shards

    def test_stats_and_combined_stats(self, remote, frontend):
        remote.order_grid(Grid((7, 7)))
        stats = remote.stats()
        assert len(stats) == frontend.num_shards
        combined = remote.combined_stats()
        assert combined.computed >= 1
        assert type(combined).__name__ == "ServiceStats"

    def test_health_shape(self, remote):
        health = remote.health()
        assert isinstance(health, ServerHealth)
        assert health.status == "ok"
        assert health.connections_open >= 1
        assert health.queue_capacity >= 1

    def test_metrics_scrape(self, remote):
        remote.order_grid(Grid((6, 6)))
        text = remote.metrics()
        assert "repro_net_requests_total" in text
        assert "repro_net_connections_open" in text

    def test_worker_metrics_empty_without_fleet(self, remote):
        assert remote.worker_metrics() == []

    def test_shard_of_matches_frontend(self, remote, frontend):
        grid = Grid((9, 9))
        assert remote.shard_of(grid) == frontend.shard_of(grid)


class TestTracing:
    def test_remote_trace_stitches_server_spans(self, remote):
        enable_tracing()
        try:
            from repro.obs import span

            with span("test.root") as root:
                assert root.is_recording
                remote.order_grid(Grid((11, 5)))
            records = collector().spans()
        finally:
            disable_tracing()
        names = {r.name for r in records}
        assert "net.client" in names
        assert "net.server" in names
        # The server-side spans joined the client's trace.
        client_spans = [r for r in records if r.name == "net.client"]
        server_spans = [r for r in records if r.name == "net.server"]
        assert {s.trace_id for s in server_spans} <= \
            {s.trace_id for s in client_spans}


class TestServerBusyValue:
    def test_reason_survives_pickle(self):
        busy = ServerBusy("queue is full", reason="deadline")
        clone = pickle.loads(pickle.dumps(busy))
        assert isinstance(clone, ServerBusy)
        assert clone.reason == "deadline"
        assert str(clone) == "queue is full"


class TestServerLifecycle:
    def test_invalid_construction(self, frontend):
        with pytest.raises(InvalidParameterError):
            SpectralServer(frontend, queue_depth=0)
        with pytest.raises(InvalidParameterError):
            SpectralServer(frontend, request_timeout=0)
        with pytest.raises(InvalidParameterError):
            SpectralServer(frontend, dispatchers=0)

    def test_address_requires_start(self, frontend):
        srv = SpectralServer(frontend)
        with pytest.raises(InvalidParameterError):
            srv.address

    def test_close_is_idempotent(self, frontend):
        srv = SpectralServer(frontend).start()
        srv.close()
        srv.close()

    def test_two_clients_share_one_server(self, server, frontend):
        host, port = server.address
        grid = Grid((7, 9))
        with RemoteFrontend(host, port) as a, \
                RemoteFrontend(host, port) as b:
            assert a.order_grid(grid) == b.order_grid(grid)
            assert server._hello().num_shards == frontend.num_shards

"""The full deployment shape: socket server fronting a process fleet.

Marked both ``net`` and ``multiproc`` — these spawn real worker
processes behind the socket, so they run in the slow CI lane.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.geometry.grid import Grid
from repro.geometry.pointset import PointSet
from repro.api.process_pool import ProcessPoolFrontend
from repro.api.queries import NNQuery, RangeQuery
from repro.net import RemoteFrontend, SpectralServer

pytestmark = [pytest.mark.net, pytest.mark.multiproc]


@pytest.fixture()
def pool():
    with ProcessPoolFrontend(shards=2, workers=2) as front:
        yield front


@pytest.fixture()
def fleet_server(pool):
    with SpectralServer(pool, dispatchers=2) as server:
        yield server


@pytest.fixture()
def fleet_remote(fleet_server):
    host, port = fleet_server.address
    with RemoteFrontend(host, port, read_timeout=120) as client:
        yield client


def test_remote_matches_pool_over_grid(fleet_remote, pool):
    grid = Grid((12, 12))
    assert fleet_remote.order_grid(grid) == pool.order_grid(grid)
    queries = [RangeQuery(box=((2, 2), (7, 7))), NNQuery(cell=(4, 4), k=6)]
    got = fleet_remote.query_many(grid, queries)
    want = pool.query_many(grid, queries)
    assert list(got[1].neighbors) == list(want[1].neighbors)


def test_remote_matches_pool_over_pointset(fleet_remote, pool):
    grid = Grid((8, 8))
    points = PointSet(grid, [grid.index_of(p) for p in
                             [(0, 0), (0, 5), (3, 1), (7, 7), (2, 6),
                              (5, 2), (6, 6), (1, 4)]])
    # PointSet indexes serve order-based queries (range needs a Grid).
    queries = [NNQuery(cell=grid.index_of((3, 1)), k=3),
               NNQuery(cell=grid.index_of((6, 6)), k=2)]
    got = fleet_remote.query_many(points, queries)
    want = pool.query_many(points, queries)
    for g, w in zip(got, want):
        assert list(g.neighbors) == list(w.neighbors)


def test_remote_topology_matches_pool(fleet_remote, pool):
    hello = fleet_remote.hello()
    assert hello.num_shards == pool.num_shards
    assert hello.num_workers == pool.num_workers
    grid = Grid((13, 9))
    assert fleet_remote.shard_of(grid) == pool.shard_of(grid)


def test_worker_kill_and_restart_through_the_socket(fleet_remote, pool):
    grid = Grid((11, 7))
    first = fleet_remote.order_grid(grid)
    # Kill a real worker process; the fleet restarts it on the next
    # dispatch, invisibly to the remote client.
    victim = pool.fleet._handles[0]
    victim.process.kill()
    victim.process.join()
    second = fleet_remote.order_grid(grid)
    assert first == second
    health = fleet_remote.health()
    assert health.status == "ok"
    assert len(health.workers) == pool.num_workers


def test_worker_metrics_through_the_socket(fleet_remote, pool):
    fleet_remote.order_grid(Grid((10, 6)))
    dumps = fleet_remote.worker_metrics()
    assert len(dumps) == pool.num_workers
    assert all(isinstance(d, str) for d in dumps)


def test_cli_listen_end_to_end(tmp_path):
    """``repro-serve --listen 127.0.0.1:0`` prints its ephemeral port;
    a RemoteFrontend connects, works, and the server dies cleanly."""
    env = dict(os.environ)
    src_dir = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--listen", "127.0.0.1:0", "--shards", "2", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    try:
        port = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if line.startswith("listening on "):
                port = int(line.rsplit(":", 1)[1])
                break
        assert port, "server never printed its address"
        with RemoteFrontend("127.0.0.1", port, read_timeout=120) as client:
            order = client.order_grid(Grid((9, 9)))
            assert order.n == 81
            assert client.health().status == "ok"
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            proc.wait(timeout=30)

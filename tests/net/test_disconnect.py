"""Dead clients, dead servers, and peers that never spoke the protocol.

The satellite property: a client that connects, sends a request, and
dies must not wedge the server or leak its dispatcher slot — the
response is discarded, the connection reaped, and
``repro_net_connections_dropped_total`` ticks.
"""

import socket
import threading
import time

import pytest

import repro.net.framing as framing
from repro.geometry.grid import Grid
from repro.net import (
    ConnectionLostError,
    HandshakeError,
    RemoteFrontend,
    SpectralServer,
)
from repro.net.framing import handshake_bytes, recv_exact, send_frame
from repro.obs import registry
from repro.serve.protocol import OrderRequestMessage
from repro.service import ShardedIndexFrontend

from tests.net.gating import GatedFrontend

pytestmark = pytest.mark.net


def _dropped() -> float:
    return registry().counter("repro_net_connections_dropped_total").value()


def test_client_death_mid_request_frees_the_slot():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    dropped_before = _dropped()
    # queue_depth=1, dispatchers=1: if the dead client's slot leaked,
    # the follow-up request could never be admitted.
    with SpectralServer(gated, dispatchers=1, queue_depth=1,
                        request_timeout=60) as server:
        host, port = server.address

        # A raw client that handshakes, sends one order, and dies.
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(handshake_bytes())
        recv_exact(sock, framing.HANDSHAKE_BYTES)
        send_frame(sock, 1, OrderRequestMessage(domain=Grid((21, 3))))
        deadline = time.monotonic() + 20
        while server.pending < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pending == 1
        sock.close()  # dies with the request executing

        gated.gate.set()
        # The discarded response must release the slot: a healthy
        # client gets served afterwards.
        with RemoteFrontend(host, port, read_timeout=60) as client:
            order = client.order_grid(Grid((21, 4)))
        assert order is not None
        deadline = time.monotonic() + 20
        while _dropped() == dropped_before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert _dropped() - dropped_before == 1


def test_client_reconnects_after_server_drops_connections():
    frontend = ShardedIndexFrontend(shards=1)
    with SpectralServer(frontend, dispatchers=1) as server:
        host, port = server.address
        client = RemoteFrontend(host, port, read_timeout=30,
                                reconnect_attempts=5, backoff_base=0.01)
        try:
            first = client.order_grid(Grid((22, 3)))
            server.disconnect_all()
            # The next call hits a dead socket, reconnects, and succeeds.
            second = client.order_grid(Grid((22, 3)))
            assert first == second
        finally:
            client.close()


def test_client_fails_bounded_after_server_close():
    frontend = ShardedIndexFrontend(shards=1)
    server = SpectralServer(frontend, dispatchers=1).start()
    host, port = server.address
    client = RemoteFrontend(host, port, read_timeout=30,
                            reconnect_attempts=2, backoff_base=0.01)
    server.close()
    started = time.monotonic()
    with pytest.raises((OSError, ConnectionLostError)):
        client.order_grid(Grid((23, 3)))
    # Bounded: a handful of backoffs, not an unbounded retry loop.
    assert time.monotonic() - started < 20
    client.close()


def test_garbage_magic_is_rejected_at_handshake():
    frontend = ShardedIndexFrontend(shards=1)
    rejected = registry().counter("repro_net_handshake_rejected_total")
    before = rejected.value()
    with SpectralServer(frontend) as server:
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(b"GET / HTTP/1.1\r\n")  # an HTTP probe, say
        # The server hangs up without ever trusting a pickle byte
        # (EOF, or RST if our unread bytes were still buffered).
        sock.settimeout(5)
        try:
            assert sock.recv(64) == b""
        except ConnectionResetError:
            pass
        sock.close()
    assert rejected.value() - before == 1


def test_version_mismatch_raises_clean_handshake_error(monkeypatch):
    frontend = ShardedIndexFrontend(shards=1)
    with SpectralServer(frontend) as server:
        host, port = server.address
        monkeypatch.setattr(framing, "NET_PROTOCOL_VERSION",
                            framing.NET_PROTOCOL_VERSION + 1)
        with pytest.raises(HandshakeError) as excinfo:
            RemoteFrontend(host, port)
        # The error names both versions — actionable, not mysterious.
        message = str(excinfo.value)
        assert str(framing.NET_PROTOCOL_VERSION) in message
        assert str(framing.NET_PROTOCOL_VERSION - 1) in message


def test_mismatched_client_is_not_retried(monkeypatch):
    """A handshake mismatch is deterministic; the reconnect loop must
    not spin on it."""
    frontend = ShardedIndexFrontend(shards=1)
    with SpectralServer(frontend) as server:
        host, port = server.address
        monkeypatch.setattr(framing, "NET_PROTOCOL_VERSION", 999)
        started = time.monotonic()
        with pytest.raises(HandshakeError):
            RemoteFrontend(host, port, reconnect_attempts=50,
                           backoff_base=0.5)
        assert time.monotonic() - started < 5


def test_half_open_handshake_times_out_server_side():
    frontend = ShardedIndexFrontend(shards=1)
    with SpectralServer(frontend) as server:
        host, port = server.address
        # Connect but never send the hello: the server must not pin a
        # reader thread on us forever (it times the handshake out).
        sock = socket.create_connection((host, port), timeout=5)
        # A well-behaved client on the same server is unaffected.
        with RemoteFrontend(host, port, read_timeout=30) as client:
            assert client.hello().num_shards == 1
        sock.close()

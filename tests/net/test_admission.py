"""Admission control: overload is a typed value, never a hang."""

import threading
import time

import pytest

from repro.geometry.grid import Grid
from repro.net import RemoteFrontend, ServerBusy, SpectralServer
from repro.service import ShardedIndexFrontend

from tests.net.gating import GatedFrontend

pytestmark = pytest.mark.net


def _saturate(server, gated, grids):
    """Start one blocked leader + queued requests; returns the threads."""
    host, port = server.address
    threads = []
    for grid in grids:
        client = RemoteFrontend(host, port, read_timeout=60)

        def hit(c=client, g=grid):
            try:
                c.order_grid(g)
            finally:
                c.close()

        thread = threading.Thread(target=hit)
        thread.start()
        threads.append(thread)
    return threads


def test_full_queue_rejects_with_queue_full():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    with SpectralServer(gated, dispatchers=1, queue_depth=1,
                        request_timeout=60) as server:
        host, port = server.address
        # Distinct grids: coalescing must not absorb the overflow.
        threads = _saturate(server, gated,
                            [Grid((16, 3)), Grid((16, 4))])
        deadline = time.monotonic() + 20
        while server.pending < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.pending == 2
        with RemoteFrontend(host, port, read_timeout=60) as client:
            with pytest.raises(ServerBusy) as excinfo:
                client.order_grid(Grid((16, 5)))
            assert excinfo.value.reason == "queue_full"
            # Introspection still answers while the queue is full —
            # that's the point of bypassing admission.
            assert client.health().status == "ok"
        gated.gate.set()
        for t in threads:
            t.join(timeout=60)


def test_stale_queued_request_rejects_with_deadline():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    with SpectralServer(gated, dispatchers=1, queue_depth=4,
                        request_timeout=0.2) as server:
        host, port = server.address
        threads = _saturate(server, gated, [Grid((17, 3))])
        deadline = time.monotonic() + 20
        while server.pending < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        with RemoteFrontend(host, port, read_timeout=60) as client:
            caught = []

            def late():
                try:
                    client.order_grid(Grid((17, 4)))
                except ServerBusy as exc:
                    caught.append(exc)

            thread = threading.Thread(target=late)
            thread.start()
            # Let the queued request age past its 0.2s deadline before
            # the dispatcher frees up.
            time.sleep(0.5)
            gated.gate.set()
            thread.join(timeout=60)
            for t in threads:
                t.join(timeout=60)
            assert len(caught) == 1
            assert caught[0].reason == "deadline"


def test_draining_server_rejects_new_work():
    frontend = ShardedIndexFrontend(shards=1)
    server = SpectralServer(frontend, dispatchers=1).start()
    host, port = server.address
    client = RemoteFrontend(host, port, read_timeout=30)
    try:
        client.order_grid(Grid((18, 3)))
        server._draining = True  # drain begins; connection still open
        with pytest.raises(ServerBusy) as excinfo:
            client.order_grid(Grid((18, 4)))
        assert excinfo.value.reason == "draining"
    finally:
        client.close()
        server.close()


def test_graceful_drain_delivers_inflight_response():
    gated = GatedFrontend(ShardedIndexFrontend(shards=1))
    with SpectralServer(gated, dispatchers=1) as server:
        host, port = server.address
        client = RemoteFrontend(host, port, read_timeout=60)
        result = []

        def hit():
            result.append(client.order_grid(Grid((19, 3))))

        thread = threading.Thread(target=hit)
        thread.start()
        deadline = time.monotonic() + 20
        while server.pending < 1 and time.monotonic() < deadline:
            time.sleep(0.01)

        # Release the solve just after close() starts draining.
        def release():
            time.sleep(0.2)
            gated.gate.set()

        releaser = threading.Thread(target=release)
        releaser.start()
        server.close()  # must wait for the in-flight answer to flush
        thread.join(timeout=60)
        releaser.join(timeout=60)
        client.close()
        assert len(result) == 1  # the response made it out before teardown

"""Extension bench: boundary effect vs dimensionality.

Sweeps d = 2..5 at comparable cell counts and asserts that the fractal
boundary effect worsens (or stays near the ceiling) with dimension while
spectral stays far below it.
"""

from conftest import once

from repro.experiments.scaling import run_scaling
from repro.experiments.tables import render_table


def test_scaling(benchmark, save_report):
    result = once(benchmark, run_scaling, backend="auto")
    save_report("scaling", render_table(result, precision=3))

    spectral = result.series_by_name("spectral").y
    for fractal in ("gray", "hilbert"):
        curve = result.series_by_name(fractal).y
        # At every dimension the fractal's normalized boundary gap is at
        # least twice spectral's.
        assert all(c >= 2 * s for s, c in zip(spectral, curve))
    # Fractal gaps approach the ceiling (gap ~ n) in high dimension.
    assert result.series_by_name("hilbert").y[-1] > 0.5

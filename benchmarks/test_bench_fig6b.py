"""Figure 6b bench: span fairness over all partial range queries, 6^4.

Regenerates the stdev-of-span series and asserts the paper's claim:
Spectral is by far the fairest mapping at every query size.
"""

from conftest import once

from repro.experiments import paper_fig6b, run_fig6b
from repro.experiments.runner import winner_per_x
from repro.experiments.tables import render_report


def test_fig6b(benchmark, save_report):
    result = once(benchmark, run_fig6b, side=6, ndim=4, backend="auto")
    save_report("fig6b", render_report(result, paper_fig6b()))

    assert all(name == "spectral" for name in winner_per_x(result))
    spectral = result.series_by_name("spectral").y
    for other in ("sweep", "peano", "gray", "hilbert"):
        curve = result.series_by_name(other).y
        # Not merely lowest: lower by a wide margin, as in the paper.
        assert all(s < 0.8 * c for s, c in zip(spectral, curve))

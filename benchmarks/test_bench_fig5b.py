"""Figure 5b bench: per-axis fairness on a 16x16 grid.

Regenerates the Sweep-X/Sweep-Y/Spectral-X/Spectral-Y series and asserts
the paper's claim: Sweep's two axes diverge wildly, Spectral's coincide.
"""

from conftest import once

from repro.experiments import paper_fig5b, run_fig5b
from repro.experiments.tables import render_report


def test_fig5b(benchmark, save_report):
    result = once(benchmark, run_fig5b, side=16, backend="auto")
    save_report("fig5b", render_report(result, paper_fig5b()))

    sweep_x = result.series_by_name("sweep-X").y
    sweep_y = result.series_by_name("sweep-Y").y
    spectral_x = result.series_by_name("spectral-X").y
    spectral_y = result.series_by_name("spectral-Y").y
    for k in range(len(result.x)):
        # Sweep is unfair by about the row length.
        assert sweep_x[k] >= 4 * sweep_y[k]
        # Spectral treats the axes alike (within tie-break noise).
        assert abs(spectral_x[k] - spectral_y[k]) <= max(
            3.0, 0.05 * max(spectral_x[k], spectral_y[k]))

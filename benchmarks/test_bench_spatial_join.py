"""Application bench: window spatial join per mapping.

The `app_join` experiment of DESIGN.md: join two clustered point sets on
Manhattan proximity through each mapping's 1-D order, and report recall
and candidate ratio at a fixed rank window.
"""

from repro.datasets import gaussian_cluster_cells
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.mapping import paper_mappings
from repro.query import window_join_report

GRID = Grid((16, 16))
SET_A = gaussian_cluster_cells(GRID, 48, clusters=3, seed=5)
SET_B = gaussian_cluster_cells(GRID, 48, clusters=3, seed=6)
EPSILON = 2
WINDOW = 24


def test_spatial_join(benchmark, save_report):
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            report = window_join_report(
                GRID, mapping.ranks_for_grid(GRID), SET_A, SET_B,
                epsilon=EPSILON, window=WINDOW,
            )
            rows[mapping.name] = [report.recall, report.candidate_ratio]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_join",
        title=f"Window spatial join (eps={EPSILON}, window={WINDOW}, "
              "48x48 clustered points)",
        xlabel="metric",
        ylabel="recall up, candidate ratio down",
        x=["recall", "candidate_ratio"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("app_join", render_table(result, precision=3))

    for name, (recall, ratio) in rows.items():
        assert 0.3 <= recall <= 1.0
        assert ratio >= 0.0

"""Objective bench: the discrete Theorem-1 objectives per mapping.

The `obj_arrangement` experiment of DESIGN.md: evaluate every mapping's
order against the arrangement objectives the paper's optimality argument
concerns (2-sum = the discretized Theorem-1 objective, plus 1-sum,
bandwidth, cutwidth), on the 4-connectivity graph of a 16x16 grid.
"""

from repro.core import SpectralLPM
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.mapping import paper_mappings
from repro.metrics import arrangement_costs

GRID = Grid((16, 16))


def test_arrangement_objectives(benchmark, save_report):
    graph = grid_graph(GRID)
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            costs = arrangement_costs(graph,
                                      mapping.order_for_grid(GRID))
            rows[mapping.name] = [costs.two_sum, costs.one_sum,
                                  costs.bandwidth, costs.cutwidth]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="obj_arrangement",
        title="Arrangement objectives on the 16x16 4-connectivity graph",
        xlabel="objective",
        ylabel="lower is better",
        x=["two_sum", "one_sum", "bandwidth", "cutwidth"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("obj_arrangement", render_table(result))

    # Spectral minimizes the quadratic objective among the five mappings
    # — this is the discrete shadow of the paper's Theorems 1-3.
    two_sums = {name: values[0] for name, values in rows.items()}
    assert two_sums["spectral"] == min(two_sums.values())

"""Service-layer bench: cold vs warm order latency, batch vs loop.

Three measurements, all appended to ``BENCH_spectral.json`` via the
shared ``save_json`` fixture so the trajectory survives across PRs:

* ``service_cache`` — one ``order_grid`` cold (full eigensolve), warm
  from the memory tier, and warm from the disk tier of a freshly
  restarted service.  The two warm phases are the product pitch: reuse
  costs a dict lookup / one ``np.load``, not an eigensolve.
* ``service_batch`` — N same-topology weight configs through
  ``order_many`` vs N independent one-shot services; the batch path
  amortizes the graph build (and coarsening, under multilevel).
"""

import time

import numpy as np
import pytest

from repro.core import SpectralConfig
from repro.geometry import Grid
from repro.service import OrderingService, OrderRequest

GRID = Grid((48, 48))
BATCH_GRID = Grid((32, 32))
BATCH_WEIGHTS = ("unit", "inverse_manhattan", "inverse_euclidean",
                 "gaussian")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_cold_vs_warm_order_grid(benchmark, save_json, tmp_path):
    store_dir = tmp_path / "orders"
    service = OrderingService(store=str(store_dir))

    cold_order, cold = _timed(lambda: service.order_grid(GRID))
    warm_order, warm_memory = _timed(lambda: service.order_grid(GRID))

    restarted = OrderingService(store=str(store_dir))
    disk_order, warm_disk = _timed(lambda: restarted.order_grid(GRID))

    assert np.array_equal(cold_order.permutation, warm_order.permutation)
    assert np.array_equal(cold_order.permutation, disk_order.permutation)
    assert restarted.stats.disk_hits == 1
    assert warm_memory < cold and warm_disk < cold

    for phase, seconds in (("cold", cold), ("warm_memory", warm_memory),
                           ("warm_disk", warm_disk)):
        save_json({
            "name": "service_cache",
            "n": GRID.size,
            "backend": "auto",
            "phase": phase,
            "seconds": seconds,
            "speedup_vs_cold": cold / seconds if seconds else float("inf"),
        })

    # Keep a pytest-benchmark record of the warm path (the served one).
    benchmark.pedantic(lambda: service.order_grid(GRID),
                       iterations=1, rounds=3)


@pytest.mark.parametrize("backend", ["auto", "multilevel"])
def test_batch_vs_loop(benchmark, save_json, backend):
    configs = [SpectralConfig(weight=w, backend=backend)
               for w in BATCH_WEIGHTS]

    def run_loop():
        # One fresh service per request: no sharing of any kind.
        return [OrderingService().order_grid(BATCH_GRID, config)
                for config in configs]

    def run_batch():
        service = OrderingService()
        return service.order_many(
            [OrderRequest(BATCH_GRID, config) for config in configs])

    loop_orders, loop_seconds = _timed(run_loop)
    batch_orders, batch_seconds = _timed(run_batch)
    for a, b in zip(loop_orders, batch_orders):
        assert a == b

    save_json({
        "name": "service_batch",
        "n": BATCH_GRID.size,
        "backend": backend,
        "requests": len(configs),
        "loop_seconds": loop_seconds,
        "seconds": batch_seconds,
        "batch_speedup": (loop_seconds / batch_seconds
                          if batch_seconds else float("inf")),
    })

    benchmark.pedantic(run_batch, iterations=1, rounds=1)

"""Multi-process serving: dispatch overhead and restart-warm economics.

Two numbers characterize the process-pool frontend against its
in-process sibling:

* **dispatch overhead** — the cost of the pickle/pipe round trip on a
  warm request (the order is already in the worker's memory tier).
  This is the price every request pays for process isolation; it bounds
  the workloads where the pool makes sense (solve-heavy: yes;
  microsecond cache hits: no).
* **restart-warm solve count** — eigensolves performed by a freshly
  restarted fleet over warm per-shard stores.  The serving harness'
  core economic claim is that this is exactly zero; the benchmark
  records it next to the timings so the trajectory file documents the
  claim, not just the speed.

Records append to ``BENCH_spectral.json`` via the shared ``save_json``
fixture.
"""

from __future__ import annotations

import time

import pytest

from repro.api import ProcessPoolFrontend
from repro.core.spectral import SpectralConfig
from repro.geometry import Grid
from repro.service import OrderRequest, ShardedIndexFrontend

pytestmark = pytest.mark.multiproc

SHARDS = 2
GRIDS = [Grid((s, s)) for s in (12, 13, 14, 15)]
WARM_ROUNDS = 25


def _time_warm_hits(order_grid) -> float:
    # One untimed pass warms every tier, then repeated hits.
    for grid in GRIDS:
        order_grid(grid)
    started = time.perf_counter()
    for _ in range(WARM_ROUNDS):
        for grid in GRIDS:
            order_grid(grid)
    return (time.perf_counter() - started) / (WARM_ROUNDS * len(GRIDS))


def test_bench_dispatch_overhead(benchmark, save_json):
    local = ShardedIndexFrontend(shards=SHARDS)
    local_hit = _time_warm_hits(local.order_grid)
    with ProcessPoolFrontend(shards=SHARDS) as front:
        remote_hit = benchmark.pedantic(
            lambda: _time_warm_hits(front.order_grid),
            iterations=1, rounds=1)
    save_json({
        "name": "multiproc_dispatch_overhead",
        "shards": SHARDS,
        "n": GRIDS[-1].size,
        "backend": "process-pool",
        "seconds": remote_hit,
        "in_process_seconds": local_hit,
        "overhead_seconds": remote_hit - local_hit,
    })
    # Sanity, not speed: IPC on a warm hit stays in the low-millisecond
    # range even on a loaded CI box.
    assert remote_hit < 0.25


def test_bench_restart_warm_solve_counts(save_json, tmp_path):
    cache = tmp_path / "fleet-cache"
    started = time.perf_counter()
    with ProcessPoolFrontend(shards=SHARDS, cache_dir=cache) as front:
        front.order_many([OrderRequest(g) for g in GRIDS])
        cold_stats = front.combined_stats()
    cold_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    with ProcessPoolFrontend(shards=SHARDS, cache_dir=cache) as front:
        front.order_many([OrderRequest(g) for g in GRIDS])
        warm_stats = front.combined_stats()
    warm_elapsed = time.perf_counter() - started

    save_json({
        "name": "multiproc_restart_warm",
        "shards": SHARDS,
        "domains": len(GRIDS),
        "backend": "process-pool",
        "seconds": warm_elapsed,
        "cold_seconds": cold_elapsed,
        "cold_solver_calls": cold_stats.solver_calls,
        "warm_solver_calls": warm_stats.solver_calls,
        "warm_disk_hits": warm_stats.disk_hits,
    })
    assert cold_stats.computed == len(GRIDS)
    assert warm_stats.solver_calls == 0
    assert warm_stats.disk_hits == len(GRIDS)

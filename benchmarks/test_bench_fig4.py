"""Figure 4 bench: graph-model variation (4-conn / 8-conn / weighted).

Times the three model variants on the 4x4 grid and records their orders
and comparative metrics.
"""

from conftest import once

from repro.experiments import fig4_metrics_table, render_fig4, run_fig4
from repro.experiments.tables import render_table


def test_fig4(benchmark, save_report):
    outcome = once(benchmark, run_fig4, side=4, backend="auto")
    table = fig4_metrics_table(side=4, backend="auto")
    save_report("fig4", render_table(table) + "\n\n"
                + render_fig4(side=4, backend="auto"))

    assert set(outcome.orders) == {"4-connectivity", "8-connectivity",
                                   "weighted-r2"}
    # Spectral optimality is a statement about the continuous relaxation
    # of each model's own objective, so the three *discretized* orders
    # may shuffle by a few units on the shared yardstick — but they must
    # stay in the same league (each is a near-minimizer).
    two_sums = {name: series.y[0]
                for name, series in zip(table.series_names, table.series)}
    assert max(two_sums.values()) <= 1.25 * min(two_sums.values())

"""Network serving: socket round-trip overhead and coalescing economics.

Two numbers characterize the socket tier against the process-pool
frontend it wraps:

* **round-trip overhead** — the extra cost of framing + TCP on a warm
  ``query_many`` (the orders live in worker memory; the wire is all
  that differs).  This is the price of crossing a machine boundary; it
  bounds the workloads where remote serving makes sense.
* **coalesced-solve count** — eigensolves paid when K concurrent
  remote clients cold-miss the same fingerprint.  The serving tier's
  core economic claim is that this is exactly one; the benchmark
  records the observed count next to the timings so the trajectory
  file documents the claim, not just the speed.

Records append to ``BENCH_spectral.json`` via the shared ``save_json``
fixture.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import ProcessPoolFrontend
from repro.api.queries import NNQuery, RangeQuery
from repro.geometry import Grid
from repro.net import RemoteFrontend, SpectralServer

pytestmark = pytest.mark.multiproc

SHARDS = 2
GRID = Grid((16, 16))
QUERIES = [RangeQuery(box=((2, 2), (9, 9))), NNQuery(cell=(5, 5), k=8)]
WARM_ROUNDS = 25
K_CLIENTS = 4


def _time_warm_queries(query_many) -> float:
    query_many(GRID, QUERIES)  # untimed pass warms every tier
    started = time.perf_counter()
    for _ in range(WARM_ROUNDS):
        query_many(GRID, QUERIES)
    return (time.perf_counter() - started) / WARM_ROUNDS


def test_bench_roundtrip_overhead(benchmark, save_json):
    with ProcessPoolFrontend(shards=SHARDS) as front:
        pool_hit = _time_warm_queries(front.query_many)
        with SpectralServer(front, dispatchers=2) as server:
            host, port = server.address
            with RemoteFrontend(host, port, read_timeout=60) as remote:
                remote_hit = benchmark.pedantic(
                    lambda: _time_warm_queries(remote.query_many),
                    iterations=1, rounds=1)
    save_json({
        "name": "network_roundtrip_overhead",
        "shards": SHARDS,
        "n": GRID.size,
        "backend": "socket",
        "seconds": remote_hit,
        "process_pool_seconds": pool_hit,
        "overhead_seconds": remote_hit - pool_hit,
    })
    # Sanity, not speed: one loopback round trip on a warm hit stays
    # well under a quarter second even on a loaded CI box.
    assert remote_hit < 0.25


def test_bench_cross_client_coalescing(save_json):
    grid = Grid((24, 24))  # cold in this pool: a real eigensolve
    with ProcessPoolFrontend(shards=SHARDS) as front:
        with SpectralServer(front, dispatchers=K_CLIENTS) as server:
            host, port = server.address
            started = time.perf_counter()
            errors = []

            def hit():
                try:
                    with RemoteFrontend(host, port,
                                        read_timeout=120) as client:
                        client.order_grid(grid)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hit)
                       for _ in range(K_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            elapsed = time.perf_counter() - started
            assert not errors, errors
            stats = front.combined_stats()
    save_json({
        "name": "network_cross_client_coalescing",
        "shards": SHARDS,
        "n": grid.size,
        "backend": "socket",
        "seconds": elapsed,
        "clients": K_CLIENTS,
        "solver_calls": stats.solver_calls,
        "computed": stats.computed,
    })
    # K concurrent cold clients, at most one solve behind the socket.
    assert stats.computed <= 1

"""Scalability bench: multilevel vs direct Fiedler solvers.

Wall-clock and order quality of the multilevel coarsen-solve-refine
pipeline against the direct backends on growing grids — the "how would
this scale to millions of cells" answer.
"""

import pytest

from repro.core import SpectralLPM, multilevel_fiedler, multilevel_order
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.metrics import two_sum

GRIDS = {"24x24": Grid((24, 24)), "40x40": Grid((40, 40))}


@pytest.mark.parametrize("grid_name", list(GRIDS))
def test_multilevel_timing(benchmark, grid_name):
    graph = grid_graph(GRIDS[grid_name])
    result = benchmark.pedantic(
        lambda: multilevel_order(graph, min_size=64),
        iterations=1, rounds=3)
    assert sorted(result.permutation) == list(
        range(GRIDS[grid_name].size))


def test_multilevel_quality(benchmark, save_report):
    rows = {}

    def run_all():
        for grid_name, grid in GRIDS.items():
            graph = grid_graph(grid)
            exact_order = SpectralLPM(backend="auto").order_grid(grid)
            ml = multilevel_fiedler(graph, min_size=64)
            rows[grid_name] = [
                two_sum(graph, exact_order),
                two_sum(graph, ml.order),
                ml.rayleigh,
                ml.levels,
            ]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)
    result = ExperimentResult(
        exp_id="multilevel_quality",
        title="Multilevel vs exact spectral ordering",
        xlabel="quantity",
        ylabel="per grid",
        x=["two_sum exact", "two_sum multilevel", "rayleigh", "levels"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("multilevel_quality", render_table(result, precision=4))

    for name, values in rows.items():
        # Multilevel stays within 50% of exact on the quadratic
        # objective (in practice it is often *better*, because its
        # eigenspace member discretizes differently).
        assert values[1] <= 1.5 * values[0]

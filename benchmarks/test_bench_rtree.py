"""Application bench: R-tree packing quality per order.

The `app_rtree` experiment of DESIGN.md: bulk-load an R-tree by each
mapping's rank over a clustered dataset and compare leaf geometry and
window-query node accesses.  Spectral is packed both ways: full-grid
ranks and the data-adaptive induced-subgraph order.
"""

import numpy as np

from repro.core import SpectralLPM
from repro.datasets import gaussian_cluster_cells
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.index import PackedRTree
from repro.mapping import CurveMapping
from repro.query import random_boxes

GRID = Grid((32, 32))
CELLS = gaussian_cluster_cells(GRID, count=300, clusters=5, seed=42)
QUERIES = random_boxes(GRID, (6, 6), count=60, seed=3)


def tree_stats(tree):
    stats = tree.leaf_stats()
    visits = float(np.mean([tree.window_query(box)[1]
                            for box in QUERIES]))
    return [stats.total_volume, stats.total_overlap, visits]


def test_rtree_packing(benchmark, save_report):
    rows = {}

    def run_all():
        for name in ("sweep", "peano", "gray", "hilbert"):
            ranks = CurveMapping(name).ranks_for_grid(GRID)
            rows[name] = tree_stats(
                PackedRTree.pack(GRID, CELLS, ranks, 8, 8))
        order, cells = SpectralLPM().order_points(GRID, CELLS)
        rows["spectral-points"] = tree_stats(
            PackedRTree.pack(GRID, cells, order.ranks, 8, 8))
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_rtree",
        title="Packed R-tree quality, 300 clustered points, "
              "leaf capacity 8",
        xlabel="metric",
        ylabel="lower is better",
        x=["leaf volume", "leaf overlap", "nodes/query"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("app_rtree", render_table(result))

    # Hilbert packing is the industry standard for a reason; any packed
    # tree must answer queries with far fewer node visits than leaves.
    leaves = 300 / 8
    for name, (volume, overlap, visits) in rows.items():
        assert visits < 2 * leaves

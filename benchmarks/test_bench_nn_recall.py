"""Application bench: k-NN window recall per mapping.

The `app_nn` experiment of DESIGN.md (the similarity-search claim):
answer k-NN queries by scanning a rank window around the query and
measure recall against true Manhattan k-NN.
"""

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.mapping import paper_mappings
from repro.query import knn_window_recall

GRID = Grid((16, 16))
WINDOWS = (4, 8, 16, 32)
K = 8


def test_nn_recall(benchmark, save_report):
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            ranks = mapping.ranks_for_grid(GRID)
            rows[mapping.name] = [
                knn_window_recall(GRID, ranks, k=K, window=w,
                                  seed=7, sample=64).mean_recall
                for w in WINDOWS
            ]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_nn",
        title=f"{K}-NN window recall on 16x16 (64 query points)",
        xlabel="rank window",
        ylabel="mean recall",
        x=list(WINDOWS),
    )
    for name, recalls in rows.items():
        result.add_series(name, recalls)
    save_report("app_nn", render_table(result, precision=3))

    for name, recalls in rows.items():
        # Recall grows with the window and is eventually substantial.
        assert recalls == sorted(recalls)
        assert recalls[-1] >= 0.5

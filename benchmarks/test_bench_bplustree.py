"""Application bench: B+-tree range scans over each mapping's keys.

The end-to-end database story: cells keyed by mapping rank in a B+-tree,
range queries answered by one descent plus a leaf-chain walk from the
query's min key to its max key.  Leaf accesses track the paper's span
metric (Figure 6) through an actual index structure.
"""

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.index import BPlusTree
from repro.mapping import paper_mappings
from repro.query import random_boxes

GRID = Grid((32, 32))
QUERIES = random_boxes(GRID, (6, 6), count=80, seed=31)
ORDER = 16


def scan_accesses(mapping):
    ranks = mapping.ranks_for_grid(GRID)
    keys = list(range(GRID.size))
    values = list(range(GRID.size))
    tree = BPlusTree.bulk_load(keys, values, order=ORDER)
    total_accesses = 0
    total_results = 0
    for box in QUERIES:
        cell_ranks = ranks[box.cell_indices(GRID)]
        found, accesses = tree.range_search(int(cell_ranks.min()),
                                            int(cell_ranks.max()))
        total_accesses += accesses
        total_results += len(found)
    return total_accesses, total_results


def test_bplustree_scans(benchmark, save_report):
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            rows[mapping.name] = scan_accesses(mapping)
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_bplustree",
        title="B+-tree span scans, 80 random 6x6 queries on 32x32 "
              f"(order {ORDER})",
        xlabel="metric",
        ylabel="total over workload",
        x=["node accesses", "rows scanned"],
    )
    for name, (accesses, results) in rows.items():
        result.add_series(name, [accesses, results])
    save_report("app_bplustree", render_table(result))

    # Every mapping scans at least the true result rows (36 per query);
    # mappings with smaller spans scan fewer extraneous rows.
    for name, (accesses, results) in rows.items():
        assert results >= 80 * 36
    assert rows["hilbert"][0] < rows["gray"][0]

"""Perf bench: index<->point throughput for every curve.

Not a paper figure — an engineering baseline showing the relative cost
of each mapping's key computation (spectral's cost is the eigensolve,
measured in test_bench_eigensolver).
"""

import pytest

from repro.curves import CURVE_NAMES, SpaceFillingCurve, make_curve


@pytest.mark.parametrize("name", CURVE_NAMES)
def test_point_to_key_throughput(benchmark, name):
    curve = make_curve(name, ndim=3, bits=4)  # 16^3 domain, 1024 sampled
    cells = [(x, y, z)
             for x in range(16) for y in range(16) for z in range(4)]

    def encode_all():
        total = 0
        for point in cells:
            total += curve.point_to_key(point)
        return total

    checksum = benchmark(encode_all)
    assert checksum > 0


@pytest.mark.parametrize("name", [n for n in CURVE_NAMES
                                  if n.startswith(("hilbert", "peano",
                                                   "gray", "snake",
                                                   "sweep"))])
def test_index_to_point_throughput(benchmark, name):
    curve = make_curve(name, ndim=3, bits=3)
    assert isinstance(curve, SpaceFillingCurve)

    def decode_all():
        seen = 0
        for index in range(curve.size):
            seen += curve.index_to_point(index)[0]
        return seen

    benchmark(decode_all)

"""Shared helpers for the benchmark suite.

Every benchmark both *times* its experiment (via pytest-benchmark) and
*prints/saves* the regenerated series, so ``pytest benchmarks/
--benchmark-only`` leaves the same rows the paper plots in
``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Machine-readable benchmark trajectory: every solver benchmark appends
#: its timings here, so perf changes leave a reviewable record instead
#: of vanishing with the terminal scrollback.  The git-tracked file is
#: only written when REPRO_BENCH_RECORD=1 (an intentional trajectory
#: update); ordinary test runs append to the .local sibling, which is
#: gitignored — otherwise every `pytest -q` would dirty the tree and
#: bury the committed baselines under machine-local noise.
BENCH_JSON = RESULTS_DIR / "BENCH_spectral.json"
BENCH_JSON_LOCAL = RESULTS_DIR / "BENCH_spectral.local.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_json(results_dir):
    """Append machine-readable benchmark records to BENCH_spectral.json.

    Each record is a flat dict — by convention at least ``name``, ``n``,
    ``backend`` and ``seconds``.  Records land in the committed
    ``results/BENCH_spectral.json`` only under ``REPRO_BENCH_RECORD=1``;
    default runs append to the untracked ``.local`` sibling.

    Re-running a benchmark replaces its previous record instead of
    piling up duplicates: records are keyed on ``(name, n, backend,
    phase)``, so each (bench, size, backend) combination appears once
    and the file stays a per-configuration snapshot rather than an
    append log.  Historical baselines survive because they use distinct
    backend names (``seed-lanczos``).
    """
    import os

    target = (BENCH_JSON
              if os.environ.get("REPRO_BENCH_RECORD", "") == "1"
              else BENCH_JSON_LOCAL)

    def _key(record: dict) -> tuple:
        return (record.get("name"), record.get("n"),
                record.get("backend"), record.get("phase"))

    def _save(record: dict) -> None:
        records = []
        if target.exists():
            try:
                records = json.loads(target.read_text())
            except json.JSONDecodeError:
                records = []
        record = dict(record)
        records = [r for r in records if _key(r) != _key(record)]
        records.append(record)
        target.write_text(json.dumps(records, indent=2) + "\n")

    return _save


@pytest.fixture(scope="session")
def record_phases(save_json):
    """Append one per-phase record from a traced benchmark run.

    ``spans`` is a list of :class:`repro.obs.SpanRecord` (e.g. the
    collector's ``drain()`` after running the benchmarked operation
    under ``repro.obs.tracing``).  Each span name becomes one
    ``BENCH_spectral.json`` record with ``phase`` set to the span name
    and ``seconds`` its total duration, so the file carries not just
    end-to-end timings but where inside the stack the time went.
    """
    from repro.obs import phase_totals

    def _record(name: str, n: int, backend: str, spans) -> None:
        for phase, seconds in sorted(phase_totals(spans).items()):
            save_json({"name": name, "n": n, "backend": backend,
                       "phase": phase, "seconds": seconds})

    return _record


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Write a rendered experiment report to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also emit to stdout so `pytest -s` shows the tables inline.
        print(f"\n===== {name} =====\n{text}")

    return _save


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment harnesses are deterministic and seconds-long; one round
    gives a faithful wall-clock figure without multiplying CI time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)

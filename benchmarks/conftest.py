"""Shared helpers for the benchmark suite.

Every benchmark both *times* its experiment (via pytest-benchmark) and
*prints/saves* the regenerated series, so ``pytest benchmarks/
--benchmark-only`` leaves the same rows the paper plots in
``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Write a rendered experiment report to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also emit to stdout so `pytest -s` shows the tables inline.
        print(f"\n===== {name} =====\n{text}")

    return _save


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Experiment harnesses are deterministic and seconds-long; one round
    gives a faithful wall-clock figure without multiplying CI time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)

"""Serving-front bench: sequential vs parallel ``query_many``.

Two phases, both appended to ``BENCH_spectral.json``:

* ``parallel_query_exec`` — a warm index serving a mixed range/nn/join
  batch, sequential vs ``parallelism=4``.  Execution kernels are short
  numpy calls glued by Python, so this phase records how close the GIL
  lets the thread pool get to linear — the honest ceiling for pure
  query traffic.
* ``parallel_view_solves`` — a cold batch spanning K independent
  non-cacheable spectral mappings (callable weights: the service can
  neither cache nor batch them).  Materialization dominates and the
  eigensolves run in GIL-releasing BLAS kernels, so this phase scales
  with cores; it is the workload the ``parallelism=`` knob exists for.

Result equality with the sequential path is asserted for both phases on
every run; the >= 1.5x speedup claim is asserted only for the solve
phase and only on multi-core machines (a single-core container can
never show it, and the exec phase is GIL-bound by design).
"""

import os
import time

import numpy as np

from repro.api import (
    JoinQuery,
    NNQuery,
    RangeQuery,
    SpectralIndex,
    make_mapping,
)

SIDE = 96
WORKERS = 4


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _mixed_batch(rng, n):
    batch = [NNQuery(int(c), k=16, window=256)
             for c in rng.choice(n, size=64, replace=False)]
    for _ in range(16):
        lo = (int(rng.integers(0, SIDE - 24)),
              int(rng.integers(0, SIDE - 24)))
        batch.append(RangeQuery((lo, (lo[0] + 22, lo[1] + 22))))
        batch.append(RangeQuery((lo, (lo[0] + 22, lo[1] + 22)),
                                plan="page-fetch"))
    for _ in range(8):
        a = rng.choice(n, size=80, replace=False)
        b = rng.choice(n, size=80, replace=False)
        batch.append(JoinQuery(a.tolist(), b.tolist(), epsilon=4,
                               window=96))
    return batch


def _assert_identical(sequential, parallel):
    for a, b in zip(sequential, parallel):
        if hasattr(a, "results"):
            assert np.array_equal(a.results, b.results)
        elif hasattr(a, "neighbors"):
            assert np.array_equal(a.neighbors, b.neighbors)
        else:
            assert a == b


def test_parallel_query_execution(benchmark, save_json):
    """Warm-index query traffic: records the GIL-bound exec ceiling."""
    rng = np.random.default_rng(11)
    index = SpectralIndex.build((SIDE, SIDE), mapping="hilbert")
    batch = _mixed_batch(rng, SIDE * SIDE)
    index.query_many(batch[:4])  # warm views, stores, coordinates

    sequential, seq_seconds = _timed(
        lambda: index.query_many(batch, parallelism=1))
    parallel, par_seconds = _timed(
        lambda: index.query_many(batch, parallelism=WORKERS))
    _assert_identical(sequential, parallel)

    for phase, seconds in (("sequential", seq_seconds),
                           ("parallel", par_seconds)):
        save_json({
            "name": "parallel_query_exec",
            "n": SIDE * SIDE,
            "backend": "hilbert",
            "phase": phase,
            "workers": 1 if phase == "sequential" else WORKERS,
            "queries": len(batch),
            "seconds": seconds,
            "queries_per_second": len(batch) / seconds,
            "speedup": seq_seconds / par_seconds,
            "cpus": os.cpu_count(),
        })

    benchmark.pedantic(
        lambda: index.query_many(batch, parallelism=WORKERS),
        iterations=1, rounds=3)


def test_parallel_view_materialization(benchmark, save_json):
    """Cold multi-mapping batches: solves fan out across workers.

    Callable-weight mappings are non-cacheable, so each needs its own
    eigensolve and the service can neither coalesce nor batch them —
    sequential execution pays K solves back to back, the parallel path
    overlaps them in BLAS.
    """
    def mappings():
        # Fresh instances each run: non-cacheable mappings are keyed by
        # identity, so reuse would turn the second run into cache hits.
        # Weight callables map a neighbour offset vector to a weight.
        return [make_mapping(
                    "spectral",
                    weight=lambda off, s=s: 1.0 / (
                        sum(abs(int(c)) for c in off) + s))
                for s in (1.0, 1.5, 2.0, 2.5, 3.0, 3.5)]

    def batch_for(maps):
        return [NNQuery(100, k=8, mapping=m) for m in maps]

    grid = (24, 24)
    sequential, seq_seconds = _timed(
        lambda: SpectralIndex.build(grid).query_many(
            batch_for(mappings()), parallelism=1))
    parallel, par_seconds = _timed(
        lambda: SpectralIndex.build(grid).query_many(
            batch_for(mappings()), parallelism=WORKERS))
    _assert_identical(sequential, parallel)

    speedup = seq_seconds / par_seconds
    for phase, seconds in (("sequential", seq_seconds),
                           ("parallel", par_seconds)):
        save_json({
            "name": "parallel_view_solves",
            "n": grid[0] * grid[1],
            "backend": "auto",
            "phase": phase,
            "workers": 1 if phase == "sequential" else WORKERS,
            "queries": 6,
            "seconds": seconds,
            "speedup": speedup,
            "cpus": os.cpu_count(),
        })

    if (os.cpu_count() or 1) >= WORKERS:
        # Eigensolves release the GIL; on a machine with enough cores
        # the overlap must be real (1.5x is far below the ~K/ceil(K/W)
        # ideal, leaving room for BLAS's own threading to interfere).
        assert speedup >= 1.5, (
            f"parallel view materialization only {speedup:.2f}x faster"
        )

    benchmark.pedantic(
        lambda: SpectralIndex.build(grid).query_many(
            batch_for(mappings()), parallelism=WORKERS),
        iterations=1, rounds=1)

"""Preconditioned-eigensolve bench: the numpy-only leg's fast path.

Times the cold Fiedler solve (hierarchy build included) with scipy
blocked from the import machinery, so the numbers reflect the pure-
numpy deployment the ``lobpcg`` / ``shift_invert`` backends exist for,
and records seconds plus inner/outer iteration counts into
``results/BENCH_spectral.json``.

The quick tier (always on) runs 64² grids; the 256² acceptance run —
preconditioned LOBPCG at least 5x faster than flat Lanczos, λ₂ exact to
solver accuracy — activates with ``REPRO_BENCH_FULL=1`` (it re-times
the slow Lanczos baseline, minutes of wall clock).  Committed records
update only under ``REPRO_BENCH_RECORD=1``, as everywhere in this
suite.
"""

import builtins
import os
import sys
import time

import numpy as np
import pytest

from conftest import once

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture
def no_scipy(monkeypatch):
    """Hide scipy so the CSR kernels and solvers run pure numpy."""
    real_import = builtins.__import__

    def fake_import(name, *args, **kwargs):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"scipy hidden for this benchmark: {name}")
        return real_import(name, *args, **kwargs)

    for module_name in list(sys.modules):
        if module_name == "scipy" or module_name.startswith("scipy."):
            monkeypatch.delitem(sys.modules, module_name)
    monkeypatch.setattr(builtins, "__import__", fake_import)


def _cold_fiedler(side, backend):
    """One cold Fiedler solve: caches cleared, hierarchy build paid."""
    import repro.linalg.backends as backends
    from repro.core import fiedler_vector
    from repro.core.spectral import symmetric_grid_probe
    from repro.geometry import Grid
    from repro.graph import grid_graph

    backends._PRECONDITIONER_CACHE.clear()
    grid = Grid((side, side))
    graph = grid_graph(grid)
    probe = symmetric_grid_probe(grid)
    start = time.perf_counter()
    result = fiedler_vector(graph, backend=backend, probe=probe)
    seconds = time.perf_counter() - start
    lambda2 = 2 * (1 - np.cos(np.pi / side))
    relative_error = abs(result.value - lambda2) / lambda2
    return seconds, relative_error


def _solver_stats(side, backend):
    """Iteration counters of one deflated k=1 solve at this size."""
    import repro.linalg.backends as backends
    from repro.geometry import Grid
    from repro.graph import grid_graph, laplacian
    from repro.linalg.lanczos import smallest_eigenpairs_shift_invert
    from repro.linalg.lobpcg import smallest_eigenpairs_lobpcg

    lap = laplacian(grid_graph(Grid((side, side))))
    n = lap.n
    deflate = [np.ones(n) / np.sqrt(n)]
    preconditioner = backends.multilevel_preconditioner_for(lap)
    stats = {}
    if backend == "shift_invert":
        smallest_eigenpairs_shift_invert(
            lap.matvec, n, 1, upper_bound=lap.gershgorin_upper_bound(),
            deflate=deflate, preconditioner=preconditioner, stats=stats)
    else:
        smallest_eigenpairs_lobpcg(
            lap.matvec, n, 1, upper_bound=lap.gershgorin_upper_bound(),
            deflate=deflate, preconditioner=preconditioner,
            matmat=lap.matmat, stats=stats)
    return stats


@pytest.mark.parametrize("backend", ["lanczos", "lobpcg", "shift_invert"])
def test_preconditioned_quick(benchmark, save_json, no_scipy, backend):
    side = 64
    seconds, relative_error = once(benchmark, _cold_fiedler, side, backend)
    record = {
        "name": "fiedler_noscipy",
        "n": side * side,
        "grid": f"{side}x{side}",
        "backend": backend,
        "seconds": round(seconds, 3),
        "lambda2_rel_error": relative_error,
    }
    if backend != "lanczos":
        stats = _solver_stats(side, backend)
        record.update({f"solver_{k}": v for k, v in stats.items()})
    save_json(record)
    assert relative_error < 1e-6


@pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1 to run")
def test_preconditioned_full_256(save_json, no_scipy):
    """The shift-invert tentpole's acceptance run, pinned.

    Cold 256² Fiedler solve on the numpy-only leg, three ways: the
    V-cycle-preconditioned LOBPCG backend, today's flat Lanczos (which
    shares the reduceat CSR kernels that landed with this work), and
    Lanczos on the pre-overhaul bincount/column-loop kernels — the
    baseline the >= 5x acceptance bar was set against.  All at exact λ₂
    (the solvers' residual gates enforce vector quality; the eigenvalue
    check here is end-to-end).
    """
    from repro.linalg.sparse import CSRMatrix

    side = 256
    results = {}

    def measure(backend, label, note=None):
        seconds, relative_error = _cold_fiedler(side, backend)
        record = {
            "name": "fiedler_noscipy",
            "n": side * side,
            "grid": f"{side}x{side}",
            "backend": label,
            "seconds": round(seconds, 3),
            "lambda2_rel_error": relative_error,
        }
        if note:
            record["note"] = note
        if label == "lobpcg":
            stats = _solver_stats(side, backend)
            record.update({f"solver_{k}": v for k, v in stats.items()})
        save_json(record)
        results[label] = seconds
        assert relative_error < 1e-6, label

    measure("lobpcg", "lobpcg")
    measure("lanczos", "lanczos")
    # The pre-overhaul kernels: zeroing _min_row_count disables the
    # reduceat fast paths, restoring the seed's bincount matvec and
    # column-loop matmat bit for bit.
    real_init = CSRMatrix.__init__

    def seed_kernel_init(self, *args, **kwargs):
        real_init(self, *args, **kwargs)
        self._min_row_count = 0

    CSRMatrix.__init__ = seed_kernel_init
    try:
        measure("lanczos", "lanczos-seed-kernels",
                note="pre-overhaul CSR kernels: the acceptance baseline")
    finally:
        CSRMatrix.__init__ = real_init

    for baseline, bar in (("lanczos-seed-kernels", 5.0), ("lanczos", 2.0)):
        speedup = results[baseline] / results["lobpcg"]
        save_json({
            "name": "fiedler_noscipy_speedup",
            "n": side * side,
            "grid": f"{side}x{side}",
            "backend": f"lobpcg_vs_{baseline}",
            "speedup": round(speedup, 2),
        })
        assert speedup >= bar, \
            f"lobpcg speedup over {baseline} is {speedup:.2f}x, below {bar}x"

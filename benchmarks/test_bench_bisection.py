"""Ablation bench: global Spectral LPM vs recursive spectral bisection.

The paper's thesis is that *global* optimization is what fractals lack.
Recursive median-cut bisection (its reference [1]) is spectral yet
local — each cut is final — so it is the cleanest possible control: same
eigen-machinery, different optimization scope.  This bench quantifies
the gap on the paper's own metrics.
"""

from repro.core import SpectralLPM, spectral_bisection_order
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.api import make_mapping
from repro.metrics import (
    adjacent_gap_stats,
    arrangement_costs,
    span_stats,
)

GRID = Grid((12, 12))


def order_metrics(graph, order):
    costs = arrangement_costs(graph, order)
    worst_gap, _ = adjacent_gap_stats(GRID, order.ranks)
    span = span_stats(GRID, order.ranks, (4, 4))
    return [costs.two_sum, costs.bandwidth, worst_gap, span.max,
            span.std]


def test_bisection_ablation(benchmark, save_report):
    graph = grid_graph(GRID)
    rows = {}

    def run_all():
        rows["spectral (global)"] = order_metrics(
            graph, SpectralLPM(backend="auto").order_grid(GRID))
        rows["spectral-rb (bisection)"] = order_metrics(
            graph, spectral_bisection_order(graph, backend="auto"))
        rows["hilbert"] = order_metrics(
            graph, make_mapping("hilbert").order_for_grid(GRID))
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="ablate_bisection",
        title="Global vs divide-and-conquer spectral ordering on 12x12",
        xlabel="metric",
        ylabel="lower is better",
        x=["two_sum", "bandwidth", "adjacent-max", "span4x4-max",
           "span4x4-std"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("ablate_bisection", render_table(result, precision=1))

    # Global spectral wins the quadratic objective decisively — the
    # measured form of the paper's "global optimization" argument.
    assert rows["spectral (global)"][0] < rows["spectral-rb (bisection)"][0]
    # Bisection behaves fractal-like: its cuts are final, so its
    # boundary gaps are of the fractal curves' magnitude, not global
    # spectral's.
    assert rows["spectral-rb (bisection)"][2] > \
        rows["spectral (global)"][2]

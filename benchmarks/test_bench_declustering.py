"""Application bench: declustering response time per mapping.

The `app_decluster` experiment of DESIGN.md: round-robin the pages of
each order across M disks and measure the mean response time (max pages
per disk) of a range-query workload.
"""

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.mapping import paper_mappings
from repro.query import random_boxes
from repro.storage import PageLayout, workload_response_stats

GRID = Grid((32, 32))
QUERIES = [box.cell_indices(GRID)
           for box in random_boxes(GRID, (8, 8), count=80, seed=23)]
DISK_COUNTS = (2, 4, 8)


def test_declustering(benchmark, save_report):
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            layout = PageLayout(mapping.order_for_grid(GRID),
                                page_size=16)
            rows[mapping.name] = [
                workload_response_stats(layout, QUERIES, m)[1]
                for m in DISK_COUNTS
            ]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_decluster",
        title="Mean declustering slowdown (response / optimal), "
              "80 random 8x8 queries",
        xlabel="disks",
        ylabel="mean slowdown (1.0 = perfectly striped)",
        x=list(DISK_COUNTS),
    )
    for name, slowdowns in rows.items():
        result.add_series(name, slowdowns)
    save_report("app_decluster", render_table(result, precision=3))

    for name, slowdowns in rows.items():
        assert all(s >= 1.0 for s in slowdowns)
    # Locality-preserving mappings stripe better than plain sweep.
    assert sum(rows["hilbert"]) <= sum(rows["sweep"])

"""Observability overhead bench: traced vs untraced ``query_many``.

The observability layer's contract is that instrumentation is free to
carry: with tracing disabled every span site costs one module-level
boolean check, and even with tracing *enabled* a warm ``query_many``
batch must stay within 5% of the untraced path (span bookkeeping is a
couple of microseconds against per-query work in the hundreds).

Both timings land in ``BENCH_spectral.json``, and the traced run's
per-phase span totals are recorded through ``record_phases`` so the
file shows where inside the stack the batch spends its time.
"""

import numpy as np

from repro.api import JoinQuery, NNQuery, RangeQuery, SpectralIndex
from repro.obs import Timer, collector, tracing

SIDE = 96
REPEATS = 7


def _mixed_batch(rng, n):
    # Query sizes chosen so per-query work sits in the hundreds of
    # microseconds — the regime the serving stack actually operates in.
    # (A batch of near-empty queries would measure span bookkeeping
    # against no work at all, which no deployment does.)
    batch = [NNQuery(int(c), k=16, window=512)
             for c in rng.choice(n, size=48, replace=False)]
    for _ in range(16):
        lo = (int(rng.integers(0, SIDE - 30)),
              int(rng.integers(0, SIDE - 30)))
        batch.append(RangeQuery((lo, (lo[0] + 28, lo[1] + 28))))
    for _ in range(4):
        a = rng.choice(n, size=96, replace=False)
        b = rng.choice(n, size=96, replace=False)
        batch.append(JoinQuery(a.tolist(), b.tolist(), epsilon=4,
                               window=128))
    return batch


def test_tracing_overhead_query_many(benchmark, save_json,
                                     record_phases):
    rng = np.random.default_rng(23)
    index = SpectralIndex.build((SIDE, SIDE), mapping="hilbert")
    batch = _mixed_batch(rng, SIDE * SIDE)
    index.query_many(batch)  # warm views, stores, coordinates

    # Interleave the two modes round by round and take the per-mode
    # minimum: a machine-load phase then hits both paths equally
    # instead of flaking whichever mode it landed on.
    off_seconds = on_seconds = float("inf")
    spans = []
    for _ in range(REPEATS):
        with Timer() as timer:
            index.query_many(batch)
        off_seconds = min(off_seconds, timer.seconds)
        with tracing():
            collector().clear()
            with Timer() as timer:
                index.query_many(batch)
            spans = collector().drain()
        on_seconds = min(on_seconds, timer.seconds)

    overhead = on_seconds / off_seconds - 1.0
    for phase, seconds in (("untraced", off_seconds),
                           ("traced", on_seconds)):
        save_json({
            "name": "tracing_overhead",
            "n": SIDE * SIDE,
            "backend": "hilbert",
            "phase": phase,
            "queries": len(batch),
            "seconds": seconds,
            "overhead": overhead,
        })
    record_phases("tracing_overhead_phases", SIDE * SIDE, "hilbert",
                  spans)

    assert spans, "traced run produced no spans"
    # The contract: enabled tracing stays within 5% of the untraced
    # path on a warm batch (plus a 1ms absolute floor so scheduler
    # noise on sub-10ms batches cannot flake the assertion).
    assert on_seconds <= off_seconds * 1.05 + 1e-3, (
        f"tracing overhead {overhead * 100:.1f}% "
        f"({off_seconds * 1e3:.2f}ms -> {on_seconds * 1e3:.2f}ms)"
    )

    benchmark.pedantic(lambda: index.query_many(batch),
                       iterations=1, rounds=3)

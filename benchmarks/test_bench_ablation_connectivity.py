"""Ablation bench: graph-model choice (the Section-4 design knob).

How much do 8-connectivity and the weighted-radius footnote model change
the Figure-5a/6a metrics relative to the default 4-connectivity model?
"""

from repro.core import SpectralLPM
from repro.experiments.fig4_connectivity import FIG4_MODELS
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.metrics import adjacent_gap_stats, span_stats

GRID = Grid((12, 12))


def test_connectivity_ablation(benchmark, save_report):
    rows = {}

    def run_all():
        for model_name, kwargs in FIG4_MODELS.items():
            ranks = SpectralLPM(**kwargs).order_grid(GRID).ranks
            worst_gap, mean_gap = adjacent_gap_stats(GRID, ranks)
            span = span_stats(GRID, ranks, (4, 4))
            rows[model_name] = [worst_gap, mean_gap, span.max, span.std]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="ablate_connectivity",
        title="Spectral graph-model ablation on 12x12",
        xlabel="metric",
        ylabel="lower is better",
        x=["adjacent-max", "adjacent-mean", "span4x4-max", "span4x4-std"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("ablate_connectivity", render_table(result, precision=2))

    for name, values in rows.items():
        assert values[0] > 0
    # All three models stay in the same league on worst adjacent gap
    # (within 3x of the best) — the knob tunes, it does not break.
    gaps = [values[0] for values in rows.values()]
    assert max(gaps) <= 3 * min(gaps)

"""Ablation bench: local-search refinement of spectral and curve orders.

How close is each mapping's order to a local optimum of the discrete
Theorem-1 objective?  Refinement quantifies the gap: spectral should be
nearly a fixed point (its vector optimizes the relaxation), fractals
should improve substantially.
"""

from repro.core import SpectralLPM, refine_order
from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.graph import grid_graph
from repro.mapping import paper_mappings

GRID = Grid((12, 12))


def test_refinement_ablation(benchmark, save_report):
    graph = grid_graph(GRID)
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            result = refine_order(graph, mapping.order_for_grid(GRID),
                                  max_passes=50)
            rows[mapping.name] = [
                result.initial_cost,
                result.final_cost,
                100.0 * result.improvement,
                result.swaps,
            ]
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="ablate_refinement",
        title="Greedy 2-sum refinement on 12x12 "
              "(how far from a local optimum is each order?)",
        xlabel="quantity",
        ylabel="per mapping",
        x=["two_sum before", "two_sum after", "improvement %", "swaps"],
    )
    for name, values in rows.items():
        result.add_series(name, values)
    save_report("ablate_refinement", render_table(result, precision=1))

    # Spectral is already near-locally-optimal: smallest improvement and
    # by far the fewest swaps.  (Measured: ~3% / ~100 swaps vs 62-82% /
    # 1000-2100 swaps for the fractals, whose refined costs then land in
    # the same league as spectral's — local search can repair a fractal
    # order, but only because it effectively rebuilds it.)
    assert rows["spectral"][2] <= 10.0
    for name in ("peano", "gray", "hilbert"):
        assert rows[name][2] > rows["spectral"][2]
        assert rows[name][3] > 3 * rows["spectral"][3]
    # Refinement never hurts anyone, and spectral's raw order is already
    # better than every *unrefined* fractal order.
    for name, values in rows.items():
        assert values[1] <= values[0]
        assert rows["spectral"][0] <= values[0]
"""Figure 1 bench: the boundary effect on a 4x4 grid.

Regenerates the boundary-gap table plus the order pictures, and asserts
that every fractal pays a mid-boundary gap that sweep/snake/spectral do
not.
"""

from conftest import once

from repro.experiments import render_fig1_orders, run_fig1
from repro.experiments.tables import render_table


def test_fig1(benchmark, save_report):
    result = once(benchmark, run_fig1, side=4, backend="auto")
    art = render_fig1_orders(side=4, backend="auto")
    save_report("fig1", render_table(result) + "\n\n" + art)

    worst = {s.name: s.y[result.x.index("any-adjacent-max")]
             for s in result.series}
    for fractal in ("peano", "gray", "hilbert"):
        assert worst[fractal] > worst["sweep"]
        assert worst[fractal] > worst["spectral"]

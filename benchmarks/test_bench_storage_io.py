"""Application bench: disk I/O for range queries per mapping.

The `app_disk` experiment of DESIGN.md: block each order into pages, run
a fixed range-query workload, and account pages/seeks/modelled cost.
"""

from repro.experiments.runner import ExperimentResult
from repro.experiments.tables import render_table
from repro.geometry import Grid
from repro.mapping import paper_mappings
from repro.query import random_boxes
from repro.storage import DiskCostModel, PageLayout, query_io

GRID = Grid((32, 32))
QUERIES = random_boxes(GRID, (8, 8), count=100, seed=11)
MODEL = DiskCostModel(seek_cost=5.0, transfer_cost=0.1)


def workload_costs(mapping):
    layout = PageLayout(mapping.order_for_grid(GRID), page_size=16)
    pages = seeks = 0
    cost = 0.0
    for box in QUERIES:
        io = query_io(layout, box.cell_indices(GRID), MODEL)
        pages += io.pages
        seeks += io.runs
        cost += io.cost
    return pages, seeks, cost


def test_storage_io(benchmark, save_report):
    mappings = paper_mappings()
    rows = {}

    def run_all():
        for mapping in mappings:
            rows[mapping.name] = workload_costs(mapping)
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    result = ExperimentResult(
        exp_id="app_disk",
        title="Range-query I/O on 32x32, 100 random 8x8 queries, "
              "16-cell pages",
        xlabel="metric",
        ylabel="total over workload",
        x=["pages", "seeks", "cost"],
    )
    for name, (pages, seeks, cost) in rows.items():
        result.add_series(name, [pages, seeks, cost])
    save_report("app_disk", render_table(result))

    # Every locality-preserving mapping must beat the worst case badly;
    # among the paper's mappings, the fractal curves excel at average
    # page contiguity while spectral minimizes seeks vs sweep.
    assert rows["hilbert"][2] < rows["sweep"][2]
    assert rows["spectral"][1] < rows["sweep"][1]

"""Figure 5a bench: NN worst case on a 4^5 grid (paper Section 5).

Regenerates the paper's Figure-5a series (max 1-D distance vs pair
Manhattan distance, one curve per mapping) and asserts the published
story: Spectral lowest everywhere, fractals worst.
"""

from conftest import once

from repro.experiments import paper_fig5a, run_fig5a
from repro.experiments.runner import ranking_agreement, winner_per_x
from repro.experiments.tables import render_report


def test_fig5a(benchmark, save_report):
    result = once(benchmark, run_fig5a, side=4, ndim=5, backend="auto")
    reference = paper_fig5a()
    save_report("fig5a", render_report(result, reference))

    spectral = result.series_by_name("spectral").y
    sweep = result.series_by_name("sweep").y
    for fractal in ("peano", "gray", "hilbert"):
        curve = result.series_by_name(fractal).y
        # The paper's core claims: non-fractals beat fractals at small
        # distances, and spectral is the best mapping at every x.
        assert spectral[0] < curve[0]
        assert sweep[0] < curve[0]
    assert all(name == "spectral" for name in winner_per_x(result))
    assert ranking_agreement(result, reference) >= 0.6

"""Figure 3 bench: the 3x3 worked example.

Times the full pipeline on the paper's own example and asserts every
checkable fact: lambda_2 = 1, eigenspace dimension 2, and a discrete
objective at least as good as the published order's.
"""

from conftest import once

from repro.experiments import render_fig3, run_fig3


def test_fig3(benchmark, save_report):
    outcome = once(benchmark, run_fig3, backend="auto")
    save_report("fig3", render_fig3(backend="auto"))

    assert outcome.matches_paper_lambda2
    assert outcome.fiedler_multiplicity == 2
    assert outcome.at_least_as_good_as_paper
    assert outcome.paper_two_sum == 62.0

"""Ablation bench: eigensolver backends (dense vs lanczos vs scipy).

Times the Fiedler computation per backend on growing grids and asserts
the backends agree on the resulting spectral order — the determinism
guarantee DESIGN.md promises.
"""

import pytest

from repro.core import SpectralLPM
from repro.geometry import Grid
from repro.linalg import scipy_available

BACKENDS = (["dense", "lanczos"]
            + (["scipy"] if scipy_available() else [])
            + ["multilevel"])
GRIDS = {"16x16": Grid((16, 16)), "24x24": Grid((24, 24))}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("grid_name", list(GRIDS))
def test_fiedler_backend(benchmark, backend, grid_name):
    grid = GRIDS[grid_name]
    algorithm = SpectralLPM(backend=backend)

    order = benchmark.pedantic(
        lambda: algorithm.order_grid(grid), iterations=1, rounds=3)
    assert sorted(order.permutation) == list(range(grid.size))


def test_backends_agree_on_order(benchmark, save_report):
    lines = []

    def run_all():
        for grid_name, grid in GRIDS.items():
            orders = {b: SpectralLPM(backend=b).order_grid(grid)
                      for b in BACKENDS}
            reference = orders[BACKENDS[0]]
            agree = all(order == reference for order in orders.values())
            lines.append(f"{grid_name}: backends {BACKENDS} identical: "
                         f"{agree}")
            assert agree
        return lines

    benchmark.pedantic(run_all, iterations=1, rounds=1)
    save_report("eigensolver_agreement", "\n".join(lines))

"""Figure 6a bench: range-query worst-case span on a 6^4 grid.

Regenerates the max-span series.  Our reproduction confirms the paper's
anti-fractal claim (spectral far below every fractal) while measuring —
honestly — that plain Sweep's hyper-cubic spans are structurally minimal
(see EXPERIMENTS.md for the analysis of this divergence).
"""

from conftest import once

from repro.experiments import paper_fig6a, run_fig6a
from repro.experiments.tables import render_report


def test_fig6a(benchmark, save_report):
    result = once(benchmark, run_fig6a, side=6, ndim=4, backend="auto")
    save_report("fig6a", render_report(result, paper_fig6a()))

    spectral = result.series_by_name("spectral").y
    for fractal in ("peano", "gray", "hilbert"):
        curve = result.series_by_name(fractal).y
        assert all(s <= c + 1e-9 for s, c in zip(spectral, curve))
    # Monotone in query size for every mapping (sanity of the harness).
    for series in result.series:
        assert list(series.y) == sorted(series.y)

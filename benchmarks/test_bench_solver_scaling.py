"""Solver-scaling bench: the overhauled eigensolver hot path.

Times ``SpectralLPM.order_grid`` per backend on growing grids and
appends machine-readable records to ``results/BENCH_spectral.json`` via
the ``save_json`` fixture, so the perf trajectory of the solver stack is
tracked across commits.

The quick tier (always on) keeps CI time negligible; the full sweep —
64^2 through 512^2 per the solver-overhaul acceptance criteria, plus the
1024^2 multilevel run — activates with ``REPRO_BENCH_FULL=1``.  Records
go to the committed BENCH_spectral.json only under
``REPRO_BENCH_RECORD=1``; default runs append to its untracked .local
sibling (see ``save_json``).  The
historical pre-overhaul baseline (restart-from-scratch Lanczos with
Python-loop reorthogonalization) is recorded in BENCH_spectral.json as
``seed-lanczos`` entries for comparison; the seed could not finish
256^2 within 30 minutes on the same machine.
"""

import os
import time

import pytest

from repro.core import SpectralLPM
from repro.geometry import Grid
from repro.linalg import scipy_available

from conftest import once

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

QUICK_CASES = [(64, "lanczos"), (64, "multilevel")] + (
    [(64, "scipy")] if scipy_available() else [])

FULL_CASES = [
    (128, "lanczos"), (256, "lanczos"),
    (128, "multilevel"), (256, "multilevel"),
    (512, "multilevel"), (1024, "multilevel"),
] + ([(128, "scipy"), (256, "scipy"), (512, "scipy")]
     if scipy_available() else [])


def _run_case(side, backend, save_json):
    grid = Grid((side, side))
    algorithm = SpectralLPM(backend=backend)
    start = time.perf_counter()
    order = algorithm.order_grid(grid)
    seconds = time.perf_counter() - start
    assert sorted(order.permutation) == list(range(grid.size))
    save_json({
        "name": "order_grid",
        "n": grid.size,
        "grid": f"{side}x{side}",
        "backend": backend,
        "seconds": round(seconds, 3),
    })
    return seconds


@pytest.mark.parametrize("side,backend", QUICK_CASES)
def test_solver_scaling_quick(benchmark, save_json, side, backend):
    once(benchmark, _run_case, side, backend, save_json)


@pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1 to run")
@pytest.mark.parametrize("side,backend", FULL_CASES)
def test_solver_scaling_full(benchmark, save_json, side, backend):
    seconds = once(benchmark, _run_case, side, backend, save_json)
    if (side, backend) == (1024, "multilevel"):
        # Acceptance criterion of the solver overhaul: a million-cell
        # grid orders in under a minute.
        assert seconds < 60.0


@pytest.mark.skipif(not FULL, reason="set REPRO_BENCH_FULL=1 to run")
def test_multilevel_quality_bound(save_json):
    """1024^2 multilevel Rayleigh quotient within 5% of lambda_2."""
    import numpy as np

    from repro.core import multilevel_fiedler
    from repro.graph import grid_graph

    side = 1024
    graph = grid_graph(Grid((side, side)))
    start = time.perf_counter()
    result = multilevel_fiedler(graph)
    seconds = time.perf_counter() - start
    lambda2 = 2 * (1 - np.cos(np.pi / side))
    relative_error = (result.rayleigh - lambda2) / lambda2
    save_json({
        "name": "multilevel_quality",
        "n": side * side,
        "grid": f"{side}x{side}",
        "backend": "multilevel",
        "seconds": round(seconds, 3),
        "rayleigh": result.rayleigh,
        "lambda2": lambda2,
        "relative_error": relative_error,
    })
    assert 0 <= relative_error < 0.05

"""A complete spatial store: mapping + B+-tree + pages + buffer.

Run with::

    python examples/spatial_store.py

Assembles the whole paper pipeline into the system its introduction
describes: records keyed by a locality-preserving mapping inside a
B+-tree, laid out on disk pages, queried with the two classic plans —
the span scan (read from the query's min key to its max key, filtering)
and the page fetch (read exactly the touched pages).  One table per
mapping shows where each plan's costs come from.

Everything runs through one shared
:class:`~repro.api.OrderingService` behind per-mapping
:class:`~repro.api.SpectralIndex` facades: the two plans of a mapping
share that mapping's store, every spectral index shares a single
eigensolve, and a restart backed by the same artifact directory would
reuse it too.
"""

from repro.api import OrderingService, SpectralIndex
from repro.geometry import Grid
from repro.query import random_boxes
from repro.storage import DiskCostModel

MAPPINGS = ("sweep", "peano", "gray", "hilbert", "spectral",
            "spectral-rb")


def main() -> None:
    grid = Grid((32, 32))
    queries = random_boxes(grid, extent=(6, 6), count=100, seed=17)
    model = DiskCostModel(seek_cost=5.0, transfer_cost=0.1)
    service = OrderingService()

    print(f"domain {grid.shape}, {len(queries)} random 6x6 queries, "
          "8-cell pages, 64-page LRU buffer")
    print()
    header = (f"{'mapping':12s} {'plan':10s} {'idx nodes':>9s} "
              f"{'pages':>6s} {'seeks':>6s} {'buf hits':>8s} "
              f"{'cost':>8s}")
    print(header)
    print("-" * len(header))

    for name in MAPPINGS:
        for plan in ("span-scan", "page-fetch"):
            # A fresh index per plan keeps the LRU buffer cold, so the
            # two plans are compared on equal footing; the shared
            # service still makes every spectral solve happen once.
            index = SpectralIndex.build(grid, mapping=name,
                                        service=service, page_size=8,
                                        tree_order=16,
                                        buffer_capacity=64,
                                        cost_model=model)
            report = index.workload(queries, plan=plan)
            print(f"{name:12s} {plan:10s} "
                  f"{report.index_node_accesses:9d} "
                  f"{report.pages_fetched:6d} {report.seeks:6d} "
                  f"{report.buffer_hits:8d} {report.cost:8.1f}")
        print()

    print("span-scan cost follows the paper's Figure-6 span metric; "
          "page-fetch cost\nfollows pages+seeks (Figure 5's locality).  "
          "A good mapping wins on both.")
    stats = service.stats
    print(f"(ordering service: {stats.computed} spectral eigensolve "
          f"across all plans; give the service a store= directory to "
          f"persist it across runs)")


if __name__ == "__main__":
    main()

"""R-tree packing application: bulk-loading by mapping rank.

Run with::

    python examples/rtree_packing.py

Packs R-trees over a clustered point dataset by sorting on each mapping's
rank (the Kamel-Faloutsos recipe with the mapping swapped out), then
compares leaf quality and window-query node accesses.  Spectral LPM is
run two ways: with full-grid ranks, and with a *sparse* order computed on
the data itself (a :class:`~repro.api.PointSet` domain) - the latter is
the fair way to use a data-adaptive mapping, and the difference is
visible.
"""

import numpy as np

from repro.api import PointSet, SpectralIndex
from repro.datasets import gaussian_cluster_cells
from repro.geometry import Grid
from repro.index import PackedRTree
from repro.query import random_boxes


def query_cost(tree: PackedRTree, grid: Grid, count: int = 60,
               seed: int = 3) -> float:
    """Mean node accesses over random 6x6 window queries."""
    boxes = random_boxes(grid, extent=(6, 6), count=count, seed=seed)
    visits = [tree.window_query(box)[1] for box in boxes]
    return float(np.mean(visits))


def main() -> None:
    grid = Grid((32, 32))
    cells = gaussian_cluster_cells(grid, count=300, clusters=5, seed=42)
    print(f"{len(cells)} clustered points on {grid.shape}; "
          "leaf capacity 8, fanout 8")
    print()
    header = (f"{'packing order':18s} {'leaf vol':>9s} {'overlap':>9s} "
              f"{'margin':>8s} {'nodes/query':>12s}")
    print(header)
    print("-" * len(header))

    index = SpectralIndex.build(grid)
    for name in ("sweep", "peano", "gray", "hilbert"):
        tree = PackedRTree.pack(grid, cells, index.ranks_for(name),
                                leaf_capacity=8, fanout=8)
        stats = tree.leaf_stats()
        print(f"{name:18s} {stats.total_volume:9.0f} "
              f"{stats.total_overlap:9.0f} {stats.total_margin:8.0f} "
              f"{query_cost(tree, grid):12.1f}")

    # Spectral, the naive way: full-grid ranks.
    tree = PackedRTree.pack(grid, cells, index.ranks,
                            leaf_capacity=8, fanout=8)
    stats = tree.leaf_stats()
    print(f"{'spectral (grid)':18s} {stats.total_volume:9.0f} "
          f"{stats.total_overlap:9.0f} {stats.total_margin:8.0f} "
          f"{query_cost(tree, grid):12.1f}")

    # Spectral, the data-adaptive way: a PointSet domain orders the
    # induced graph of the data itself (sharing the same service).
    points = PointSet(grid, cells)
    sparse = SpectralIndex.build(points, service=index.service)
    tree = PackedRTree.pack(grid, points.cells, sparse.ranks,
                            leaf_capacity=8, fanout=8)
    stats = tree.leaf_stats()
    print(f"{'spectral (points)':18s} {stats.total_volume:9.0f} "
          f"{stats.total_overlap:9.0f} {stats.total_margin:8.0f} "
          f"{query_cost(tree, grid):12.1f}")

    print()
    print("Lower leaf volume/overlap means tighter bounding boxes and "
          "fewer multi-path\ndescents; node accesses per window query "
          "is the end-to-end consequence.")


if __name__ == "__main__":
    main()

"""Remote serving: the socket tier over a worker fleet.

Run with::

    python examples/remote_serving.py

The process-pool frontend (see ``multiprocess_serving.py``) still
lives inside one process tree; this example crosses the *machine*
boundary shape.  A ``SpectralServer`` fronts the fleet on a loopback
TCP socket; ``RemoteFrontend`` clients connect like any network
client would.  The script demonstrates the three properties that
matter in deployment:

1. answers over the socket are bit-identical to the pool frontend;
2. concurrent clients cold-missing one fingerprint pay one eigensolve
   (cross-client coalescing), visible in the combined stats;
3. traces stitch across client → server → dispatcher → worker, and
   the server's ``repro_net_*`` metrics tell the connection story.
"""

import threading

from repro.api import NNQuery, ProcessPoolFrontend, RangeQuery
from repro.geometry import Grid
from repro.net import RemoteFrontend, SpectralServer
from repro.obs import (
    collector,
    format_trace,
    phase_totals,
    registry,
    tracing,
)

COLD_GRID = Grid((20, 20))
K_CLIENTS = 4


def main() -> None:
    with ProcessPoolFrontend(shards=2) as front:
        with SpectralServer(front, dispatchers=K_CLIENTS) as server:
            host, port = server.address
            print(f"serving on {host}:{port} "
                  f"({front.num_workers} workers behind the socket)")

            # -- 1: bit-identity through the socket --------------------
            warm = Grid((12, 12))
            with RemoteFrontend(host, port, read_timeout=120) as remote:
                assert remote.order_grid(warm) == front.order_grid(warm)
                batch = [NNQuery(17, k=6), RangeQuery(((2, 2), (7, 7)))]
                got = remote.query_many(warm, batch)
                print(f"remote query_many: "
                      f"nn={got[0].neighbors.tolist()[:3]}..., "
                      f"range hits={len(got[1].results)} "
                      f"— bit-identical to the pool frontend")

            # -- 2: K cold clients, one eigensolve ---------------------
            computed_before = front.combined_stats().computed

            def hit():
                with RemoteFrontend(host, port,
                                    read_timeout=120) as client:
                    client.order_grid(COLD_GRID)

            threads = [threading.Thread(target=hit)
                       for _ in range(K_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = front.combined_stats()
            coalesced = registry().counter(
                "repro_net_coalesced_total").value()
            print(f"{K_CLIENTS} concurrent cold clients: "
                  f"computed={stats.computed - computed_before} new "
                  f"order(s) for their shared grid, "
                  f"coalesced={coalesced:g} request(s) at the socket")

            # -- 3: a stitched remote trace + the server's metrics -----
            with tracing():
                with RemoteFrontend(host, port,
                                    read_timeout=120) as remote:
                    remote.query_many(warm, [NNQuery(33, k=4)])
                records = collector().drain()
            print("\nstitched remote trace:")
            print(format_trace(records))
            totals = phase_totals(records)
            for name in sorted(totals, key=lambda n: -totals[n])[:5]:
                print("  %-24s %8.3f ms" % (name, totals[name] * 1e3))

            with RemoteFrontend(host, port) as remote:
                print("\nserver-side connection story:")
                for line in remote.metrics().splitlines():
                    if line.startswith("repro_net_") and " " in line:
                        print(f"  {line}")
                health = remote.health()
                print(f"\nserver health: status={health.status} "
                      f"handled={health.requests_handled} "
                      f"rejections={health.rejections} "
                      f"open={health.connections_open}")


if __name__ == "__main__":
    main()

"""Multi-process serving: a worker fleet over per-shard disk stores.

Run with::

    python examples/multiprocess_serving.py

The in-process serving fronts (see ``parallel_serving.py``) share one
interpreter; this example crosses the process boundary.  A
``ProcessPoolFrontend`` spawns one worker process per keyspace shard,
each hydrating its ordering service from its own on-disk artifact
store.  The script demonstrates the three properties that matter in
deployment:

1. answers are bit-identical to the in-process sharded frontend;
2. a fleet bounce over warm stores pays zero eigensolves;
3. a killed worker is restarted and rehydrated transparently.
"""

import tempfile
from pathlib import Path

from repro.api import NNQuery, ProcessPoolFrontend, RangeQuery
from repro.core.spectral import SpectralConfig
from repro.geometry import Grid
from repro.service import OrderRequest, ShardedIndexFrontend

GRIDS = [Grid((s, s)) for s in (10, 12, 14, 16)]


def main() -> None:
    cache = Path(tempfile.mkdtemp(prefix="repro-fleet-")) / "orders"

    # -- 1: bit-identity with the in-process front ---------------------
    requests = [OrderRequest(g) for g in GRIDS] + [
        OrderRequest(GRIDS[0], SpectralConfig(weight="gaussian"))]
    local = ShardedIndexFrontend(shards=2).order_many(requests)
    with ProcessPoolFrontend(shards=2, cache_dir=cache) as front:
        remote = front.order_many(requests,
                                  parallelism=front.num_workers)
        assert remote == local
        print(f"fleet of {front.num_workers} workers: "
              f"{len(requests)} orders bit-identical to in-process")

        batch = [NNQuery(17, k=6), RangeQuery(((2, 2), (7, 7)))]
        results = front.query_many(GRIDS[1], batch)
        print(f"query_many through the pipe: "
              f"nn={results[0].neighbors.tolist()[:3]}..., "
              f"range hits={len(results[1].results)}")

    # -- 2: restart-warm — the fleet is gone; its stores are not -------
    with ProcessPoolFrontend(shards=2, cache_dir=cache) as front:
        front.order_many([OrderRequest(g) for g in GRIDS])
        stats = front.combined_stats()
        print(f"restarted fleet: {stats.disk_hits} disk hits, "
              f"{stats.solver_calls} eigensolves (zero = warm)")

        # -- 3: crash one worker; the dispatcher restarts it -----------
        victim = front.worker_of(GRIDS[0])
        front.fleet._handles[victim].process.kill()
        order = front.order_grid(GRIDS[0])
        print(f"worker {victim} killed: restarted "
              f"{front.fleet.stats.worker_restarts} worker(s), "
              f"order re-served (n={order.n}) without recomputation")


if __name__ == "__main__":
    main()

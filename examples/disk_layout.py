"""Storage application: blocking an order into pages and measuring I/O.

Run with::

    python examples/disk_layout.py

The paper's motivation is disk placement: store cells in mapping order,
cut the order into pages, and watch how many pages/seeks a range-query
workload costs under each mapping - plus the LRU hit rate and the
declustered (multi-disk) response time, covering three applications the
paper names in one script.
"""

from repro.api import SpectralIndex
from repro.geometry import Grid
from repro.query import random_boxes
from repro.storage import (
    DiskCostModel,
    LRUBufferPool,
    PageLayout,
    query_io,
    query_response_time,
)


def main() -> None:
    grid = Grid((32, 32))
    page_size = 16          # cells per disk page
    num_disks = 4
    model = DiskCostModel(seek_cost=5.0, transfer_cost=0.1)
    queries = random_boxes(grid, extent=(8, 8), count=100, seed=11)

    print(f"domain {grid.shape}, page size {page_size}, "
          f"{len(queries)} random 8x8 range queries")
    print()
    header = (f"{'mapping':9s} {'pages':>6s} {'seeks':>6s} "
              f"{'cost':>8s} {'LRU hit%':>9s} {'resp(4 disks)':>13s}")
    print(header)
    print("-" * len(header))

    index = SpectralIndex.build(grid)
    for name in ("sweep", "peano", "gray", "hilbert", "spectral"):
        order = index.order_for(name)
        layout = PageLayout(order, page_size)
        buffer_pool = LRUBufferPool(capacity=16)
        total_pages = 0
        total_seeks = 0
        total_cost = 0.0
        total_response = 0
        for box in queries:
            items = box.cell_indices(grid)
            io = query_io(layout, items, model)
            total_pages += io.pages
            total_seeks += io.runs
            total_cost += io.cost
            buffer_pool.access_many(int(p) for p in
                                    layout.pages_for_items(items))
            total_response += query_response_time(
                layout, items, num_disks).response_time
        stats = buffer_pool.stats()
        print(f"{name:9s} {total_pages:6d} {total_seeks:6d} "
              f"{total_cost:8.1f} {100 * stats.hit_rate:8.1f}% "
              f"{total_response / len(queries):13.2f}")

    print()
    print("Fewer seeks and a flatter multi-disk response mean the "
          "mapping kept each\nquery's cells on few contiguous pages - "
          "the whole point of locality preservation.")


if __name__ == "__main__":
    main()

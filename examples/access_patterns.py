"""Section-4 extensibility: steering the mapping with access patterns.

Run with::

    python examples/access_patterns.py

Scenario (straight from the paper): "whenever point P in page X is
accessed, there is a very high probability that point Q in page Y will be
accessed soon afterwards."  We mine such correlated pairs from a synthetic
access trace, add them to the graph as extra edges, and show that Spectral
LPM now maps the correlated points next to each other - while plain
fractal curves cannot use this information at all.
"""

import numpy as np

from repro.api import OrderingService, SpectralIndex
from repro.core import (
    access_pattern_weights,
    add_access_pattern,
    correlated_pairs_from_trace,
)
from repro.geometry import Grid
from repro.graph import grid_graph


def synthesize_trace(grid: Grid, hot_pairs, length: int = 600,
                     seed: int = 7) -> list:
    """A random access trace where each hot pair co-occurs frequently."""
    rng = np.random.default_rng(seed)
    trace = []
    for _ in range(length):
        if rng.random() < 0.5:
            p, q = hot_pairs[int(rng.integers(len(hot_pairs)))]
            trace.extend([p, q])
        else:
            trace.append(int(rng.integers(grid.size)))
    return trace


def main() -> None:
    grid = Grid((8, 8))
    service = OrderingService()

    # Two far-apart cell pairs that the workload always touches together.
    hot_pairs = [
        (grid.index_of((0, 0)), grid.index_of((7, 7))),
        (grid.index_of((0, 7)), grid.index_of((7, 0))),
    ]
    trace = synthesize_trace(grid, hot_pairs)

    # Mine the trace: the hot pairs dominate the co-occurrence counts.
    mined = correlated_pairs_from_trace(trace, window=1, min_support=5,
                                        top_k=4)
    print("mined correlated pairs (p, q, support):")
    for p, q, support in mined:
        print(f"  {grid.point_of(p)} <-> {grid.point_of(q)}  "
              f"support={support}")

    # Graph domains drop into the same facade as grids: the base grid
    # graph and its access-pattern-augmented variant are two indexes
    # sharing one service (content-hashed, so each solves once).
    base_graph = grid_graph(grid)
    base_order = SpectralIndex.build(base_graph, service=service).order

    edges, weights = access_pattern_weights(mined, base_weight=4.0)
    augmented = add_access_pattern(base_graph, edges,
                                   weight=float(weights.max()))
    augmented_order = SpectralIndex.build(augmented,
                                          service=service).order

    print()
    print("rank distance of the hot pairs, before vs after the "
          "access-pattern edges:")
    for p, q in hot_pairs:
        before = abs(base_order.rank_of(p) - base_order.rank_of(q))
        after = abs(augmented_order.rank_of(p) - augmented_order.rank_of(q))
        print(f"  {grid.point_of(p)} <-> {grid.point_of(q)}: "
              f"{before:3d} -> {after:3d}")

    print()
    print("Spectral LPM folds the space so correlated points share "
          "disk pages;\nno space-filling curve can express this "
          "workload knowledge.")


if __name__ == "__main__":
    main()

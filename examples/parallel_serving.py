"""The serving fronts: threaded batches, asyncio, and sharded routing.

Run with::

    python examples/parallel_serving.py

One engine, four ways to put traffic through it.  A mixed range/nn/join
batch executes through ``query_many`` sequentially and on a thread
pool (bit-identical results, exact buffer accounting), the same index
serves an asyncio event loop through ``AsyncSpectralIndex``, and a
``ShardedIndexFrontend`` partitions a population of domains over
per-shard ordering services by their content-hash fingerprints.
"""

import asyncio

import numpy as np

from repro.api import (
    AsyncSpectralIndex,
    JoinQuery,
    NNQuery,
    RangeQuery,
    SpectralIndex,
)
from repro.geometry import Grid
from repro.service import ShardedIndexFrontend

SIDE = 32


def build_batch(rng, n):
    """A mixed workload: windows, neighbours, and a spatial join."""
    batch = [NNQuery(int(c), k=8) for c in
             rng.choice(n, size=12, replace=False)]
    for _ in range(6):
        lo = (int(rng.integers(0, SIDE - 9)),
              int(rng.integers(0, SIDE - 9)))
        batch.append(RangeQuery((lo, (lo[0] + 8, lo[1] + 8))))
    a = rng.choice(n, size=40, replace=False).tolist()
    b = rng.choice(n, size=40, replace=False).tolist()
    batch.append(JoinQuery(a, b, epsilon=3, window=48))
    return batch


def main() -> None:
    rng = np.random.default_rng(3)
    index = SpectralIndex.build((SIDE, SIDE), buffer_capacity=16)
    batch = build_batch(rng, SIDE * SIDE)

    # -- threaded: same answers, fanned across workers ----------------
    sequential = index.query_many(batch)
    parallel = index.query_many(batch, parallelism=4)
    identical = all(
        np.array_equal(a.results, b.results) if hasattr(a, "results")
        else np.array_equal(a.neighbors, b.neighbors)
        if hasattr(a, "neighbors") else a == b
        for a, b in zip(sequential, parallel)
    )
    stats = index.buffer_stats()
    print(f"threaded query_many: {len(batch)} queries, "
          f"bit-identical={identical}")
    print(f"buffer conservation: {stats.hits} hits + {stats.misses} "
          f"misses == {stats.accesses} accesses "
          f"({stats.hits + stats.misses == stats.accesses})")

    # -- asyncio: the same index behind an event loop -----------------
    async def serve():
        async with AsyncSpectralIndex(index, workers=4) as aindex:
            return await asyncio.gather(
                aindex.nn((5, 5), k=4),
                aindex.range(((2, 2), (9, 9))),
                aindex.query_many(batch[:6]),
            )

    nn_result, execution, small_batch = asyncio.run(serve())
    print(f"asyncio front: nn -> {nn_result.neighbors.tolist()}, "
          f"range -> {len(execution.results)} cells, "
          f"gathered batch of {len(small_batch)}")

    # -- sharded: a population of domains over 3 services -------------
    front = ShardedIndexFrontend(shards=3)
    sides = range(8, 20)
    placement = {side: front.shard_of((side, side)) for side in sides}
    for side in sides:
        front.order_grid(Grid((side, side)))
    per_shard = [s.computed for s in front.stats()]
    print(f"sharded frontend: {len(list(sides))} domains -> "
          f"shards {sorted(set(placement.values()))}, "
          f"solves per shard {per_shard}")
    result = front.query_many((12, 12), [NNQuery(50, k=4)],
                              parallelism=2)
    print(f"routed query on grid(12,12) via shard "
          f"{front.shard_of((12, 12))}: {result[0].neighbors.tolist()}")


if __name__ == "__main__":
    main()

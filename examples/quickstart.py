"""Quickstart: order a grid with Spectral LPM and compare with Hilbert.

Run with::

    python examples/quickstart.py

Covers the public API in ~40 lines, all through the one front door —
:class:`repro.api.SpectralIndex`: build an index over a grid (the
eigensolve runs once, behind the caching ordering service), read the
spectral order, pull every fractal baseline's ranks from the same index,
and compare locality with the adjacent-gap statistic that drives the
paper's Figure 1.
"""

from repro.api import SpectralIndex
from repro.metrics import adjacent_gap_stats, boundary_gap
from repro.viz import render_order_path, render_ranks


def main() -> None:
    # One call composes domain -> mapping -> service -> index.
    index = SpectralIndex.build((8, 8))
    grid = index.domain

    # The paper's algorithm: graph -> Laplacian -> Fiedler vector -> sort.
    print("Spectral order of an 8x8 grid (rank of every cell):")
    print(render_ranks(grid, index.ranks))
    print()
    print("...as a path (arrows = unit steps, * = jumps):")
    print(render_order_path(grid, index.ranks))
    print()
    art = index.provenance
    print(f"(solve provenance: backend={art.backend}, "
          f"lambda_2={art.lambda2:.4f})")
    print()

    # Any baseline drops in through the same index; the spectral member
    # reuses the order already computed above.
    for name in ("sweep", "peano", "gray", "hilbert", "spectral"):
        ranks = index.ranks_for(name)
        worst, mean = adjacent_gap_stats(grid, ranks)
        cross = boundary_gap(grid, ranks, axis=0)
        print(f"{name:9s}  worst adjacent gap = {worst:3d}   "
              f"mean = {mean:5.2f}   across the mid-boundary = {cross:3d}")

    print()
    print("The fractal curves (peano/gray/hilbert) pay a large gap "
          "exactly at the\nquadrant boundary - the paper's 'boundary "
          "effect'.  Spectral LPM does not.")
    stats = index.stats
    print(f"(ordering service: {stats.computed} eigensolve, "
          f"{stats.memory_hits} cache hit)")


if __name__ == "__main__":
    main()

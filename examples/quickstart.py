"""Quickstart: order a grid with Spectral LPM and compare with Hilbert.

Run with::

    python examples/quickstart.py

Covers the core public API in ~40 lines: build a grid, compute the
spectral order (the paper's Figure-2 algorithm) through the caching
:class:`~repro.service.OrderingService` — the documented path, so the
eigensolve runs once no matter how many consumers ask — compute a
fractal baseline, and compare their locality with the adjacent-gap
statistic that drives the paper's Figure 1.
"""

from repro import Grid, OrderingService, mapping_by_name
from repro.metrics import adjacent_gap_stats, boundary_gap
from repro.viz import render_order_path, render_ranks


def main() -> None:
    grid = Grid((8, 8))
    service = OrderingService()

    # The paper's algorithm: graph -> Laplacian -> Fiedler vector -> sort.
    # (`spectral_order(grid)` computes the same thing uncached.)
    order = service.order_grid(grid)
    print("Spectral order of an 8x8 grid (rank of every cell):")
    print(render_ranks(grid, order.ranks))
    print()
    print("...as a path (arrows = unit steps, * = jumps):")
    print(render_order_path(grid, order.ranks))
    print()

    # Any baseline drops in through the same mapping interface; the
    # spectral member reuses the order already computed above.
    for name in ("sweep", "peano", "gray", "hilbert", "spectral"):
        mapping = mapping_by_name(name, service=service)
        ranks = mapping.ranks_for_grid(grid)
        worst, mean = adjacent_gap_stats(grid, ranks)
        cross = boundary_gap(grid, ranks, axis=0)
        print(f"{name:9s}  worst adjacent gap = {worst:3d}   "
              f"mean = {mean:5.2f}   across the mid-boundary = {cross:3d}")

    print()
    print("The fractal curves (peano/gray/hilbert) pay a large gap "
          "exactly at the\nquadrant boundary - the paper's 'boundary "
          "effect'.  Spectral LPM does not.")
    stats = service.stats
    print(f"(ordering service: {stats.computed} eigensolve, "
          f"{stats.memory_hits} cache hit)")


if __name__ == "__main__":
    main()

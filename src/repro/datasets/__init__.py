"""Seeded synthetic datasets over grid domains."""

from repro.datasets.synthetic import (
    DATASET_NAMES,
    dataset_by_name,
    gaussian_cluster_cells,
    uniform_cells,
    zipf_cells,
)

__all__ = [
    "DATASET_NAMES",
    "dataset_by_name",
    "gaussian_cluster_cells",
    "uniform_cells",
    "zipf_cells",
]

"""Synthetic point datasets.

The paper's experiments use full grids; realistic applications (R-tree
packing, declustering, spatial join) operate on sparse point sets.  These
generators produce seeded, reproducible point sets over a grid domain in
three standard shapes: uniform, Gaussian clusters, and Zipf-skewed.

All generators return **distinct flat cell indices** (ascending), the
representation the rest of the library consumes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid


def _check_count(grid: Grid, count: int) -> None:
    if not 1 <= count <= grid.size:
        raise InvalidParameterError(
            f"count must be in [1, {grid.size}], got {count}"
        )


def uniform_cells(grid: Grid, count: int, seed: int = 0) -> np.ndarray:
    """``count`` distinct cells drawn uniformly."""
    _check_count(grid, count)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(grid.size, size=count, replace=False))


def gaussian_cluster_cells(grid: Grid, count: int, clusters: int = 4,
                           spread: float = 0.08,
                           seed: int = 0) -> np.ndarray:
    """``count`` distinct cells drawn from Gaussian blobs.

    ``clusters`` centers are placed uniformly; each sample picks a center
    and adds N(0, (spread * side)^2) per axis, clipped to the domain.
    Collisions are resampled, so exactly ``count`` distinct cells return
    (dense requests fall back to uniform fill for the remainder).
    """
    _check_count(grid, count)
    if clusters < 1:
        raise InvalidParameterError(
            f"clusters must be >= 1, got {clusters}"
        )
    if spread <= 0:
        raise InvalidParameterError(f"spread must be > 0, got {spread}")
    rng = np.random.default_rng(seed)
    shape = np.array(grid.shape)
    centers = rng.uniform(0, shape, size=(clusters, grid.ndim))
    chosen: set[int] = set()
    attempts = 0
    max_attempts = 200 * count
    while len(chosen) < count and attempts < max_attempts:
        batch = count - len(chosen)
        which = rng.integers(0, clusters, size=batch)
        noise = rng.normal(0.0, spread * shape, size=(batch, grid.ndim))
        points = np.clip(np.rint(centers[which] + noise), 0,
                         shape - 1).astype(np.int64)
        for idx in np.ravel_multi_index(tuple(points.T), grid.shape):
            chosen.add(int(idx))
            if len(chosen) == count:
                break
        attempts += batch
    if len(chosen) < count:
        # Extremely dense request: fill the remainder uniformly.
        remaining = np.setdiff1d(np.arange(grid.size),
                                 np.fromiter(chosen, dtype=np.int64))
        extra = rng.choice(remaining, size=count - len(chosen),
                           replace=False)
        chosen.update(int(e) for e in extra)
    return np.sort(np.fromiter(chosen, dtype=np.int64, count=count))


def zipf_cells(grid: Grid, count: int, alpha: float = 1.2,
               seed: int = 0) -> np.ndarray:
    """``count`` distinct cells with Zipf-skewed coordinates.

    Each coordinate is drawn from a truncated Zipf-like distribution
    (probability proportional to ``1 / (1 + c)^alpha``), concentrating
    points near the origin corner the way skewed real data concentrates
    around hot regions.
    """
    _check_count(grid, count)
    if alpha <= 0:
        raise InvalidParameterError(f"alpha must be > 0, got {alpha}")
    rng = np.random.default_rng(seed)
    axis_pmfs = []
    for side in grid.shape:
        weights = 1.0 / np.power(np.arange(1, side + 1, dtype=np.float64),
                                 alpha)
        axis_pmfs.append(weights / weights.sum())
    chosen: set[int] = set()
    attempts = 0
    max_attempts = 200 * count
    while len(chosen) < count and attempts < max_attempts:
        batch = count - len(chosen)
        coords = np.stack([
            rng.choice(len(pmf), size=batch, p=pmf) for pmf in axis_pmfs
        ], axis=1)
        for idx in np.ravel_multi_index(tuple(coords.T), grid.shape):
            chosen.add(int(idx))
            if len(chosen) == count:
                break
        attempts += batch
    if len(chosen) < count:
        remaining = np.setdiff1d(np.arange(grid.size),
                                 np.fromiter(chosen, dtype=np.int64))
        extra = rng.choice(remaining, size=count - len(chosen),
                           replace=False)
        chosen.update(int(e) for e in extra)
    return np.sort(np.fromiter(chosen, dtype=np.int64, count=count))


DATASET_NAMES = ("uniform", "gaussian", "zipf")


def dataset_by_name(name: str, grid: Grid, count: int,
                    seed: int = 0) -> np.ndarray:
    """Generate a named dataset with default shape parameters."""
    if name == "uniform":
        return uniform_cells(grid, count, seed=seed)
    if name == "gaussian":
        return gaussian_cluster_cells(grid, count, seed=seed)
    if name == "zipf":
        return zipf_cells(grid, count, seed=seed)
    raise InvalidParameterError(
        f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
    )

"""Text rendering of grids, orders, and vectors."""

from repro.viz.ascii_art import render_order_path, render_ranks, render_values

__all__ = ["render_order_path", "render_ranks", "render_values"]

"""ASCII rendering of orders and values over 2-D grids.

Used by the example scripts and the Figure-1/3/4 harnesses to show orders
the way the paper draws them: a matrix of ranks laid over the grid, with
the convention that the *first grid axis is the row* (printed top to
bottom) and the second the column.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError
from repro.geometry.grid import Grid


def render_ranks(grid: Grid, ranks: np.ndarray, cell_width: int = 0) -> str:
    """The rank of every cell of a 2-D grid as an aligned text matrix."""
    if grid.ndim != 2:
        raise DimensionError(
            f"ASCII rendering needs a 2-D grid, got {grid.ndim}-D"
        )
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    matrix = ranks.reshape(grid.shape)
    width = cell_width or max(2, len(str(int(matrix.max()))))
    lines = []
    for row in matrix:
        lines.append(" ".join(f"{int(v):>{width}d}" for v in row))
    return "\n".join(lines)


def render_values(grid: Grid, values: np.ndarray,
                  precision: int = 2) -> str:
    """Real values (e.g. a Fiedler vector) over a 2-D grid."""
    if grid.ndim != 2:
        raise DimensionError(
            f"ASCII rendering needs a 2-D grid, got {grid.ndim}-D"
        )
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (grid.size,):
        raise DimensionError(
            f"values must have shape ({grid.size},), got {values.shape}"
        )
    matrix = values.reshape(grid.shape)
    width = precision + 4  # sign + digit + dot + decimals
    lines = []
    for row in matrix:
        lines.append(" ".join(f"{v:>{width}.{precision}f}" for v in row))
    return "\n".join(lines)


def render_order_path(grid: Grid, ranks: np.ndarray) -> str:
    """Arrow glyphs showing where the order goes next from each cell.

    Unit steps render as arrows; longer jumps render as ``*`` (a
    discontinuity — exactly what the boundary effect looks like).  The
    final cell renders as ``o``.
    """
    if grid.ndim != 2:
        raise DimensionError(
            f"ASCII rendering needs a 2-D grid, got {grid.ndim}-D"
        )
    ranks = np.asarray(ranks)
    perm = np.empty(grid.size, dtype=np.int64)
    perm[ranks] = np.arange(grid.size)
    glyph = {}
    arrows = {(1, 0): "v", (-1, 0): "^", (0, 1): ">", (0, -1): "<"}
    for position in range(grid.size - 1):
        here = grid.point_of(perm[position])
        there = grid.point_of(perm[position + 1])
        step = (there[0] - here[0], there[1] - here[1])
        glyph[here] = arrows.get(step, "*")
    glyph[grid.point_of(perm[grid.size - 1])] = "o"
    lines = []
    for r in range(grid.shape[0]):
        lines.append(" ".join(glyph[(r, c)] for c in range(grid.shape[1])))
    return "\n".join(lines)

"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses are raised where the distinction is actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A function argument is outside its documented domain."""


class ConfigurationError(InvalidParameterError):
    """A deployment-level configuration value is invalid.

    Raised for malformed environment overrides (e.g. the
    ``REPRO_*_CUTOFF`` tuning knobs) rather than bad function arguments:
    the fix is in the deployment, not the calling code.  Subclasses
    :class:`InvalidParameterError` so existing handlers keep working.
    """


class DimensionError(InvalidParameterError):
    """Operands have incompatible dimensionality."""


class DomainError(ReproError, ValueError):
    """A point, index, or box lies outside the grid domain."""


class GraphStructureError(ReproError):
    """A graph does not satisfy a structural precondition.

    Raised, for example, when an algorithm that requires a connected graph
    receives a disconnected one and no fallback policy is selected.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical method failed to converge.

    Carries the number of iterations performed and the residual achieved
    when available, to aid diagnosis.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class BackendUnavailableError(ReproError, ImportError):
    """A requested optional backend (e.g. scipy) cannot be imported."""


class WorkerError(ReproError, RuntimeError):
    """A serving worker process failed while handling a request.

    Raised by the multi-process dispatcher (:mod:`repro.serve`) when a
    worker reported a failure whose original exception could not be
    re-raised in the dispatching process (it did not survive pickling);
    carries the remote traceback text for diagnosis.
    """

    def __init__(self, message: str, remote_traceback: str | None = None):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class FleetShutdownError(ReproError, RuntimeError):
    """A request was dispatched to a fleet that is already shut down."""

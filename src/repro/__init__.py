"""repro — Spectral LPM, reproduced.

A from-scratch implementation of *"Spectral LPM: An Optimal
Locality-Preserving Mapping using the Spectral (not Fractal) Order"*
(Mokbel, Aref & Grama, ICDE 2003): the spectral ordering algorithm, every
fractal and non-fractal baseline it compares against, the locality metrics
and query/storage substrates of its evaluation, and harnesses that
regenerate every figure.

Quick start::

    from repro import SpectralIndex

    index = SpectralIndex.build((8, 8))      # the paper's algorithm
    ranks = index.ranks                      # rank of every cell
    hilbert = index.ranks_for("hilbert")     # a fractal baseline
    hits = index.nn((3, 3), k=8)             # rank-window k-NN

The :mod:`repro.api` facade above is the front door; every underlying
layer (mappings, service, query engine, metrics) stays importable for
surgical use.  See the ``examples/`` directory and README for more.
"""

from repro._version import __version__
from repro.api import (
    JoinQuery,
    NNQuery,
    NNResult,
    RangeQuery,
    SpectralIndex,
    as_domain,
    make_mapping,
)
from repro.core import (
    FiedlerResult,
    LinearOrder,
    SpectralConfig,
    SpectralLPM,
    add_access_pattern,
    correlated_pairs_from_trace,
    fiedler_value,
    fiedler_vector,
    order_by_values,
    spectral_order,
    weighted_radius_model,
)
from repro.errors import (
    BackendUnavailableError,
    ConvergenceError,
    DimensionError,
    DomainError,
    GraphStructureError,
    InvalidParameterError,
    ReproError,
)
from repro.geometry import Box, Grid, PointSet
from repro.graph import Graph, grid_graph
from repro.mapping import (
    MAPPING_NAMES,
    PAPER_MAPPING_NAMES,
    CurveMapping,
    LocalityMapping,
    MappingCapabilities,
    SpectralMapping,
    paper_mappings,
)
from repro.service import (
    ArtifactStore,
    OrderArtifact,
    OrderRequest,
    OrderingService,
)

__all__ = [
    "ArtifactStore",
    "BackendUnavailableError",
    "Box",
    "ConvergenceError",
    "CurveMapping",
    "DimensionError",
    "DomainError",
    "FiedlerResult",
    "Graph",
    "GraphStructureError",
    "Grid",
    "InvalidParameterError",
    "JoinQuery",
    "LinearOrder",
    "LocalityMapping",
    "MAPPING_NAMES",
    "MappingCapabilities",
    "NNQuery",
    "NNResult",
    "OrderArtifact",
    "OrderRequest",
    "OrderingService",
    "PAPER_MAPPING_NAMES",
    "PointSet",
    "RangeQuery",
    "ReproError",
    "SpectralConfig",
    "SpectralIndex",
    "SpectralLPM",
    "SpectralMapping",
    "__version__",
    "add_access_pattern",
    "as_domain",
    "correlated_pairs_from_trace",
    "fiedler_value",
    "fiedler_vector",
    "grid_graph",
    "make_mapping",
    "order_by_values",
    "paper_mappings",
    "spectral_order",
    "weighted_radius_model",
]

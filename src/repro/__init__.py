"""repro — Spectral LPM, reproduced.

A from-scratch implementation of *"Spectral LPM: An Optimal
Locality-Preserving Mapping using the Spectral (not Fractal) Order"*
(Mokbel, Aref & Grama, ICDE 2003): the spectral ordering algorithm, every
fractal and non-fractal baseline it compares against, the locality metrics
and query/storage substrates of its evaluation, and harnesses that
regenerate every figure.

Quick start::

    from repro import Grid, spectral_order, mapping_by_name

    grid = Grid((8, 8))
    order = spectral_order(grid)            # the paper's algorithm
    hilbert = mapping_by_name("hilbert")    # a fractal baseline
    ranks = hilbert.ranks_for_grid(grid)

See the ``examples/`` directory and README for more.
"""

from repro._version import __version__
from repro.core import (
    FiedlerResult,
    LinearOrder,
    SpectralConfig,
    SpectralLPM,
    add_access_pattern,
    correlated_pairs_from_trace,
    fiedler_value,
    fiedler_vector,
    order_by_values,
    spectral_order,
    weighted_radius_model,
)
from repro.errors import (
    BackendUnavailableError,
    ConvergenceError,
    DimensionError,
    DomainError,
    GraphStructureError,
    InvalidParameterError,
    ReproError,
)
from repro.geometry import Box, Grid
from repro.graph import Graph, grid_graph
from repro.mapping import (
    MAPPING_NAMES,
    PAPER_MAPPING_NAMES,
    CurveMapping,
    LocalityMapping,
    SpectralMapping,
    mapping_by_name,
    paper_mappings,
)
from repro.service import (
    ArtifactStore,
    OrderArtifact,
    OrderRequest,
    OrderingService,
)

__all__ = [
    "ArtifactStore",
    "BackendUnavailableError",
    "Box",
    "ConvergenceError",
    "CurveMapping",
    "DimensionError",
    "DomainError",
    "FiedlerResult",
    "Graph",
    "GraphStructureError",
    "Grid",
    "InvalidParameterError",
    "LinearOrder",
    "LocalityMapping",
    "MAPPING_NAMES",
    "OrderArtifact",
    "OrderRequest",
    "OrderingService",
    "PAPER_MAPPING_NAMES",
    "ReproError",
    "SpectralConfig",
    "SpectralLPM",
    "SpectralMapping",
    "__version__",
    "add_access_pattern",
    "correlated_pairs_from_trace",
    "fiedler_value",
    "fiedler_vector",
    "grid_graph",
    "mapping_by_name",
    "order_by_values",
    "paper_mappings",
    "spectral_order",
    "weighted_radius_model",
]

"""Shared thread fan-out: one worker-count rule, one map implementation.

Three layers fan work across threads — the facade's ``query_many``
(:mod:`repro.api.executor` adds the env-var policy on top), the query
engine's ``execute_workload``, and the sharded frontend's cross-shard
``order_many``.  They must agree on what a valid worker count is and on
the sequential-below-two fast path, so both live here, next to
:mod:`repro.errors`, importable from any layer without cycles.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import InvalidParameterError
from repro.obs.tracing import (
    TraceContext,
    current_context,
    tracing_enabled,
    use_context,
)

T = TypeVar("T")
R = TypeVar("R")


def _with_context(fn: Callable[[T], R],
                  ctx: TraceContext) -> Callable[[T], R]:
    """``fn`` with ``ctx`` attached for the duration of each call."""
    def wrapper(item: T) -> R:
        with use_context(ctx):
            return fn(item)
    return wrapper


def ensure_workers(parallelism: Optional[int], *,
                   name: str = "parallelism") -> int:
    """Validate a worker count: ``None`` means 1, else an int >= 1.

    Floats and bools are rejected rather than coerced — ``int(2.7)``
    silently truncating or ``True`` meaning 1 would make the same knob
    behave differently across entry points.
    """
    if parallelism is None:
        return 1
    if isinstance(parallelism, bool) or not isinstance(parallelism, int):
        raise InvalidParameterError(
            f"{name} must be an integer >= 1 or None, "
            f"got {parallelism!r}"
        )
    if parallelism < 1:
        raise InvalidParameterError(
            f"{name} must be >= 1, got {parallelism}"
        )
    return parallelism


def map_in_threads(fn: Callable[[T], R], items: Sequence[T],
                   workers: int, *,
                   thread_name_prefix: str = "repro-worker"
                   ) -> List[R]:
    """Apply ``fn`` over ``items``, results aligned with the input.

    ``workers <= 1`` (or a batch of one) runs inline — the sequential
    path stays byte-for-byte the pre-parallelism code path, with no pool
    construction.  Otherwise a private thread pool executes the items
    and the call **fails fast**: as soon as any item raises, every
    not-yet-started item is cancelled, and the raising item earliest in
    submission order propagates (deterministic even when several items
    fail concurrently).  Items already running are allowed to finish —
    threads cannot be interrupted — but a poisoned batch of K slow
    items no longer runs all K to completion before the caller hears
    about the failure.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    # Trace propagation: capture the caller's span context once at
    # submission and re-attach it in each pool thread, so spans opened
    # inside ``fn`` stitch into the caller's trace instead of starting
    # orphan traces.  Free when tracing is off (one boolean check).
    call = fn
    if tracing_enabled():
        ctx = current_context()
        if ctx is not None:
            call = _with_context(fn, ctx)
    with ThreadPoolExecutor(
            max_workers=min(int(workers), len(items)),
            thread_name_prefix=thread_name_prefix) as pool:
        futures = [pool.submit(call, item) for item in items]
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        if any(not f.cancelled() and f.exception() is not None
               for f in done):
            # Fail fast: stop queued items, let running ones drain
            # (threads cannot be interrupted), then report the failure
            # earliest in submission order — deterministic even when
            # several items fail concurrently.
            for future in not_done:
                future.cancel()
            wait(futures)
            for future in futures:
                if not future.cancelled():
                    exc = future.exception()
                    if exc is not None:
                        raise exc
        return [future.result() for future in futures]

"""Deflated power iteration.

A deliberately simple eigensolver used two ways:

* as an independent oracle in tests (its convergence theory is elementary,
  so a disagreement with Lanczos or LAPACK localizes bugs), and
* as a tiny-footprint fallback for computing a single Fiedler pair on
  small graphs.

Power iteration converges to the dominant eigenpair of an operator; to
reach the *smallest* nontrivial Laplacian eigenpair we iterate the shifted
operator ``c I - L`` (``c`` a Gershgorin upper bound on ``lambda_max``)
while continually deflating the known null vector (the constant vector)
and any other supplied directions.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError

MatVec = Callable[[np.ndarray], np.ndarray]


def deterministic_start(n: int, salt: int = 0) -> np.ndarray:
    """A fixed, generic, unit-norm start vector.

    Derived from a quasi-random sequence of vertex ids so that repeated
    runs (and different backends) see the same vector; ``salt`` yields
    alternative vectors for restarts.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    ids = np.arange(n, dtype=np.float64)
    v = np.sin(0.5 + 0.731 * ids + 0.1 * salt) + 1e-3 * np.cos(1.7 * ids)
    norm = np.linalg.norm(v)
    if norm == 0.0:  # cannot happen for n >= 1, but stay safe
        v = np.ones(n)
        norm = np.sqrt(n)
    return v / norm


def _project_out(x: np.ndarray, basis: Sequence[np.ndarray]) -> np.ndarray:
    for b in basis:
        x = x - (b @ x) * b
    return x


def power_iteration(matvec: MatVec, n: int,
                    deflate: Sequence[np.ndarray] = (),
                    tol: float = 1e-10, max_iter: int = 10000,
                    start: np.ndarray | None = None
                    ) -> Tuple[float, np.ndarray, int]:
    """Dominant eigenpair of a symmetric operator, avoiding ``deflate``.

    Parameters
    ----------
    matvec:
        The operator ``x -> A x`` (must be symmetric).
    n:
        Operator dimension.
    deflate:
        Orthonormal vectors to project out at every step (e.g. known
        eigenvectors, or the constant vector for Laplacians).
    tol:
        Convergence threshold on the residual ``||A v - theta v||``.
    max_iter:
        Iteration cap; exceeding it raises :class:`ConvergenceError`.
    start:
        Optional start vector; defaults to :func:`deterministic_start`.

    Returns
    -------
    (value, vector, iterations)
    """
    v = deterministic_start(n) if start is None else np.asarray(
        start, dtype=np.float64).copy()
    v = _project_out(v, deflate)
    norm = np.linalg.norm(v)
    if norm < 1e-13:
        v = _project_out(deterministic_start(n, salt=1), deflate)
        norm = np.linalg.norm(v)
        if norm < 1e-13:
            raise InvalidParameterError(
                "start vector lies entirely in the deflated subspace"
            )
    v /= norm
    theta = 0.0
    for iteration in range(1, max_iter + 1):
        w = matvec(v)
        w = _project_out(w, deflate)
        theta = float(v @ w)
        residual = np.linalg.norm(w - theta * v)
        scale = max(abs(theta), 1.0)
        if residual <= tol * scale:
            return theta, v, iteration
        norm = np.linalg.norm(w)
        if norm < 1e-300:
            # The operator annihilated v: theta is (numerically) zero and
            # v is already an eigenvector of the deflated operator.
            return theta, v, iteration
        v = w / norm
    raise ConvergenceError(
        f"power iteration did not converge in {max_iter} iterations",
        iterations=max_iter,
        residual=float(residual),
    )

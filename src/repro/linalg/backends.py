"""Eigensolver backend registry.

The Fiedler pipeline needs "the ``k`` smallest eigenpairs of a symmetric
PSD sparse matrix".  Three interchangeable backends provide it:

``dense``
    ``numpy.linalg.eigh`` on the dense matrix.  Exact and simple; the
    right choice up to a few thousand vertices and the reference oracle
    for the others.
``lanczos``
    Our shift-and-deflate Lanczos (:mod:`repro.linalg.lanczos`).  Pure
    numpy, scales to large sparse graphs.
``scipy``
    ``scipy.sparse.linalg.eigsh`` in shift-invert mode, when scipy is
    importable.  Fastest for large graphs.

``auto`` picks ``dense`` for small matrices, then ``scipy`` if available,
then ``lanczos``.  All backends return eigenvalues in ascending order with
orthonormal eigenvector columns; all are cross-validated in the test
suite.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import BackendUnavailableError, InvalidParameterError
from repro.linalg.lanczos import smallest_eigenpairs_shifted
from repro.linalg.sparse import CSRMatrix

#: Matrices at or below this size use the dense path under ``auto``.
DENSE_CUTOFF = 1024

BACKENDS = ("auto", "dense", "lanczos", "scipy")


def scipy_available() -> bool:
    """Whether the optional scipy backend can be imported."""
    try:
        import scipy.sparse.linalg  # noqa: F401
    except ImportError:
        return False
    return True


def _smallest_dense(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    dense = matrix.to_dense()
    # Deflation by spectral shifting: push deflated directions to the top
    # of the spectrum so the bottom-k are the wanted pairs.
    if deflate:
        shift = matrix.gershgorin_upper_bound() + 1.0
        for d in deflate:
            dense = dense + shift * np.outer(d, d)
    values, vectors = np.linalg.eigh(dense)
    return values[:k], vectors[:, :k]


def _smallest_lanczos(matrix: CSRMatrix, k: int,
                      deflate: Sequence[np.ndarray]
                      ) -> Tuple[np.ndarray, np.ndarray]:
    bound = matrix.gershgorin_upper_bound()
    return smallest_eigenpairs_shifted(
        matrix.matvec, matrix.n, k, upper_bound=bound, deflate=deflate
    )


def _smallest_scipy(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    try:
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla
    except ImportError as exc:  # pragma: no cover - exercised via mock
        raise BackendUnavailableError(
            "scipy backend requested but scipy is not importable"
        ) from exc
    a = sp.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )
    if deflate:
        shift = matrix.gershgorin_upper_bound() + 1.0
        for d in deflate:
            col = sp.csr_matrix(d.reshape(-1, 1))
            a = a + shift * (col @ col.T)
    n = matrix.n
    if k >= n - 1:
        # eigsh requires k < n; fall back to dense for tiny systems.
        # (The deflation must carry over — dropping it would let the
        # deflated directions back into the bottom of the spectrum.)
        return _smallest_dense(matrix, k, deflate)
    # Shift-invert around a point slightly below the spectrum: the matrix
    # (A - sigma I) is then definite and the smallest eigenvalues map to
    # the largest of the inverted operator.
    scale = max(matrix.gershgorin_upper_bound(), 1.0)
    sigma = -1e-3 * scale
    values, vectors = spla.eigsh(a, k=k, sigma=sigma, which="LM")
    order = np.argsort(values)
    return values[order], vectors[:, order]


def smallest_eigenpairs(matrix: CSRMatrix, k: int, backend: str = "auto",
                        deflate: Sequence[np.ndarray] = ()
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest eigenpairs of a symmetric PSD CSR matrix.

    Parameters
    ----------
    matrix:
        Symmetric positive semi-definite matrix (e.g. a graph Laplacian).
    k:
        Number of wanted pairs, ``1 <= k <= n``.
    backend:
        One of :data:`BACKENDS`.
    deflate:
        Orthonormal directions to exclude from the spectrum (the constant
        vector, for connected-Laplacian Fiedler computations).  Deflated
        directions are pushed above the returned window, so the result is
        the bottom of the spectrum *of the deflated operator*.

    Returns
    -------
    (values, vectors):
        Ascending eigenvalues and matching orthonormal eigenvector
        columns.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    n = matrix.n
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
    if len(deflate) and any(d.shape != (n,) for d in deflate):
        raise InvalidParameterError("deflate vectors must have length n")

    if backend == "auto":
        if n <= DENSE_CUTOFF or k >= n - 1:
            backend = "dense"
        elif scipy_available():
            backend = "scipy"
        else:
            backend = "lanczos"

    if backend == "dense":
        return _smallest_dense(matrix, k, deflate)
    if backend == "lanczos":
        if k > n - len(deflate):
            return _smallest_dense(matrix, k, deflate)
        return _smallest_lanczos(matrix, k, deflate)
    return _smallest_scipy(matrix, k, deflate)

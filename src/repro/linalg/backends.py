"""Eigensolver backend registry.

The Fiedler pipeline needs "the ``k`` smallest eigenpairs of a symmetric
PSD sparse matrix".  Four interchangeable backends provide it:

``dense``
    ``numpy.linalg.eigh`` on the dense matrix.  Exact and simple; the
    right choice up to a few thousand vertices and the reference oracle
    for the others.
``lanczos``
    Our thick-restart Lanczos (:mod:`repro.linalg.lanczos`).  Pure
    numpy, BLAS-level reorthogonalization, scales to large sparse
    graphs.
``scipy``
    ``scipy.sparse.linalg.eigsh`` in shift-invert mode, when scipy is
    importable.  Fastest exact option for large graphs.  Deflation is
    matrix-free: the rank-``p`` spectral shift is folded into the
    shift-invert operator with the Woodbury identity, so the sparse
    factorization never sees an ``n x n`` dense update.
``multilevel``
    Coarsen-solve-refine approximation
    (:mod:`repro.core.multilevel`).  It needs the *graph*, not just the
    matrix, so it is dispatched by
    :func:`repro.core.fiedler.fiedler_vector` rather than by
    :func:`smallest_eigenpairs`; requesting it here raises with a
    pointer to the right entry point.  Results carry a documented
    quality tolerance instead of solver-precision guarantees.

Backend selection under ``auto``
--------------------------------
* ``n <= DENSE_CUTOFF`` (or ``k`` close to ``n``): ``dense``.
* larger matrices: ``scipy`` when importable, else ``lanczos``.
* graphs above ``MULTILEVEL_CUTOFF`` vertices (only via
  :func:`~repro.core.fiedler.fiedler_vector`, which sees the graph):
  ``multilevel`` with a quality check — the approximate pair is accepted
  only when its relative residual is within the configured tolerance,
  otherwise the exact path runs.

Both cutoffs are hardware policy, not algorithmic constants — the
crossover points move with BLAS quality, core count, and whether scipy
is installed.  They can be overridden per deployment through the
environment variables ``REPRO_DENSE_CUTOFF`` and
``REPRO_MULTILEVEL_CUTOFF`` (positive integers, validated at import).

All backends return eigenvalues in ascending order with orthonormal
eigenvector columns; all are cross-validated in the test suite.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence, Tuple

import numpy as np

from repro.errors import BackendUnavailableError, InvalidParameterError
from repro.linalg.lanczos import smallest_eigenpairs_shifted
from repro.linalg.operators import DeflatedOperator, deflation_matrix
from repro.linalg.sparse import CSRMatrix


def cutoff_from_env(name: str, default: int) -> int:
    """Resolve a backend cutoff from the environment, with validation.

    Absent or empty variables yield ``default``; anything else must parse
    as a positive integer or :class:`~repro.errors.InvalidParameterError`
    is raised (a silently ignored typo in a tuning knob is worse than a
    loud startup failure).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return int(default)
    try:
        value = int(raw.strip())
    except ValueError:
        raise InvalidParameterError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise InvalidParameterError(
            f"{name} must be a positive integer, got {value}"
        )
    return value


#: Matrices at or below this size use the dense path under ``auto``.
#: Overridable via the ``REPRO_DENSE_CUTOFF`` environment variable.
DENSE_CUTOFF = cutoff_from_env("REPRO_DENSE_CUTOFF", 1024)

#: Graphs above this many vertices use the multilevel approximation under
#: ``auto`` (subject to its quality check).  Only meaningful at the
#: :func:`repro.core.fiedler.fiedler_vector` level, where the graph
#: structure needed for coarsening is still available.  Overridable via
#: the ``REPRO_MULTILEVEL_CUTOFF`` environment variable.
MULTILEVEL_CUTOFF = cutoff_from_env("REPRO_MULTILEVEL_CUTOFF", 131_072)

#: Default relative-residual tolerance for accepting a multilevel result
#: under ``auto`` (``||L y - theta y|| <= tol * theta``).
MULTILEVEL_QUALITY_RTOL = 0.05

BACKENDS = ("auto", "dense", "lanczos", "scipy", "multilevel")

# Process-wide count of eigensolver invocations.  The ordering service's
# contract — "a warm cache pays zero eigensolves" — is asserted against
# the delta of this counter, which every backend path below increments.
_SOLVER_INVOCATIONS = 0

# Guards the global counter's read-modify-write: concurrent solves are
# a supported mode (the ordering service's single-flight runs distinct
# keys in parallel) and tests assert exact deltas.
_COUNTER_LOCK = threading.Lock()

# Per-thread tally, incremented in lock-step with the global counter.
# Delta measurements taken *around a synchronous solve* must use this
# one: under the ordering service's single-flight concurrency, solves on
# distinct keys run in parallel, so a global-counter delta would charge
# each computation with every other thread's invocations too.
_THREAD_TALLY = threading.local()


def solver_invocations() -> int:
    """How many :func:`smallest_eigenpairs` solves this process has run.

    A monotone counter (never reset) intended for delta assertions:
    record it, run the operation under test, and compare.  Cache layers
    use it to *prove* a warm path never reached an eigensolver.
    """
    return _SOLVER_INVOCATIONS


def thread_solver_invocations() -> int:
    """Like :func:`solver_invocations`, but counting this thread only.

    The right baseline for attributing invocations to one synchronous
    computation when other threads may be solving concurrently (e.g.
    the ordering service's per-artifact ``solver_calls`` provenance).
    """
    return getattr(_THREAD_TALLY, "count", 0)


def scipy_available() -> bool:
    """Whether the optional scipy backend can be imported."""
    try:
        import scipy.sparse.linalg  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_auto(n: int, k: int = 1) -> str:
    """The concrete matrix backend ``auto`` selects for an (n, k) solve.

    The single source of truth for the policy — callers that need to
    know the resolved backend up front (e.g. the Fiedler pipeline's
    eigenspace closure, which behaves differently per backend) must use
    this rather than re-deriving the rules.
    """
    if n <= DENSE_CUTOFF or k >= n - 1:
        return "dense"
    if scipy_available():
        return "scipy"
    return "lanczos"


def _smallest_dense(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    dense = matrix.to_dense()
    # Deflation by spectral shifting: push deflated directions to the top
    # of the spectrum so the bottom-k are the wanted pairs.
    if len(deflate):
        shift = matrix.gershgorin_upper_bound() + 1.0
        for d in deflate:
            dense = dense + shift * np.outer(d, d)
    values, vectors = np.linalg.eigh(dense)
    return values[:k], vectors[:, :k]


def _smallest_lanczos(matrix: CSRMatrix, k: int,
                      deflate: Sequence[np.ndarray]
                      ) -> Tuple[np.ndarray, np.ndarray]:
    bound = matrix.gershgorin_upper_bound()
    return smallest_eigenpairs_shifted(
        matrix.matvec, matrix.n, k, upper_bound=bound, deflate=deflate
    )


def _smallest_scipy(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    try:
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla
    except ImportError as exc:  # pragma: no cover - exercised via mock
        raise BackendUnavailableError(
            "scipy backend requested but scipy is not importable"
        ) from exc
    a = sp.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )
    n = matrix.n
    if k >= n - 1:
        # eigsh requires k < n; fall back to dense for tiny systems.
        # (The deflation must carry over — dropping it would let the
        # deflated directions back into the bottom of the spectrum.)
        return _smallest_dense(matrix, k, deflate)
    # Shift-invert around a point slightly below the spectrum: the matrix
    # (A - sigma I) is then definite and the smallest eigenvalues map to
    # the largest of the inverted operator.
    scale = max(matrix.gershgorin_upper_bound(), 1.0)
    sigma = -1e-3 * scale
    if not len(deflate):
        values, vectors = spla.eigsh(a, k=k, sigma=sigma, which="LM")
    else:
        # Deflation without densification.  The deflated operator is
        # ``B = A + shift * D D^T`` (deflated directions pushed above the
        # window).  Forming ``D D^T`` — even "sparsely" — materializes an
        # n x n dense block for the constant vector, so instead the
        # rank-p update is folded into the *inverse* with the Woodbury
        # identity:
        #
        #   B - sigma I = M + shift D D^T,   M = A - sigma I  (sparse!)
        #   (B - sigma I)^-1 x
        #       = M^-1 x - Z (I/shift + D^T Z)^-1 Z^T x,  Z = M^-1 D.
        #
        # One sparse factorization of M plus p extra solves, and eigsh
        # runs entirely matrix-free.
        d = deflation_matrix(deflate, n)
        p = d.shape[1]
        shift = matrix.gershgorin_upper_bound() + 1.0
        m_factor = spla.splu((a - sigma * sp.identity(n)).tocsc())
        z = m_factor.solve(d)
        capacitance = np.linalg.inv(np.eye(p) / shift + d.T @ z)
        # The operator handed to eigsh is the matrix-free deflated one;
        # ARPACK's shift-invert mode iterates OPinv exclusively (the A
        # operand's matvec is never applied for a standard problem), and
        # on the complement of the deflated directions the two agree
        # exactly.
        b_op = DeflatedOperator(matrix.matvec, n, deflate=d,
                                shift=shift).to_scipy_linear_operator()

        def b_shift_inv(x: np.ndarray) -> np.ndarray:
            y = m_factor.solve(x)
            return y - z @ (capacitance @ (z.T @ x))

        op_inv = spla.LinearOperator((n, n), matvec=b_shift_inv,
                                     dtype=np.float64)
        values, vectors = spla.eigsh(b_op, k=k, sigma=sigma, which="LM",
                                     OPinv=op_inv)
    order = np.argsort(values)
    return values[order], vectors[:, order]


def smallest_eigenpairs(matrix: CSRMatrix, k: int, backend: str = "auto",
                        deflate: Sequence[np.ndarray] = ()
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest eigenpairs of a symmetric PSD CSR matrix.

    Parameters
    ----------
    matrix:
        Symmetric positive semi-definite matrix (e.g. a graph Laplacian).
    k:
        Number of wanted pairs, ``1 <= k <= n``.
    backend:
        One of :data:`BACKENDS`.  ``"multilevel"`` is graph-based and
        only available through
        :func:`repro.core.fiedler.fiedler_vector`; requesting it here
        raises :class:`~repro.errors.InvalidParameterError`.
    deflate:
        Orthonormal directions to exclude from the spectrum (the constant
        vector, for connected-Laplacian Fiedler computations).  Deflated
        directions are pushed above the returned window, so the result is
        the bottom of the spectrum *of the deflated operator*.

    Returns
    -------
    (values, vectors):
        Ascending eigenvalues and matching orthonormal eigenvector
        columns.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "multilevel":
        raise InvalidParameterError(
            "the 'multilevel' backend needs the graph, not just its "
            "matrix; use repro.core.fiedler.fiedler_vector("
            "graph, backend='multilevel') or SpectralLPM("
            "backend='multilevel')"
        )
    n = matrix.n
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
    if len(deflate) and any(d.shape != (n,) for d in deflate):
        raise InvalidParameterError("deflate vectors must have length n")

    global _SOLVER_INVOCATIONS
    with _COUNTER_LOCK:
        _SOLVER_INVOCATIONS += 1
    _THREAD_TALLY.count = getattr(_THREAD_TALLY, "count", 0) + 1

    if backend == "auto":
        backend = resolve_auto(n, k)

    if backend == "dense":
        return _smallest_dense(matrix, k, deflate)
    if backend == "lanczos":
        if k > n - len(deflate):
            return _smallest_dense(matrix, k, deflate)
        return _smallest_lanczos(matrix, k, deflate)
    return _smallest_scipy(matrix, k, deflate)

"""Eigensolver backend registry.

The Fiedler pipeline needs "the ``k`` smallest eigenpairs of a symmetric
PSD sparse matrix".  Six interchangeable backends provide it:

``dense``
    ``numpy.linalg.eigh`` on the dense matrix.  Exact and simple; the
    right choice up to a few thousand vertices and the reference oracle
    for the others.
``lanczos``
    Our thick-restart Lanczos (:mod:`repro.linalg.lanczos`).  Pure
    numpy, BLAS-level reorthogonalization, scales to large sparse
    graphs; iteration count grows like ``O(sqrt(lambda_max/lambda_2))``
    on the clustered bottom spectra Laplacians have.
``shift_invert``
    Inner-outer shift-invert Lanczos, pure numpy: the outer Lanczos
    iterates ``(A - sigma I)^{-1}`` with each application an inner
    deflated-CG solve (:mod:`repro.linalg.cg`), preconditioned by the
    multilevel V-cycle when the matrix is recognisably a graph
    Laplacian.  ``O(1)``-ish outer iterations; the ARPACK trick without
    ARPACK.
``lobpcg``
    Blocked LOBPCG (:mod:`repro.linalg.lobpcg`) preconditioned by the
    same multilevel V-cycle
    (:class:`repro.core.multilevel.MultilevelPreconditioner`).  The
    fastest pure-numpy option on large Laplacians.
``scipy``
    ``scipy.sparse.linalg.eigsh`` in shift-invert mode, when scipy is
    importable.  Fastest exact option for large graphs.  Deflation is
    matrix-free: the rank-``p`` spectral shift is folded into the
    shift-invert operator with the Woodbury identity, so the sparse
    factorization never sees an ``n x n`` dense update.
``multilevel``
    Coarsen-solve-refine approximation
    (:mod:`repro.core.multilevel`).  It needs the *graph*, not just the
    matrix, so it is dispatched by
    :func:`repro.core.fiedler.fiedler_vector` rather than by
    :func:`smallest_eigenpairs`; requesting it here raises with a
    pointer to the right entry point.  Results carry a documented
    quality tolerance instead of solver-precision guarantees.

``shift_invert`` and ``lobpcg`` are exact-accuracy backends with a
safety net: when a solve misses its residual tolerance (bad
preconditioner fit, non-Laplacian input, loss of definiteness in the
inner CG) they *fall back to the plain Lanczos path* instead of
returning an unverified pair — the same miss-tolerance-then-fall-back
contract the multilevel quality gate implements at the Fiedler level.

Backend selection under ``auto``
--------------------------------
* ``n <= DENSE_CUTOFF`` (or ``k`` close to ``n``): ``dense``.
* larger matrices: ``scipy`` when importable; otherwise ``lobpcg``
  above ``LOBPCG_CUTOFF`` (where preconditioned iteration beats the
  flat Lanczos sweep) and ``lanczos`` in between.
* graphs above ``MULTILEVEL_CUTOFF`` vertices (only via
  :func:`~repro.core.fiedler.fiedler_vector`, which sees the graph):
  ``multilevel`` with a quality check — the approximate pair is accepted
  only when its relative residual is within the configured tolerance,
  otherwise the exact path runs.

The cutoffs are hardware policy, not algorithmic constants — the
crossover points move with BLAS quality, core count, and whether scipy
is installed.  They can be overridden per deployment through the
environment variables ``REPRO_DENSE_CUTOFF``,
``REPRO_LOBPCG_CUTOFF`` and ``REPRO_MULTILEVEL_CUTOFF`` (positive
integers, validated at import).

All backends return eigenvalues in ascending order with orthonormal
eigenvector columns; all are cross-validated in the test suite.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence, Tuple

import numpy as np

from repro.errors import (
    BackendUnavailableError,
    ConfigurationError,
    ConvergenceError,
    InvalidParameterError,
)
from repro.linalg.lanczos import (
    smallest_eigenpairs_shift_invert,
    smallest_eigenpairs_shifted,
)
from repro.linalg.lobpcg import smallest_eigenpairs_lobpcg
from repro.linalg.operators import DeflatedOperator, deflation_matrix
from repro.linalg.sparse import CSRMatrix
from repro.obs import Timer, registry, span

# Solve latency by *resolved* backend (``auto`` is resolved before the
# observation, so the label always names the algorithm that ran).
_SOLVE_SECONDS = registry().histogram(
    "repro_linalg_solve_seconds",
    "smallest_eigenpairs latency by resolved backend.")


def cutoff_from_env(name: str, default: int) -> int:
    """Resolve a backend cutoff from the environment, with validation.

    Absent or empty variables yield ``default``; anything else must parse
    as a positive integer or :class:`~repro.errors.ConfigurationError`
    is raised (a silently ignored typo in a tuning knob is worse than a
    loud startup failure).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return int(default)
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{name} must be a positive integer, got {value}"
        )
    return value


#: Matrices at or below this size use the dense path under ``auto``.
#: Overridable via the ``REPRO_DENSE_CUTOFF`` environment variable.
DENSE_CUTOFF = cutoff_from_env("REPRO_DENSE_CUTOFF", 1024)

#: Without scipy, matrices above this size use the preconditioned LOBPCG
#: backend under ``auto`` instead of plain Lanczos: that is the regime
#: where the multilevel preconditioner's O(1) iteration count beats the
#: flat Lanczos sweep by more than the hierarchy-construction overhead
#: costs.  Overridable via the ``REPRO_LOBPCG_CUTOFF`` environment
#: variable.
LOBPCG_CUTOFF = cutoff_from_env("REPRO_LOBPCG_CUTOFF", 4096)

#: Graphs above this many vertices use the multilevel approximation under
#: ``auto`` (subject to its quality check).  Only meaningful at the
#: :func:`repro.core.fiedler.fiedler_vector` level, where the graph
#: structure needed for coarsening is still available.  Overridable via
#: the ``REPRO_MULTILEVEL_CUTOFF`` environment variable.
MULTILEVEL_CUTOFF = cutoff_from_env("REPRO_MULTILEVEL_CUTOFF", 131_072)

#: Default relative-residual tolerance for accepting a multilevel result
#: under ``auto`` (``||L y - theta y|| <= tol * theta``).
MULTILEVEL_QUALITY_RTOL = 0.05

#: Default residual tolerance of the iterative exact backends (relative
#: to the spectrum's Gershgorin scale) when no explicit ``tol`` is given.
DEFAULT_SOLVER_TOL = 1e-9

BACKENDS = ("auto", "dense", "lanczos", "shift_invert", "lobpcg",
            "scipy", "multilevel")

# Process-wide count of eigensolver invocations.  The ordering service's
# contract — "a warm cache pays zero eigensolves" — is asserted against
# the delta of this counter, which every backend path below increments.
_SOLVER_INVOCATIONS = 0

# Guards the global counter's read-modify-write: concurrent solves are
# a supported mode (the ordering service's single-flight runs distinct
# keys in parallel) and tests assert exact deltas.
_COUNTER_LOCK = threading.Lock()

# Per-thread tally, incremented in lock-step with the global counter.
# Delta measurements taken *around a synchronous solve* must use this
# one: under the ordering service's single-flight concurrency, solves on
# distinct keys run in parallel, so a global-counter delta would charge
# each computation with every other thread's invocations too.
_THREAD_TALLY = threading.local()


def solver_invocations() -> int:
    """How many :func:`smallest_eigenpairs` solves this process has run.

    A monotone counter (never reset) intended for delta assertions:
    record it, run the operation under test, and compare.  Cache layers
    use it to *prove* a warm path never reached an eigensolver.
    """
    return _SOLVER_INVOCATIONS


def thread_solver_invocations() -> int:
    """Like :func:`solver_invocations`, but counting this thread only.

    The right baseline for attributing invocations to one synchronous
    computation when other threads may be solving concurrently (e.g.
    the ordering service's per-artifact ``solver_calls`` provenance).
    """
    return getattr(_THREAD_TALLY, "count", 0)


def scipy_available() -> bool:
    """Whether the optional scipy backend can be imported."""
    try:
        import scipy.sparse.linalg  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_auto(n: int, k: int = 1) -> str:
    """The concrete matrix backend ``auto`` selects for an (n, k) solve.

    The single source of truth for the policy — callers that need to
    know the resolved backend up front (e.g. the Fiedler pipeline's
    eigenspace closure, which behaves differently per backend) must use
    this rather than re-deriving the rules.
    """
    if n <= DENSE_CUTOFF or k >= n - 1:
        return "dense"
    if scipy_available():
        return "scipy"
    if n > LOBPCG_CUTOFF:
        return "lobpcg"
    return "lanczos"


def _smallest_dense(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    dense = matrix.to_dense()
    # Deflation by spectral shifting: push deflated directions to the top
    # of the spectrum so the bottom-k are the wanted pairs.
    if len(deflate):
        shift = matrix.gershgorin_upper_bound() + 1.0
        for d in deflate:
            dense = dense + shift * np.outer(d, d)
    values, vectors = np.linalg.eigh(dense)
    return values[:k], vectors[:, :k]


def _smallest_lanczos(matrix: CSRMatrix, k: int,
                      deflate: Sequence[np.ndarray],
                      tol: float = DEFAULT_SOLVER_TOL,
                      stats: dict | None = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    bound = matrix.gershgorin_upper_bound()
    return smallest_eigenpairs_shifted(
        matrix.matvec, matrix.n, k, upper_bound=bound, deflate=deflate,
        tol=tol, stats=stats
    )


# Hierarchy construction costs ~1s at 256^2 while a Fiedler solve calls
# smallest_eigenpairs several times on the *same* Laplacian (the k=4
# probe solve plus one deflated k=1 solve per degenerate direction), so
# preconditioners are memoized on matrix content.  Keyed by a digest of
# the CSR arrays rather than object identity: CSRMatrix is slotted
# (no weakrefs), id() recycles, and content keys also share work across
# equal matrices built independently.  Bounded FIFO; guarded by its own
# lock (hierarchies are immutable once built, so sharing is safe).
_PRECONDITIONER_CACHE: "dict[tuple, object]" = {}
_PRECONDITIONER_CACHE_SIZE = 4
_PRECONDITIONER_LOCK = threading.Lock()
_PRECONDITIONER_MISS = object()


def _matrix_content_key(matrix: CSRMatrix) -> tuple:
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
    digest.update(np.ascontiguousarray(matrix.indices).tobytes())
    digest.update(np.ascontiguousarray(matrix.data).tobytes())
    return (matrix.n, matrix.nnz, digest.hexdigest())


def multilevel_preconditioner_for(matrix: CSRMatrix):
    """A multilevel V-cycle preconditioner for ``matrix``, when it is one.

    Recognises graph Laplacians
    (:func:`repro.graph.laplacian.graph_from_laplacian`) and builds the
    :class:`~repro.core.multilevel.MultilevelPreconditioner` on the
    recovered graph; returns ``None`` for anything else, so the
    preconditioned backends degrade gracefully to unpreconditioned
    iteration on general SPD input.  Results (including the ``None``
    verdict) are cached on matrix content, so the repeated solves of a
    single Fiedler computation pay the hierarchy construction once.
    """
    key = _matrix_content_key(matrix)
    with _PRECONDITIONER_LOCK:
        cached = _PRECONDITIONER_CACHE.get(key, _PRECONDITIONER_MISS)
    if cached is not _PRECONDITIONER_MISS:
        return cached

    # Lazy imports: repro.core.multilevel imports this module at load
    # time, and the graph package is above linalg in the layer order.
    from repro.graph.laplacian import graph_from_laplacian

    graph = graph_from_laplacian(matrix)
    if graph is None or graph.num_vertices < 2:
        preconditioner = None
    else:
        from repro.core.multilevel import MultilevelPreconditioner

        try:
            preconditioner = MultilevelPreconditioner(graph)
        except (InvalidParameterError, np.linalg.LinAlgError):
            preconditioner = None
    with _PRECONDITIONER_LOCK:
        while len(_PRECONDITIONER_CACHE) >= _PRECONDITIONER_CACHE_SIZE:
            _PRECONDITIONER_CACHE.pop(next(iter(_PRECONDITIONER_CACHE)))
        _PRECONDITIONER_CACHE[key] = preconditioner
    return preconditioner


def _smallest_shift_invert(matrix: CSRMatrix, k: int,
                           deflate: Sequence[np.ndarray],
                           tol: float = DEFAULT_SOLVER_TOL,
                           stats: dict | None = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
    bound = matrix.gershgorin_upper_bound()
    preconditioner = multilevel_preconditioner_for(matrix)
    cycles_before = getattr(preconditioner, "cycles", 0)
    try:
        return smallest_eigenpairs_shift_invert(
            matrix.matvec, matrix.n, k, upper_bound=bound,
            deflate=deflate, tol=tol,
            preconditioner=preconditioner, stats=stats,
        )
    except ConvergenceError:
        # Miss-tolerance-falls-back contract: the inner-outer iteration
        # could not certify the pairs (singular unprojected nullspace,
        # indefinite shift, inexact inner solves); the flat Lanczos
        # sweep is slower but assumption-free.
        if stats is not None:
            stats["fallback"] = "lanczos"
        return _smallest_lanczos(matrix, k, deflate, tol, stats=stats)
    finally:
        if stats is not None and preconditioner is not None:
            stats["v_cycles"] = preconditioner.cycles - cycles_before


def _smallest_lobpcg(matrix: CSRMatrix, k: int,
                     deflate: Sequence[np.ndarray],
                     tol: float = DEFAULT_SOLVER_TOL,
                     x0: np.ndarray | None = None,
                     stats: dict | None = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
    bound = matrix.gershgorin_upper_bound()
    preconditioner = multilevel_preconditioner_for(matrix)
    cycles_before = getattr(preconditioner, "cycles", 0)
    try:
        return smallest_eigenpairs_lobpcg(
            matrix.matvec, matrix.n, k, upper_bound=bound,
            deflate=deflate, tol=tol, matmat=matrix.matmat, x0=x0,
            preconditioner=preconditioner, stats=stats,
        )
    except ConvergenceError:
        # Same fall-back contract as _smallest_shift_invert.
        if stats is not None:
            stats["fallback"] = "lanczos"
        return _smallest_lanczos(matrix, k, deflate, tol, stats=stats)
    finally:
        if stats is not None and preconditioner is not None:
            stats["v_cycles"] = preconditioner.cycles - cycles_before


def _smallest_scipy(matrix: CSRMatrix, k: int,
                    deflate: Sequence[np.ndarray]
                    ) -> Tuple[np.ndarray, np.ndarray]:
    try:
        import scipy.sparse as sp
        import scipy.sparse.linalg as spla
    except ImportError as exc:  # pragma: no cover - exercised via mock
        raise BackendUnavailableError(
            "scipy backend requested but scipy is not importable"
        ) from exc
    a = sp.csr_matrix(
        (matrix.data, matrix.indices, matrix.indptr), shape=matrix.shape
    )
    n = matrix.n
    if k >= n - 1:
        # eigsh requires k < n; fall back to dense for tiny systems.
        # (The deflation must carry over — dropping it would let the
        # deflated directions back into the bottom of the spectrum.)
        return _smallest_dense(matrix, k, deflate)
    # Shift-invert around a point slightly below the spectrum: the matrix
    # (A - sigma I) is then definite and the smallest eigenvalues map to
    # the largest of the inverted operator.
    scale = max(matrix.gershgorin_upper_bound(), 1.0)
    sigma = -1e-3 * scale
    if not len(deflate):
        values, vectors = spla.eigsh(a, k=k, sigma=sigma, which="LM")
    else:
        # Deflation without densification.  The deflated operator is
        # ``B = A + shift * D D^T`` (deflated directions pushed above the
        # window).  Forming ``D D^T`` — even "sparsely" — materializes an
        # n x n dense block for the constant vector, so instead the
        # rank-p update is folded into the *inverse* with the Woodbury
        # identity:
        #
        #   B - sigma I = M + shift D D^T,   M = A - sigma I  (sparse!)
        #   (B - sigma I)^-1 x
        #       = M^-1 x - Z (I/shift + D^T Z)^-1 Z^T x,  Z = M^-1 D.
        #
        # One sparse factorization of M plus p extra solves, and eigsh
        # runs entirely matrix-free.
        d = deflation_matrix(deflate, n)
        p = d.shape[1]
        shift = matrix.gershgorin_upper_bound() + 1.0
        m_factor = spla.splu((a - sigma * sp.identity(n)).tocsc())
        z = m_factor.solve(d)
        capacitance = np.linalg.inv(np.eye(p) / shift + d.T @ z)
        # The operator handed to eigsh is the matrix-free deflated one;
        # ARPACK's shift-invert mode iterates OPinv exclusively (the A
        # operand's matvec is never applied for a standard problem), and
        # on the complement of the deflated directions the two agree
        # exactly.
        b_op = DeflatedOperator(matrix.matvec, n, deflate=d,
                                shift=shift).to_scipy_linear_operator()

        def b_shift_inv(x: np.ndarray) -> np.ndarray:
            y = m_factor.solve(x)
            return y - z @ (capacitance @ (z.T @ x))

        op_inv = spla.LinearOperator((n, n), matvec=b_shift_inv,
                                     dtype=np.float64)
        values, vectors = spla.eigsh(b_op, k=k, sigma=sigma, which="LM",
                                     OPinv=op_inv)
    order = np.argsort(values)
    return values[order], vectors[:, order]


def smallest_eigenpairs(matrix: CSRMatrix, k: int, backend: str = "auto",
                        deflate: Sequence[np.ndarray] = (),
                        tol: float | None = None,
                        x0: np.ndarray | None = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest eigenpairs of a symmetric PSD CSR matrix.

    Parameters
    ----------
    matrix:
        Symmetric positive semi-definite matrix (e.g. a graph Laplacian).
    k:
        Number of wanted pairs, ``1 <= k <= n``.
    backend:
        One of :data:`BACKENDS`.  ``"multilevel"`` is graph-based and
        only available through
        :func:`repro.core.fiedler.fiedler_vector`; requesting it here
        raises :class:`~repro.errors.InvalidParameterError`.
    deflate:
        Orthonormal directions to exclude from the spectrum (the constant
        vector, for connected-Laplacian Fiedler computations).  Deflated
        directions are pushed above the returned window, so the result is
        the bottom of the spectrum *of the deflated operator*.
    tol:
        Residual tolerance of the iterative in-house backends
        (``lanczos``, ``shift_invert``, ``lobpcg``), relative to the
        spectrum's Gershgorin scale; ``None`` means
        :data:`DEFAULT_SOLVER_TOL`.  The ``dense`` and ``scipy``
        backends solve to machine/ARPACK precision regardless, so
        passing a tolerance never perturbs their bit-exact results.
    x0:
        Optional warm-start columns for the ``lobpcg`` backend (an
        advisory hint: good guesses collapse the iteration count, bad
        ones cost nothing but the projection).  The other backends
        solve from their own deterministic starts and ignore it.

    Returns
    -------
    (values, vectors):
        Ascending eigenvalues and matching orthonormal eigenvector
        columns.
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "multilevel":
        raise InvalidParameterError(
            "the 'multilevel' backend needs the graph, not just its "
            "matrix; use repro.core.fiedler.fiedler_vector("
            "graph, backend='multilevel') or SpectralLPM("
            "backend='multilevel')"
        )
    n = matrix.n
    if not 1 <= k <= n:
        raise InvalidParameterError(f"k must be in [1, {n}], got {k}")
    if len(deflate) and any(d.shape != (n,) for d in deflate):
        raise InvalidParameterError("deflate vectors must have length n")
    if tol is None:
        tol = DEFAULT_SOLVER_TOL
    elif tol <= 0:
        raise InvalidParameterError(f"tol must be > 0, got {tol}")

    global _SOLVER_INVOCATIONS
    with _COUNTER_LOCK:
        _SOLVER_INVOCATIONS += 1
    _THREAD_TALLY.count = getattr(_THREAD_TALLY, "count", 0) + 1

    if backend == "auto":
        backend = resolve_auto(n, k)

    # One span per solver invocation, attributed with the iterative
    # backends' diagnostics.  The stats dict is only allocated (and
    # threaded through the solver) while a trace is recording, so the
    # disabled-tracing path pays a single boolean check.
    sp = span("linalg.solve", backend=backend, n=n, k=k)
    stats: dict | None = {} if sp.is_recording else None
    with sp, Timer() as timer:
        try:
            pairs = _run_backend(matrix, k, backend, deflate, tol, x0,
                                 stats)
        finally:
            if stats:
                for name, value in stats.items():
                    sp.set_attribute(name, value)
    _SOLVE_SECONDS.observe(timer.seconds, backend=backend)
    return pairs


def _run_backend(matrix: CSRMatrix, k: int, backend: str,
                 deflate: Sequence[np.ndarray], tol: float,
                 x0: np.ndarray | None, stats: dict | None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    n = matrix.n
    if backend == "dense":
        return _smallest_dense(matrix, k, deflate)
    if backend in ("lanczos", "shift_invert", "lobpcg"):
        if k > n - len(deflate):
            if stats is not None:
                stats["dense_fallback"] = True
            return _smallest_dense(matrix, k, deflate)
        if backend == "lanczos":
            return _smallest_lanczos(matrix, k, deflate, tol,
                                     stats=stats)
        if backend == "shift_invert":
            return _smallest_shift_invert(matrix, k, deflate, tol,
                                          stats=stats)
        return _smallest_lobpcg(matrix, k, deflate, tol, x0=x0,
                                stats=stats)
    return _smallest_scipy(matrix, k, deflate)

"""Matrix-free linear operators for the eigensolver hot path.

Deflation used to be applied two different ways depending on the
backend: the dense path shifted deflated directions to the top of the
spectrum by adding ``shift * d d^T`` (fine — the matrix is already
dense), while the sparse paths either looped over deflation vectors in
Python or, worst of all, *materialized* the rank-1 update as a sparse
matrix — for the constant vector that is a fully dense ``n x n`` CSR
bomb.

This module centralizes the matrix-free alternative: a
:class:`DeflatedOperator` represents ``P A P`` (or the spectral-shift
variant ``A + shift * D D^T``) without ever forming an ``n x n``
intermediate.  Deflation vectors are stored as the columns of a single
``(n, p)`` array so every application is two BLAS GEMVs
(``D.T @ x`` / ``D @ c``) instead of a Python loop.

All operators expose the minimal ``LinearOperator``-style protocol the
in-house solvers need (``shape``, ``n``, ``matvec``, ``__matmul__``,
``matmat``) and convert to a genuine
:class:`scipy.sparse.linalg.LinearOperator` on demand.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import DimensionError, InvalidParameterError

MatVec = Callable[[np.ndarray], np.ndarray]


def deflation_matrix(deflate: Sequence[np.ndarray] | np.ndarray,
                     n: int) -> np.ndarray:
    """Stack deflation vectors into an ``(n, p)`` column matrix.

    Accepts a sequence of length-``n`` vectors or an already-stacked 2-D
    array; always returns a float64 ``(n, p)`` array (``p = 0`` for an
    empty sequence).  The columns are expected to be orthonormal — that
    is the contract throughout the solver stack — but this helper does
    not re-orthonormalize, it only validates shapes.
    """
    if isinstance(deflate, np.ndarray) and deflate.ndim == 2:
        d = np.asarray(deflate, dtype=np.float64)
    else:
        vectors = list(deflate)
        if not vectors:
            return np.empty((n, 0))
        d = np.column_stack([np.asarray(v, dtype=np.float64)
                             for v in vectors])
    if d.shape[0] != n:
        raise DimensionError(
            f"deflation vectors must have length {n}, got {d.shape[0]}"
        )
    return d


class _OperatorBase:
    """Shared ndarray protocol for the operators below."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        self._n = int(n)

    @property
    def n(self) -> int:
        return self._n

    @property
    def shape(self) -> tuple[int, int]:
        return (self._n, self._n)

    def matvec(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def matmat(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        for j in range(x.shape[1]):
            out[:, j] = self.matvec(x[:, j])
        return out

    def __matmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        return self.matmat(other)

    def to_scipy_linear_operator(self):
        """A scipy ``LinearOperator`` view (requires scipy)."""
        from scipy.sparse.linalg import LinearOperator
        return LinearOperator(self.shape, matvec=self.matvec,
                              matmat=self.matmat, dtype=np.float64)


class DeflatedOperator(_OperatorBase):
    """``P A P`` with ``P = I - D D^T`` — deflation without densifying.

    Parameters
    ----------
    matvec:
        The base operator ``x -> A x``.
    n:
        Operator dimension.
    deflate:
        Orthonormal deflation directions (sequence of vectors or an
        ``(n, p)`` column matrix).  With ``p = 0`` the operator is just
        ``A``.
    shift:
        When nonzero the operator is ``P A P + shift * D D^T`` instead:
        the deflated directions become exact eigenvectors at ``shift``,
        which keeps the operator nonsingular on the whole space.  Pass a
        value above the spectrum of ``A`` to push the deflated
        directions to the top (the convention of
        :func:`repro.linalg.backends.smallest_eigenpairs`).
    """

    __slots__ = ("_matvec", "_d", "_shift")

    def __init__(self, matvec: MatVec, n: int,
                 deflate: Sequence[np.ndarray] | np.ndarray = (),
                 shift: float = 0.0):
        super().__init__(n)
        self._matvec = matvec
        self._d = deflation_matrix(deflate, n)
        self._shift = float(shift)

    @property
    def num_deflated(self) -> int:
        return self._d.shape[1]

    @property
    def deflation(self) -> np.ndarray:
        """The ``(n, p)`` deflation column matrix (read-only view)."""
        return self._d

    def project(self, x: np.ndarray) -> np.ndarray:
        """``P x``: remove the deflated components from ``x``."""
        if self._d.shape[1] == 0:
            return x
        return x - self._d @ (self._d.T @ x)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if self._d.shape[1] == 0:
            return self._matvec(x)
        coeffs = self._d.T @ x
        px = x - self._d @ coeffs
        y = self.project(self._matvec(px))
        if self._shift != 0.0:
            y = y + self._d @ (self._shift * coeffs)
        return y


class ShiftedOperator(_OperatorBase):
    """``c I - A``: maps the smallest eigenvalues of ``A`` to the largest.

    The standard spectral transform for finding the *bottom* of a PSD
    spectrum with solvers that converge to the dominant end (Lanczos,
    power iteration).  Eigenvalues map back via ``lambda = c - theta``.
    """

    __slots__ = ("_matvec", "_c")

    def __init__(self, matvec: MatVec, n: int, c: float):
        super().__init__(n)
        self._matvec = matvec
        self._c = float(c)

    @property
    def c(self) -> float:
        return self._c

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._c * x - self._matvec(x)

    def solve(self, b: np.ndarray, rtol: float = 1e-10, atol: float = 0.0,
              maxiter: int | None = None,
              preconditioner=None, project=None,
              definite: str = "positive"):
        """Solve ``(c I - A) x = b`` by conjugate gradients.

        The inner solve of the shift-invert eigensolve: applied with
        ``c = sigma`` at or below the bottom of the spectrum it
        evaluates ``(sigma I - A)^{-1} b`` matrix-free.

        Parameters
        ----------
        b:
            Right-hand side.
        rtol, atol, maxiter, preconditioner, project:
            Passed to :func:`repro.linalg.cg.conjugate_gradient`; the
            preconditioner should approximate the inverse of whichever
            of ``+-(c I - A)`` is SPD, and ``project`` keeps the
            iteration inside a deflated subspace (required when the
            shifted operator is singular on the full space, e.g. a
            Laplacian at ``c = 0``).
        definite:
            Which sign of the operator is positive definite on the
            iteration subspace: ``"positive"`` runs CG on ``c I - A``
            directly (``c`` above the spectrum), ``"negative"`` runs it
            on ``A - c I`` with the sign folded into the right-hand side
            (``c`` at or below the spectrum — the shift-invert case).

        Returns
        -------
        :class:`repro.linalg.cg.CGResult` whose ``x`` solves the
        *original* equation ``(c I - A) x = b`` either way.
        """
        from repro.linalg.cg import conjugate_gradient

        if definite not in ("positive", "negative"):
            raise InvalidParameterError(
                f"definite must be 'positive' or 'negative', "
                f"got {definite!r}"
            )
        if definite == "positive":
            return conjugate_gradient(
                self.matvec, b, rtol=rtol, atol=atol, maxiter=maxiter,
                preconditioner=preconditioner, project=project,
            )
        # (c I - A) x = b  <=>  (A - c I) x = -b, and A - c I is the SPD
        # one; CG solves the negated system and x transfers unchanged.
        b = np.asarray(b, dtype=np.float64)

        def negated(x: np.ndarray) -> np.ndarray:
            return -self.matvec(x)

        return conjugate_gradient(
            negated, -b, rtol=rtol, atol=atol, maxiter=maxiter,
            preconditioner=preconditioner, project=project,
        )


def canonical_in_span(basis: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """A deterministic unit vector in the span of ``basis`` columns.

    The sign comes for free: the projection of the probe onto the
    subspace satisfies ``probe @ v > 0`` by construction, so two solvers
    that agree on the subspace agree on the vector *including its sign*
    (an explicit largest-entry sign rule would be unstable whenever
    symmetric eigenvectors make two entries equal in magnitude).

    Falls back to alternative deterministic probes when the given one is
    (numerically) orthogonal to the subspace, then to the first basis
    vector with a first-significant-entry sign rule.
    """
    from repro.linalg.power import deterministic_start

    # Re-orthonormalize: solver eigenvectors are orthonormal only to
    # solver tolerance, and exactly orthonormal columns make the
    # projection below well-conditioned.
    q, _ = np.linalg.qr(basis)
    projected = q @ (q.T @ probe)
    norm = np.linalg.norm(projected)
    if norm < 1e-8:
        for salt in (3, 7, 11):
            candidate = q @ (q.T @ deterministic_start(len(basis), salt))
            norm = np.linalg.norm(candidate)
            if norm >= 1e-8:
                projected = candidate
                break
        else:
            projected = q[:, 0]
            threshold = 0.5 * np.abs(projected).max()
            anchor = int(np.argmax(np.abs(projected) >= threshold))
            if projected[anchor] < 0:
                projected = -projected
    return projected / np.linalg.norm(projected)


def orthonormalize_block(block: np.ndarray,
                         against: np.ndarray | None = None,
                         tol: float = 1e-12) -> np.ndarray:
    """Orthonormalize the columns of ``block``; optionally first project
    out the span of ``against`` (an ``(n, p)`` orthonormal matrix).

    Columns that become numerically zero after projection are dropped,
    so the result may have fewer columns than the input.  Two projection
    passes keep the result orthogonal to ``against`` to machine
    precision even for ill-conditioned inputs.
    """
    q = np.asarray(block, dtype=np.float64)
    if q.ndim != 2:
        raise DimensionError(f"expected a 2-D block, got shape {q.shape}")
    if against is not None and against.shape[1]:
        for _ in range(2):
            q = q - against @ (against.T @ q)
    if q.shape[1] == 0:
        return q
    scale = np.linalg.norm(q, axis=0).max()
    if scale <= tol:
        return q[:, :0]
    if q.shape[0] >= 32 * q.shape[1]:
        # Cholesky-QR fast path for tall blocks: two Gram-matrix
        # factorizations (CholQR2) cost a fraction of Householder QR at
        # these shapes and reach machine-precision orthogonality for
        # well-conditioned inputs.  The Cholesky pivots play the same
        # role as QR's R diagonal — the norm of each column's component
        # orthogonal to its predecessors — so a small pivot means the
        # block needs the rank-revealing treatment below instead.
        out = q
        for _ in range(2):
            gram = out.T @ out
            pass_scale = float(np.sqrt(np.diag(gram).max()))
            try:
                r_chol = np.linalg.cholesky(gram)
            except np.linalg.LinAlgError:
                out = None
                break
            if (np.diag(r_chol) <= 1e-6 * pass_scale).any():
                out = None
                break
            out = out @ np.linalg.inv(r_chol).T
        if out is not None:
            return out
    q_mat, r = np.linalg.qr(q)
    keep = np.abs(np.diag(r)) > tol * scale
    return q_mat[:, keep]

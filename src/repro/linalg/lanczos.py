"""Lanczos iteration with full reorthogonalization.

The production eigensolver for large graphs when scipy is not available.
Given a symmetric operator, the Lanczos process builds an orthonormal
Krylov basis ``Q`` and a small tridiagonal matrix ``T`` with
``Q^T A Q = T``; Ritz pairs of ``T`` approximate extremal eigenpairs of
``A``.  Full reorthogonalization (two Gram-Schmidt passes against all
previous basis vectors and all deflated directions) trades flops for
robustness: it eliminates the ghost-eigenvalue problem entirely at the
modest basis sizes this library needs (tens of vectors).

Convention: extremal means *largest* here.  Callers that need the smallest
eigenvalues of a PSD matrix (the Fiedler pipeline) iterate the shifted
operator ``c I - A`` and map the Ritz values back — that keeps the wanted
end of the spectrum dominant, where Lanczos converges fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.linalg.power import deterministic_start
from repro.linalg.tridiagonal import tridiagonal_eigh

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class LanczosResult:
    """Converged Ritz pairs and iteration diagnostics."""

    values: np.ndarray        # ascending
    vectors: np.ndarray       # columns aligned with values
    residuals: np.ndarray     # per-pair residual-norm estimates
    basis_size: int           # Krylov dimension used


def _orthogonalize(w: np.ndarray, basis: list[np.ndarray],
                   deflate: Sequence[np.ndarray]) -> np.ndarray:
    """Two-pass classical Gram-Schmidt against basis + deflated vectors."""
    for _ in range(2):
        for d in deflate:
            w = w - (d @ w) * d
        for q in basis:
            w = w - (q @ w) * q
    return w


def lanczos_symmetric(matvec: MatVec, n: int, k: int,
                      deflate: Sequence[np.ndarray] = (),
                      max_dim: int | None = None,
                      tol: float = 1e-9,
                      start: np.ndarray | None = None) -> LanczosResult:
    """The ``k`` largest eigenpairs of a symmetric operator.

    Parameters
    ----------
    matvec:
        The operator ``x -> A x``; must be symmetric on the subspace
        orthogonal to ``deflate``.
    n:
        Operator dimension.
    k:
        Number of wanted eigenpairs (largest).
    deflate:
        Orthonormal directions excluded from the Krylov space (e.g. the
        constant vector when ``A`` is a shifted Laplacian).
    max_dim:
        *Initial* Krylov basis size; defaults to
        ``min(n_eff, max(4k + 24, 48))`` with ``n_eff = n - len(deflate)``.
        When the wanted pairs have not met ``tol`` at that size — which
        genuinely happens for tightly clustered spectra like a long
        path's Laplacian — the run restarts with a doubled basis, up to
        the full ``n_eff`` (where Ritz pairs are exact).
    tol:
        Relative residual target for the wanted pairs.
    start:
        Optional start vector (defaults to a fixed deterministic one, so
        results are reproducible run to run).

    Raises
    ------
    ConvergenceError
        If the wanted pairs fail to meet ``tol`` even with a full-size
        basis.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    n_eff = n - len(deflate)
    if not 1 <= k <= n_eff:
        raise InvalidParameterError(
            f"k must be in [1, {n_eff}] after deflation, got {k}"
        )
    if max_dim is None:
        max_dim = min(n_eff, max(4 * k + 24, 48))
    max_dim = min(max(max_dim, k), n_eff)

    while True:
        result = _lanczos_once(matvec, n, k, deflate, max_dim, tol, start)
        if result is not None:
            return result
        max_dim = min(n_eff, 2 * max_dim)


def _lanczos_once(matvec: MatVec, n: int, k: int,
                  deflate: Sequence[np.ndarray], max_dim: int, tol: float,
                  start: np.ndarray | None) -> LanczosResult | None:
    """One Lanczos run at a fixed basis size.

    Returns ``None`` when unconverged but a larger basis is still
    possible (the caller then doubles and retries); raises when even the
    full basis failed.
    """
    n_eff = n - len(deflate)
    v = deterministic_start(n) if start is None else np.asarray(
        start, dtype=np.float64).copy()
    basis: list[np.ndarray] = []
    v = _orthogonalize(v, basis, deflate)
    norm = np.linalg.norm(v)
    salt = 1
    while norm < 1e-12 and salt < 8:
        v = _orthogonalize(deterministic_start(n, salt), basis, deflate)
        norm = np.linalg.norm(v)
        salt += 1
    if norm < 1e-12:
        raise InvalidParameterError(
            "could not find a start vector outside the deflated subspace"
        )
    v /= norm

    alphas: list[float] = []
    betas: list[float] = []
    basis.append(v)
    scale_estimate = 0.0
    while len(basis) < max_dim:
        q = basis[-1]
        w = matvec(q)
        alpha = float(q @ w)
        alphas.append(alpha)
        scale_estimate = max(scale_estimate, abs(alpha))
        w = _orthogonalize(w, basis, deflate)
        beta = float(np.linalg.norm(w))
        if beta <= 1e-12 * max(scale_estimate, 1.0):
            # Happy breakdown: the Krylov space is invariant.  Restart with
            # a fresh direction if more vectors are still needed.
            restarted = False
            for attempt in range(8):
                cand = _orthogonalize(
                    deterministic_start(n, salt=10 + attempt), basis, deflate
                )
                cnorm = np.linalg.norm(cand)
                if cnorm > 1e-10:
                    betas.append(0.0)
                    basis.append(cand / cnorm)
                    restarted = True
                    break
            if not restarted:
                break
        else:
            betas.append(beta)
            basis.append(w / beta)
    else:
        # Basis is full; compute the final alpha for the last vector.
        pass
    if len(alphas) < len(basis):
        q = basis[-1]
        w = matvec(q)
        alphas.append(float(q @ w))

    m = len(basis)
    diag = np.array(alphas[:m])
    offdiag = np.array(betas[:m - 1]) if m > 1 else np.empty(0)
    theta, s = tridiagonal_eigh(diag, offdiag)

    q_mat = np.stack(basis, axis=1)          # (n, m)
    ritz_vectors = q_mat @ s                  # (n, m)
    # Residual estimate: ||A y - theta y|| = |beta_m| * |last row of s|
    # only holds for an unbroken Lanczos run; compute true residuals for
    # the wanted pairs instead (k matvecs — cheap and trustworthy).
    order = np.argsort(theta)[::-1][:k]      # largest first
    wanted = order[np.argsort(theta[order])]  # ascending among wanted
    values = theta[wanted]
    vectors = ritz_vectors[:, wanted]
    residuals = np.empty(k)
    for j in range(k):
        y = vectors[:, j]
        y = y / np.linalg.norm(y)
        vectors[:, j] = y
        # Residual of the *deflated* operator P A P: project the image,
        # because a deflated Ritz vector need not be an eigenvector of
        # the raw operator when the deflated directions are not exact
        # eigenvectors.
        image = matvec(y)
        for d in deflate:
            image = image - (d @ image) * d
        residuals[j] = np.linalg.norm(image - values[j] * y)
    scale = max(float(np.abs(theta).max()) if m else 1.0, 1.0)
    if (residuals > tol * scale * 100).any():
        if m < n_eff:
            return None  # caller restarts with a larger basis
        raise ConvergenceError(
            "Lanczos did not converge even with a full Krylov basis "
            f"(basis {m}, worst residual {residuals.max():.2e})",
            iterations=m,
            residual=float(residuals.max()),
        )
    return LanczosResult(values=values, vectors=vectors,
                         residuals=residuals, basis_size=m)


def smallest_eigenpairs_shifted(matvec: MatVec, n: int, k: int,
                                upper_bound: float,
                                deflate: Sequence[np.ndarray] = (),
                                max_dim: int | None = None,
                                tol: float = 1e-9) -> Tuple[np.ndarray,
                                                            np.ndarray]:
    """The ``k`` smallest eigenpairs of a symmetric PSD operator.

    Runs Lanczos on ``c I - A`` with ``c = upper_bound`` (any bound with
    ``c >= lambda_max`` works; Gershgorin is fine) and maps Ritz values
    back via ``lambda = c - theta``.  Returns ``(values, vectors)`` with
    values ascending.
    """
    if upper_bound <= 0:
        upper_bound = 1.0

    def shifted(x: np.ndarray) -> np.ndarray:
        return upper_bound * x - matvec(x)

    result = lanczos_symmetric(shifted, n, k, deflate=deflate,
                               max_dim=max_dim, tol=tol)
    values = upper_bound - result.values[::-1]
    vectors = result.vectors[:, ::-1]
    return values, vectors

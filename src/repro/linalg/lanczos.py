"""Thick-restart Lanczos with full reorthogonalization.

The production eigensolver for large graphs when scipy is not available.
Given a symmetric operator, the Lanczos process builds an orthonormal
Krylov basis ``Q`` and a small projected matrix ``T = Q^T A Q``; Ritz
pairs of ``T`` approximate extremal eigenpairs of ``A``.

Two design decisions keep the hot path at BLAS speed:

* The basis lives in one preallocated ``(n, max_dim)`` column matrix.
  Reorthogonalization is two-pass *block* Gram-Schmidt — a pair of GEMVs
  (``Q[:, :m].T @ w`` then ``w -= Q[:, :m] @ c``) per pass — instead of
  a Python loop over stored vectors.  The first-pass coefficients are
  exactly column ``m-1`` of the projected matrix, so ``T`` is filled as
  a by-product and need not be tridiagonal (which is what makes the
  restart below legal).
* When the basis fills up without converging, the run performs a *thick
  restart* (Wu & Simon): the best Ritz vectors are compressed back into
  the leading basis columns, the residual direction is kept, and the
  iteration continues — no information is thrown away.  The previous
  implementation restarted from scratch with a doubled basis, repaying
  the full orthogonalization cost at every attempt; growth is now a rare
  fallback used only when many restarts stagnate (tightly clustered
  spectra on very small gaps).

Full reorthogonalization (two Gram-Schmidt passes against all basis
columns and all deflated directions) trades flops for robustness: it
eliminates the ghost-eigenvalue problem entirely at the basis sizes this
library needs (tens of vectors).

Convention: extremal means *largest* here.  Callers that need the smallest
eigenvalues of a PSD matrix (the Fiedler pipeline) iterate the shifted
operator ``c I - A`` and map the Ritz values back — that keeps the wanted
end of the spectrum dominant, where Lanczos converges fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.linalg.operators import ShiftedOperator, deflation_matrix
from repro.linalg.power import deterministic_start

MatVec = Callable[[np.ndarray], np.ndarray]

#: Hard cap on restart cycles before giving up (each cycle is cheap, and
#: basis growth kicks in long before this).
_MAX_CYCLES = 400

#: Grow the basis after this many consecutive unconverged cycles at one
#: size.  Thick restarts usually converge in a handful of cycles; hitting
#: this means the Krylov space itself is too small for the spectrum.
_GROW_AFTER = 8

#: Cap on the per-cycle residual trajectory recorded into a ``stats``
#: dict — enough to see convergence shape, bounded so the record stays
#: cheap to pickle/serialize as a span attribute.
_HISTORY_CAP = 32


@dataclass(frozen=True)
class LanczosResult:
    """Converged Ritz pairs and iteration diagnostics."""

    values: np.ndarray        # ascending
    vectors: np.ndarray       # columns aligned with values
    residuals: np.ndarray     # per-pair residual-norm estimates
    basis_size: int           # Krylov dimension used


def _block_orthogonalize(w: np.ndarray, q: np.ndarray, m: int,
                         d: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Two-pass block Gram-Schmidt of ``w`` against ``Q[:, :m]`` and ``D``.

    Returns ``(w, coeffs)`` where ``coeffs`` are the summed projection
    coefficients onto the basis columns — i.e. column ``m-1`` of the
    projected matrix when ``w`` is a fresh operator image.
    """
    coeffs = np.zeros(m)
    for _ in range(2):
        if d.shape[1]:
            w = w - d @ (d.T @ w)
        if m:
            c = q[:, :m].T @ w
            w = w - q[:, :m] @ c
            coeffs += c
    return w, coeffs


def _fresh_direction(q: np.ndarray, m: int, d: np.ndarray, n: int,
                     salt0: int) -> np.ndarray | None:
    """A unit vector orthogonal to the current basis and deflation, or
    ``None`` when every probe lies (numerically) inside the span."""
    for attempt in range(8):
        cand, _ = _block_orthogonalize(
            deterministic_start(n, salt=salt0 + attempt), q, m, d
        )
        norm = np.linalg.norm(cand)
        if norm > 1e-10:
            return cand / norm
    # Quasi-random probes can conspire to (numerically) lie inside the
    # span on tiny operators.  The canonical basis cannot: it spans all
    # of R^n, so whenever the orthogonal complement is nonempty at least
    # one projected e_i survives with norm >= 1/sqrt(n).
    for i in range(n):
        e = np.zeros(n)
        e[i] = 1.0
        cand, _ = _block_orthogonalize(e, q, m, d)
        norm = np.linalg.norm(cand)
        if norm > 1e-10:
            return cand / norm
    return None


def lanczos_symmetric(matvec: MatVec, n: int, k: int,
                      deflate: Sequence[np.ndarray] = (),
                      max_dim: int | None = None,
                      tol: float = 1e-9,
                      start: np.ndarray | None = None,
                      stats: dict | None = None) -> LanczosResult:
    """The ``k`` largest eigenpairs of a symmetric operator.

    Parameters
    ----------
    matvec:
        The operator ``x -> A x``; must be symmetric on the subspace
        orthogonal to ``deflate``.
    n:
        Operator dimension.
    k:
        Number of wanted eigenpairs (largest).
    deflate:
        Orthonormal directions excluded from the Krylov space (e.g. the
        constant vector when ``A`` is a shifted Laplacian).
    max_dim:
        Krylov basis size; defaults to
        ``min(n_eff, max(4k + 24, 48))`` with ``n_eff = n - len(deflate)``.
        Unconverged runs thick-restart at this size; the basis only grows
        when several restarts in a row stagnate.
    tol:
        Relative residual target for the wanted pairs.
    start:
        Optional start vector (defaults to a fixed deterministic one, so
        results are reproducible run to run).
    stats:
        Optional dict receiving iteration diagnostics, updated in place
        as the run progresses (so it is populated even when the solve
        raises): ``restart_cycles``, ``basis_size``, and
        ``residual_history`` — the worst wanted residual estimate per
        cycle, capped at ``_HISTORY_CAP`` entries.

    Raises
    ------
    ConvergenceError
        If the wanted pairs fail to meet ``tol`` even with a full-size
        basis.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    d = deflation_matrix(deflate, n)
    n_eff = n - d.shape[1]
    if not 1 <= k <= n_eff:
        raise InvalidParameterError(
            f"k must be in [1, {n_eff}] after deflation, got {k}"
        )
    if max_dim is None:
        max_dim = min(n_eff, max(4 * k + 24, 48))
    max_dim = min(max(max_dim, k), n_eff)

    # ------------------------------------------------------------------
    # Start vector: orthogonal to the deflated subspace, unit norm.
    # The default is salted by the deflation count: eigenspace-closing
    # callers deflate previously converged vectors and re-solve, and the
    # *unsalted* start is exactly orthogonal to the remaining copy of a
    # degenerate eigenvalue (the converged vector IS the start's
    # projection onto that eigenspace).  A fresh quasi-random start per
    # deflation level keeps a genuine component along every remaining
    # direction instead of relying on rounding noise to drift one in.
    # ------------------------------------------------------------------
    v = deterministic_start(n, salt=d.shape[1]) if start is None \
        else np.asarray(start, dtype=np.float64).copy()
    v, _ = _block_orthogonalize(v, np.empty((n, 0)), 0, d)
    norm = np.linalg.norm(v)
    salt = d.shape[1] + 1
    while norm < 1e-12 and salt < d.shape[1] + 9:
        v, _ = _block_orthogonalize(
            deterministic_start(n, salt), np.empty((n, 0)), 0, d)
        norm = np.linalg.norm(v)
        salt += 1
    if norm < 1e-12:
        raise InvalidParameterError(
            "could not find a start vector outside the deflated subspace"
        )

    q = np.empty((n, max_dim))
    t = np.zeros((max_dim, max_dim))
    q[:, 0] = v / norm
    m = 1                 # filled basis columns
    ell = 0               # columns 0..ell-1 hold retained Ritz vectors
    scale_estimate = 0.0
    stagnant_cycles = 0
    history = stats.setdefault("residual_history", []) \
        if stats is not None else None

    for cycle in range(_MAX_CYCLES):
        # --------------------------------------------------------------
        # Expansion: extend the basis to max_dim columns.  Columns
        # 0..ell-1 are retained Ritz vectors from the last restart and
        # are never re-expanded; column ``ell`` onward follow the
        # Lanczos recurrence (with full reorthogonalization, so the
        # recurrence structure is free to be arrowhead after a restart).
        # --------------------------------------------------------------
        exhausted = False
        while True:
            w = matvec(q[:, m - 1])
            w, coeffs = _block_orthogonalize(w, q, m, d)
            t[:m, m - 1] = coeffs
            t[m - 1, :m] = coeffs
            scale_estimate = max(scale_estimate, float(np.abs(coeffs).max()))
            beta = float(np.linalg.norm(w))
            if m == max_dim:
                break
            if beta > 1e-12 * max(scale_estimate, 1.0):
                q[:, m] = w / beta
                t[m, m - 1] = beta
                t[m - 1, m] = beta
                m += 1
            else:
                # Happy breakdown: the span is invariant.  Inject a fresh
                # orthogonal direction to keep hunting for further
                # (possibly degenerate) eigenpairs.
                cand = _fresh_direction(q, m, d, n, salt0=10 + m)
                if cand is None:
                    exhausted = True
                    beta = 0.0
                    break
                q[:, m] = cand
                t[m, m - 1] = 0.0
                t[m - 1, m] = 0.0
                m += 1

        # --------------------------------------------------------------
        # Rayleigh-Ritz on the projected matrix.
        # --------------------------------------------------------------
        theta, s = np.linalg.eigh(t[:m, :m])
        if m < k:
            # The basis exhausted every direction outside the deflated
            # subspace before reaching k columns — numerically the
            # reachable space is smaller than requested.  Surface the
            # standard non-convergence signal so callers can fall back.
            raise ConvergenceError(
                f"Lanczos basis exhausted at {m} columns with {k} pairs "
                "requested",
                iterations=m,
                residual=float("nan"),
            )
        wanted = np.arange(m - k, m)          # largest k, ascending
        scale = max(float(np.abs(theta).max()) if m else 1.0, 1.0)
        estimates = abs(beta) * np.abs(s[m - 1, wanted])
        if stats is not None:
            stats["restart_cycles"] = cycle + 1
            stats["basis_size"] = m
            if len(history) < _HISTORY_CAP:
                history.append(float(estimates.max()))
        at_capacity = exhausted or m >= n_eff
        if at_capacity or (estimates <= tol * scale).all():
            vectors = q[:, :m] @ s[:, wanted]
            values = theta[wanted]
            residuals = np.empty(k)
            for j in range(k):
                y = vectors[:, j]
                y = y / np.linalg.norm(y)
                vectors[:, j] = y
                # Residual of the *deflated* operator P A P: project the
                # image, because a deflated Ritz vector need not be an
                # eigenvector of the raw operator when the deflated
                # directions are not exact eigenvectors.
                image = matvec(y)
                if d.shape[1]:
                    image = image - d @ (d.T @ image)
                residuals[j] = np.linalg.norm(image - values[j] * y)
            if (residuals <= tol * scale * 100).all():
                return LanczosResult(values=values, vectors=vectors,
                                     residuals=residuals, basis_size=m)
            if at_capacity:
                raise ConvergenceError(
                    "Lanczos did not converge even with a full Krylov "
                    f"basis (basis {m}, worst residual "
                    f"{residuals.max():.2e})",
                    iterations=m,
                    residual=float(residuals.max()),
                )

        # --------------------------------------------------------------
        # Thick restart: compress the best Ritz vectors into the leading
        # columns, keep the residual direction, continue.  Grow the
        # basis instead when restarts stagnate or there is no room.
        # --------------------------------------------------------------
        stagnant_cycles += 1
        grow = (stagnant_cycles >= _GROW_AFTER
                or max_dim < k + 4) and max_dim < n_eff
        if grow:
            new_dim = min(n_eff, 2 * max_dim)
            q_new = np.empty((n, new_dim))
            q_new[:, :m] = q[:, :m]
            t_new = np.zeros((new_dim, new_dim))
            t_new[:m, :m] = t[:m, :m]
            q, t, max_dim = q_new, t_new, new_dim
            stagnant_cycles = 0
            # Re-enter expansion from the current state: the last filled
            # column resumes the recurrence (its image will be measured
            # against every retained column, so correctness does not
            # depend on tridiagonal structure).
            residual_dir = (w / beta) if beta > 1e-12 * max(
                scale_estimate, 1.0) else _fresh_direction(
                    q, m, d, n, salt0=50 + m)
            if residual_dir is not None and m < max_dim:
                q[:, m] = residual_dir
                t[m, m - 1] = beta if beta > 0 else 0.0
                t[m - 1, m] = t[m, m - 1]
                m += 1
            continue

        ell = min(max(k + 8, max_dim // 4), m - 4)
        ell = max(ell, min(k, m - 1))
        keep = np.arange(m - ell, m)          # largest ell Ritz pairs
        compressed = q[:, :m] @ s[:, keep]
        residual_coupling = beta * s[m - 1, keep]
        q[:, :ell] = compressed
        t[:, :] = 0.0
        t[:ell, :ell] = np.diag(theta[keep])
        if beta > 1e-12 * max(scale_estimate, 1.0):
            q[:, ell] = w / beta
            t[ell, :ell] = residual_coupling
            t[:ell, ell] = residual_coupling
        else:
            # Residual vanished but the true residual check failed (a
            # numerically invariant span that is not accurate enough):
            # continue from a fresh direction instead.
            cand = _fresh_direction(q, ell, d, n, salt0=30 + m)
            if cand is None:
                raise ConvergenceError(
                    "Lanczos stagnated: no direction left outside the "
                    f"converged span (basis {m})",
                    iterations=m,
                    residual=float(residuals.max()),
                )
            q[:, ell] = cand
        m = ell + 1

    raise ConvergenceError(
        f"Lanczos did not converge within {_MAX_CYCLES} restart cycles",
        iterations=_MAX_CYCLES,
        residual=float("nan"),
    )


def smallest_eigenpairs_shifted(matvec: MatVec, n: int, k: int,
                                upper_bound: float,
                                deflate: Sequence[np.ndarray] = (),
                                max_dim: int | None = None,
                                tol: float = 1e-9,
                                stats: dict | None = None
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest eigenpairs of a symmetric PSD operator.

    Runs Lanczos on ``c I - A`` with ``c = upper_bound`` (any bound with
    ``c >= lambda_max`` works; Gershgorin is fine) and maps Ritz values
    back via ``lambda = c - theta``.  Returns ``(values, vectors)`` with
    values ascending.  ``stats`` is forwarded to
    :func:`lanczos_symmetric` (the recorded residual trajectory is of
    the shifted operator — same norms, mirrored spectrum).
    """
    if upper_bound <= 0:
        upper_bound = 1.0

    shifted = ShiftedOperator(matvec, n, upper_bound)
    result = lanczos_symmetric(shifted.matvec, n, k, deflate=deflate,
                               max_dim=max_dim, tol=tol, stats=stats)
    values = upper_bound - result.values[::-1]
    vectors = result.vectors[:, ::-1]
    return values, vectors


def smallest_eigenpairs_shift_invert(matvec: MatVec, n: int, k: int,
                                     upper_bound: float,
                                     deflate: Sequence[np.ndarray] = (),
                                     sigma: float = 0.0,
                                     tol: float = 1e-9,
                                     preconditioner=None,
                                     max_dim: int | None = None,
                                     inner_rtol: float | None = None,
                                     stats: dict | None = None
                                     ) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` smallest eigenpairs via inner-outer shift-invert Lanczos.

    Runs the outer Lanczos iteration on ``(A - sigma I)^{-1}`` (restricted
    to the complement of ``deflate``) with each operator application an
    inner deflated-CG solve (:meth:`~repro.linalg.operators
    .ShiftedOperator.solve`).  Inverting around ``sigma`` at the bottom of
    the spectrum turns the tightly clustered small eigenvalues — plain
    Lanczos's worst case, where it needs ``O(sqrt(kappa))`` iterations —
    into well-separated dominant ones, so the outer iteration converges
    in ``O(1)``-ish steps and the cost moves into the inner solves, which
    a good preconditioner (the multilevel V-cycle) makes cheap.

    Parameters
    ----------
    matvec, n, k, deflate:
        As in :func:`smallest_eigenpairs_shifted`.  ``A`` must be SPD on
        the complement of ``deflate`` — the deflated singular Laplacian
        qualifies, which is the production case.
    upper_bound:
        An upper bound on the spectrum (Gershgorin is fine); sets the
        residual scale of the final quality check so the accepted
        accuracy matches the plain Lanczos backend's.
    sigma:
        The shift; must keep ``A - sigma I`` positive definite on the
        complement of ``deflate``.  The default 0 is inverse iteration —
        optimal separation for PSD operators with the nullspace deflated.
    tol:
        Relative residual target (same convention as
        :func:`lanczos_symmetric`, applied to the *original* operator).
    preconditioner:
        Optional SPD approximation of ``(A - sigma I)^{-1}`` for the
        inner CG solves.
    max_dim:
        Outer Krylov basis size; defaults to
        ``min(n_eff, max(2k + 8, 16))`` — deliberately small, every
        basis column costs a full inner solve.
    inner_rtol:
        Relative tolerance of the inner solves; defaults to
        ``min(tol, 1e-9) * 0.1`` so inner error stays below the outer
        convergence target.
    stats:
        Optional dict that receives ``outer_iterations`` (inner solves
        performed), ``inner_iterations`` (total CG iterations) and
        ``max_inner_iterations``.

    Raises
    ------
    ConvergenceError
        When an inner solve fails or the final residuals (measured on
        the original operator) miss the tolerance — callers fall back to
        the plain Lanczos path.
    """
    if upper_bound <= 0:
        upper_bound = 1.0
    if inner_rtol is None:
        inner_rtol = min(tol, 1e-9) * 0.1
    d = deflation_matrix(deflate, n)
    shifted = ShiftedOperator(matvec, n, sigma)
    counters = {"outer_iterations": 0, "inner_iterations": 0,
                "max_inner_iterations": 0}

    def project(x: np.ndarray) -> np.ndarray:
        if d.shape[1]:
            return x - d @ (d.T @ x)
        return x

    def inverted(x: np.ndarray) -> np.ndarray:
        # y = (A - sigma I)^{-1} P x:  (sigma I - A) y = -P x.
        result = shifted.solve(-project(x), rtol=inner_rtol,
                               preconditioner=preconditioner,
                               project=project, definite="negative")
        counters["outer_iterations"] += 1
        counters["inner_iterations"] += result.iterations
        counters["max_inner_iterations"] = max(
            counters["max_inner_iterations"], result.iterations)
        return project(result.x)

    if max_dim is None:
        n_eff = n - d.shape[1]
        max_dim = min(n_eff, max(2 * k + 8, 16))
    try:
        result = lanczos_symmetric(inverted, n, k, deflate=deflate,
                                   max_dim=max_dim, tol=tol)
    finally:
        if stats is not None:
            stats.update(counters)
    # Largest theta of the inverted operator <-> smallest lambda of A.
    theta = result.values[::-1]
    vectors = result.vectors[:, ::-1]
    if (theta <= 0).any():
        # The inverted operator is PD on the subspace; a non-positive
        # Ritz value means the inner solves were too inexact to trust.
        raise ConvergenceError(
            "shift-invert Lanczos produced a non-positive Ritz value of "
            "the inverted operator; inner solves too inexact",
            iterations=counters["outer_iterations"],
            residual=float("nan"),
        )
    values = sigma + 1.0 / theta
    # Quality gate on the *original* operator, at the same scale the
    # plain Lanczos backend uses (residuals of c I - A with c the upper
    # bound): inner-solve inexactness must not ship a bad pair.
    scale = max(float(upper_bound), 1.0)
    residuals = np.empty(k)
    for j in range(k):
        y = vectors[:, j]
        image = project(matvec(y))
        residuals[j] = np.linalg.norm(image - values[j] * y)
    if not (residuals <= tol * scale * 100).all():
        raise ConvergenceError(
            "shift-invert Lanczos missed the residual tolerance on the "
            f"original operator (worst {residuals.max():.2e} vs "
            f"{tol * scale * 100:.2e})",
            iterations=counters["outer_iterations"],
            residual=float(residuals.max()),
        )
    return values, vectors

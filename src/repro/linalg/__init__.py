"""Numerical linear algebra substrate: sparse matrices and eigensolvers."""

from repro.linalg.backends import (
    BACKENDS,
    DENSE_CUTOFF,
    scipy_available,
    smallest_eigenpairs,
)
from repro.linalg.lanczos import (
    LanczosResult,
    lanczos_symmetric,
    smallest_eigenpairs_shifted,
)
from repro.linalg.power import deterministic_start, power_iteration
from repro.linalg.sparse import CSRMatrix
from repro.linalg.tridiagonal import tridiagonal_eigh

__all__ = [
    "BACKENDS",
    "CSRMatrix",
    "DENSE_CUTOFF",
    "LanczosResult",
    "deterministic_start",
    "lanczos_symmetric",
    "power_iteration",
    "scipy_available",
    "smallest_eigenpairs",
    "smallest_eigenpairs_shifted",
    "tridiagonal_eigh",
]

"""Numerical linear algebra substrate: sparse matrices and eigensolvers."""

from repro.linalg.backends import (
    BACKENDS,
    DEFAULT_SOLVER_TOL,
    DENSE_CUTOFF,
    LOBPCG_CUTOFF,
    MULTILEVEL_CUTOFF,
    MULTILEVEL_QUALITY_RTOL,
    cutoff_from_env,
    multilevel_preconditioner_for,
    scipy_available,
    smallest_eigenpairs,
    solver_invocations,
)
from repro.linalg.cg import CGResult, conjugate_gradient
from repro.linalg.lanczos import (
    LanczosResult,
    lanczos_symmetric,
    smallest_eigenpairs_shift_invert,
    smallest_eigenpairs_shifted,
)
from repro.linalg.lobpcg import (
    LOBPCGResult,
    lobpcg_smallest,
    smallest_eigenpairs_lobpcg,
)
from repro.linalg.operators import (
    DeflatedOperator,
    ShiftedOperator,
    canonical_in_span,
    deflation_matrix,
    orthonormalize_block,
)
from repro.linalg.power import deterministic_start, power_iteration
from repro.linalg.sparse import CSRMatrix
from repro.linalg.tridiagonal import tridiagonal_eigh

__all__ = [
    "BACKENDS",
    "CGResult",
    "CSRMatrix",
    "DEFAULT_SOLVER_TOL",
    "DENSE_CUTOFF",
    "DeflatedOperator",
    "LOBPCGResult",
    "LOBPCG_CUTOFF",
    "LanczosResult",
    "MULTILEVEL_CUTOFF",
    "MULTILEVEL_QUALITY_RTOL",
    "ShiftedOperator",
    "canonical_in_span",
    "conjugate_gradient",
    "cutoff_from_env",
    "deflation_matrix",
    "deterministic_start",
    "lanczos_symmetric",
    "lobpcg_smallest",
    "multilevel_preconditioner_for",
    "orthonormalize_block",
    "power_iteration",
    "scipy_available",
    "smallest_eigenpairs",
    "smallest_eigenpairs_lobpcg",
    "smallest_eigenpairs_shift_invert",
    "smallest_eigenpairs_shifted",
    "solver_invocations",
    "tridiagonal_eigh",
]

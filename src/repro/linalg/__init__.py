"""Numerical linear algebra substrate: sparse matrices and eigensolvers."""

from repro.linalg.backends import (
    BACKENDS,
    DENSE_CUTOFF,
    MULTILEVEL_CUTOFF,
    MULTILEVEL_QUALITY_RTOL,
    cutoff_from_env,
    scipy_available,
    smallest_eigenpairs,
    solver_invocations,
)
from repro.linalg.lanczos import (
    LanczosResult,
    lanczos_symmetric,
    smallest_eigenpairs_shifted,
)
from repro.linalg.operators import (
    DeflatedOperator,
    ShiftedOperator,
    canonical_in_span,
    deflation_matrix,
    orthonormalize_block,
)
from repro.linalg.power import deterministic_start, power_iteration
from repro.linalg.sparse import CSRMatrix
from repro.linalg.tridiagonal import tridiagonal_eigh

__all__ = [
    "BACKENDS",
    "CSRMatrix",
    "DENSE_CUTOFF",
    "DeflatedOperator",
    "LanczosResult",
    "MULTILEVEL_CUTOFF",
    "MULTILEVEL_QUALITY_RTOL",
    "ShiftedOperator",
    "canonical_in_span",
    "cutoff_from_env",
    "deflation_matrix",
    "deterministic_start",
    "lanczos_symmetric",
    "orthonormalize_block",
    "power_iteration",
    "scipy_available",
    "smallest_eigenpairs",
    "smallest_eigenpairs_shifted",
    "solver_invocations",
    "tridiagonal_eigh",
]

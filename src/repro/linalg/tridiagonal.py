"""Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).

This is the dense kernel at the heart of the Lanczos solver: Lanczos
reduces a large sparse symmetric matrix to a small tridiagonal ``T``, whose
eigenpairs are computed here.  The algorithm is the classic ``tql2``
(EISPACK) / ``tqli`` (Numerical Recipes) implicit-QL iteration with
eigenvector accumulation, which is numerically stable and needs
``O(k^2)``–``O(k^3)`` work for a ``k x k`` tridiagonal — negligible next to
the Lanczos matvecs.

Having our own kernel keeps the whole Fiedler pipeline operational with
numpy alone (no scipy), as promised in DESIGN.md.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import ConvergenceError, DimensionError


def tridiagonal_eigh(diag: np.ndarray, offdiag: np.ndarray,
                     max_sweeps: int = 64) -> Tuple[np.ndarray, np.ndarray]:
    """All eigenpairs of the symmetric tridiagonal matrix ``(diag, offdiag)``.

    Parameters
    ----------
    diag:
        Main diagonal, length ``n``.
    offdiag:
        Sub/super-diagonal, length ``n - 1``.
    max_sweeps:
        Maximum QL iterations per eigenvalue before giving up.

    Returns
    -------
    (values, vectors):
        Eigenvalues in ascending order and the matching orthonormal
        eigenvectors as columns of an ``(n, n)`` array.
    """
    d = np.asarray(diag, dtype=np.float64).copy()
    n = len(d)
    if n == 0:
        return np.empty(0), np.empty((0, 0))
    e_in = np.asarray(offdiag, dtype=np.float64)
    if e_in.shape != (max(n - 1, 0),):
        raise DimensionError(
            f"offdiag must have length {n - 1}, got {e_in.shape}"
        )
    if n == 1:
        return d.copy(), np.ones((1, 1))

    # Working copy with a trailing slot, as in tql2.
    e = np.zeros(n)
    e[:n - 1] = e_in
    z = np.eye(n)
    eps = np.finfo(np.float64).eps

    for l in range(n):
        iterations = 0
        while True:
            # Find a negligible off-diagonal element e[m].
            m = n - 1
            for candidate in range(l, n - 1):
                dd = abs(d[candidate]) + abs(d[candidate + 1])
                if abs(e[candidate]) <= eps * dd:
                    m = candidate
                    break
            if m == l:
                break
            iterations += 1
            if iterations > max_sweeps:
                raise ConvergenceError(
                    f"tridiagonal QL failed to converge for eigenvalue {l}",
                    iterations=iterations,
                )
            # Wilkinson shift.
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = math.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + math.copysign(r, g))
            s = 1.0
            c = 1.0
            p = 0.0
            underflow = False
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = math.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    # Recover from underflow: deflate and restart.
                    d[i + 1] -= p
                    e[m] = 0.0
                    underflow = True
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # Accumulate the rotation into the eigenvector matrix.
                f_col = z[:, i + 1].copy()
                z[:, i + 1] = s * z[:, i] + c * f_col
                z[:, i] = c * z[:, i] - s * f_col
            if underflow:
                continue
            d[l] -= p
            e[l] = g
            e[m] = 0.0

    order = np.argsort(d, kind="stable")
    return d[order], z[:, order]

"""Blocked LOBPCG for the bottom of a symmetric PSD spectrum.

Locally Optimal Block Preconditioned Conjugate Gradient (Knyazev 2001):
each iteration performs a Rayleigh-Ritz projection on the subspace
spanned by the current Ritz block ``X``, the (preconditioned) residual
block ``W``, and the previous search-direction block ``P``.  With a good
preconditioner the convergence rate is bounded by the *preconditioned*
spectral condition number — for a graph Laplacian with the multilevel
V-cycle (:class:`repro.core.multilevel.MultilevelPreconditioner`) that
is ``O(1)``, so iteration counts stay in the tens regardless of grid
size, where unpreconditioned Lanczos needs ``O(sqrt(lambda_max /
lambda_2))`` matvecs.

This implementation trades the classic three-block recurrence's raw
speed for robustness: the trial subspace is explicitly re-orthonormalized
(QR with rank-revealing column drops) against the deflated directions
every iteration, which eliminates the basis-degeneracy failure mode that
plagues textbook LOBPCG near convergence.  Blocks are small (``k + 2``
columns by default) so the extra QR cost is negligible next to the
operator applications.

Determinism: starts come from the same fixed quasi-random sequence as
the other backends (salted by the deflation count), and every step is
deterministic dense linear algebra — repeated runs give bit-identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError
from repro.linalg.operators import deflation_matrix, orthonormalize_block
from repro.linalg.power import deterministic_start

MatVec = Callable[[np.ndarray], np.ndarray]

#: Cap on the per-iteration residual trajectory recorded into a
#: ``stats`` dict — enough to see convergence shape, bounded so the
#: record stays cheap to serialize as a span attribute.
_HISTORY_CAP = 32


@dataclass(frozen=True)
class LOBPCGResult:
    """Converged Ritz pairs and iteration diagnostics."""

    values: np.ndarray      # ascending
    vectors: np.ndarray     # columns aligned with values
    residuals: np.ndarray   # true residual norms on the deflated operator
    iterations: int         # Rayleigh-Ritz iterations performed


def _apply(matvec: MatVec, matmat, block: np.ndarray) -> np.ndarray:
    if matmat is not None:
        return matmat(block)
    out = np.empty_like(block)
    for j in range(block.shape[1]):
        out[:, j] = matvec(block[:, j])
    return out


def lobpcg_smallest(matvec: MatVec, n: int, k: int,
                    deflate: Sequence[np.ndarray] = (),
                    preconditioner: Callable[[np.ndarray], np.ndarray]
                    | None = None,
                    tol: float = 1e-9,
                    upper_bound: float | None = None,
                    maxiter: int = 500,
                    block_size: int | None = None,
                    matmat=None,
                    x0: np.ndarray | None = None,
                    stats: dict | None = None) -> LOBPCGResult:
    """The ``k`` smallest eigenpairs of a symmetric PSD operator.

    Parameters
    ----------
    matvec:
        The operator ``x -> A x``; must be symmetric on the complement
        of ``deflate``.
    n, k:
        Operator dimension and number of wanted pairs.
    deflate:
        Orthonormal directions excluded from the search space (the
        constant vector for Laplacians).
    preconditioner:
        Optional SPD operator applied to the residual block each
        iteration (ideally approximating ``A^+`` on the deflated
        subspace).  ``None`` degrades gracefully to unpreconditioned
        LOBPCG.
    tol:
        Residual target: converged when every wanted pair satisfies
        ``||A y - theta y|| <= tol * scale`` with ``scale =
        max(upper_bound, 1)`` — the same absolute accuracy the
        shifted-Lanczos backend delivers, so cross-backend order
        equivalence holds.
    upper_bound:
        Spectrum upper bound for the residual scale (Gershgorin); when
        ``None`` the scale falls back to the largest current Ritz value.
    maxiter:
        Iteration cap; exceeding it raises
        :class:`~repro.errors.ConvergenceError`.
    block_size:
        Columns carried in the Ritz block; defaults to ``k + 2`` (the
        guard vectors sharpen convergence of the k-th pair and keep
        degenerate eigenspaces together).
    matmat:
        Optional blocked operator application (``CSRMatrix.matmat``);
        falls back to column-wise ``matvec``.
    x0:
        Optional warm-start columns ``(n, j)`` (or a single vector)
        seeding the search block before the deterministic fill-up.
        Columns near the deflated subspace are dropped; convergence is
        unconditional either way — a good guess (e.g. Ritz vectors of a
        previous solve over a nearby subspace) just collapses the
        iteration count, which is how the Fiedler closure certificate
        reuses the leftover pairs of its initial window solve.
    stats:
        Optional dict receiving ``iterations``, ``operator_columns``
        (total operator applications, in columns) and
        ``residual_history`` (worst wanted residual per iteration,
        capped at ``_HISTORY_CAP`` entries).

    Raises
    ------
    ConvergenceError
        When ``maxiter`` is reached before the wanted residuals meet the
        tolerance.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    d = deflation_matrix(deflate, n)
    n_eff = n - d.shape[1]
    if not 1 <= k <= n_eff:
        raise InvalidParameterError(
            f"k must be in [1, {n_eff}] after deflation, got {k}"
        )
    if block_size is None:
        block_size = k + 2
    m = int(min(max(block_size, k), n_eff))
    counters = {"iterations": 0, "operator_columns": 0}
    history: list | None = [] if stats is not None else None
    if history is not None:
        counters["residual_history"] = history

    def operate(block: np.ndarray) -> np.ndarray:
        counters["operator_columns"] += block.shape[1]
        return _apply(matvec, matmat, block)

    # ------------------------------------------------------------------
    # Start block: warm-start columns first (if any survive the
    # deflation projection), then deterministic fill-up, orthonormal
    # and clear of the deflation either way.
    # ------------------------------------------------------------------
    salt = d.shape[1]
    seeds = []
    if x0 is not None:
        guess = np.asarray(x0, dtype=np.float64)
        if guess.ndim == 1:
            guess = guess[:, None]
        if guess.shape[0] != n:
            raise InvalidParameterError(
                f"x0 columns must have length {n}, got {guess.shape[0]}"
            )
        seeds.append(guess[:, :m])
    fill = m - (seeds[0].shape[1] if seeds else 0)
    if fill > 0:
        seeds.append(np.column_stack([deterministic_start(n, salt + j)
                                      for j in range(fill)]))
    x = np.column_stack(seeds)
    x = orthonormalize_block(x, against=d if d.shape[1] else None)
    extra = 0
    while x.shape[1] < m and extra < 8 * m:
        top_up = np.column_stack([
            deterministic_start(n, salt + m + extra + j)
            for j in range(m - x.shape[1])])
        extra += m - x.shape[1]
        x = orthonormalize_block(
            np.column_stack([x, top_up]),
            against=d if d.shape[1] else None)
    if x.shape[1] == 0:
        raise InvalidParameterError(
            "could not build a start block outside the deflated subspace"
        )
    m = x.shape[1]
    if k > m:
        raise InvalidParameterError(
            f"start block collapsed below k (block {m}, k {k})"
        )

    ax = operate(x)
    h = x.T @ ax
    theta, c = np.linalg.eigh((h + h.T) / 2.0)
    x = x @ c
    ax = ax @ c
    p = np.empty((n, 0))
    scale = max(float(upper_bound), 1.0) if upper_bound is not None \
        else max(float(np.abs(theta).max()), 1.0)

    for iteration in range(1, maxiter + 1):
        counters["iterations"] = iteration
        r = ax - x * theta[None, :]
        residuals = np.linalg.norm(r[:, :k], axis=0)
        if history is not None and len(history) < _HISTORY_CAP:
            history.append(float(residuals.max()))
        if (residuals <= tol * scale).all():
            if stats is not None:
                stats.update(counters)
            return LOBPCGResult(values=theta[:k].copy(),
                                vectors=x[:, :k].copy(),
                                residuals=residuals,
                                iterations=iteration - 1)
        # Soft locking: columns whose residual already meets the target
        # stop feeding the search space — no V-cycle, no new Krylov
        # direction.  They stay in X (still refined by Rayleigh-Ritz),
        # so accuracy is not frozen, but the per-iteration cost shrinks
        # as the block converges.  The convergence test above guarantees
        # at least one wanted column is still active here.
        res_all = np.linalg.norm(r, axis=0)
        active = res_all > tol * scale
        r_active = r[:, active] if not active.all() else r
        w = r_active if preconditioner is None \
            else preconditioner(r_active)
        against = np.column_stack([d, x]) if d.shape[1] else x
        w = orthonormalize_block(w, against=against)
        if p.shape[1]:
            against_p = np.column_stack([against, w]) if w.shape[1] \
                else against
            p_ortho = orthonormalize_block(p, against=against_p)
        else:
            p_ortho = p
        s = np.column_stack([x, w, p_ortho])
        a_s = np.column_stack([ax, operate(s[:, m:])]) \
            if s.shape[1] > m else ax
        h = s.T @ a_s
        theta_s, c = np.linalg.eigh((h + h.T) / 2.0)
        keep = min(m, s.shape[1])
        x_new = s @ c[:, :keep]
        ax_new = a_s @ c[:, :keep]
        # Next search directions: the part of the new block that did not
        # come from the old X columns (classic LOBPCG "P" block).
        c_p = c[:, :keep].copy()
        c_p[:m, :] = 0.0
        p = s @ c_p
        x, ax, theta = x_new, ax_new, theta_s[:keep]
        m = keep

    if stats is not None:
        stats.update(counters)
    r = ax - x * theta[None, :]
    residuals = np.linalg.norm(r[:, :k], axis=0)
    raise ConvergenceError(
        f"LOBPCG did not converge within {maxiter} iterations "
        f"(worst wanted residual {residuals.max():.2e} vs target "
        f"{tol * scale:.2e})",
        iterations=maxiter,
        residual=float(residuals.max()),
    )


def smallest_eigenpairs_lobpcg(matvec: MatVec, n: int, k: int,
                               upper_bound: float,
                               deflate: Sequence[np.ndarray] = (),
                               preconditioner=None,
                               tol: float = 1e-9,
                               matmat=None,
                               x0: np.ndarray | None = None,
                               stats: dict | None = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`lobpcg_smallest` with the backend-registry return shape.

    Re-measures the final residuals on the deflated operator (projecting
    the image exactly the way the Lanczos backend does) and enforces the
    same ``tol * scale * 100`` acceptance bound, raising
    :class:`~repro.errors.ConvergenceError` on a miss so callers can
    fall back.
    """
    result = lobpcg_smallest(matvec, n, k, deflate=deflate,
                             preconditioner=preconditioner, tol=tol,
                             upper_bound=upper_bound, matmat=matmat,
                             x0=x0, stats=stats)
    d = deflation_matrix(deflate, n)
    scale = max(float(upper_bound), 1.0)
    values = result.values
    vectors = result.vectors
    residuals = np.empty(k)
    for j in range(k):
        y = vectors[:, j] / np.linalg.norm(vectors[:, j])
        vectors[:, j] = y
        image = matvec(y)
        if d.shape[1]:
            image = image - d @ (d.T @ image)
        residuals[j] = np.linalg.norm(image - values[j] * y)
    if not (residuals <= tol * scale * 100).all():
        raise ConvergenceError(
            "LOBPCG missed the residual tolerance on the deflated "
            f"operator (worst {residuals.max():.2e} vs "
            f"{tol * scale * 100:.2e})",
            iterations=result.iterations,
            residual=float(residuals.max()),
        )
    return values, vectors

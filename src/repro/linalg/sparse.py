"""A minimal symmetric sparse matrix in CSR form.

The library ships its own compressed-sparse-row matrix so the core spectral
pipeline works without scipy.  Only the operations the eigensolvers need
are provided: matrix-vector products, diagonal extraction, and dense
conversion.  The pure-numpy matvec is vectorized with
:func:`numpy.bincount`; when scipy *is* importable, products are delegated
to its C implementation instead — the matvec sits at the bottom of every
Lanczos step and Chebyshev smoothing pass, so the several-fold constant
factor is worth the optional dependency.  The delegate is built lazily on
first use and the numpy path remains fully supported.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import DimensionError, InvalidParameterError


def _scipy_sparse_module():
    """``scipy.sparse`` when importable, else ``None``.

    Resolved per call (a dictionary lookup once scipy is loaded) rather
    than cached at module level, so environments that genuinely lack
    scipy — and the test fixtures that simulate them — always exercise
    the numpy fallback.
    """
    try:
        import scipy.sparse as sp
    except ImportError:
        return None
    return sp


class CSRMatrix:
    """A square sparse matrix in compressed-sparse-row form.

    Parameters
    ----------
    n:
        Number of rows (= columns).
    indptr:
        ``(n + 1,)`` int array; row ``i`` occupies ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        Column index of every stored entry.
    data:
        Value of every stored entry.

    The matrix is not required to be symmetric, but all matrices produced
    by this library (adjacency, Laplacian) are; :meth:`is_symmetric` checks.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_data", "_rows", "_scipy",
                 "_min_row_count")

    def __init__(self, n: int, indptr: np.ndarray, indices: np.ndarray,
                 data: np.ndarray):
        n = int(n)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if indptr.shape != (n + 1,):
            raise DimensionError(
                f"indptr must have shape ({n + 1},), got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise InvalidParameterError("indptr is inconsistent with indices")
        if (np.diff(indptr) < 0).any():
            raise InvalidParameterError("indptr must be non-decreasing")
        if len(indices) != len(data):
            raise DimensionError("indices and data must have equal length")
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise InvalidParameterError("column indices out of range")
        self._n = n
        self._indptr = indptr
        self._indices = indices
        self._data = data
        # Expanded row index per nonzero, precomputed once so every matvec
        # is a single bincount.
        counts = np.diff(indptr)
        self._rows = np.repeat(np.arange(n, dtype=np.int64), counts)
        # Gates the reduceat fast path in matvec/matmat: segment sums
        # need every row nonempty.
        self._min_row_count = int(counts.min()) if n else 0
        # Lazily-built scipy CSR delegate for fast products (None until
        # first use; False when scipy turned out to be unavailable).
        self._scipy = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense square array, dropping entries ``<= tol``."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise DimensionError(
                f"expected a square matrix, got shape {dense.shape}"
            )
        n = dense.shape[0]
        mask = np.abs(dense) > tol
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = mask.sum(axis=1).cumsum()
        rows, cols = np.nonzero(mask)
        return cls(n, indptr, cols, dense[rows, cols])

    @classmethod
    def from_coo(cls, n: int, rows: np.ndarray, cols: np.ndarray,
                 data: np.ndarray, sum_duplicates: bool = True) -> "CSRMatrix":
        """Build from coordinate triplets.

        Duplicate ``(row, col)`` entries are summed when
        ``sum_duplicates`` (the default), matching scipy's behaviour.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not (rows.shape == cols.shape == data.shape):
            raise DimensionError("rows, cols and data must have equal shape")
        if len(rows) and (rows.min() < 0 or rows.max() >= n
                          or cols.min() < 0 or cols.max() >= n):
            raise InvalidParameterError("coordinates out of range")
        if sum_duplicates and len(rows):
            keys = rows * n + cols
            uniq, inverse = np.unique(keys, return_inverse=True)
            summed = np.bincount(inverse, weights=data,
                                 minlength=len(uniq))
            rows = uniq // n
            cols = uniq % n
            data = summed
        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=n)
        indptr[1:] = counts.cumsum()
        return cls(n, indptr, cols, data)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (self._n, self._n)

    @property
    def n(self) -> int:
        return self._n

    @property
    def nnz(self) -> int:
        return len(self._data)

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    @property
    def data(self) -> np.ndarray:
        return self._data

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _scipy_delegate(self):
        """The cached scipy CSR view of this matrix, or ``None``."""
        if self._scipy is None:
            sp = _scipy_sparse_module()
            self._scipy = False if sp is None else sp.csr_matrix(
                (self._data, self._indices, self._indptr),
                shape=(self._n, self._n),
            )
        return None if self._scipy is False else self._scipy

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Matrix-vector product ``A @ x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self._n,):
            raise DimensionError(
                f"expected a vector of length {self._n}, got shape {x.shape}"
            )
        if self.nnz == 0:
            return np.zeros(self._n)
        delegate = self._scipy_delegate()
        if delegate is not None:
            return delegate @ x
        products = self._data * x[self._indices]
        if self._min_row_count > 0:
            # Contiguous segment sums over the CSR rows: measurably
            # faster than bincount's scattered adds, and the workhorse
            # of the scipy-free leg.  Valid only when every row is
            # nonempty (empty rows break reduceat's segment semantics);
            # Laplacians always carry their diagonal, so this is the
            # path production takes.
            return np.add.reduceat(products, self._indptr[:-1])
        return np.bincount(self._rows, weights=products,
                           minlength=self._n)

    def matmat(self, x: np.ndarray) -> np.ndarray:
        """Matrix product ``A @ X`` for a 2-D block of column vectors."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self._n:
            raise DimensionError(
                f"expected an ({self._n}, k) array, got shape {x.shape}"
            )
        if self.nnz == 0:
            return np.zeros_like(x)
        delegate = self._scipy_delegate()
        if delegate is not None:
            return np.asarray(delegate @ x)
        if self._min_row_count > 0:
            # Blocked counterpart of the reduceat path in matvec.  The
            # block is transposed first so each column's gather and
            # segment sum run over contiguous memory — measurably
            # faster than a 2-D reduceat along axis 0, and ~1.5x faster
            # than gathering rows of the un-transposed block.  One
            # scratch buffer serves every column (take/multiply/reduceat
            # all write in place), and the result is handed back as a
            # transposed view: downstream block arithmetic is
            # layout-agnostic, and the next matmat's own transpose of an
            # F-ordered block is then free.
            xt = np.ascontiguousarray(x.T)
            out = np.empty_like(xt)
            scratch = np.empty(self.nnz)
            starts = self._indptr[:-1]
            for j in range(xt.shape[0]):
                np.take(xt[j], self._indices, out=scratch)
                scratch *= self._data
                np.add.reduceat(scratch, starts, out=out[j])
            return out.T
        out = np.empty_like(x)
        for j in range(x.shape[1]):
            out[:, j] = self.matvec(x[:, j])
        return out

    def __matmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        return self.matmat(other)

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector."""
        diag = np.zeros(self._n)
        on_diag = self._rows == self._indices
        np.add.at(diag, self._rows[on_diag], self._data[on_diag])
        return diag

    def to_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` copy."""
        dense = np.zeros((self._n, self._n))
        np.add.at(dense, (self._rows, self._indices), self._data)
        return dense

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Whether ``A == A.T`` up to ``tol`` (checked densely for small n,
        via transposed CSR comparison otherwise)."""
        if self._n <= 2048:
            dense = self.to_dense()
            return bool(np.allclose(dense, dense.T, atol=tol))
        transposed = CSRMatrix.from_coo(
            self._n, self._indices, self._rows, self._data
        )
        if transposed.nnz != self.nnz:
            return False
        return (np.array_equal(transposed.indptr, self._indptr)
                and np.array_equal(transposed.indices, self._indices)
                and np.allclose(transposed.data, self._data, atol=tol))

    def gershgorin_upper_bound(self) -> float:
        """An upper bound on the largest eigenvalue (Gershgorin circles)."""
        diag = self.diagonal()
        row_abs = np.bincount(self._rows, weights=np.abs(self._data),
                              minlength=self._n)
        on_diag = self._rows == self._indices
        diag_abs = np.bincount(self._rows[on_diag],
                               weights=np.abs(self._data[on_diag]),
                               minlength=self._n)
        off_abs = row_abs - diag_abs
        if self._n == 0:
            return 0.0
        return float((diag + off_abs).max())

    def __repr__(self) -> str:
        return f"CSRMatrix(n={self._n}, nnz={self.nnz})"

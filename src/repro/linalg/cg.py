"""Matrix-free preconditioned conjugate gradients with deflation.

The inner solver of the shift-invert eigensolve path: every outer
Lanczos step needs one solution of ``(A - sigma I) x = b`` restricted to
the complement of the deflated directions.  For the Fiedler pipeline
that system is the *singular* graph Laplacian with the constant vector
(and any previously converged eigenvectors) projected out — a textbook
deflated-CG setting: the operator is SPD on the projected subspace, and
keeping every iterate inside that subspace is what makes the singular
system consistent and the iteration well defined.

Design notes
------------
* **Projection, not augmentation.**  The deflated directions are removed
  by an explicit orthogonal projection (the caller passes ``project``,
  typically :meth:`repro.linalg.operators.DeflatedOperator.project`)
  applied to the right-hand side and to every preconditioned residual.
  In exact arithmetic once the initial residual is projected the Krylov
  space never leaves the subspace; re-projecting ``z`` each step stops
  the slow drift that floating point otherwise accumulates over hundreds
  of iterations.
* **Preconditioning.**  ``preconditioner`` is any SPD operator
  ``r -> M r`` approximating ``A^{-1}`` on the projected subspace — the
  multilevel V-cycle of
  :class:`repro.core.multilevel.MultilevelPreconditioner` in production.
* **Failure is loud.**  Reaching ``maxiter``, or detecting a direction
  of non-positive curvature (the operator was not SPD on the subspace),
  raises :class:`~repro.errors.ConvergenceError` with iteration and
  residual diagnostics; callers fall back to a slower exact solver
  rather than silently using a bad solution.

A MINRES variant was considered for indefinite shifts and rejected: the
production path only ever solves definite systems (``sigma`` at or below
the spectrum bottom), and CG's three-term recurrence is both cheaper and
easier to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError, InvalidParameterError

MatVec = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CGResult:
    """Solution and iteration diagnostics of one CG solve."""

    x: np.ndarray
    iterations: int
    residual: float     # final true-residual norm ||b - A x||
    converged: bool


def conjugate_gradient(matvec: MatVec, b: np.ndarray,
                       rtol: float = 1e-10, atol: float = 0.0,
                       maxiter: int | None = None,
                       preconditioner: Callable[[np.ndarray], np.ndarray]
                       | None = None,
                       project: Callable[[np.ndarray], np.ndarray]
                       | None = None,
                       x0: np.ndarray | None = None) -> CGResult:
    """Solve ``A x = b`` for a symmetric positive-definite operator.

    Parameters
    ----------
    matvec:
        The operator ``x -> A x``; must be SPD on the subspace the
        iteration runs in (the range of ``project`` when given, the full
        space otherwise).
    b:
        Right-hand side.  Projected before use when ``project`` is given,
        so singular-but-consistent systems (deflated Laplacians) work.
    rtol, atol:
        Stop when ``||b - A x|| <= max(rtol * ||b||, atol)`` (norms taken
        after projection).
    maxiter:
        Iteration cap; defaults to ``10 * n``.  Exceeding it raises
        :class:`~repro.errors.ConvergenceError`.
    preconditioner:
        Optional SPD approximation of ``A^{-1}`` applied to each
        residual.
    project:
        Optional orthogonal projection onto the subspace the system
        lives in (removes deflated directions / the operator nullspace).
    x0:
        Optional start vector (projected before use); defaults to zero.

    Raises
    ------
    ConvergenceError
        On hitting ``maxiter``, or when a search direction exposes
        non-positive curvature (operator not SPD on the subspace).
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise InvalidParameterError(
            f"b must be a vector, got shape {b.shape}"
        )
    n = b.shape[0]
    if maxiter is None:
        maxiter = 10 * n
    if project is not None:
        b = project(b)
    b_norm = float(np.linalg.norm(b))
    target = max(rtol * b_norm, atol)
    if b_norm == 0.0:
        return CGResult(x=np.zeros(n), iterations=0, residual=0.0,
                        converged=True)

    if x0 is None:
        x = np.zeros(n)
        r = b.copy()
    else:
        x = np.asarray(x0, dtype=np.float64).copy()
        if project is not None:
            x = project(x)
        r = b - matvec(x)
        if project is not None:
            r = project(r)

    z = r if preconditioner is None else preconditioner(r)
    if project is not None:
        z = project(z)
    p = z.copy()
    rz = float(r @ z)
    residual = float(np.linalg.norm(r))
    if residual <= target:
        return CGResult(x=x, iterations=0, residual=residual,
                        converged=True)

    for iteration in range(1, maxiter + 1):
        ap = matvec(p)
        if project is not None:
            ap = project(ap)
        p_ap = float(p @ ap)
        if p_ap <= 0.0:
            raise ConvergenceError(
                "CG found a direction of non-positive curvature "
                f"(p.A p = {p_ap:.3e}); the operator is not SPD on the "
                "iteration subspace",
                iterations=iteration,
                residual=residual,
            )
        alpha = rz / p_ap
        x = x + alpha * p
        r = r - alpha * ap
        residual = float(np.linalg.norm(r))
        if residual <= target:
            return CGResult(x=x, iterations=iteration, residual=residual,
                            converged=True)
        z = r if preconditioner is None else preconditioner(r)
        if project is not None:
            z = project(z)
        rz_new = float(r @ z)
        if rz_new <= 0.0:
            raise ConvergenceError(
                "CG preconditioned residual norm lost positivity "
                f"(r.z = {rz_new:.3e}); the preconditioner is not SPD "
                "on the iteration subspace",
                iterations=iteration,
                residual=residual,
            )
        p = z + (rz_new / rz) * p
        rz = rz_new

    raise ConvergenceError(
        f"CG did not reach ||r|| <= {target:.3e} within {maxiter} "
        f"iterations (residual {residual:.3e})",
        iterations=maxiter,
        residual=residual,
    )

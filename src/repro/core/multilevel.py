"""Multilevel spectral ordering.

The scalability extension of Spectral LPM: instead of solving the
Fiedler problem on the full graph, coarsen it by heavy-edge matching
(:mod:`repro.graph.coarsening`), solve exactly on the coarsest level
with the dense eigensolver, prolong the vector back level by level
(piecewise-constant interpolation), and smooth at each level with a few
deflated power-iteration steps on the shifted Laplacian.

The result approximates the true Fiedler vector — the smoothed Rayleigh
quotient typically lands within a few percent of ``lambda_2`` — and the
induced order is competitive with exact Spectral LPM at a fraction of the
eigensolver cost, making million-cell grids practical without scipy.
This is Barnard & Simon's multilevel spectral bisection recipe, applied
to ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fiedler import fiedler_vector
from repro.core.ordering import LinearOrder, order_by_values
from repro.core.spectral import snap_ties
from repro.core.tie_breaking import tie_break_keys
from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.coarsening import coarsen_hierarchy
from repro.graph.laplacian import laplacian, rayleigh_quotient
from repro.graph.traversal import is_connected


@dataclass(frozen=True)
class MultilevelResult:
    """The multilevel approximation and its quality diagnostics."""

    order: LinearOrder
    vector: np.ndarray
    rayleigh: float         # quotient of the smoothed vector
    levels: int             # coarsening levels used
    coarsest_size: int


def _smooth(graph: Graph, vector: np.ndarray,
            iterations: int) -> np.ndarray:
    """Deflated shifted power-iteration smoothing toward the Fiedler
    vector (monotonically improves the Rayleigh quotient)."""
    n = graph.num_vertices
    lap = laplacian(graph)
    bound = lap.gershgorin_upper_bound()
    if bound <= 0:
        return vector
    ones = np.ones(n) / np.sqrt(n)
    x = vector - (ones @ vector) * ones
    norm = np.linalg.norm(x)
    if norm < 1e-12:
        return vector
    x /= norm
    for _ in range(iterations):
        x = bound * x - lap.matvec(x)
        x -= (ones @ x) * ones
        norm = np.linalg.norm(x)
        if norm < 1e-300:
            break
        x /= norm
    return x


def multilevel_fiedler(graph: Graph, min_size: int = 64,
                       smoothing_steps: int = 40,
                       backend: str = "dense") -> MultilevelResult:
    """Approximate Fiedler vector and order via coarsen-solve-refine.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 vertices.
    min_size:
        Coarsening stops at this many vertices; the coarsest problem is
        solved exactly.
    smoothing_steps:
        Power-iteration steps applied after each prolongation.
    backend:
        Eigensolver backend for the coarsest solve.
    """
    n = graph.num_vertices
    if n < 2:
        raise InvalidParameterError(
            f"multilevel ordering needs at least 2 vertices, got {n}"
        )
    if not is_connected(graph):
        raise GraphStructureError(
            "multilevel Fiedler requires a connected graph; order "
            "components separately"
        )
    if smoothing_steps < 0:
        raise InvalidParameterError(
            f"smoothing_steps must be >= 0, got {smoothing_steps}"
        )
    levels = coarsen_hierarchy(graph, min_size=min_size)
    coarsest = levels[-1].graph if levels else graph
    if coarsest.num_vertices >= 2:
        vector = fiedler_vector(coarsest, backend=backend).vector
    else:  # a graph this small cannot arise while connected, but be safe
        vector = np.zeros(coarsest.num_vertices)
    # Prolong back up, smoothing at every level (including the finest).
    graphs = [graph] + [level.graph for level in levels]
    for depth in range(len(levels) - 1, -1, -1):
        fine_graph = graphs[depth]
        vector = vector[levels[depth].fine_to_coarse]
        vector = _smooth(fine_graph, vector, smoothing_steps)
    if not levels:
        vector = _smooth(graph, vector, smoothing_steps)
    quotient = rayleigh_quotient(graph, vector)
    snapped = snap_ties(vector)
    keys = tie_break_keys("index", n)
    order = order_by_values(snapped, tie_break=keys)
    return MultilevelResult(
        order=order,
        vector=vector,
        rayleigh=float(quotient),
        levels=len(levels),
        coarsest_size=coarsest.num_vertices,
    )


def multilevel_order(graph: Graph, **kwargs) -> LinearOrder:
    """Just the order from :func:`multilevel_fiedler`."""
    return multilevel_fiedler(graph, **kwargs).order

"""Multilevel spectral ordering.

The scalability extension of Spectral LPM: instead of solving the
Fiedler problem on the full graph, coarsen it by heavy-edge matching
(:mod:`repro.graph.coarsening`), solve a small *block* eigenproblem
exactly on the coarsest level, prolong the block back level by level
(piecewise-constant interpolation), smooth at each level with a
Chebyshev polynomial filter, and finish with one exact Rayleigh-Ritz
projection on the finest level.

Two upgrades over the classic Barnard & Simon recipe (which prolonged a
single vector and smoothed with plain power iteration):

* **Chebyshev-accelerated smoothing.**  A degree-``d`` Chebyshev filter
  damps the unwanted band ``[a, lambda_max]`` uniformly, so error modes
  decay like ``exp(-2 d sqrt(a / lambda_max))`` — exponentially faster
  than the ``(1 - lambda/lambda_max)^d`` of shifted power iteration at
  equal matvec count.  The low edge ``a`` is set adaptively from the
  Rayleigh quotients of the incoming block.
* **Blocked prolongation + final Rayleigh-Ritz.**  Carrying a small
  block (default 4 vectors) instead of one vector keeps *degenerate*
  Fiedler eigenspaces intact — square grids have multiplicity 2, cubes
  multiplicity 3 — and the closing Rayleigh-Ritz projection on the fine
  level extracts the best eigenpair approximations the block spans,
  together with trustworthy residual norms for quality control.

The result approximates the true Fiedler pair — the Ritz value typically
lands well within a percent of ``lambda_2`` — and the induced order is
competitive with exact Spectral LPM at a fraction of the eigensolver
cost, making million-cell grids practical without scipy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ordering import LinearOrder, order_by_values
from repro.core.tie_breaking import tie_break_keys
from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.coarsening import HierarchyCache, coarsen_hierarchy
from repro.graph.laplacian import laplacian, rayleigh_quotient
from repro.graph.traversal import is_connected
from repro.linalg.backends import smallest_eigenpairs
from repro.linalg.operators import canonical_in_span, orthonormalize_block
from repro.linalg.power import deterministic_start
from repro.linalg.sparse import CSRMatrix

#: Ritz values within this relative distance of the smallest one are
#: treated as one (possibly degenerate) eigenspace group.  Looser than
#: the exact backends' grouping tolerance because multilevel Ritz values
#: carry approximation error, not just solver noise.
GROUP_RTOL = 1e-2


@dataclass(frozen=True)
class MultilevelEigenspace:
    """Approximate bottom eigenpairs of a connected graph's Laplacian
    (constant vector excluded), with quality diagnostics."""

    values: np.ndarray       # ascending Ritz values
    vectors: np.ndarray      # matching orthonormal Ritz vectors
    residuals: np.ndarray    # true residual norms ||L y - theta y||
    levels: int              # coarsening levels used
    coarsest_size: int


@dataclass(frozen=True)
class MultilevelResult:
    """The multilevel approximation and its quality diagnostics."""

    order: LinearOrder
    vector: np.ndarray
    rayleigh: float         # quotient of the returned vector
    levels: int             # coarsening levels used
    coarsest_size: int


def _smooth_block(lap: CSRMatrix, block: np.ndarray, degree: int,
                  window_low: float | None = None) -> np.ndarray:
    """Chebyshev-filtered smoothing of a block toward the bottom
    eigenspace of ``lap`` (constant direction projected out).

    Applies ``T_degree(g(L))`` to every column, where ``g`` maps the
    damped band ``[a, b]`` onto ``[-1, 1]`` (``b`` a Gershgorin bound,
    ``a`` = ``window_low``, defaulting to an estimate from the block's
    Rayleigh quotients).  Eigenvalues below ``a`` are amplified
    exponentially in ``degree`` relative to the damped band — the
    Chebyshev replacement for the plain power iteration this function
    used to run.  Callers that track eigenvalue estimates (the
    multilevel hierarchy) should pass ``window_low`` explicitly:
    prolongation error inflates Rayleigh quotients, and an inflated
    ``a`` lets exactly the low-frequency error the filter exists to
    remove pass through undamped.
    """
    n = lap.n
    ones = np.ones(n) / np.sqrt(n)
    x = block - ones[:, None] * (ones @ block)
    norms = np.linalg.norm(x, axis=0)
    keep = norms > 1e-12
    if not keep.any():
        return x
    x = x[:, keep] / norms[keep]
    if degree <= 0:
        return x
    b = lap.gershgorin_upper_bound()
    if b <= 0:
        return x
    lx = lap.matmat(x)
    if window_low is None:
        quotients = np.einsum("ij,ij->j", x, lx)
        window_low = 2.0 * float(quotients.max())
    # Floor the damped band's low edge so the filter stays *selective*:
    # the bottom modes are amplified by roughly cosh(2 d sqrt(a/b))
    # relative to the band, so an ``a`` far below ``b / d^2`` buys no
    # separation per sweep no matter how small the wanted eigenvalues
    # are.  The floor fixes the per-sweep gain around cosh(9) ~ 4000x
    # and leaves eigenvalue-estimate-based lower edges in force only
    # when they are the binding constraint.
    floor = b * (4.5 / max(degree, 1)) ** 2
    a = float(np.clip(max(window_low, floor), 1e-12, 0.5 * b))
    half_width = (b - a) / 2.0
    center = (b + a) / 2.0
    x_prev = x
    x_cur = (lx - center * x) / half_width
    for _ in range(degree - 1):
        x_next = (2.0 / half_width) * (lap.matmat(x_cur) - center * x_cur)
        x_next -= x_prev
        x_next -= ones[:, None] * (ones @ x_next)
        scale = float(np.abs(x_next).max())
        if scale > 1e100:
            x_next /= scale
            x_cur /= scale
        x_prev, x_cur = x_cur, x_next
    return x_cur


def _rayleigh_ritz(lap: CSRMatrix, block: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact Rayleigh-Ritz of ``lap`` on the span of ``block``.

    Returns ``(theta, vectors, residuals)`` with ascending Ritz values,
    orthonormal Ritz vectors (all orthogonal to the constant vector),
    and true residual norms ``||L y - theta y||``.
    """
    n = lap.n
    ones = np.ones(n) / np.sqrt(n)
    q = orthonormalize_block(block, against=ones[:, None])
    if q.shape[1] == 0:  # block collapsed; seed a fresh probe
        q = orthonormalize_block(
            deterministic_start(n)[:, None], against=ones[:, None]
        )
    lq = lap.matmat(q)
    h = q.T @ lq
    h = (h + h.T) / 2.0
    theta, s = np.linalg.eigh(h)
    vectors = q @ s
    residual_block = lq @ s - vectors * theta[None, :]
    residuals = np.linalg.norm(residual_block, axis=0)
    return theta, vectors, residuals


class MultilevelPreconditioner:
    """Symmetric multilevel V-cycle approximating the Laplacian
    pseudo-inverse on the complement of the constant vector.

    Reuses the eigensolver hierarchy (heavy-edge matching coarsening,
    piecewise-constant transfer) as an AMG-style preconditioner for the
    iterative eigensolvers: one application runs a V-cycle — Chebyshev
    pre-smooth, restrict the residual, recurse, prolong the coarse
    correction, Chebyshev post-smooth — with an exact (dense
    pseudo-inverse) solve on the coarsest level.  Using the *same*
    polynomial smoother before and after the coarse correction, together
    with the Galerkin coarse operators the matching transfer induces,
    makes the cycle a symmetric positive operator on the complement of
    the constant vector — the property CG and LOBPCG require of a
    preconditioner.

    The Chebyshev smoother approximates ``L^{-1}`` on the upper spectral
    band ``[b / band_ratio, b]`` (``b`` a Gershgorin bound), which is
    exactly the complement of what the coarse correction handles; the
    resulting polynomial is positive on ``(0, b]``, so symmetry survives
    the smoothing.

    Parameters
    ----------
    graph:
        The graph whose Laplacian the preconditioner targets.  Need not
        be connected (the coarsest pseudo-inverse annihilates every
        component indicator), though production use is connected.
    min_size:
        Coarsening stop; the coarsest Laplacian is pseudo-inverted
        densely.
    smooth_degree:
        Degree of the Chebyshev smoothing polynomial per pre/post sweep.
    band_ratio:
        The smoothed band is ``[b / band_ratio, b]``.
    hierarchy_cache:
        Optional :class:`~repro.graph.coarsening.HierarchyCache` shared
        with the eigensolvers — the preconditioner then reuses the same
        matching chain instead of re-coarsening.
    """

    def __init__(self, graph: Graph, min_size: int = 64,
                 smooth_degree: int = 3, band_ratio: float = 30.0,
                 hierarchy_cache: HierarchyCache | None = None):
        if smooth_degree < 1:
            raise InvalidParameterError(
                f"smooth_degree must be >= 1, got {smooth_degree}"
            )
        if band_ratio <= 1.0:
            raise InvalidParameterError(
                f"band_ratio must be > 1, got {band_ratio}"
            )
        if hierarchy_cache is not None:
            levels = hierarchy_cache.hierarchy(graph, min_size=min_size)
        else:
            levels = coarsen_hierarchy(graph, min_size=min_size)
        all_maps = [level.fine_to_coarse for level in levels]
        all_graphs = [graph] + [level.graph for level in levels]
        # Fuse runs of matching levels on the *large* end of the chain:
        # composing piecewise-constant transfers is another piecewise-
        # constant transfer, and the Galerkin operator the composition
        # induces is exactly the descendant level's Laplacian
        # (P2^T (P1^T L P1) P2 = the grandchild's, and so on), so
        # intermediate levels can be dropped without losing coarse-
        # operator consistency.  Matching coarsens slowly (~1.7x per
        # level); fusing triples gives a ~5x ratio that roughly halves
        # the V-cycle's smoothing work on a 256^2 grid for a few extra
        # outer iterations — a large net win where levels are expensive.
        # Small levels are kept unfused: they cost nearly nothing to
        # smooth, and on small problems (1-D chains especially) the
        # thinned coarse space measurably degrades the correction —
        # to the point of stalling LOBPCG just above its tolerance.
        fuse, fuse_min_size = 3, 4096
        maps, graphs = [], [all_graphs[0]]
        i = 0
        while i < len(all_maps):
            take = (min(fuse, len(all_maps) - i)
                    if all_graphs[i].num_vertices >= fuse_min_size else 1)
            composed = all_maps[i]
            for j in range(1, take):
                composed = all_maps[i + j][composed]
            maps.append(composed)
            graphs.append(all_graphs[i + take])
            i += take
        # Smoothing degrees per level: the finest level pays for every
        # extra polynomial term in full-size matvecs, so it keeps the
        # caller's degree; coarser levels are cheap enough that two more
        # terms cost almost nothing and measurably sharpen the coarse
        # correction (fewer outer LOBPCG/CG iterations for the same
        # fine-level work per cycle).
        self._degree = int(smooth_degree)
        self._degrees = [int(smooth_degree)] + \
            [int(smooth_degree) + 2] * len(maps)
        # Apply the coarse correction twice at the first level small
        # enough that revisiting its whole sub-hierarchy is cheap.  The
        # doubled correction ``2M - MLM`` stays symmetric positive
        # (eigenvalues mu(2 - mu) of the single-cycle mu in (0, 2]), and
        # squares the error-reduction factor of everything below the
        # chosen level — most of the benefit of an exact coarse solve at
        # that size for a sliver of its cost.
        self._double_at = next(
            (idx for idx, g in enumerate(graphs)
             if 0 < idx < len(graphs) - 1
             and g.num_vertices < fuse_min_size), -1)
        self._maps = maps
        self._laps = [laplacian(g) for g in graphs]
        self._bounds = [max(lap.gershgorin_upper_bound(), 1e-300)
                        for lap in self._laps]
        self._band_ratio = float(band_ratio)
        # Pseudo-inverse of the (symmetric PSD) coarsest Laplacian via
        # eigh rather than np.linalg.pinv: same result, but a symmetric
        # eigendecomposition costs a fraction of pinv's SVD — this is
        # the single most expensive step of hierarchy construction.
        dense = self._laps[-1].to_dense()
        w, v = np.linalg.eigh((dense + dense.T) / 2.0)
        cutoff = max(float(w.max()), 0.0) * len(w) * np.finfo(np.float64).eps
        inv_w = np.where(w > cutoff, 1.0 / np.where(w > cutoff, w, 1.0), 0.0)
        self._coarse_inverse = (v * inv_w) @ v.T
        n = graph.num_vertices
        self._ones = np.ones(n) / np.sqrt(n)
        self._cycles = 0

    @property
    def levels(self) -> int:
        """Coarsening levels below the finest (0 = direct dense solve)."""
        return len(self._maps)

    @property
    def cycles(self) -> int:
        """V-cycles applied so far (one per :meth:`apply` call; a block
        application counts once).  A monotone diagnostic counter — the
        observability layer attributes preconditioner work to a solve
        by taking its delta around the solve."""
        return self._cycles

    def _smooth(self, level: int, b: np.ndarray,
                return_residual: bool = False):
        """Chebyshev semi-iteration from zero: ``x ~ L^{-1} b`` on the
        band ``[a, bound]`` (classic three-term recurrence).

        With ``return_residual`` the final residual ``b - L x`` rides
        along for free (the recurrence maintains it anyway); without it
        the last residual update is skipped entirely.  Together the two
        modes cut the V-cycle from ``2 * degree + 2`` operator
        applications per level to ``2 * degree``.
        """
        lap = self._laps[level]
        bound = self._bounds[level]
        degree = self._degrees[level]
        a = bound / self._band_ratio
        theta = 0.5 * (bound + a)
        delta = 0.5 * (bound - a)
        sigma = theta / delta
        rho = 1.0 / sigma
        x = b / theta
        if degree == 1:
            if return_residual:
                r = b - (lap.matmat(x) if b.ndim == 2 else lap.matvec(x))
                return x, r
            return x
        r = b - (lap.matmat(x) if b.ndim == 2 else lap.matvec(x))
        d = x.copy()
        for step in range(degree - 1):
            rho_next = 1.0 / (2.0 * sigma - rho)
            d = (rho_next * rho) * d + (2.0 * rho_next / delta) * r
            x = x + d
            if return_residual or step < degree - 2:
                r = r - (lap.matmat(d) if d.ndim == 2 else lap.matvec(d))
            rho = rho_next
        return (x, r) if return_residual else x

    def _restrict(self, level: int, r: np.ndarray) -> np.ndarray:
        fine_to_coarse = self._maps[level]
        nc = self._laps[level + 1].n
        if r.ndim == 1:
            return np.bincount(fine_to_coarse, weights=r, minlength=nc)
        out = np.empty((nc, r.shape[1]))
        for j in range(r.shape[1]):
            out[:, j] = np.bincount(fine_to_coarse, weights=r[:, j],
                                    minlength=nc)
        return out

    def _cycle(self, level: int, b: np.ndarray) -> np.ndarray:
        if level == len(self._laps) - 1:
            return self._coarse_inverse @ b
        lap = self._laps[level]
        x, r = self._smooth(level, b, return_residual=True)
        coarse_b = self._restrict(level, r)
        e = self._cycle(level + 1, coarse_b)
        if level + 1 == self._double_at:
            # Second sweep of the sub-hierarchy below ``_double_at``
            # (see ``__init__``): one extra pass over levels that are
            # all small, squaring the coarse-correction quality.
            lc = self._laps[level + 1]
            residual = coarse_b - (lc.matmat(e) if e.ndim == 2
                                   else lc.matvec(e))
            e = e + self._cycle(level + 1, residual)
        x = x + e[self._maps[level]]
        r = b - (lap.matmat(x) if x.ndim == 2 else lap.matvec(x))
        return x + self._smooth(level, r)

    def apply(self, b: np.ndarray) -> np.ndarray:
        """One V-cycle: an approximation of ``L^+ b``.

        Accepts a vector or an ``(n, m)`` block.  Input and output are
        projected against the constant vector, so the operator is
        symmetric positive semi-definite with the constant direction as
        its only intended nullspace — safe as a CG/LOBPCG
        preconditioner on the deflated subspace.
        """
        self._cycles += 1
        b = np.asarray(b, dtype=np.float64)
        if b.ndim == 1:
            b = b - self._ones * (self._ones @ b)
            x = self._cycle(0, b)
            return x - self._ones * (self._ones @ x)
        b = b - self._ones[:, None] * (self._ones @ b)
        x = self._cycle(0, b)
        return x - self._ones[:, None] * (self._ones @ x)

    __call__ = apply

    def matvec(self, b: np.ndarray) -> np.ndarray:
        """Alias of :meth:`apply` for operator-protocol callers."""
        return self.apply(b)


def multilevel_eigenspace(graph: Graph, block_size: int = 4,
                          min_size: int = 64, smoothing_steps: int = 40,
                          coarse_backend: str = "dense",
                          hierarchy_cache: HierarchyCache | None = None
                          ) -> MultilevelEigenspace:
    """Approximate bottom Laplacian eigenpairs via coarsen-filter-project.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 vertices.
    block_size:
        Number of vectors carried through the hierarchy (and of Ritz
        pairs returned, spectrum permitting).  Must cover the expected
        ``lambda_2`` multiplicity; 4 handles every grid family in this
        library.
    min_size:
        Coarsening stops at this many vertices; the coarsest block
        eigenproblem is solved exactly.
    smoothing_steps:
        Chebyshev filter degree applied after each prolongation.
    coarse_backend:
        Eigensolver backend for the coarsest solve (must be a
        matrix-level backend, i.e. not ``"multilevel"``).
    hierarchy_cache:
        Optional :class:`~repro.graph.coarsening.HierarchyCache`.  When
        given, the matching/prolongation chain for this graph's topology
        is computed canonically on the unit-weighted structure and
        reused across solves (only contraction and smoothing see the
        actual weights) — deterministic and history-independent; when
        ``None`` the hierarchy is built from scratch with weight-aware
        matching.
    """
    n = graph.num_vertices
    if n < 2:
        raise InvalidParameterError(
            f"multilevel ordering needs at least 2 vertices, got {n}"
        )
    if not is_connected(graph):
        raise GraphStructureError(
            "multilevel Fiedler requires a connected graph; order "
            "components separately"
        )
    if smoothing_steps < 0:
        raise InvalidParameterError(
            f"smoothing_steps must be >= 0, got {smoothing_steps}"
        )
    if block_size < 1:
        raise InvalidParameterError(
            f"block_size must be >= 1, got {block_size}"
        )
    if hierarchy_cache is not None:
        levels = hierarchy_cache.hierarchy(graph, min_size=min_size)
    else:
        levels = coarsen_hierarchy(graph, min_size=min_size)
    graphs = [graph] + [level.graph for level in levels]
    coarsest = graphs[-1]
    nc = coarsest.num_vertices
    k = max(1, min(block_size, nc - 1))
    ones_c = np.ones(nc) / np.sqrt(nc)
    theta, block = smallest_eigenpairs(laplacian(coarsest), k,
                                       backend=coarse_backend,
                                       deflate=[ones_c])
    # Prolong back up; at every level (including the finest) smooth with
    # the Chebyshev filter and realign the block with an exact
    # Rayleigh-Ritz projection.  The per-level projection does two jobs:
    # it rotates prolongation-induced mixing *within* the block span
    # back onto eigenvector approximations, and it refreshes the
    # eigenvalue estimates that set the next filter window.  Windows
    # come from those estimates — not from the incoming block's Rayleigh
    # quotients, which prolongation error inflates by orders of
    # magnitude (see :func:`_smooth_block`).
    theta_max = float(theta[-1])
    lap = None
    for depth in range(len(levels) - 1, -1, -1):
        block = block[levels[depth].fine_to_coarse]
        lap = laplacian(graphs[depth])
        window_low = 8.0 * max(theta_max, 1e-12)
        block = _smooth_block(lap, block, smoothing_steps, window_low)
        theta, block, residuals = _rayleigh_ritz(lap, block)
        theta_max = float(theta[-1])
    if lap is None:
        lap = laplacian(graph)
        block = _smooth_block(lap, block, smoothing_steps,
                              8.0 * max(theta_max, 1e-12))
        theta, block, residuals = _rayleigh_ritz(lap, block)
    # One polish sweep on the finest level: the level loop leaves the
    # *eigenvalues* accurate but the vectors still carry high-frequency
    # residue from the last prolongation; a second filter + projection
    # multiplies that residue by another band-damping factor, which is
    # what makes the residual-based quality bound tight enough to be
    # useful.
    block = _smooth_block(lap, block, smoothing_steps,
                          8.0 * max(theta_max, 1e-12))
    theta, block, residuals = _rayleigh_ritz(lap, block)
    return MultilevelEigenspace(
        values=theta,
        vectors=block,
        residuals=residuals,
        levels=len(levels),
        coarsest_size=nc,
    )


def multilevel_fiedler(graph: Graph, min_size: int = 64,
                       smoothing_steps: int = 40,
                       backend: str = "dense",
                       block_size: int = 4,
                       probe: np.ndarray | None = None,
                       hierarchy_cache: HierarchyCache | None = None
                       ) -> MultilevelResult:
    """Approximate Fiedler vector and order via coarsen-solve-refine.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 vertices.
    min_size:
        Coarsening stops at this many vertices; the coarsest problem is
        solved exactly.
    smoothing_steps:
        Chebyshev filter degree applied after each prolongation.
    backend:
        Eigensolver backend for the coarsest solve.
    block_size:
        Vectors carried through the hierarchy (see
        :func:`multilevel_eigenspace`).
    probe:
        Optional deterministic canonicalization direction for degenerate
        (or near-degenerate) ``lambda_2`` eigenspaces; defaults to the
        fixed quasi-random vector the exact pipeline uses.
    hierarchy_cache:
        Optional coarsening-hierarchy cache (see
        :func:`multilevel_eigenspace`).
    """
    from repro.core.spectral import snap_ties

    n = graph.num_vertices
    space = multilevel_eigenspace(
        graph, block_size=block_size, min_size=min_size,
        smoothing_steps=smoothing_steps, coarse_backend=backend,
        hierarchy_cache=hierarchy_cache,
    )
    theta0 = float(space.values[0])
    group_tol = max(GROUP_RTOL * max(abs(theta0), 1e-12), 1e-10)
    group = np.flatnonzero(space.values <= theta0 + group_tol)
    basis = space.vectors[:, group]
    if probe is None:
        probe = deterministic_start(n)
    vector = canonical_in_span(basis, np.asarray(probe, dtype=np.float64))
    quotient = rayleigh_quotient(graph, vector)
    snapped = snap_ties(vector)
    keys = tie_break_keys("index", n)
    order = order_by_values(snapped, tie_break=keys)
    return MultilevelResult(
        order=order,
        vector=vector,
        rayleigh=float(quotient),
        levels=space.levels,
        coarsest_size=space.coarsest_size,
    )


def multilevel_order(graph: Graph, **kwargs) -> LinearOrder:
    """Just the order from :func:`multilevel_fiedler`."""
    return multilevel_fiedler(graph, **kwargs).order

"""Linear orders: the output type of every mapping in this library.

A :class:`LinearOrder` is a bijection between ``n`` items (grid cells,
graph vertices) and ranks ``0 .. n-1``, stored both ways:

* ``permutation[rank] = item`` — the visit sequence (the paper's ``S``);
* ``ranks[item] = rank`` — the inverse, which metrics consume.

The paper's "one-dimensional distance" between two points is the absolute
difference of their ranks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidParameterError


def _as_readonly(array: np.ndarray) -> np.ndarray:
    array = np.ascontiguousarray(array, dtype=np.int64)
    array.flags.writeable = False
    return array


class LinearOrder:
    """An immutable bijection between items ``0..n-1`` and ranks ``0..n-1``."""

    __slots__ = ("_perm", "_ranks")

    def __init__(self, permutation: Sequence[int]):
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.ndim != 1:
            raise InvalidParameterError(
                f"permutation must be 1-D, got shape {perm.shape}"
            )
        n = len(perm)
        seen = np.zeros(n, dtype=bool)
        if n:
            if perm.min() < 0 or perm.max() >= n:
                raise InvalidParameterError(
                    "permutation entries must lie in [0, n)"
                )
            seen[perm] = True
            if not seen.all():
                raise InvalidParameterError(
                    "permutation has repeated entries"
                )
        ranks = np.empty(n, dtype=np.int64)
        ranks[perm] = np.arange(n)
        self._perm = _as_readonly(perm)
        self._ranks = _as_readonly(ranks)

    @classmethod
    def from_ranks(cls, ranks: Sequence[int]) -> "LinearOrder":
        """Build from the inverse representation ``ranks[item] = rank``."""
        ranks = np.asarray(ranks, dtype=np.int64)
        if ranks.ndim != 1:
            raise InvalidParameterError(
                f"ranks must be 1-D, got shape {ranks.shape}"
            )
        n = len(ranks)
        perm = np.empty(n, dtype=np.int64)
        if n:
            if ranks.min() < 0 or ranks.max() >= n:
                raise InvalidParameterError("ranks must lie in [0, n)")
            perm[ranks] = np.arange(n)
            if len(np.unique(ranks)) != n:
                raise InvalidParameterError("ranks has repeated entries")
        return cls(perm)

    @classmethod
    def identity(cls, n: int) -> "LinearOrder":
        """The identity order (item ``i`` at rank ``i``)."""
        return cls(np.arange(n))

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._perm)

    @property
    def permutation(self) -> np.ndarray:
        """Read-only array: ``permutation[rank] = item``."""
        return self._perm

    @property
    def ranks(self) -> np.ndarray:
        """Read-only array: ``ranks[item] = rank``."""
        return self._ranks

    def rank_of(self, item: int) -> int:
        """Rank of one item."""
        return int(self._ranks[item])

    def item_at(self, rank: int) -> int:
        """Item occupying one rank."""
        return int(self._perm[rank])

    def reversed(self) -> "LinearOrder":
        """The same order traversed backwards."""
        return LinearOrder(self._perm[::-1])

    # ------------------------------------------------------------------
    # Order-comparison utilities (used by tests and ablations)
    # ------------------------------------------------------------------
    def footrule_distance(self, other: "LinearOrder") -> int:
        """Spearman's footrule: ``sum_i |rank_self(i) - rank_other(i)|``."""
        self._check_same_n(other)
        return int(np.abs(self._ranks - other._ranks).sum())

    def displacement(self, other: "LinearOrder") -> np.ndarray:
        """Per-item signed rank difference ``rank_other - rank_self``."""
        self._check_same_n(other)
        return other._ranks - self._ranks

    def agrees_up_to_reversal(self, other: "LinearOrder") -> bool:
        """Whether the two orders are equal or exact reverses.

        The Fiedler vector is only defined up to sign, so spectral orders
        from different backends may legitimately come out reversed.
        """
        self._check_same_n(other)
        return self == other or self == other.reversed()

    def _check_same_n(self, other: "LinearOrder") -> None:
        if other.n != self.n:
            raise InvalidParameterError(
                f"orders have different sizes: {self.n} vs {other.n}"
            )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __reduce__(self):
        # Rebuild through __init__: numpy does not preserve the
        # read-only flag across pickling, and an order crossing a
        # process boundary (the repro.serve IPC protocol) must arrive
        # with its immutability invariant — and its validation — intact.
        return (LinearOrder, (self._perm,))

    def __eq__(self, other) -> bool:
        return (isinstance(other, LinearOrder)
                and np.array_equal(other._perm, self._perm))

    def __hash__(self) -> int:
        return hash(("LinearOrder", self._perm.tobytes()))

    def __repr__(self) -> str:
        if self.n <= 12:
            return f"LinearOrder({[int(v) for v in self._perm]})"
        head = ", ".join(str(int(v)) for v in self._perm[:8])
        return f"LinearOrder([{head}, ...], n={self.n})"


def order_by_values(values: Sequence[float],
                    tie_break: Sequence[int] | None = None) -> LinearOrder:
    """Items sorted ascending by value — Step 5 of the paper's algorithm.

    Equal values are resolved by the ``tie_break`` key array (ascending),
    defaulting to item id, so the result is always deterministic.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise InvalidParameterError(
            f"values must be 1-D, got shape {values.shape}"
        )
    n = len(values)
    if tie_break is None:
        tie_break = np.arange(n)
    else:
        tie_break = np.asarray(tie_break)
        if tie_break.shape != (n,):
            raise InvalidParameterError(
                f"tie_break must have shape ({n},), got {tie_break.shape}"
            )
    # lexsort: last key is primary.
    perm = np.lexsort((tie_break, values))
    return LinearOrder(perm)

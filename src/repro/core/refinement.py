"""Local-search refinement of linear orders.

The Fiedler vector optimizes the *continuous relaxation* of the paper's
Theorem-1 objective; the discrete order obtained by sorting it is a
heuristic whose integer objective can usually still be improved by local
moves.  This module implements deterministic greedy refinement by
adjacent transpositions: repeatedly swap rank-neighbouring items whenever
that strictly lowers the objective, sweeping until a fixed point (or a
pass budget).

This is the natural "future work" extension of the paper — it composes
spectral *global* structure with *local* integer optimization — and the
`ablate_refinement` benchmark quantifies what it buys on the paper's own
metrics.

Supported objectives: ``"two_sum"`` (the discretized Theorem-1 quadratic)
and ``"one_sum"`` (minimum linear arrangement).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph

OBJECTIVES = ("two_sum", "one_sum")


@dataclass(frozen=True)
class RefinementResult:
    """The refined order plus bookkeeping."""

    order: LinearOrder
    initial_cost: float
    final_cost: float
    passes: int
    swaps: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction in [0, 1)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def _order_cost(graph: Graph, ranks: np.ndarray, objective: str) -> float:
    u, v, w = graph.edge_arrays()
    if len(u) == 0:
        return 0.0
    diffs = np.abs(ranks[u] - ranks[v]).astype(np.float64)
    if objective == "two_sum":
        return float((w * diffs * diffs).sum())
    return float((w * diffs).sum())


def _swap_delta(graph: Graph, ranks: np.ndarray, a: int, b: int,
                objective: str) -> float:
    """Cost change from swapping the (rank-adjacent) items ``a``, ``b``."""
    ra, rb = int(ranks[a]), int(ranks[b])
    delta = 0.0
    for item, old, new in ((a, ra, rb), (b, rb, ra)):
        neighbors = graph.neighbors(item)
        weights = graph.neighbor_weights(item)
        for u, w in zip(neighbors, weights):
            if u == a or u == b:
                continue  # the (a, b) edge itself never changes length
            ru = int(ranks[u])
            if objective == "two_sum":
                delta += w * ((new - ru) ** 2 - (old - ru) ** 2)
            else:
                delta += w * (abs(new - ru) - abs(old - ru))
    return float(delta)


def refine_order(graph: Graph, order: LinearOrder,
                 objective: str = "two_sum",
                 max_passes: int = 20) -> RefinementResult:
    """Greedy adjacent-transposition descent from ``order``.

    Deterministic: each pass scans ranks left to right and applies every
    strictly improving swap immediately.  Stops at a fixed point or after
    ``max_passes`` sweeps.  The returned cost never exceeds the input's.
    """
    if objective not in OBJECTIVES:
        raise InvalidParameterError(
            f"unknown objective {objective!r}; expected one of "
            f"{OBJECTIVES}"
        )
    if order.n != graph.num_vertices:
        raise InvalidParameterError(
            f"order covers {order.n} items, graph has "
            f"{graph.num_vertices} vertices"
        )
    if max_passes < 0:
        raise InvalidParameterError(
            f"max_passes must be >= 0, got {max_passes}"
        )
    perm = order.permutation.copy()
    ranks = order.ranks.copy()
    initial_cost = _order_cost(graph, ranks, objective)
    cost = initial_cost
    total_swaps = 0
    passes = 0
    # Strictly-negative threshold with a tiny epsilon so float noise
    # cannot cycle the search.
    epsilon = 1e-9 * max(initial_cost, 1.0)
    for _ in range(max_passes):
        passes += 1
        improved = False
        for position in range(len(perm) - 1):
            a = int(perm[position])
            b = int(perm[position + 1])
            delta = _swap_delta(graph, ranks, a, b, objective)
            if delta < -epsilon:
                perm[position], perm[position + 1] = b, a
                ranks[a], ranks[b] = ranks[b], ranks[a]
                cost += delta
                total_swaps += 1
                improved = True
        if not improved:
            break
    final_order = LinearOrder(perm)
    # Recompute exactly to shed accumulated float error.
    final_cost = _order_cost(graph, final_order.ranks, objective)
    return RefinementResult(
        order=final_order,
        initial_cost=initial_cost,
        final_cost=final_cost,
        passes=passes,
        swaps=total_swaps,
    )

"""The paper's contribution: the Spectral LPM algorithm and its pieces."""

from repro.core.bisection import spectral_bisection_order
from repro.core.components import COMPONENT_ARRANGEMENTS, order_components
from repro.core.extensions import (
    access_pattern_weights,
    add_access_pattern,
    correlated_pairs_from_trace,
    weighted_radius_model,
)
from repro.core.fiedler import FiedlerResult, fiedler_value, fiedler_vector
from repro.core.multilevel import (
    MultilevelEigenspace,
    MultilevelResult,
    multilevel_eigenspace,
    multilevel_fiedler,
    multilevel_order,
)
from repro.core.ordering import LinearOrder, order_by_values
from repro.core.refinement import (
    OBJECTIVES,
    RefinementResult,
    refine_order,
)
from repro.core.spectral import (
    DISCONNECTED_POLICIES,
    SpectralConfig,
    SpectralLPM,
    snap_ties,
    spectral_order,
    symmetric_grid_probe,
)
from repro.core.tie_breaking import TIE_BREAK_STRATEGIES, tie_break_keys

__all__ = [
    "COMPONENT_ARRANGEMENTS",
    "DISCONNECTED_POLICIES",
    "FiedlerResult",
    "LinearOrder",
    "MultilevelEigenspace",
    "MultilevelResult",
    "OBJECTIVES",
    "RefinementResult",
    "multilevel_eigenspace",
    "multilevel_fiedler",
    "multilevel_order",
    "refine_order",
    "SpectralConfig",
    "SpectralLPM",
    "TIE_BREAK_STRATEGIES",
    "access_pattern_weights",
    "add_access_pattern",
    "correlated_pairs_from_trace",
    "fiedler_value",
    "fiedler_vector",
    "order_by_values",
    "order_components",
    "snap_ties",
    "spectral_bisection_order",
    "spectral_order",
    "symmetric_grid_probe",
    "tie_break_keys",
    "weighted_radius_model",
]

"""Spectral LPM — the paper's algorithm (Figure 2).

Given a set of multi-dimensional points:

1. model the points as a graph ``G`` (an edge wherever the Manhattan
   distance is 1 — or any of the Section-4 variants);
2. form the Laplacian ``L = D - A``;
3. compute the second-smallest eigenvalue ``lambda_2`` and its
   eigenvector ``x_2`` (the Fiedler vector);
4. assign ``x_2[i]`` to point ``p_i``;
5. the linear order is the sorted order of those values.

:class:`SpectralLPM` packages the pipeline with all the determinism
machinery this library adds (canonical degenerate-eigenspace vectors,
explicit tie-breaks, per-component handling), and exposes entry points for
full grids, sparse point subsets, and arbitrary user graphs — the last
being exactly the Section-4 claim that the mapping "is optimal for the
chosen graph type".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.components import COMPONENT_ARRANGEMENTS, order_components
from repro.core.fiedler import FiedlerResult, fiedler_vector
from repro.core.ordering import LinearOrder, order_by_values
from repro.core.tie_breaking import TIE_BREAK_STRATEGIES, tie_break_keys
from repro.errors import GraphStructureError, InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.graph.builders import grid_graph, induced_grid_graph

DISCONNECTED_POLICIES = ("per-component", "error")


def snap_ties(values: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Collapse floating-point noise into exact ties before sorting.

    Symmetric graphs produce Fiedler vectors with *exactly* tied entries
    in exact arithmetic; in floats the ties reappear as gaps of ~1e-15
    whose sign depends on the eigensolver backend.  Sorting raw values
    would let that noise, not the configured tie-break rule, decide the
    order.  This maps values to integer group ids, where consecutive
    sorted values closer than ``tol`` share a group — far above solver
    noise (~1e-13 across backends) and far below genuine eigenvector
    gaps on any grid this library targets.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    group_of_sorted = np.zeros(len(values), dtype=np.int64)
    if len(values) > 1:
        gaps = np.diff(values[order])
        group_of_sorted[1:] = np.cumsum(gaps > tol)
    groups = np.empty(len(values), dtype=np.int64)
    groups[order] = group_of_sorted
    return groups


def symmetric_grid_probe(grid: Grid) -> np.ndarray:
    """The default canonicalization probe for grid domains.

    On a hyper-cubic grid, ``lambda_2``'s eigenspace is spanned by one
    cosine mode per axis, and the probe decides which combination becomes
    the canonical Fiedler vector.  This probe — the mean-centered sum of
    normalized coordinates — is invariant under axis permutation, so its
    projection weighs every axis mode *equally*: the resulting order
    treats all dimensions alike, which is the fairness property the
    paper's Figure 5b claims (and which the paper's own Figure-3 vector,
    an equal-magnitude diagonal mix, exhibits).
    """
    coords = grid.coordinates().astype(np.float64)
    scale = np.array([max(s - 1, 1) for s in grid.shape], dtype=np.float64)
    probe = (coords / scale).sum(axis=1)
    probe -= probe.mean()
    norm = np.linalg.norm(probe)
    if norm > 0:
        probe /= norm
    return probe


@dataclass(frozen=True)
class SpectralConfig:
    """Configuration of a :class:`SpectralLPM` instance (all defaults match
    the paper's base algorithm).

    Hashable and fully value-typed, so it doubles as a cache identity:
    two ``SpectralLPM`` instances with equal configs (and no custom probe
    or callable weight) produce bit-identical orders for the same domain.
    """

    connectivity: str = "orthogonal"
    radius: int = 1
    weight: str = "unit"
    backend: str = "auto"
    tie_break: str = "index"
    on_disconnected: str = "per-component"
    component_arrangement: str = "by_min_vertex"
    snap_tol: float = 1e-9
    # Extension fields (added after the v1 fingerprint schema froze):
    # the service fingerprint serializes them only at non-default values,
    # so configs that never touch them keep their v1 identity.
    solver_tol: float = 1e-9
    multilevel_tol: float = 0.05


class SpectralLPM:
    """The Spectral Locality-Preserving Mapping algorithm.

    Parameters
    ----------
    connectivity:
        Grid graph model: ``"orthogonal"`` (the paper's default,
        Manhattan-distance-1 edges) or ``"moore"`` (Figure 4's
        8-connectivity, generalized).
    radius:
        Neighbourhood radius of the grid graph (Section-4 weighted model
        uses ``radius > 1``).
    weight:
        Edge-weight model name or callable (see
        :mod:`repro.graph.weights`); the Section-4 footnote model is
        ``"inverse_manhattan"``.
    backend:
        Eigensolver backend: ``"auto"``, ``"dense"``, ``"lanczos"``,
        ``"shift_invert"``, ``"lobpcg"``, ``"scipy"``, or
        ``"multilevel"``.  Guidance:

        * ``"auto"`` (default) — dense up to
          :data:`~repro.linalg.backends.DENSE_CUTOFF` vertices, then
          scipy shift-invert; without scipy, preconditioned LOBPCG
          above :data:`~repro.linalg.backends.LOBPCG_CUTOFF` vertices
          and the in-house Lanczos in between; the multilevel
          approximation above
          :data:`~repro.linalg.backends.MULTILEVEL_CUTOFF` vertices
          whenever it meets its relative-residual quality bound.
        * ``"dense"`` — exact and simple; the oracle the others are
          tested against.  O(n^3), so only for small graphs.
        * ``"lanczos"`` — thick-restart Lanczos, pure numpy.  Exact (to
          solver tolerance) and dependency-free at any size.
        * ``"shift_invert"`` — inner-outer shift-invert Lanczos, pure
          numpy: few outer iterations, each an inner deflated-CG solve
          preconditioned by the multilevel V-cycle.
        * ``"lobpcg"`` — blocked LOBPCG with the same multilevel
          V-cycle preconditioner; the fastest pure-numpy option on
          large graphs.  Both preconditioned backends fall back to
          ``"lanczos"`` when a solve misses its residual tolerance.
        * ``"scipy"`` — fastest exact option for large graphs; requires
          the ``[perf]`` extra.
        * ``"multilevel"`` — coarsen-solve-refine approximation: orders
          of magnitude faster on huge graphs, with a documented quality
          tolerance instead of solver-precision guarantees (exact
          symmetry ties may resolve differently than under the exact
          backends).
    tie_break:
        How equal Fiedler entries are ordered (``"index"`` or ``"bfs"``).
    probe:
        Optional canonicalization probe for degenerate eigenspaces; see
        :func:`repro.core.fiedler.fiedler_vector`.
    on_disconnected:
        ``"per-component"`` orders each component separately (default);
        ``"error"`` raises :class:`~repro.errors.GraphStructureError`.
    component_arrangement:
        Component concatenation policy (see
        :mod:`repro.core.components`).
    snap_tol:
        Fiedler entries closer than this are treated as exact ties (see
        :func:`snap_ties`); 0 disables snapping.
    solver_tol:
        Residual tolerance handed to the exact eigensolver backends
        (see :func:`repro.core.fiedler.fiedler_vector`); must be > 0.
        The default matches
        :data:`~repro.linalg.backends.DEFAULT_SOLVER_TOL`.
    multilevel_tol:
        Relative-residual quality bound for accepting a multilevel
        answer under ``backend="auto"``; must be > 0.  The default
        matches :data:`~repro.linalg.backends.MULTILEVEL_QUALITY_RTOL`.
    hierarchy_cache:
        Optional :class:`~repro.graph.coarsening.HierarchyCache` shared
        with other instances: the multilevel backend then reuses
        matching/prolongation chains across solves of the same topology.
        ``None`` (the default) coarsens from scratch every solve.

    Examples
    --------
    >>> from repro.geometry import Grid
    >>> order = SpectralLPM().order_grid(Grid((3, 3)))
    >>> sorted(order.permutation) == list(range(9))
    True
    """

    def __init__(self, connectivity="orthogonal", radius: int = 1,
                 weight="unit", backend: str = "auto",
                 tie_break: str = "index",
                 probe: np.ndarray | None = None,
                 on_disconnected: str = "per-component",
                 component_arrangement: str = "by_min_vertex",
                 snap_tol: float = 1e-9,
                 solver_tol: float = 1e-9,
                 multilevel_tol: float = 0.05,
                 hierarchy_cache=None):
        if tie_break not in TIE_BREAK_STRATEGIES:
            raise InvalidParameterError(
                f"unknown tie_break {tie_break!r}; "
                f"expected one of {TIE_BREAK_STRATEGIES}"
            )
        if on_disconnected not in DISCONNECTED_POLICIES:
            raise InvalidParameterError(
                f"unknown on_disconnected {on_disconnected!r}; "
                f"expected one of {DISCONNECTED_POLICIES}"
            )
        if component_arrangement not in COMPONENT_ARRANGEMENTS:
            raise InvalidParameterError(
                f"unknown component_arrangement {component_arrangement!r}; "
                f"expected one of {COMPONENT_ARRANGEMENTS}"
            )
        self._connectivity = connectivity
        self._radius = int(radius)
        self._weight = weight
        self._backend = backend
        self._tie_break = tie_break
        self._probe = probe
        self._on_disconnected = on_disconnected
        self._component_arrangement = component_arrangement
        if snap_tol < 0:
            raise InvalidParameterError(
                f"snap_tol must be >= 0, got {snap_tol}"
            )
        self._snap_tol = float(snap_tol)
        if not solver_tol > 0:
            raise InvalidParameterError(
                f"solver_tol must be > 0, got {solver_tol}"
            )
        self._solver_tol = float(solver_tol)
        if not multilevel_tol > 0:
            raise InvalidParameterError(
                f"multilevel_tol must be > 0, got {multilevel_tol}"
            )
        self._multilevel_tol = float(multilevel_tol)
        self._hierarchy_cache = hierarchy_cache

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: SpectralConfig,
                    hierarchy_cache=None) -> "SpectralLPM":
        """Instantiate the algorithm a :class:`SpectralConfig` describes.

        The round-trip invariant ``SpectralLPM.from_config(lpm.config)``
        reproduces ``lpm``'s behavior exactly whenever ``lpm`` is
        :attr:`cacheable` — which is what lets services key artifacts by
        config and recompute on miss.
        """
        return cls(
            connectivity=config.connectivity,
            radius=config.radius,
            weight=config.weight,
            backend=config.backend,
            tie_break=config.tie_break,
            on_disconnected=config.on_disconnected,
            component_arrangement=config.component_arrangement,
            snap_tol=config.snap_tol,
            solver_tol=config.solver_tol,
            multilevel_tol=config.multilevel_tol,
            hierarchy_cache=hierarchy_cache,
        )

    @property
    def config(self) -> SpectralConfig:
        """The (hashable) configuration, for caching and reporting.

        A callable weight model is rendered as ``"callable:<name>"`` —
        deliberately *not* a registered weight name, so a config lifted
        off a non-:attr:`cacheable` instance can never silently resolve
        to a same-named registry model: feeding it back through
        :meth:`from_config` fails loudly at graph-build time instead.
        """
        weight = (self._weight if isinstance(self._weight, str)
                  else "callable:"
                  + getattr(self._weight, "__name__", "custom"))
        return SpectralConfig(
            connectivity=str(self._connectivity),
            radius=self._radius,
            weight=weight,
            backend=self._backend,
            tie_break=self._tie_break,
            on_disconnected=self._on_disconnected,
            component_arrangement=self._component_arrangement,
            snap_tol=self._snap_tol,
            solver_tol=self._solver_tol,
            multilevel_tol=self._multilevel_tol,
        )

    @property
    def cacheable(self) -> bool:
        """Whether :attr:`config` fully determines this instance's output.

        False when the instance carries state a :class:`SpectralConfig`
        cannot represent — a callable weight model (two different
        callables may share a ``__name__``) or an explicit probe vector.
        Cache layers must bypass storage for non-cacheable instances:
        keying them by config would let distinct algorithms collide.
        """
        return isinstance(self._weight, str) and self._probe is None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def order_graph(self, graph: Graph,
                    probe: np.ndarray | None = None) -> LinearOrder:
        """Steps 2-5 on an arbitrary prebuilt graph (Section 4).

        ``probe`` optionally overrides the degenerate-eigenspace
        canonicalization direction for this call (an explicit probe given
        at construction time still wins).
        """
        return self._order_graph(graph, probe, None)

    def order_graph_with_fiedler(
            self, graph: Graph, probe: np.ndarray | None = None
    ) -> Tuple[LinearOrder, list]:
        """:meth:`order_graph` plus the Fiedler pairs it computed.

        Returns ``(order, results)`` where ``results`` is the list of
        :class:`~repro.core.fiedler.FiedlerResult` produced along the way
        — one per non-trivial connected component, in the order they were
        solved; empty for trivial graphs (``n <= 2`` components only).
        Services persist these as solve provenance next to the cached
        order.
        """
        recorder: list = []
        order = self._order_graph(graph, probe, recorder)
        return order, recorder

    def _order_graph(self, graph: Graph, probe: np.ndarray | None,
                     recorder: list | None) -> LinearOrder:
        n = graph.num_vertices
        if n == 0:
            return LinearOrder(np.empty(0, dtype=np.int64))
        if n == 1:
            return LinearOrder(np.zeros(1, dtype=np.int64))
        effective = self._probe if self._probe is not None else probe

        def order_connected(component: Graph) -> LinearOrder:
            # Per-component calls cannot reuse a whole-graph probe (the
            # vertex count differs), so they fall back to the default.
            sub_probe = (effective
                         if component.num_vertices == n else None)
            return self._order_connected(component, sub_probe, recorder)

        try:
            return order_connected(graph)
        except GraphStructureError:
            if self._on_disconnected == "error":
                raise
            return order_components(
                graph, order_connected,
                arrangement=self._component_arrangement,
            )

    def order_grid(self, grid: Grid) -> LinearOrder:
        """The full pipeline on a complete grid domain.

        The returned order is over row-major flat cell indices.  Unless
        an explicit probe was configured, the axis-symmetric grid probe
        (:func:`symmetric_grid_probe`) canonicalizes degenerate
        eigenspaces so that all dimensions are treated alike.
        """
        graph = self.build_grid_graph(grid)
        return self.order_graph(graph, probe=symmetric_grid_probe(grid))

    def order_grid_with_fiedler(self, grid: Grid
                                ) -> Tuple[LinearOrder, list]:
        """:meth:`order_grid` plus the Fiedler pairs it computed.

        See :meth:`order_graph_with_fiedler` for the result convention.
        """
        graph = self.build_grid_graph(grid)
        return self.order_graph_with_fiedler(
            graph, probe=symmetric_grid_probe(grid))

    def order_points(self, grid: Grid,
                     cell_indices: Sequence[int]
                     ) -> Tuple[LinearOrder, np.ndarray]:
        """The pipeline on a sparse subset of grid cells.

        Returns ``(order, cells)``: ``cells`` is the ascending array of
        distinct flat cell indices actually ordered, and ``order`` is over
        positions in that array.  Subsets frequently produce disconnected
        graphs; the ``on_disconnected`` policy applies.
        """
        graph, cells = induced_grid_graph(
            grid, cell_indices, connectivity=self._connectivity,
            radius=self._radius, weight=self._weight,
        )
        return self.order_graph(graph), cells

    def fiedler(self, graph: Graph) -> FiedlerResult:
        """Expose the Fiedler pair for a connected graph (diagnostics)."""
        return fiedler_vector(graph, backend=self._backend,
                              probe=self._probe,
                              multilevel_tol=self._multilevel_tol,
                              solver_tol=self._solver_tol,
                              hierarchy_cache=self._hierarchy_cache)

    def build_grid_graph(self, grid: Grid) -> Graph:
        """Step 1: the configured graph model of a grid domain."""
        return grid_graph(grid, connectivity=self._connectivity,
                          radius=self._radius, weight=self._weight)

    # ------------------------------------------------------------------
    def _order_connected(self, graph: Graph,
                         probe: np.ndarray | None = None,
                         recorder: list | None = None) -> LinearOrder:
        n = graph.num_vertices
        if n == 1:
            return LinearOrder(np.zeros(1, dtype=np.int64))
        if n == 2:
            # lambda_2 = 2w with vector (+, -)/sqrt(2); with only two
            # items the stable order is by vertex id.
            return LinearOrder(np.array([0, 1]))
        result = fiedler_vector(graph, backend=self._backend, probe=probe,
                                multilevel_tol=self._multilevel_tol,
                                solver_tol=self._solver_tol,
                                hierarchy_cache=self._hierarchy_cache)
        if recorder is not None:
            recorder.append(result)
        snapped = snap_ties(result.vector, tol=self._snap_tol)
        keys = tie_break_keys(self._tie_break, n, values=result.vector,
                              graph=graph)
        return order_by_values(snapped, tie_break=keys)

    def __repr__(self) -> str:
        return f"SpectralLPM({self.config})"


def spectral_order(domain, **kwargs) -> LinearOrder:
    """Convenience one-call API.

    ``domain`` may be a :class:`~repro.geometry.Grid` (orders every cell)
    or a :class:`~repro.graph.Graph` (orders its vertices).  Keyword
    arguments configure :class:`SpectralLPM`.
    """
    algorithm = SpectralLPM(**kwargs)
    if isinstance(domain, Grid):
        return algorithm.order_grid(domain)
    if isinstance(domain, Graph):
        return algorithm.order_graph(domain)
    raise InvalidParameterError(
        f"domain must be a Grid or Graph, got {type(domain).__name__}"
    )

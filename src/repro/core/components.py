"""Ordering disconnected graphs component by component.

The Fiedler vector of a disconnected graph is degenerate (``lambda_2 = 0``
with component-indicator eigenvectors) and carries no intra-component
locality information.  The principled treatment — and this library's
default — is to order each connected component with Spectral LPM
independently and concatenate the component orders.

The concatenation sequence is itself a policy:

``"by_min_vertex"``
    Components appear in ascending order of their smallest vertex id
    (deterministic, input-order friendly — the default).
``"by_size"``
    Largest component first (ties by smallest vertex id), which packs the
    bulk of the data contiguously.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.traversal import component_vertex_lists, connected_components

COMPONENT_ARRANGEMENTS = ("by_min_vertex", "by_size")

OrderFn = Callable[[Graph], LinearOrder]


def order_components(graph: Graph, order_fn: OrderFn,
                     arrangement: str = "by_min_vertex") -> LinearOrder:
    """Order every connected component with ``order_fn`` and concatenate.

    ``order_fn`` receives each component as a standalone graph (vertices
    relabelled ``0..k-1``) and must return a :class:`LinearOrder` on it.
    """
    if arrangement not in COMPONENT_ARRANGEMENTS:
        raise InvalidParameterError(
            f"unknown arrangement {arrangement!r}; "
            f"expected one of {COMPONENT_ARRANGEMENTS}"
        )
    labels, count = connected_components(graph)
    groups: List[np.ndarray] = component_vertex_lists(labels, count)
    if arrangement == "by_size":
        groups.sort(key=lambda g: (-len(g), int(g.min())))
    else:
        groups.sort(key=lambda g: int(g.min()))
    pieces: List[np.ndarray] = []
    for vertices in groups:
        sub, original_ids = graph.subgraph(vertices)
        sub_order = order_fn(sub)
        pieces.append(original_ids[sub_order.permutation])
    permutation = (np.concatenate(pieces) if pieces
                   else np.empty(0, dtype=np.int64))
    return LinearOrder(permutation)

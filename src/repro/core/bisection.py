"""Recursive spectral bisection ordering.

The paper's optimality argument leans on Chan, Ciarlet & Szeto's result
about *median-cut spectral bisection* (its reference [1]).  That result
suggests a different way to turn Fiedler vectors into a linear order:
instead of sorting one global Fiedler vector (Spectral LPM), recursively
split the graph at the Fiedler median and concatenate the two halves'
recursive orders.

The two coincide on paths but genuinely differ on grids: bisection
re-solves an eigenproblem *inside* each half, so later splits adapt to
the subgraph geometry, at the price of more eigensolves and the same
fragment-boundary risk the paper attributes to fractals (each cut is
final).  Including it makes the "global vs divide-and-conquer" trade-off
measurable — see the ``obj_arrangement`` and ``ablate_bisection``
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.fiedler import fiedler_vector
from repro.core.ordering import LinearOrder
from repro.core.components import order_components
from repro.core.spectral import snap_ties
from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.traversal import is_connected


def _bisection_permutation(graph: Graph, backend: str,
                           leaf_size: int) -> np.ndarray:
    """Vertex ids of a connected graph in recursive-bisection order."""
    n = graph.num_vertices
    if n <= leaf_size or n <= 2:
        if n <= 2:
            return np.arange(n)
        vector = fiedler_vector(graph, backend=backend).vector
        return np.lexsort((np.arange(n), snap_ties(vector)))
    vector = fiedler_vector(graph, backend=backend).vector
    # Median cut with deterministic tie handling: snap float noise into
    # exact ties (gap-based, so backend noise of ~1e-13 cannot flip a
    # pair the way decimal rounding can), then sort by (tie group, id)
    # and split at n//2 so equal-median vertices distribute stably.
    by_value = np.lexsort((np.arange(n), snap_ties(vector)))
    left_ids = np.sort(by_value[: n // 2])
    right_ids = np.sort(by_value[n // 2:])
    pieces = []
    for ids in (left_ids, right_ids):
        sub, original = graph.subgraph(ids)
        if is_connected(sub):
            sub_perm = _bisection_permutation(sub, backend, leaf_size)
        else:
            # A cut can disconnect a half; order its components
            # independently (same policy as SpectralLPM).
            sub_order = order_components(
                sub,
                lambda g: LinearOrder(
                    _bisection_permutation(g, backend, leaf_size)),
            )
            sub_perm = sub_order.permutation
        pieces.append(original[sub_perm])
    return np.concatenate(pieces)


def spectral_bisection_order(graph: Graph, backend: str = "auto",
                             leaf_size: int = 8) -> LinearOrder:
    """Order a graph by recursive median-cut spectral bisection.

    Parameters
    ----------
    graph:
        Any graph; disconnected inputs are ordered per component.
    backend:
        Eigensolver backend for every (sub)problem.
    leaf_size:
        Subgraphs at or below this size are ordered by a single Fiedler
        sort instead of further splitting.
    """
    if leaf_size < 2:
        raise InvalidParameterError(
            f"leaf_size must be >= 2, got {leaf_size}"
        )
    n = graph.num_vertices
    if n == 0:
        return LinearOrder(np.empty(0, dtype=np.int64))
    if is_connected(graph):
        return LinearOrder(_bisection_permutation(graph, backend,
                                                  leaf_size))
    return order_components(
        graph,
        lambda g: LinearOrder(_bisection_permutation(g, backend,
                                                     leaf_size)),
    )

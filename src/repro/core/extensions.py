"""Section-4 extensibility features.

The paper highlights two ways to steer Spectral LPM beyond plain grid
adjacency:

* **Access-pattern edges** — "whenever point ``p`` is accessed, point
  ``q`` will be accessed soon afterwards": add edge ``(p, q)`` so the
  mapping treats them as if their Manhattan distance were 1.  With a
  weighted graph the edge weight expresses how strongly they should be
  co-located.
* **Alternative graph models** — 8-connectivity (Figure 4) or the
  weighted-radius model of the footnote
  (``w_ij = 1 / manhattan(p_i, p_j)`` for pairs within a radius).

This module provides those constructions plus a small trace-mining helper
that derives access-pattern pairs from an observed access sequence —
the "(from experience)" part of the paper's scenario.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.graph.builders import grid_graph


def add_access_pattern(graph: Graph,
                       pairs: Iterable[Tuple[int, int]],
                       weight: float = 1.0) -> Graph:
    """A new graph with correlated-access edges layered in.

    Each pair ``(p, q)`` becomes an edge of the given weight; existing
    edges keep the larger of their old and new weights.
    """
    if weight <= 0:
        raise InvalidParameterError(
            f"access-pattern weight must be positive, got {weight}"
        )
    pair_list = [(int(p), int(q)) for p, q in pairs]
    if not pair_list:
        return graph
    weights = [weight] * len(pair_list)
    return graph.with_edges_added(pair_list, weights,
                                  duplicate_policy="max")


def weighted_radius_model(grid: Grid, radius: int = 2) -> Graph:
    """The footnote's weighted grid model.

    Edges join every pair of cells with Manhattan distance ``<= radius``;
    the weight of an edge at distance ``d`` is ``1/d``, so the Theorem-1
    objective becomes ``sum (x_i - x_j)^2 / dist(p_i, p_j)``.
    """
    if radius < 1:
        raise InvalidParameterError(f"radius must be >= 1, got {radius}")
    return grid_graph(grid, connectivity="orthogonal", radius=radius,
                      weight="inverse_manhattan")


def correlated_pairs_from_trace(trace: Sequence[int],
                                window: int = 1,
                                min_support: int = 2,
                                top_k: int | None = None
                                ) -> List[Tuple[int, int, int]]:
    """Mine access-pattern pairs from an access trace.

    Counts unordered co-occurrences of distinct items within ``window``
    positions of each other in ``trace`` and returns pairs seen at least
    ``min_support`` times as ``(p, q, support)`` triples, sorted by
    descending support (ties by pair id for determinism).  Feed the pairs
    to :func:`add_access_pattern`, optionally weighting by support.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if min_support < 1:
        raise InvalidParameterError(
            f"min_support must be >= 1, got {min_support}"
        )
    counts: Counter = Counter()
    trace = [int(v) for v in trace]
    for i, p in enumerate(trace):
        for j in range(i + 1, min(i + window + 1, len(trace))):
            q = trace[j]
            if q != p:
                counts[(min(p, q), max(p, q))] += 1
    ranked = sorted(
        ((pair[0], pair[1], support)
         for pair, support in counts.items() if support >= min_support),
        key=lambda t: (-t[2], t[0], t[1]),
    )
    if top_k is not None:
        ranked = ranked[:top_k]
    return ranked


def access_pattern_weights(pairs: Sequence[Tuple[int, int, int]],
                           base_weight: float = 1.0) -> Tuple[
                               List[Tuple[int, int]], np.ndarray]:
    """Convert mined ``(p, q, support)`` triples into edges + weights.

    Weights scale linearly with support, normalized so the most frequent
    pair gets ``base_weight``.
    """
    if not pairs:
        return [], np.empty(0)
    supports = np.array([s for _, _, s in pairs], dtype=np.float64)
    weights = base_weight * supports / supports.max()
    edges = [(p, q) for p, q, _ in pairs]
    return edges, weights

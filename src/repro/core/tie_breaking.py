"""Deterministic tie-breaking for equal Fiedler-vector entries.

Step 5 of the paper sorts points by their Fiedler entries but does not say
how equal entries are ordered — and on symmetric graphs exact ties are
common (e.g. the center of an odd grid sits at 0).  Ranks must be a
permutation, so ties have to be broken somehow; doing it deterministically
is what makes spectral orders reproducible.

Strategies
----------
``"index"``
    Ascending vertex id — the simplest stable rule (default).
``"bfs"``
    Position in a breadth-first traversal started from the vertex with
    the smallest Fiedler entry.  Ties then resolve toward graph
    proximity, which keeps tied vertices spatially coherent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_order

TIE_BREAK_STRATEGIES = ("index", "bfs")


def tie_break_keys(strategy: str, n: int, values: np.ndarray | None = None,
                   graph: Graph | None = None) -> np.ndarray:
    """Secondary sort keys for :func:`repro.core.ordering.order_by_values`.

    Parameters
    ----------
    strategy:
        One of :data:`TIE_BREAK_STRATEGIES`.
    n:
        Number of items.
    values:
        The primary values (required by ``"bfs"`` to pick its start).
    graph:
        The graph (required by ``"bfs"``).
    """
    if strategy == "index":
        return np.arange(n)
    if strategy == "bfs":
        if graph is None or values is None:
            raise InvalidParameterError(
                "the 'bfs' tie-break needs both the graph and the values"
            )
        if graph.num_vertices != n or len(values) != n:
            raise InvalidParameterError(
                "graph/values size mismatch with n"
            )
        start = int(np.argmin(values))
        visit = bfs_order(graph, start)
        keys = np.full(n, n, dtype=np.int64)  # unreached vertices last
        keys[visit] = np.arange(len(visit))
        return keys
    raise InvalidParameterError(
        f"unknown tie-break strategy {strategy!r}; "
        f"expected one of {TIE_BREAK_STRATEGIES}"
    )

"""Fiedler value and vector computation (Steps 2-3 of the paper).

For a connected graph with Laplacian ``L``, the *Fiedler value* is the
second-smallest eigenvalue ``lambda_2`` (the algebraic connectivity,
Fiedler 1973) and the *Fiedler vector* is a corresponding eigenvector —
the minimizer of the paper's Theorem-1 objective among unit vectors
orthogonal to the constant vector (Theorems 2-3).

Degenerate eigenspaces
----------------------
``lambda_2`` of highly symmetric graphs is often *not simple*: for the
``s x s`` grid it has multiplicity 2 (the x- and y-cosine modes), and for a
``d``-cube grid multiplicity ``d``.  Every vector in the eigenspace attains
the same (optimal) objective value, but different eigensolvers return
different bases, so a naive implementation is non-deterministic exactly on
the paper's own examples.  We canonicalize: compute the full eigenspace
(growing ``k`` until the eigenvalue group is closed), project a fixed probe
vector onto it, and fix the sign.  The result is deterministic and
backend-independent up to floating-point noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.laplacian import laplacian
from repro.graph.traversal import is_connected
from repro.linalg.backends import smallest_eigenpairs
from repro.linalg.power import deterministic_start


@dataclass(frozen=True)
class FiedlerResult:
    """The Fiedler pair plus diagnostics.

    Attributes
    ----------
    value:
        The algebraic connectivity ``lambda_2``.
    vector:
        The canonical unit Fiedler vector (orthogonal to constant).
    multiplicity:
        Dimension of the ``lambda_2`` eigenspace that was detected.
    eigenvalues:
        All eigenvalues computed on the way (ascending, excludes the
        trivial 0), useful for spectral-gap diagnostics.
    backend:
        The eigensolver backend that produced the result.
    """

    value: float
    vector: np.ndarray
    multiplicity: int
    eigenvalues: np.ndarray
    backend: str


def _canonicalize(basis: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """A deterministic unit vector in the span of ``basis`` columns.

    The sign comes for free: the projection of the probe onto the
    eigenspace satisfies ``probe @ v > 0`` by construction, so two
    backends that agree on the eigenspace agree on the vector *including
    its sign* (an explicit largest-entry sign rule would be unstable
    whenever symmetric eigenvectors make two entries equal in magnitude).
    """
    # Re-orthonormalize: backend eigenvectors are orthonormal only to
    # solver tolerance, and exactly orthonormal columns make the
    # projection below well-conditioned.
    q, _ = np.linalg.qr(basis)
    projected = q @ (q.T @ probe)
    norm = np.linalg.norm(projected)
    if norm < 1e-8:
        # The probe is (numerically) orthogonal to the eigenspace; fall
        # back to alternative deterministic probes, then to the first
        # basis vector with a first-significant-entry sign rule.
        for salt in (3, 7, 11):
            candidate = q @ (q.T @ deterministic_start(len(basis), salt))
            norm = np.linalg.norm(candidate)
            if norm >= 1e-8:
                projected = candidate
                break
        else:
            projected = q[:, 0]
            threshold = 0.5 * np.abs(projected).max()
            anchor = int(np.argmax(np.abs(projected) >= threshold))
            if projected[anchor] < 0:
                projected = -projected
            norm = 1.0
    return projected / np.linalg.norm(projected)


def fiedler_vector(graph: Graph, backend: str = "auto",
                   probe: np.ndarray | None = None,
                   rtol: float = 1e-6) -> FiedlerResult:
    """The canonical Fiedler pair of a connected graph.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 vertices.
    backend:
        Eigensolver backend (see :mod:`repro.linalg.backends`).
    probe:
        Optional deterministic direction used to pick a canonical vector
        inside a degenerate eigenspace.  Defaults to a fixed quasi-random
        vector; pass e.g. a coordinate functional to bias the choice.
    rtol:
        Relative tolerance for grouping eigenvalues into the ``lambda_2``
        eigenspace.

    Raises
    ------
    GraphStructureError
        If the graph is disconnected (``lambda_2 = 0`` there; order the
        components separately — see :mod:`repro.core.components`).
    """
    n = graph.num_vertices
    if n < 2:
        raise InvalidParameterError(
            f"the Fiedler vector needs at least 2 vertices, got {n}"
        )
    if not is_connected(graph):
        raise GraphStructureError(
            "graph is disconnected: lambda_2 = 0 and the Fiedler vector "
            "is a component indicator; use per-component ordering instead"
        )
    if probe is None:
        probe = deterministic_start(n)
    else:
        probe = np.asarray(probe, dtype=np.float64)
        if probe.shape != (n,):
            raise InvalidParameterError(
                f"probe must have shape ({n},), got {probe.shape}"
            )

    lap = laplacian(graph)
    ones = np.ones(n) / np.sqrt(n)
    # With the constant direction deflated, the bottom of the spectrum is
    # lambda_2 <= lambda_3 <= ...; grow k until the lambda_2 group closes.
    k = min(n - 1, 4)
    while True:
        values, vectors = smallest_eigenpairs(lap, k, backend=backend,
                                              deflate=[ones])
        lambda2 = float(values[0])
        tol = max(rtol * max(abs(lambda2), 1.0), 1e-10)
        in_group = values <= lambda2 + tol
        if in_group.all() and k < n - 1:
            k = min(n - 1, 2 * k)
            continue
        break
    group = np.flatnonzero(in_group)
    basis = vectors[:, group]
    # Guard against solver drift: project the eigenspace basis against the
    # constant direction once more, then orthonormalize.
    basis = basis - ones[:, None] * (ones @ basis)
    basis, _ = np.linalg.qr(basis)
    # Iterative backends can return fewer copies of a degenerate
    # eigenvalue than its true multiplicity (one Krylov sequence sees each
    # eigenvalue once).  Close the eigenspace by explicit deflation: keep
    # asking for the smallest remaining eigenpair with everything found
    # so far projected out, until the answer rises above lambda_2.
    if backend != "dense":
        while basis.shape[1] < n - 1:
            deflate = [ones] + [basis[:, j] for j in range(basis.shape[1])]
            extra_values, extra_vectors = smallest_eigenpairs(
                lap, 1, backend=backend, deflate=deflate)
            if extra_values[0] > lambda2 + tol:
                break
            fresh = extra_vectors[:, 0]
            for d in deflate:
                fresh = fresh - (d @ fresh) * d
            norm = np.linalg.norm(fresh)
            if norm < 1e-8:
                break
            basis = np.column_stack([basis, fresh / norm])
    vector = _canonicalize(basis, probe)
    return FiedlerResult(
        value=lambda2,
        vector=vector,
        multiplicity=basis.shape[1],
        eigenvalues=values.copy(),
        backend=backend,
    )


def fiedler_value(graph: Graph, backend: str = "auto") -> float:
    """The algebraic connectivity ``lambda_2`` alone."""
    return fiedler_vector(graph, backend=backend).value

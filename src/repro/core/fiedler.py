"""Fiedler value and vector computation (Steps 2-3 of the paper).

For a connected graph with Laplacian ``L``, the *Fiedler value* is the
second-smallest eigenvalue ``lambda_2`` (the algebraic connectivity,
Fiedler 1973) and the *Fiedler vector* is a corresponding eigenvector —
the minimizer of the paper's Theorem-1 objective among unit vectors
orthogonal to the constant vector (Theorems 2-3).

Degenerate eigenspaces
----------------------
``lambda_2`` of highly symmetric graphs is often *not simple*: for the
``s x s`` grid it has multiplicity 2 (the x- and y-cosine modes), and for a
``d``-cube grid multiplicity ``d``.  Every vector in the eigenspace attains
the same (optimal) objective value, but different eigensolvers return
different bases, so a naive implementation is non-deterministic exactly on
the paper's own examples.  We canonicalize: compute the full eigenspace
(growing the window until the eigenvalue group is closed), project a fixed
probe vector onto it, and fix the sign.  The result is deterministic and
backend-independent up to floating-point noise.

Eigenspace closing reuses converged pairs: iterative backends append one
deflated solve per missing direction instead of re-solving from scratch
with a doubled window (which repaid the full Krylov cost every round).

Backend dispatch
----------------
``backend`` accepts every name in :data:`repro.linalg.backends.BACKENDS`.
``"multilevel"`` runs the coarsen-solve-refine approximation
(:mod:`repro.core.multilevel`); ``"auto"`` also selects it for graphs
above :data:`repro.linalg.backends.MULTILEVEL_CUTOFF` vertices, falling
back to the exact path whenever the approximate pair misses the
``multilevel_tol`` relative-residual quality bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphStructureError, InvalidParameterError
from repro.graph.adjacency import Graph
from repro.graph.laplacian import laplacian
from repro.graph.traversal import is_connected
from repro.linalg import backends as backend_registry
from repro.linalg.backends import (
    BACKENDS,
    MULTILEVEL_QUALITY_RTOL,
    smallest_eigenpairs,
)
from repro.linalg.operators import canonical_in_span
from repro.linalg.power import deterministic_start


@dataclass(frozen=True)
class FiedlerResult:
    """The Fiedler pair plus diagnostics.

    Attributes
    ----------
    value:
        The algebraic connectivity ``lambda_2``.
    vector:
        The canonical unit Fiedler vector (orthogonal to constant).
    multiplicity:
        Dimension of the ``lambda_2`` eigenspace that was detected.
    eigenvalues:
        All eigenvalues computed on the way (ascending, excludes the
        trivial 0), useful for spectral-gap diagnostics.
    backend:
        The eigensolver backend that produced the result
        (``"multilevel"`` when the approximate path served the answer,
        even under ``backend="auto"``).
    """

    value: float
    vector: np.ndarray
    multiplicity: int
    eigenvalues: np.ndarray
    backend: str


def _canonicalize(basis: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """A deterministic unit vector in the span of ``basis`` columns."""
    return canonical_in_span(basis, probe)


def _multilevel_fiedler_result(graph: Graph, probe: np.ndarray,
                               quality_rtol: float,
                               strict: bool,
                               hierarchy_cache=None) -> FiedlerResult | None:
    """The multilevel approximation as a :class:`FiedlerResult`.

    Returns ``None`` when ``strict`` is off (the ``auto`` path) and the
    bottom Ritz pair misses the relative-residual quality bound
    ``||L y - theta y|| <= quality_rtol * theta`` — the caller then runs
    an exact backend instead.
    """
    # Imported lazily: repro.core.multilevel pulls in the ordering
    # helpers, which import this module.
    from repro.core.multilevel import GROUP_RTOL, multilevel_eigenspace

    space = multilevel_eigenspace(graph, hierarchy_cache=hierarchy_cache)
    theta0 = float(space.values[0])
    group_tol = max(GROUP_RTOL * max(abs(theta0), 1e-12), 1e-10)
    group = np.flatnonzero(space.values <= theta0 + group_tol)
    if not strict:
        # Relative eigenvalue-error estimate for the bottom Ritz pair.
        # With a measurable gap to the first Ritz value outside the
        # lambda_2 group, the Kato-Temple inequality sharpens the plain
        # residual bound |theta - lambda| <= r to r^2 / gap — the raw
        # ratio r / theta is hopelessly pessimistic exactly in the
        # regime multilevel serves (huge graphs, tiny lambda_2, modest
        # high-frequency residue left in the vector).
        residual = float(space.residuals[0])
        outside = space.values[space.values > theta0 + group_tol]
        denominator = max(theta0, 1e-300)
        if len(outside) and float(outside[0]) > theta0 + residual:
            error_bound = residual ** 2 / (float(outside[0]) - theta0)
        else:
            error_bound = residual
        if error_bound / denominator > quality_rtol:
            return None
    vector = _canonicalize(space.vectors[:, group], probe)
    return FiedlerResult(
        value=theta0,
        vector=vector,
        multiplicity=len(group),
        eigenvalues=space.values.copy(),
        backend="multilevel",
    )


def _resolve_exact_backend(backend: str, n: int) -> str:
    """The concrete matrix backend ``auto`` would pick for this size."""
    if backend != "auto":
        return backend
    return backend_registry.resolve_auto(n, min(4, n - 1))


def fiedler_vector(graph: Graph, backend: str = "auto",
                   probe: np.ndarray | None = None,
                   rtol: float = 1e-6,
                   multilevel_tol: float = MULTILEVEL_QUALITY_RTOL,
                   solver_tol: float | None = None,
                   hierarchy_cache=None) -> FiedlerResult:
    """The canonical Fiedler pair of a connected graph.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 vertices.
    backend:
        Eigensolver backend (see :mod:`repro.linalg.backends`).
        ``"multilevel"`` requests the coarsen-solve-refine approximation
        explicitly; ``"auto"`` uses it for graphs above
        :data:`~repro.linalg.backends.MULTILEVEL_CUTOFF` vertices when
        the quality bound holds.
    probe:
        Optional deterministic direction used to pick a canonical vector
        inside a degenerate eigenspace.  Defaults to a fixed quasi-random
        vector; pass e.g. a coordinate functional to bias the choice.
    rtol:
        Relative tolerance for grouping eigenvalues into the ``lambda_2``
        eigenspace.
    multilevel_tol:
        Relative-residual bound for accepting a multilevel answer under
        ``backend="auto"`` (``||L y - theta y|| <= multilevel_tol *
        theta``).  Ignored for other backends; an explicit
        ``backend="multilevel"`` always returns the approximation.
    solver_tol:
        Residual tolerance handed to the exact eigensolver backends
        (:func:`repro.linalg.backends.smallest_eigenpairs`'s ``tol``).
        ``None`` keeps the registry default
        (:data:`~repro.linalg.backends.DEFAULT_SOLVER_TOL`); looser
        values trade accuracy for iteration count on the preconditioned
        backends.  Ignored by the multilevel path, whose accuracy knob
        is ``multilevel_tol``.
    hierarchy_cache:
        Optional :class:`~repro.graph.coarsening.HierarchyCache` used by
        the multilevel path to reuse matching/prolongation chains across
        solves of the same topology.  Ignored by the exact backends.

    Raises
    ------
    GraphStructureError
        If the graph is disconnected (``lambda_2 = 0`` there; order the
        components separately — see :mod:`repro.core.components`).
    """
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    n = graph.num_vertices
    if n < 2:
        raise InvalidParameterError(
            f"the Fiedler vector needs at least 2 vertices, got {n}"
        )
    if not is_connected(graph):
        raise GraphStructureError(
            "graph is disconnected: lambda_2 = 0 and the Fiedler vector "
            "is a component indicator; use per-component ordering instead"
        )
    if probe is None:
        probe = deterministic_start(n)
    else:
        probe = np.asarray(probe, dtype=np.float64)
        if probe.shape != (n,):
            raise InvalidParameterError(
                f"probe must have shape ({n},), got {probe.shape}"
            )

    if backend == "multilevel" or (
            backend == "auto" and n > backend_registry.MULTILEVEL_CUTOFF):
        result = _multilevel_fiedler_result(
            graph, probe, multilevel_tol, strict=backend == "multilevel",
            hierarchy_cache=hierarchy_cache)
        if result is not None:
            return result

    exact_backend = _resolve_exact_backend(backend, n)
    lap = laplacian(graph)
    ones = np.ones(n) / np.sqrt(n)
    # With the constant direction deflated, the bottom of the spectrum is
    # lambda_2 <= lambda_3 <= ...; the lambda_2 group is closed once a
    # computed eigenvalue rises above it.
    k = min(n - 1, 4)
    values, vectors = smallest_eigenpairs(lap, k, backend=exact_backend,
                                          deflate=[ones], tol=solver_tol)
    lambda2 = float(values[0])
    tol = max(rtol * max(abs(lambda2), 1.0), 1e-10)
    # Window entirely inside the group means multiplicity >= k (stars,
    # complete graphs).  Double the window until a value above the group
    # appears: for dense each call is a full eigh anyway, and for the
    # iterative backends closing a high-multiplicity group one deflated
    # solve at a time would cost O(multiplicity) Krylov runs — doubling
    # reaches the (effectively dense) full-window solve in O(log n)
    # steps instead.  In the common case the first window already
    # contains an above-group value and this loop never runs.
    while (values <= lambda2 + tol).all() and k < n - 1:
        k = min(n - 1, 2 * k)
        values, vectors = smallest_eigenpairs(
            lap, k, backend=exact_backend, deflate=[ones], tol=solver_tol)
        lambda2 = float(values[0])
        tol = max(rtol * max(abs(lambda2), 1.0), 1e-10)
    group = np.flatnonzero(values <= lambda2 + tol)
    basis = vectors[:, group]
    # Guard against solver drift: project the eigenspace basis against the
    # constant direction once more, then orthonormalize.
    basis = basis - ones[:, None] * (ones @ basis)
    basis, _ = np.linalg.qr(basis)
    extra_seen: list[float] = []
    if exact_backend != "dense":
        # Close the eigenspace by explicit deflation, reusing every
        # already-converged pair: keep asking for the smallest remaining
        # eigenpair with everything found so far projected out, until the
        # answer rises above lambda_2.  This covers both an unclosed
        # window (all computed values still inside the group) and
        # degenerate copies a single Krylov sequence cannot see.  The
        # window solve's above-group Ritz vectors warm-start each
        # certificate: they already converged to the pairs the deflated
        # solve is about to look for, so a supporting backend (lobpcg)
        # certifies in a handful of iterations instead of a cold run.
        above = np.flatnonzero(values > lambda2 + tol)
        guess = vectors[:, above] if above.size else None
        while basis.shape[1] < n - 1:
            deflate = [ones] + [basis[:, j] for j in range(basis.shape[1])]
            extra_values, extra_vectors = smallest_eigenpairs(
                lap, 1, backend=exact_backend, deflate=deflate,
                tol=solver_tol, x0=guess)
            extra_seen.append(float(extra_values[0]))
            if extra_values[0] > lambda2 + tol:
                break
            fresh = extra_vectors[:, 0]
            for d in deflate:
                fresh = fresh - (d @ fresh) * d
            norm = np.linalg.norm(fresh)
            if norm < 1e-8:
                break
            basis = np.column_stack([basis, fresh / norm])
    vector = _canonicalize(basis, probe)
    # Fold the closure loop's finds into the diagnostic spectrum so the
    # field always shows the first value above the lambda_2 group (the
    # spectral gap) even when the initial window closed entirely inside
    # the group.
    eigenvalues = np.sort(np.concatenate([values, np.array(extra_seen)])) \
        if extra_seen else values.copy()
    return FiedlerResult(
        value=lambda2,
        vector=vector,
        multiplicity=basis.shape[1],
        eigenvalues=eigenvalues,
        backend=exact_backend,
    )


def fiedler_value(graph: Graph, backend: str = "auto") -> float:
    """The algebraic connectivity ``lambda_2`` alone."""
    return fiedler_vector(graph, backend=backend).value

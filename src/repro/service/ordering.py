"""OrderingService: the lifecycle owner of computed spectral orders.

The paper's economics rest on one observation: the spectral order of a
domain is computed **once** and then reused by every downstream consumer
— B+-tree keys, declustering, joins, figure harnesses.  The core
pipeline (:class:`~repro.core.spectral.SpectralLPM`) deliberately knows
nothing about reuse; this module is the layer that adds it.

An :class:`OrderingService` composes three caches:

* an in-memory LRU of :class:`~repro.service.artifacts.OrderArtifact`
  (:class:`repro.caching.LRUCache`), keyed by the stable fingerprints
  of :mod:`repro.service.fingerprint`;
* an optional on-disk :class:`~repro.service.store.ArtifactStore`, so a
  restarted service pays **zero eigensolves** for every domain it has
  seen before;
* a :class:`~repro.graph.coarsening.HierarchyCache` shared by every
  solve the service runs, so even cache *misses* that share a topology
  reuse the coarsening chain.

and one batching front door, :meth:`OrderingService.order_many`, which
groups requests by graph topology so N weight configurations over one
domain pay a single graph build (and, under the multilevel backend, a
single coarsening) instead of N.

The service is safe to share across threads, and misses are
**single-flight**: concurrent requests for one order key elect a leader
that runs the eigensolve while the rest wait and receive the leader's
artifact (``source == "coalesced"``, counted in
:attr:`ServiceStats.coalesced`).  N threads cold-missing the same
(config, domain) fingerprint therefore cost exactly one solver
invocation — the serving-layer contract the
:func:`~repro.linalg.backends.solver_invocations` counter asserts in
the test suite.

Caching is only sound for requests a
:class:`~repro.core.spectral.SpectralConfig` fully describes; algorithms
carrying callable weights or explicit probe vectors
(``SpectralLPM.cacheable == False``) are computed directly and never
stored, so distinct algorithms can never collide on a key.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig, SpectralLPM, \
    symmetric_grid_probe
from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.graph.builders import grid_graph_from_topology, \
    grid_graph_topology, induced_grid_graph
from repro.graph.coarsening import HierarchyCache
from repro.graph.laplacian import laplacian
from repro.graph.weights import weight_names
from repro.linalg.backends import thread_solver_invocations
from repro.caching import LRUCache
from repro.obs import Timer, registry, span
from repro.service.artifacts import OrderArtifact
from repro.service.fingerprint import (
    domain_fingerprint,
    graph_fingerprint,
    order_key,
    points_fingerprint,
)
from repro.service.store import ArtifactStore

Domain = Union[Grid, Graph]
ConfigLike = Union[SpectralConfig, SpectralLPM, None]

# Registry mirrors of the per-service ServiceStats counters: the
# process-wide rollup every service contributes to, labelled by cache
# outcome, alongside the latency of the one expensive phase.  The
# per-instance ServiceStats stays the per-shard view (and the API the
# existing readers use); these are the fleet-wide aggregates
# ``repro.obs.dump_metrics`` renders.
_OUTCOMES = registry().counter(
    "repro_service_requests_total",
    "Ordering requests by cache outcome.")
_TOPOLOGY_BUILDS = registry().counter(
    "repro_service_topology_builds_total",
    "Grid-graph topology constructions (the quantity order_many "
    "amortizes).")
_SOLVE_SECONDS = registry().histogram(
    "repro_service_solve_seconds",
    "Wall time of one cache-miss compute (graph build + eigensolve + "
    "ordering).")


@dataclass(frozen=True)
class OrderRequest:
    """One item of an :meth:`OrderingService.order_many` batch."""

    domain: Domain
    config: SpectralConfig = SpectralConfig()

    def __post_init__(self):
        if not isinstance(self.domain, (Grid, Graph)):
            raise InvalidParameterError(
                f"domain must be a Grid or Graph, "
                f"got {type(self.domain).__name__}"
            )
        if not isinstance(self.config, SpectralConfig):
            raise InvalidParameterError(
                f"config must be a SpectralConfig, "
                f"got {type(self.config).__name__}"
            )


def normalize_requests(requests: Sequence) -> List[OrderRequest]:
    """Coerce a batch of :class:`OrderRequest` | ``(domain, config)``
    pairs into validated requests (``config=None`` means the paper's
    defaults).

    The one normalization every batching front uses — the service, the
    in-process sharded frontend, the process-pool dispatcher, and the
    worker loop — so their accepted spellings can never drift apart.
    """
    normalized: List[OrderRequest] = []
    for item in requests:
        if isinstance(item, OrderRequest):
            normalized.append(item)
        else:
            domain, config = item
            if config is None:
                normalized.append(OrderRequest(domain=domain))
            else:
                normalized.append(OrderRequest(domain=domain,
                                               config=config))
    return normalized


@dataclass
class ServiceStats:
    """Counters of where the service's answers came from.

    ``memory_hits`` / ``disk_hits`` / ``computed`` / ``coalesced``
    partition the cacheable requests (``coalesced`` are requests that
    waited on a concurrent identical miss instead of solving);
    ``uncacheable`` counts direct computations on behalf of algorithms a
    config cannot represent.  ``topology_builds`` counts grid-graph
    topology constructions (the quantity
    :meth:`~OrderingService.order_many` amortizes) and ``solver_calls``
    accumulates the eigensolver invocations spent inside this service.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    computed: int = 0
    coalesced: int = 0
    uncacheable: int = 0
    topology_builds: int = 0
    solver_calls: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for logs and reports)."""
        return dataclasses.asdict(self)


@dataclass
class _Resolved:
    """A request normalized to (config, optional algorithm, cacheable)."""

    config: SpectralConfig
    algorithm: Optional[SpectralLPM]
    cacheable: bool


class _Flight:
    """One in-progress computation other threads can wait on."""

    __slots__ = ("event", "artifact")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.artifact: Optional[OrderArtifact] = None


class OrderingService:
    """Cached, batched, persistable spectral ordering.

    Parameters
    ----------
    memory_entries:
        Capacity of the in-memory artifact LRU.
    store:
        Optional persistent tier: an
        :class:`~repro.service.store.ArtifactStore` or a directory path
        (wrapped in one).  ``None`` keeps the service memory-only.
    hierarchy_entries:
        Capacity of the shared coarsening-hierarchy cache.

    Examples
    --------
    >>> from repro.geometry import Grid
    >>> service = OrderingService()
    >>> a = service.order_grid(Grid((6, 6)))
    >>> b = service.order_grid(Grid((6, 6)))   # served from memory
    >>> a == b
    True
    """

    def __init__(self, memory_entries: int = 128,
                 store: Union[ArtifactStore, str, None] = None,
                 hierarchy_entries: int = 32):
        # lock=True: the memory tier is the service's shared hot path;
        # its own lock keeps hit/miss counters exact even for callers
        # that reach the cache outside the service lock.
        self._memory: LRUCache[str, OrderArtifact] = \
            LRUCache(memory_entries, lock=True)
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self._store: Optional[ArtifactStore] = store
        self._hierarchy = HierarchyCache(hierarchy_entries)
        self._stats = ServiceStats()  # guarded-by: _lock
        # Guards the memory tier, the stats, and the in-flight table;
        # solves themselves run outside it (different keys in parallel).
        self._lock = threading.RLock()
        self._inflight: Dict[str, _Flight] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServiceStats:
        """Where this service's answers have come from so far.

        Returns an atomic :meth:`snapshot`, not the live counters — the
        migration shim for readers written against the pre-snapshot
        API: attribute reads on the returned object can never tear
        against a concurrent update.
        """
        return self.snapshot()

    def snapshot(self) -> ServiceStats:
        """An atomic copy of the counters, taken under the service lock.

        Mutating the returned object does not affect the service; two
        snapshots bracketing an operation give exact deltas even while
        other threads keep serving.
        """
        with self._lock:
            return dataclasses.replace(self._stats)

    @property
    def store(self) -> Optional[ArtifactStore]:
        """The persistent tier, when configured."""
        return self._store

    @property
    def hierarchy_cache(self) -> HierarchyCache:
        """The coarsening-hierarchy cache shared by every solve."""
        return self._hierarchy

    # ------------------------------------------------------------------
    # Public ordering API
    # ------------------------------------------------------------------
    def order_grid(self, grid: Grid,
                   config: ConfigLike = None) -> LinearOrder:
        """The spectral order of a full grid, served from cache when warm.

        ``config`` may be a :class:`SpectralConfig`, a ready
        :class:`SpectralLPM` (non-cacheable instances are computed
        directly, never stored), or ``None`` for the paper's defaults.
        """
        return self.grid_artifact(grid, config).order

    def grid_artifact(self, grid: Grid,
                      config: ConfigLike = None) -> OrderArtifact:
        """:meth:`order_grid` with full provenance attached."""
        resolved = self._resolve(config)
        if not resolved.cacheable:
            with self._lock:
                self._stats.uncacheable += 1
            _OUTCOMES.inc(outcome="uncacheable")
            order = resolved.algorithm.order_grid(grid)
            return OrderArtifact(key="", config=resolved.config,
                                 domain=_describe_grid(grid), order=order,
                                 source="computed")
        key = order_key(resolved.config, domain_fingerprint(grid))
        return self._cached_or_compute(
            key,
            lambda: self._compute_grid(key, grid, resolved.config,
                                       graph=None),
        )

    def order_graph(self, graph: Graph,
                    config: ConfigLike = None) -> LinearOrder:
        """The spectral order of an arbitrary user graph (Section 4)."""
        return self.graph_artifact(graph, config).order

    def graph_artifact(self, graph: Graph,
                       config: ConfigLike = None) -> OrderArtifact:
        """:meth:`order_graph` with full provenance attached.

        Graphs are keyed by content hash, so two structurally identical
        graphs built independently share cache entries.  Note the
        ``connectivity`` / ``radius`` / ``weight`` fields of the config
        do not influence a prebuilt graph (they describe grid builds);
        they still participate in the key, conservatively.
        """
        resolved = self._resolve(config)
        if not resolved.cacheable:
            with self._lock:
                self._stats.uncacheable += 1
            _OUTCOMES.inc(outcome="uncacheable")
            order = resolved.algorithm.order_graph(graph)
            return OrderArtifact(key="", config=resolved.config,
                                 domain=_describe_graph(graph),
                                 order=order, source="computed")
        # Content is hashed once (O(edges)) and reused for both the key
        # and the human-readable descriptor.
        content = graph.content_fingerprint()
        key = order_key(resolved.config,
                        graph_fingerprint(graph, content=content))
        return self._cached_or_compute(
            key,
            lambda: self._compute_graph(key, graph, resolved.config,
                                        _describe_graph(graph, content),
                                        probe=None),
        )

    def order_points(self, grid: Grid, cell_indices: Sequence[int],
                     config: ConfigLike = None
                     ) -> Tuple[LinearOrder, np.ndarray]:
        """The pipeline on a sparse subset of grid cells, cached.

        Mirrors :meth:`SpectralLPM.order_points`: returns ``(order,
        cells)`` with ``cells`` the ascending distinct flat indices and
        ``order`` over positions in that array.
        """
        cells = np.unique(np.asarray(cell_indices, dtype=np.int64))
        resolved = self._resolve(config)
        if not resolved.cacheable:
            with self._lock:
                self._stats.uncacheable += 1
            _OUTCOMES.inc(outcome="uncacheable")
            return resolved.algorithm.order_points(grid, cells)
        key = order_key(resolved.config, points_fingerprint(grid, cells))

        def compute() -> OrderArtifact:
            graph, _ = induced_grid_graph(
                grid, cells, connectivity=resolved.config.connectivity,
                radius=resolved.config.radius,
                weight=resolved.config.weight,
            )
            return self._compute_graph(
                key, graph, resolved.config,
                _describe_points(grid, cells), probe=None,
            )

        return self._cached_or_compute(key, compute).order, cells

    def order_many(self, requests: Sequence) -> List[LinearOrder]:
        """Order a batch of domains, amortizing shared work.

        ``requests`` is a sequence of :class:`OrderRequest` (or
        ``(domain, config)`` pairs).  Grid requests are grouped by graph
        topology — ``(shape, connectivity, radius)`` — and each group
        pays **one** topology build regardless of how many weight models
        it spans; with the multilevel backend the shared hierarchy cache
        likewise runs the coarsening matchings once per topology.  Cache
        hits (memory or disk) skip even that.  Results align with the
        input order.
        """
        normalized = normalize_requests(requests)
        results: List[Optional[LinearOrder]] = [None] * len(normalized)

        # Partition: grid requests group by topology; graphs go direct.
        groups: Dict[Tuple, List[int]] = {}
        for i, request in enumerate(normalized):
            if isinstance(request.domain, Grid):
                group = (request.domain.shape,
                         request.config.connectivity,
                         request.config.radius)
                groups.setdefault(group, []).append(i)
            else:
                results[i] = self.order_graph(request.domain,
                                              request.config)

        for indices in groups.values():
            # Built lazily and shared by every miss in the group: a
            # fully-warm (or fully-coalesced) group never builds it.
            topology_box: List = [None]
            for i in indices:
                request = normalized[i]
                key = order_key(request.config,
                                domain_fingerprint(request.domain))
                compute = self._grouped_compute(key, request,
                                                topology_box)
                results[i] = self._cached_or_compute(key, compute).order
        return results

    def _grouped_compute(self, key: str, request: OrderRequest,
                         topology_box: List) -> Callable[[], OrderArtifact]:
        """A compute closure sharing one topology across a batch group."""

        def compute() -> OrderArtifact:
            if topology_box[0] is None:
                topology_box[0] = grid_graph_topology(
                    request.domain,
                    connectivity=request.config.connectivity,
                    radius=request.config.radius,
                )
                with self._lock:
                    self._stats.topology_builds += 1
                _TOPOLOGY_BUILDS.inc()
            graph = grid_graph_from_topology(topology_box[0],
                                             request.config.weight)
            return self._compute_grid(key, request.domain, request.config,
                                      graph=graph)

        return compute

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve(self, config: ConfigLike) -> _Resolved:
        if config is None:
            return _Resolved(SpectralConfig(), None, True)
        if isinstance(config, SpectralConfig):
            # A bare config is a pure value, so it is cacheable by
            # construction — provided its weight names a registered
            # model.  A config lifted off a callable-weight SpectralLPM
            # carries "callable:<name>" instead; refuse it here (the
            # algorithm instance itself must be passed) rather than
            # computing a same-named registry model it never meant.
            if config.weight not in weight_names():
                raise InvalidParameterError(
                    f"config.weight {config.weight!r} is not a "
                    f"registered weight model {weight_names()}; pass "
                    "the SpectralLPM instance itself for callable "
                    "weights (computed uncached)"
                )
            return _Resolved(config, None, True)
        if isinstance(config, SpectralLPM):
            return _Resolved(config.config, config, config.cacheable)
        raise InvalidParameterError(
            "config must be a SpectralConfig, a SpectralLPM or None, "
            f"got {type(config).__name__}"
        )

    def _cached_or_compute(self, key: str,
                           compute: Callable[[], OrderArtifact]
                           ) -> OrderArtifact:
        """Serve ``key`` from cache, computing at most once concurrently.

        Single-flight: the first thread to miss becomes the leader and
        performs the disk lookup and (on a true miss) ``compute`` —
        both *outside* the lock, so distinct keys load and solve in
        parallel and memory hits never wait on another key's I/O.
        Concurrent requests for the same key wait on the leader's
        flight and receive its artifact with ``source="coalesced"``.
        If the leader fails, waiters retry — one of them becomes the
        next leader — so a transient failure never wedges the key.
        """
        sp = span("service.order", key=key[:12])
        with sp:
            artifact = self._serve_cached(key, compute)
            sp.set_attribute("source", artifact.source)
            return artifact

    def _serve_cached(self, key: str,
                      compute: Callable[[], OrderArtifact]
                      ) -> OrderArtifact:
        while True:
            with self._lock:
                artifact = self._memory.get(key)
                if artifact is not None:
                    self._stats.memory_hits += 1
                    _OUTCOMES.inc(outcome="memory")
                    return dataclasses.replace(artifact, solver_calls=0,
                                               source="memory")
                flight = self._inflight.get(key)
                if flight is None:
                    mine = _Flight()
                    self._inflight[key] = mine
            if flight is None:
                try:
                    artifact = self._disk_lookup(key)
                    if artifact is None:
                        artifact = compute()
                    mine.artifact = artifact
                    return artifact
                finally:
                    with self._lock:
                        self._inflight.pop(key, None)
                    mine.event.set()
            flight.event.wait()
            if flight.artifact is not None:
                with self._lock:
                    self._stats.coalesced += 1
                _OUTCOMES.inc(outcome="coalesced")
                return dataclasses.replace(flight.artifact,
                                           solver_calls=0,
                                           source="coalesced")

    def _disk_lookup(self, key: str) -> Optional[OrderArtifact]:
        """Disk-tier load; runs outside the lock (the single-flight
        table already guarantees one load per key at a time)."""
        if self._store is None:
            return None
        with span("service.disk_load", key=key[:12]) as sp:
            artifact = self._store.load(key)
            sp.set_attribute("hit", artifact is not None)
        if artifact is None:
            return None
        with self._lock:
            self._stats.disk_hits += 1
            self._memory.put(key, artifact)
        _OUTCOMES.inc(outcome="disk")
        return artifact

    def _algorithm(self, config: SpectralConfig) -> SpectralLPM:
        return SpectralLPM.from_config(config,
                                       hierarchy_cache=self._hierarchy)

    def _compute_grid(self, key: str, grid: Grid, config: SpectralConfig,
                      graph: Optional[Graph]) -> OrderArtifact:
        algorithm = self._algorithm(config)
        if graph is None:
            graph = algorithm.build_grid_graph(grid)
        return self._finish(
            key, algorithm, graph, _describe_grid(grid), config,
            probe=symmetric_grid_probe(grid),
        )

    def _compute_graph(self, key: str, graph: Graph,
                       config: SpectralConfig, domain: str,
                       probe: Optional[np.ndarray]) -> OrderArtifact:
        algorithm = self._algorithm(config)
        return self._finish(key, algorithm, graph, domain, config, probe)

    def _finish(self, key: str, algorithm: SpectralLPM, graph: Graph,
                domain: str, config: SpectralConfig,
                probe: Optional[np.ndarray]) -> OrderArtifact:
        # Thread-local delta: concurrent solves on other keys must not
        # leak into this artifact's provenance (or double-count stats).
        with span("service.solve", key=key[:12], domain=domain) as sp:
            before = thread_solver_invocations()
            with Timer() as timer:
                order, fiedlers = algorithm.order_graph_with_fiedler(
                    graph, probe)
            solver_calls = thread_solver_invocations() - before
            provenance = _provenance(graph, fiedlers)
            sp.set_attribute("solver_calls", solver_calls)
            if "backend" in provenance:
                sp.set_attribute("backend", provenance["backend"])
        _SOLVE_SECONDS.observe(timer.seconds)
        artifact = OrderArtifact(
            key=key, config=config, domain=domain, order=order,
            solver_calls=solver_calls, source="computed", **provenance,
        )
        with self._lock:
            self._stats.computed += 1
            self._stats.solver_calls += solver_calls
            self._memory.put(key, artifact)
        _OUTCOMES.inc(outcome="computed")
        if self._store is not None:
            self._store.save(artifact)
        return artifact


def _describe_grid(grid: Grid) -> str:
    return f"grid{grid.shape}"


def _describe_graph(graph: Graph, content: str | None = None) -> str:
    suffix = f", {content[:12]}" if content is not None else ""
    return f"graph[n={graph.num_vertices}, m={graph.num_edges}{suffix}]"


def _describe_points(grid: Grid, cells: np.ndarray) -> str:
    return f"points{grid.shape}[k={len(cells)}]"


def _provenance(graph: Graph, fiedlers: list) -> Dict:
    """Solve provenance from the recorded Fiedler results.

    The full story only exists for a connected domain (one result over
    the whole graph); there the relative residual of the returned pair
    is measured against the actual Laplacian — one matvec, negligible
    next to the solve it certifies.  Disconnected domains keep the first
    non-trivial component's pair, without a residual (the vector does
    not span the whole graph).
    """
    if not fiedlers:
        return {}
    first = fiedlers[0]
    info = {
        "lambda2": float(first.value),
        "multiplicity": int(first.multiplicity),
        "backend": str(first.backend),
        "eigenvalues": tuple(float(v) for v in first.eigenvalues),
    }
    if len(fiedlers) == 1 and len(first.vector) == graph.num_vertices:
        lap = laplacian(graph)
        residual = float(np.linalg.norm(
            lap.matvec(first.vector) - first.value * first.vector
        ))
        info["residual"] = residual / max(abs(first.value), 1e-300)
    return info

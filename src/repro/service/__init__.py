"""Ordering service layer: cached, batched, persistable spectral orders.

The paper computes a spectral order once per domain and reuses it
everywhere; this package is the subsystem that owns that lifecycle.
:class:`OrderingService` fronts the core pipeline with an in-memory LRU,
an optional versioned on-disk artifact store (zero eigensolves after a
restart), a shared coarsening-hierarchy cache, and a topology-grouping
batch API.  See :mod:`repro.service.ordering` for the full story.
"""

from repro.caching import LRUCache
from repro.service.artifacts import ARTIFACT_SOURCES, OrderArtifact
from repro.service.fingerprint import (
    FINGERPRINT_VERSION,
    config_fingerprint,
    domain_fingerprint,
    graph_fingerprint,
    grid_fingerprint,
    order_key,
    points_fingerprint,
)
from repro.service.ordering import (
    OrderingService,
    OrderRequest,
    ServiceStats,
    normalize_requests,
)
from repro.service.routing import (
    ShardableDomain,
    coerce_domain,
    routing_fingerprint,
    shard_index,
    shard_of_domain,
)
from repro.service.sharding import ShardedIndexFrontend
from repro.service.store import STORE_VERSION, ArtifactStore, StoreEntry

__all__ = [
    "ARTIFACT_SOURCES",
    "ArtifactStore",
    "FINGERPRINT_VERSION",
    "LRUCache",
    "OrderArtifact",
    "OrderRequest",
    "OrderingService",
    "STORE_VERSION",
    "ServiceStats",
    "ShardableDomain",
    "ShardedIndexFrontend",
    "StoreEntry",
    "coerce_domain",
    "config_fingerprint",
    "domain_fingerprint",
    "graph_fingerprint",
    "grid_fingerprint",
    "normalize_requests",
    "order_key",
    "points_fingerprint",
    "routing_fingerprint",
    "shard_index",
    "shard_of_domain",
]

"""The unit of exchange between the service and its cache tiers.

An :class:`OrderArtifact` bundles a computed
:class:`~repro.core.ordering.LinearOrder` with everything needed to
trust and reuse it: the cache key it lives under, the exact
:class:`~repro.core.spectral.SpectralConfig` that produced it, a
human-readable domain descriptor, and solve provenance — which
eigensolver backend actually ran, the ``lambda_2`` it found, the
relative residual of the Fiedler pair, and how many eigensolver
invocations were spent.  Provenance is what makes a disk store auditable
months later: an artifact that claims "multilevel, residual 3e-4" can be
accepted or recomputed on policy, not on faith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig

#: ``source`` values an artifact can carry.  ``"coalesced"`` marks a
#: copy served to a request that waited on a concurrent identical miss
#: (single-flight) instead of computing or hitting a cache tier itself.
ARTIFACT_SOURCES = ("computed", "memory", "disk", "coalesced")


@dataclass(frozen=True)
class OrderArtifact:
    """A cached spectral order plus its solve provenance.

    Attributes
    ----------
    key:
        The fingerprint the artifact is stored under (see
        :func:`repro.service.fingerprint.order_key`).
    config:
        The exact configuration that produced the order.
    domain:
        Human-readable domain descriptor (``"grid(64, 64)"``, ...).
    order:
        The immutable linear order itself.
    lambda2, multiplicity, backend, residual, eigenvalues:
        Fiedler provenance of the solve: the algebraic connectivity, the
        detected eigenspace multiplicity, the backend that served the
        pair, the relative residual ``||L v - lambda v|| / max(lambda,
        eps)`` of the returned vector, and the diagnostic spectrum.  All
        ``None`` when the domain decomposed into trivial components only,
        and aggregated from the *first* non-trivial component when the
        domain was disconnected.
    solver_calls:
        Eigensolver invocations spent computing the artifact (0 when it
        was served from a cache, by definition of a cache hit).
    source:
        Where this copy came from: ``"computed"``, ``"memory"``,
        ``"disk"``, or ``"coalesced"`` (waited on a concurrent
        identical computation).
    """

    key: str
    config: SpectralConfig
    domain: str
    order: LinearOrder
    lambda2: Optional[float] = None
    multiplicity: Optional[int] = None
    backend: Optional[str] = None
    residual: Optional[float] = None
    eigenvalues: Optional[Tuple[float, ...]] = None
    solver_calls: int = 0
    source: str = "computed"

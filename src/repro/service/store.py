"""The on-disk tier of the ordering cache.

A directory of versioned artifacts, one pair of files per order:

* ``<key>.json`` — metadata: store version, key, the full
  :class:`~repro.core.spectral.SpectralConfig` as a field dict, the
  domain descriptor, and the solve provenance (backend, ``lambda_2``,
  residual, multiplicity, diagnostic eigenvalues, solver calls);
* ``<key>.npy`` — the order's permutation array (``int64``), written
  with :func:`numpy.save` so a million-cell order loads in one
  ``mmap``-able read instead of a JSON parse.

Writes are atomic (temp file + ``os.replace``), so a crashed process
never leaves a half-written artifact a later service could trust.  Loads
are *defensive*: version mismatch, key mismatch, malformed JSON, a
missing half of the pair, or a corrupt permutation all count as a miss
(``None``) rather than an error — a cache must degrade to recomputation,
never take the service down.  This is what lets a restarted service pay
zero eigensolves for every domain it has seen before.

The store is also *size-bounded* on request: construct with
``max_bytes=`` (every save then evicts least-recently-used artifacts
beyond the bound, never the one just written) or call
:meth:`ArtifactStore.evict_to` explicitly.  Recency is tracked through
the metadata file's mtime, which successful loads refresh — so a
long-lived cache directory sheds the orders nobody asks for anymore,
not merely the oldest.  The ``repro-orders`` CLI
(:mod:`repro.service.cli`) wraps ``ls`` / ``inspect`` / ``evict`` over
the same primitives.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.obs import Timer, registry
from repro.service.artifacts import OrderArtifact

try:  # POSIX; Windows has no fcntl — cross-process locking degrades
    import fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    fcntl = None

#: On-disk format version.  Bump on any incompatible layout change;
#: artifacts written under another version are ignored (treated as
#: misses), never misread.
STORE_VERSION = 1

#: Name of the advisory lock file inside a store directory.  Never
#: matches an artifact glob (keys are hex digests, files ``*.json`` /
#: ``*.npy``), so it is invisible to listing, accounting, and eviction.
LOCK_FILENAME = ".repro-store.lock"

#: Temp files older than this many seconds are presumed orphaned by a
#: writer that died mid-save and are swept at store startup.  An
#: in-flight save holds its temp file for milliseconds (one JSON dump or
#: one ``np.save``), so minutes of age-gating can never reap a live one.
STALE_TEMP_SECONDS = 300.0

#: Disk-tier latency, labelled ``op="save"`` / ``op="load"`` — the
#: registry view that tells a slow store apart from a slow solver.
_STORE_SECONDS = registry().histogram(
    "repro_store_seconds",
    "Artifact-store operation latency by op (save/load).")


class _StoreLock:
    """Thread- *and* process-level mutual exclusion for one store dir.

    A ``threading.RLock`` serializes writers within the process (as
    before), and — while the outermost level is held — an ``flock`` on
    ``<root>/.repro-store.lock`` serializes writers *across* processes:
    two workers sharing one shard directory can no longer interleave an
    eviction sweep with the two file writes of a save.  Reentrant, so
    ``save -> evict_to -> delete`` acquires once.

    On Windows (no ``fcntl``) and on filesystems that refuse ``flock``
    (some network mounts), the cross-process half degrades to a no-op
    while the in-process half keeps working — the pre-existing
    guarantee, never less.
    """

    def __init__(self, root: Path) -> None:
        self._root = root
        self._thread_lock = threading.RLock()
        self._depth = 0
        self._handle = None

    def __enter__(self) -> "_StoreLock":
        self._thread_lock.acquire()
        self._depth += 1
        if self._depth == 1 and fcntl is not None and self._root.is_dir():
            handle = None
            try:
                handle = open(self._root / LOCK_FILENAME, "ab")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                # Degraded: in-process locking only (e.g. a filesystem
                # refusing flock).  Close the handle, or every write
                # would leak one fd until EMFILE.
                if handle is not None:
                    handle.close()
            else:
                self._handle = handle
        return self

    def __exit__(self, *exc) -> None:
        if self._depth == 1 and self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            finally:
                self._handle.close()
                self._handle = None
        self._depth -= 1
        self._thread_lock.release()


@dataclass(frozen=True)
class StoreEntry:
    """One artifact's on-disk footprint and identity summary.

    ``accessed`` is the metadata file's mtime — refreshed on every
    successful load, so it approximates last use, not just write time.
    ``domain`` / ``n`` / ``backend`` are best-effort reads of the
    metadata (``"?"`` / ``None`` when the file is unreadable — listing
    a corrupt store must still work, that is when it matters most).
    """

    key: str
    bytes: int
    accessed: float
    domain: str = "?"
    n: Optional[int] = None
    backend: Optional[str] = None


class ArtifactStore:
    """A directory-backed, versioned store of :class:`OrderArtifact`.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on first write).
    max_bytes:
        Optional size bound.  After every :meth:`save` the store evicts
        least-recently-used artifacts until the total footprint fits
        (the artifact just written is never evicted, even if it exceeds
        the bound by itself — losing the order we were asked to persist
        would turn a full cache into a broken one).
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        self._root = Path(root).expanduser()
        if max_bytes is not None and max_bytes < 1:
            raise InvalidParameterError(
                f"max_bytes must be a positive integer, got {max_bytes}"
            )
        self._max_bytes = max_bytes
        # Serializes save/evict/delete within this process *and*, via
        # flock on a lock file in the store directory, across
        # processes: a thread-safe OrderingService runs leader saves
        # concurrently, two workers may share one shard directory, and
        # an eviction sweeping between another writer's meta and
        # permutation writes would orphan the .npy half.  (Reentrant:
        # evict_to calls delete.)
        self._write_lock = _StoreLock(self._root)
        self.loads = 0
        self.load_failures = 0
        self.evictions = 0
        self.temps_swept = 0
        # A writer that died mid-save leaves a *.tmp behind; sweep the
        # stale ones now so a long-lived directory never accretes them.
        if self._root.is_dir():
            self.sweep_stale_temps()

    @property
    def max_bytes(self) -> Optional[int]:
        """The configured size bound, if any."""
        return self._max_bytes

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def _meta_path(self, key: str) -> Path:
        self._check_key(key)
        return self._root / f"{key}.json"

    def _perm_path(self, key: str) -> Path:
        self._check_key(key)
        return self._root / f"{key}.npy"

    @staticmethod
    def _check_key(key: str) -> None:
        # Keys are hex digests; refuse anything that could escape the
        # store directory or collide with the temp-file suffix.
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise InvalidParameterError(
                f"artifact keys must be lowercase hex digests, got {key!r}"
            )

    # ------------------------------------------------------------------
    def save(self, artifact: OrderArtifact) -> None:
        """Persist an artifact (atomic per file; last writer wins)."""
        # The directory must exist before the lock is taken: the
        # cross-process flock lives inside it.
        with Timer() as timer:
            self._root.mkdir(parents=True, exist_ok=True)
            with self._write_lock:
                self._save_locked(artifact)
        _STORE_SECONDS.observe(timer.seconds, op="save")

    def _save_locked(self, artifact: OrderArtifact) -> None:
        meta = {
            "version": STORE_VERSION,
            "key": artifact.key,
            "config": dataclasses.asdict(artifact.config),
            "domain": artifact.domain,
            "n": artifact.order.n,
            "lambda2": artifact.lambda2,
            "multiplicity": artifact.multiplicity,
            "backend": artifact.backend,
            "residual": artifact.residual,
            "eigenvalues": (list(artifact.eigenvalues)
                            if artifact.eigenvalues is not None else None),
            "solver_calls": artifact.solver_calls,
        }
        self._atomic_write_bytes(
            self._meta_path(artifact.key),
            (json.dumps(meta, indent=1, sort_keys=True) + "\n")
            .encode("utf-8"),
        )
        perm_path = self._perm_path(artifact.key)
        tmp = perm_path.with_suffix(".npy.tmp")
        # Write through a file handle: np.save() on a *path* appends
        # ".npy" when absent, which would break the temp-file rename.
        try:
            with open(tmp, "wb") as handle:
                np.save(handle, np.asarray(artifact.order.permutation,
                                           dtype=np.int64))
            os.replace(tmp, perm_path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        if self._max_bytes is not None:
            self.evict_to(self._max_bytes, protect=(artifact.key,))

    def _atomic_write_bytes(self, path: Path, payload: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def sweep_stale_temps(self,
                          max_age: float = STALE_TEMP_SECONDS) -> List[Path]:
        """Remove ``*.tmp`` files older than ``max_age`` seconds.

        A worker killed between opening a temp file and the atomic
        ``os.replace`` orphans the temp; nothing ever reads it (loads
        and accounting see only ``*.json`` / ``*.npy``), but it would
        hold disk space forever.  The age gate keeps a *concurrent*
        in-flight save safe: its temp file is seconds old at most.
        Runs automatically at store construction; returns the swept
        paths.
        """
        if max_age < 0:
            raise InvalidParameterError(
                f"max_age must be >= 0, got {max_age}"
            )
        swept: List[Path] = []
        cutoff = time.time() - max_age
        for tmp in self._root.glob("*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    swept.append(tmp)
            except OSError:
                # Raced with the writer completing (rename) or another
                # sweeper; either way the orphan is gone.
                continue
        self.temps_swept += len(swept)
        return swept

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[OrderArtifact]:
        """The stored artifact under ``key``, or ``None``.

        A wholly absent artifact is a clean miss.  Any *defect* — a
        metadata file whose permutation half is missing (a crash between
        the two writes), version or key mismatch, malformed JSON or
        permutation — also yields ``None`` but bumps ``load_failures``,
        so store corruption stays distinguishable from cold misses in
        monitoring; the caller recomputes either way.
        """
        with Timer() as timer:
            artifact = self._load_timed(key)
        _STORE_SECONDS.observe(timer.seconds, op="load")
        return artifact

    def _load_timed(self, key: str) -> Optional[OrderArtifact]:
        self.loads += 1
        meta_path = self._meta_path(key)
        perm_path = self._perm_path(key)
        try:
            meta_text = meta_path.read_text()
        except FileNotFoundError:
            return None
        try:
            meta = json.loads(meta_text)
            if (meta.get("version") != STORE_VERSION
                    or meta.get("key") != key):
                raise ValueError("version or key mismatch")
            config = SpectralConfig(**meta["config"])
            permutation = np.load(perm_path)
            if len(permutation) != meta.get("n"):
                raise ValueError("permutation length mismatch")
            order = LinearOrder(permutation)
            eigenvalues = meta.get("eigenvalues")
            # Refresh recency so size-bounded eviction is LRU, not
            # oldest-written; failure (read-only store) is harmless.
            try:
                os.utime(meta_path, (time.time(), time.time()))
            except OSError:
                pass
            return OrderArtifact(
                key=key,
                config=config,
                domain=str(meta.get("domain", "")),
                order=order,
                lambda2=meta.get("lambda2"),
                multiplicity=meta.get("multiplicity"),
                backend=meta.get("backend"),
                residual=meta.get("residual"),
                eigenvalues=(tuple(eigenvalues)
                             if eigenvalues is not None else None),
                solver_calls=0,
                source="disk",
            )
        except Exception:
            self.load_failures += 1
            return None

    def __contains__(self, key: str) -> bool:
        return self._meta_path(key).exists()

    def keys(self) -> List[str]:
        """Keys of every artifact present (by metadata file)."""
        if not self._root.is_dir():
            return []
        return sorted(p.stem for p in self._root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def delete(self, key: str) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        removed = False
        with self._write_lock:
            for path in (self._meta_path(key), self._perm_path(key)):
                try:
                    path.unlink()
                    removed = True
                except FileNotFoundError:
                    pass
        return removed

    # ------------------------------------------------------------------
    # Size accounting and eviction
    # ------------------------------------------------------------------
    def meta_path(self, key: str) -> Path:
        """Path of an artifact's metadata file (for external tooling).

        The file layout is an implementation detail; tooling (the
        ``repro-orders`` CLI) must come through here rather than
        reconstructing names.
        """
        return self._meta_path(key)

    def _footprint(self, key: str) -> Optional[Tuple[int, float]]:
        """``(bytes, accessed)`` by ``stat`` alone, or ``None``.

        The eviction hot path runs after *every* save on a bounded
        store, so it must not parse metadata — sizes and mtimes are all
        the policy needs.
        """
        try:
            stat = self._meta_path(key).stat()
        except FileNotFoundError:
            return None
        size = stat.st_size
        try:
            size += self._perm_path(key).stat().st_size
        except FileNotFoundError:
            pass
        return size, stat.st_mtime

    def _footprints(self) -> List[Tuple[str, int, float]]:
        """``(key, bytes, accessed)`` triples, least recently used first."""
        found = []
        for key in self.keys():
            footprint = self._footprint(key)
            if footprint is not None:
                found.append((key, footprint[0], footprint[1]))
        return sorted(found, key=lambda item: (item[2], item[0]))

    def entry(self, key: str) -> Optional[StoreEntry]:
        """The :class:`StoreEntry` of one artifact, or ``None``.

        Unlike the eviction path, this parses the metadata for the
        display fields — it serves listing/inspection tooling.
        """
        footprint = self._footprint(key)
        if footprint is None:
            return None
        domain, n, backend = "?", None, None
        try:
            meta = json.loads(self._meta_path(key).read_text())
            domain = str(meta.get("domain", "?"))
            n = meta.get("n")
            backend = meta.get("backend")
        except Exception:
            pass
        return StoreEntry(key=key, bytes=footprint[0],
                          accessed=footprint[1], domain=domain, n=n,
                          backend=backend)

    def entries(self) -> List[StoreEntry]:
        """Every artifact's footprint, least recently used first."""
        found = (self.entry(key) for key in self.keys())
        return sorted((e for e in found if e is not None),
                      key=lambda e: (e.accessed, e.key))

    def total_bytes(self) -> int:
        """Total on-disk footprint of every artifact."""
        return sum(size for _, size, _ in self._footprints())

    def evict_to(self, max_bytes: int, protect=(),
                 dry_run: bool = False) -> List[str]:
        """Delete LRU artifacts until the store fits in ``max_bytes``.

        Keys in ``protect`` are never deleted.  With ``dry_run`` the
        same policy runs but nothing is deleted.  Returns the (would-be)
        evicted keys, least recently used first.
        """
        if max_bytes < 0:
            raise InvalidParameterError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        with self._write_lock:
            footprints = self._footprints()
            total = sum(size for _, size, _ in footprints)
            protected = set(protect)
            evicted: List[str] = []
            for key, size, _ in footprints:
                if total <= max_bytes:
                    break
                if key in protected:
                    continue
                if dry_run:
                    total -= size
                    evicted.append(key)
                elif self.delete(key):
                    total -= size
                    evicted.append(key)
                    self.evictions += 1
        return evicted

"""The on-disk tier of the ordering cache.

A directory of versioned artifacts, one pair of files per order:

* ``<key>.json`` — metadata: store version, key, the full
  :class:`~repro.core.spectral.SpectralConfig` as a field dict, the
  domain descriptor, and the solve provenance (backend, ``lambda_2``,
  residual, multiplicity, diagnostic eigenvalues, solver calls);
* ``<key>.npy`` — the order's permutation array (``int64``), written
  with :func:`numpy.save` so a million-cell order loads in one
  ``mmap``-able read instead of a JSON parse.

Writes are atomic (temp file + ``os.replace``), so a crashed process
never leaves a half-written artifact a later service could trust.  Loads
are *defensive*: version mismatch, key mismatch, malformed JSON, a
missing half of the pair, or a corrupt permutation all count as a miss
(``None``) rather than an error — a cache must degrade to recomputation,
never take the service down.  This is what lets a restarted service pay
zero eigensolves for every domain it has seen before.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.service.artifacts import OrderArtifact

#: On-disk format version.  Bump on any incompatible layout change;
#: artifacts written under another version are ignored (treated as
#: misses), never misread.
STORE_VERSION = 1


class ArtifactStore:
    """A directory-backed, versioned store of :class:`OrderArtifact`.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on first write).
    """

    def __init__(self, root) -> None:
        self._root = Path(root).expanduser()
        self.loads = 0
        self.load_failures = 0

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def _meta_path(self, key: str) -> Path:
        self._check_key(key)
        return self._root / f"{key}.json"

    def _perm_path(self, key: str) -> Path:
        self._check_key(key)
        return self._root / f"{key}.npy"

    @staticmethod
    def _check_key(key: str) -> None:
        # Keys are hex digests; refuse anything that could escape the
        # store directory or collide with the temp-file suffix.
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise InvalidParameterError(
                f"artifact keys must be lowercase hex digests, got {key!r}"
            )

    # ------------------------------------------------------------------
    def save(self, artifact: OrderArtifact) -> None:
        """Persist an artifact (atomic per file; last writer wins)."""
        self._root.mkdir(parents=True, exist_ok=True)
        meta = {
            "version": STORE_VERSION,
            "key": artifact.key,
            "config": dataclasses.asdict(artifact.config),
            "domain": artifact.domain,
            "n": artifact.order.n,
            "lambda2": artifact.lambda2,
            "multiplicity": artifact.multiplicity,
            "backend": artifact.backend,
            "residual": artifact.residual,
            "eigenvalues": (list(artifact.eigenvalues)
                            if artifact.eigenvalues is not None else None),
            "solver_calls": artifact.solver_calls,
        }
        self._atomic_write_bytes(
            self._meta_path(artifact.key),
            (json.dumps(meta, indent=1, sort_keys=True) + "\n")
            .encode("utf-8"),
        )
        perm_path = self._perm_path(artifact.key)
        tmp = perm_path.with_suffix(".npy.tmp")
        # Write through a file handle: np.save() on a *path* appends
        # ".npy" when absent, which would break the temp-file rename.
        with open(tmp, "wb") as handle:
            np.save(handle, np.asarray(artifact.order.permutation,
                                       dtype=np.int64))
        os.replace(tmp, perm_path)

    def _atomic_write_bytes(self, path: Path, payload: bytes) -> None:
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[OrderArtifact]:
        """The stored artifact under ``key``, or ``None``.

        A wholly absent artifact is a clean miss.  Any *defect* — a
        metadata file whose permutation half is missing (a crash between
        the two writes), version or key mismatch, malformed JSON or
        permutation — also yields ``None`` but bumps ``load_failures``,
        so store corruption stays distinguishable from cold misses in
        monitoring; the caller recomputes either way.
        """
        self.loads += 1
        meta_path = self._meta_path(key)
        perm_path = self._perm_path(key)
        try:
            meta_text = meta_path.read_text()
        except FileNotFoundError:
            return None
        try:
            meta = json.loads(meta_text)
            if (meta.get("version") != STORE_VERSION
                    or meta.get("key") != key):
                raise ValueError("version or key mismatch")
            config = SpectralConfig(**meta["config"])
            permutation = np.load(perm_path)
            if len(permutation) != meta.get("n"):
                raise ValueError("permutation length mismatch")
            order = LinearOrder(permutation)
            eigenvalues = meta.get("eigenvalues")
            return OrderArtifact(
                key=key,
                config=config,
                domain=str(meta.get("domain", "")),
                order=order,
                lambda2=meta.get("lambda2"),
                multiplicity=meta.get("multiplicity"),
                backend=meta.get("backend"),
                residual=meta.get("residual"),
                eigenvalues=(tuple(eigenvalues)
                             if eigenvalues is not None else None),
                solver_calls=0,
                source="disk",
            )
        except Exception:
            self.load_failures += 1
            return None

    def __contains__(self, key: str) -> bool:
        return self._meta_path(key).exists()

    def keys(self) -> List[str]:
        """Keys of every artifact present (by metadata file)."""
        if not self._root.is_dir():
            return []
        return sorted(p.stem for p in self._root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    def delete(self, key: str) -> bool:
        """Remove one artifact; returns whether anything was deleted."""
        removed = False
        for path in (self._meta_path(key), self._perm_path(key)):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

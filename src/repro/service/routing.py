"""The one shard-routing formula, shared by every serving front.

Keyspace partitioning only works across deployment styles if every
front — the in-process :class:`~repro.service.ShardedIndexFrontend`,
the multi-process :mod:`repro.serve` harness, and any external router —
agrees on which shard owns a domain.  That agreement cannot rest on
``hash()`` (salted per interpreter) or on code duplicated per front
(which drifts); it lives here, as pure functions of the domain's
content-hash fingerprint:

* :func:`coerce_domain` — promote shape tuples to grids, reject
  non-domains;
* :func:`routing_fingerprint` — the SHA-256 fingerprint a domain is
  routed by (grids by shape, point sets by cell content, graphs by CSR
  content hash);
* :func:`shard_index` — leading 64 bits of that fingerprint modulo the
  shard count;
* :func:`shard_of_domain` — the composition, which both frontends call.

The functions are deterministic across processes, interpreter restarts,
and platforms, so a fleet of workers given only a shard count agrees on
ownership with every client — the property the multi-process harness'
per-shard disk stores depend on (a worker must only ever be handed keys
its own store could have warmed).
"""

from __future__ import annotations

from typing import Union

from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.geometry.pointset import PointSet
from repro.graph.adjacency import Graph
from repro.service.fingerprint import (
    graph_fingerprint,
    grid_fingerprint,
    points_fingerprint,
)

#: Routable domains (plain shape tuples are promoted to grids).
ShardableDomain = Union[Grid, PointSet, Graph]


def coerce_domain(domain) -> ShardableDomain:
    """Promote ``domain`` to a routable value, or raise.

    Grids, point sets, and graphs pass through; plain shape sequences
    become grids (the facade's convenience spelling).
    """
    if isinstance(domain, (Grid, PointSet, Graph)):
        return domain
    if isinstance(domain, (tuple, list)):
        return Grid(domain)
    raise InvalidParameterError(
        "domain must be a Grid, PointSet, Graph, or a shape "
        f"sequence, got {type(domain).__name__}"
    )


def routing_fingerprint(domain: ShardableDomain) -> str:
    """The SHA-256 fingerprint a domain is routed by.

    All configurations over one domain share this fingerprint, so they
    land on one shard and keep amortizing shared work (topology builds,
    coarsening hierarchies) exactly as in a single service.
    """
    if isinstance(domain, Grid):
        return grid_fingerprint(domain)
    if isinstance(domain, PointSet):
        return points_fingerprint(domain.grid, domain.cells)
    if isinstance(domain, Graph):
        return graph_fingerprint(domain)
    raise InvalidParameterError(
        f"domain must be a Grid, PointSet, or Graph, "
        f"got {type(domain).__name__}"
    )


def shard_index(fingerprint: str, num_shards: int) -> int:
    """Leading 64 bits of a hex fingerprint modulo the shard count."""
    if num_shards < 1:
        raise InvalidParameterError(
            f"num_shards must be >= 1, got {num_shards}"
        )
    return int(fingerprint[:16], 16) % num_shards


def shard_of_domain(domain, num_shards: int) -> int:
    """The shard owning ``domain`` — a pure, stable function.

    Uniform over the keyspace (SHA-256 output), identical in every
    process, and independent of request order.
    """
    return shard_index(routing_fingerprint(coerce_domain(domain)),
                       num_shards)

"""Keyspace-partitioned serving: a sharded front over ordering services.

The ROADMAP's last serving item: the content-hash fingerprints that key
every cached order (:mod:`repro.service.fingerprint`) are uniformly
distributed SHA-256 digests, which makes them a ready-made partitioning
keyspace.  :class:`ShardedIndexFrontend` exploits that: it owns N
independent :class:`~repro.service.OrderingService` shards and routes
every request — orders, artifacts, batches, and whole
:class:`~repro.api.SpectralIndex` builds — to the shard that owns the
domain's fingerprint.

Why shard by *domain* fingerprint (not the full order key)?  All
configurations over one domain land on one shard, so that shard's
hierarchy cache and topology batching keep amortizing shared work
exactly as they do in a single service; distinct domains spread across
shards, so each shard's memory LRU and disk store stay proportional to
its slice of the keyspace, and per-shard disk stores never contend on
one directory.  The routing is deterministic and process-independent
(SHA-256, not ``hash()``), so a fleet of processes given the same shard
count and store directories agree on ownership — the multi-process
deployment story is "run one frontend per process over shared per-shard
store directories".

Thread safety is inherited, not invented: each shard is a fully
thread-safe, single-flight ``OrderingService``, each built index locks
its own lazy state, and this frontend only adds an (internally locked)
index table and a pure routing function.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.caching import LRUCache
from repro.core.ordering import LinearOrder
from repro.errors import InvalidParameterError
from repro.obs import span
from repro.parallel import ensure_workers, map_in_threads
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph
from repro.service.artifacts import OrderArtifact
from repro.service.ordering import (
    ConfigLike,
    OrderingService,
    ServiceStats,
    normalize_requests,
)
from repro.service.routing import (
    ShardableDomain,
    coerce_domain,
    routing_fingerprint,
    shard_index,
    shard_of_domain,
)


class ShardedIndexFrontend:
    """Routes ordering and query traffic across per-shard services.

    Parameters
    ----------
    shards:
        Number of keyspace partitions to create (ignored when
        ``services`` is given).
    services:
        Pre-built :class:`~repro.service.OrderingService` instances to
        route over — e.g. each with its own disk store and capacity.
    stores:
        Per-shard store arguments (directory paths or
        :class:`~repro.service.ArtifactStore` instances), one per
        shard; ``None`` keeps every shard memory-only.
    memory_entries, hierarchy_entries:
        Forwarded to each created shard service.
    index_defaults:
        Default keyword arguments applied to every
        :meth:`index_for` build (``page_size``, ``buffer_capacity``,
        ...); per-call keywords win.
    max_indexes:
        Capacity of the built-index LRU behind :meth:`index_for` /
        :meth:`query_many`.  Evicting an index drops its materialized
        views and stores; its *orders* stay cached in the owning
        shard's service, so a re-build after eviction pays a graph/page
        layout, never an eigensolve.

    Examples
    --------
    >>> from repro.geometry import Grid
    >>> front = ShardedIndexFrontend(shards=2)
    >>> order = front.order_grid(Grid((6, 6)))
    >>> order.n
    36
    """

    def __init__(self, shards: int = 4, *,
                 services: Optional[Sequence[OrderingService]] = None,
                 stores: Optional[Sequence] = None,
                 memory_entries: int = 128,
                 hierarchy_entries: int = 32,
                 index_defaults: Optional[dict] = None,
                 max_indexes: int = 64):
        if services is not None:
            services = list(services)
            if not services:
                raise InvalidParameterError(
                    "services must be a non-empty sequence"
                )
            for service in services:
                if not isinstance(service, OrderingService):
                    raise InvalidParameterError(
                        "services must be OrderingService instances, "
                        f"got {type(service).__name__}"
                    )
            if stores is not None:
                raise InvalidParameterError(
                    "pass either prebuilt services or stores, not both"
                )
            self._services = services
        else:
            if shards < 1:
                raise InvalidParameterError(
                    f"shards must be >= 1, got {shards}"
                )
            if stores is not None and len(stores) != shards:
                raise InvalidParameterError(
                    f"stores must supply one entry per shard "
                    f"({shards}), got {len(stores)}"
                )
            self._services = [
                OrderingService(
                    memory_entries=memory_entries,
                    store=(stores[i] if stores is not None else None),
                    hierarchy_entries=hierarchy_entries,
                )
                for i in range(int(shards))
            ]
        self._index_defaults = dict(index_defaults or {})
        # Bounded: a long-lived frontend serving a stream of distinct
        # domains must not accumulate views/stores forever.  The locked
        # LRU keeps the footprint at max_indexes; evicted domains
        # rebuild from the shard's (still warm) order caches.
        self._indexes: "LRUCache[Tuple, object]" = LRUCache(  # guarded-by: _lock
            max_indexes, lock=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """How many keyspace partitions this frontend routes over."""
        return len(self._services)

    @property
    def services(self) -> Tuple[OrderingService, ...]:
        """The per-shard services, in shard order."""
        return tuple(self._services)

    _coerce_domain = staticmethod(coerce_domain)
    _domain_fingerprint = staticmethod(routing_fingerprint)

    def _shard_from_fingerprint(self, fingerprint: str) -> int:
        # The one routing formula, shared with repro.serve — see
        # repro.service.routing.
        return shard_index(fingerprint, len(self._services))

    def shard_of(self, domain) -> int:
        """The shard owning ``domain`` — a pure, stable function.

        The leading 64 bits of the domain's SHA-256 fingerprint modulo
        the shard count (:func:`repro.service.routing.shard_of_domain`):
        uniform over the keyspace, identical in every process, and
        independent of request order.
        """
        return shard_of_domain(domain, len(self._services))

    def service_for(self, domain) -> OrderingService:
        """The :class:`~repro.service.OrderingService` owning ``domain``."""
        return self._services[self.shard_of(domain)]

    # ------------------------------------------------------------------
    # Ordering traffic
    # ------------------------------------------------------------------
    def order_grid(self, grid: Grid,
                   config: ConfigLike = None) -> LinearOrder:
        """Routed :meth:`~repro.service.OrderingService.order_grid`."""
        return self.service_for(grid).order_grid(grid, config)

    def grid_artifact(self, grid: Grid,
                      config: ConfigLike = None) -> OrderArtifact:
        """Routed :meth:`~repro.service.OrderingService.grid_artifact`."""
        return self.service_for(grid).grid_artifact(grid, config)

    def order_graph(self, graph: Graph,
                    config: ConfigLike = None) -> LinearOrder:
        """Routed :meth:`~repro.service.OrderingService.order_graph`."""
        return self.service_for(graph).order_graph(graph, config)

    def graph_artifact(self, graph: Graph,
                       config: ConfigLike = None) -> OrderArtifact:
        """Routed :meth:`~repro.service.OrderingService.graph_artifact`."""
        return self.service_for(graph).graph_artifact(graph, config)

    def order_many(self, requests: Sequence, *,
                   parallelism: Optional[int] = None
                   ) -> List[LinearOrder]:
        """Batched ordering across shards; results align with input.

        Requests are partitioned by owning shard and each sub-batch
        goes through that shard's
        :meth:`~repro.service.OrderingService.order_many` (keeping its
        topology amortization).  ``parallelism`` > 1 runs the shard
        sub-batches on that many threads — shards are independent
        services, so cross-shard batches scale with no shared locks.
        """
        normalized = normalize_requests(requests)
        groups: Dict[int, List[int]] = {}
        for i, request in enumerate(normalized):
            groups.setdefault(self.shard_of(request.domain),
                              []).append(i)
        results: List[Optional[LinearOrder]] = [None] * len(normalized)

        def run_shard(item: Tuple[int, List[int]]) -> None:
            shard, indices = item
            orders = self._services[shard].order_many(
                [normalized[i] for i in indices])
            for i, order in zip(indices, orders):
                results[i] = order

        with span("shard.order_many", batch=len(normalized),
                  shards=len(groups)):
            map_in_threads(run_shard, list(groups.items()),
                           ensure_workers(parallelism),
                           thread_name_prefix="repro-shard")
        return results

    # ------------------------------------------------------------------
    # Index traffic
    # ------------------------------------------------------------------
    def index_for(self, domain, mapping="spectral", **build_kwargs):
        """A :class:`~repro.api.SpectralIndex` wired to the owning shard.

        Indexes are cached per ``(domain, mapping, build kwargs)`` in
        an LRU of ``max_indexes`` entries, so repeated traffic against
        one domain reuses its materialized views and stores while a
        stream of distinct domains stays memory-bounded; building is
        lazy (no solve until a query), so cache misses here are cheap.
        """
        # Imported lazily: repro.service must stay importable without
        # pulling the whole facade in (and the facade imports us).
        from repro.api.index import SpectralIndex
        from repro.mapping.interface import LocalityMapping

        domain = self._coerce_domain(domain)
        fingerprint = self._domain_fingerprint(domain)
        spec_key = (("instance", id(mapping))
                    if isinstance(mapping, LocalityMapping)
                    else repr(mapping))
        kwargs = dict(self._index_defaults)
        kwargs.update(build_kwargs)
        key = (fingerprint, spec_key,
               tuple(sorted((name, repr(value))
                            for name, value in kwargs.items())))
        with self._lock:
            index = self._indexes.get(key)
            if index is None:
                index = SpectralIndex.build(
                    domain, mapping,
                    service=self._services[
                        self._shard_from_fingerprint(fingerprint)],
                    **kwargs,
                )
                self._indexes.put(key, index)
        return index

    def query_many(self, domain, queries: Sequence, *,
                   parallelism: Optional[int] = None) -> List:
        """Routed :meth:`~repro.api.SpectralIndex.query_many`."""
        return self.index_for(domain).query_many(
            queries, parallelism=parallelism)

    def range(self, domain, box, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.range`."""
        return self.index_for(domain).range(box, **kwargs)

    def nn(self, domain, cell, k: int, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.nn`."""
        return self.index_for(domain).nn(cell, k, **kwargs)

    def join(self, domain, cells_a, cells_b, *, epsilon: int,
             window: int, **kwargs):
        """Routed :meth:`~repro.api.SpectralIndex.join`."""
        return self.index_for(domain).join(
            cells_a, cells_b, epsilon=epsilon, window=window, **kwargs)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> List[ServiceStats]:
        """Per-shard service stats, in shard order.

        Each entry is an atomic
        :meth:`~repro.service.OrderingService.snapshot`, so the
        returned counters never tear against in-flight requests.
        """
        return [service.snapshot() for service in self._services]

    def combined_stats(self) -> ServiceStats:
        """All shards' counters summed into one snapshot.

        Built from per-shard atomic snapshots — every summand is
        internally consistent (no mid-update reads), though shards are
        sampled sequentially, so the sum is a fuzzy barrier across
        shards like any multi-source aggregate.
        """
        combined = ServiceStats()
        for stats in self.stats():
            for name, value in stats.as_dict().items():
                setattr(combined, name, getattr(combined, name) + value)
        return combined

    def __repr__(self) -> str:
        with self._lock:
            indexes = len(self._indexes)
        return (f"ShardedIndexFrontend(shards={len(self._services)}, "
                f"indexes={indexes})")

"""``repro-orders``: operate on an order-artifact store directory.

Usage::

    repro-orders ls CACHE_DIR [--sort age|size|key]
    repro-orders inspect CACHE_DIR KEY_PREFIX
    repro-orders evict CACHE_DIR --max-bytes 64M [--dry-run]
    repro-orders evict CACHE_DIR --key KEY_PREFIX
    python -m repro.service.cli ...         # equivalent

The store directory is the one handed to
:class:`~repro.service.OrderingService` (``store=``), the experiments
CLI (``--cache-dir``), or :class:`~repro.service.ArtifactStore`
directly.  ``ls`` lists footprint and provenance summaries (least
recently used first); ``inspect`` dumps one artifact's full metadata;
``evict`` applies the same LRU size-bounding policy a
``max_bytes``-configured store enforces on every save.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.errors import InvalidParameterError
from repro.service.store import ArtifactStore

_SIZE_SUFFIXES = {"": 1, "K": 1024, "M": 1024 ** 2, "G": 1024 ** 3}


def parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``"64M"``)."""
    raw = text.strip().upper().removesuffix("B")
    suffix = raw[-1:] if raw[-1:] in ("K", "M", "G") else ""
    number = raw[:-1] if suffix else raw
    try:
        value = int(number)
    except ValueError:
        raise InvalidParameterError(
            f"cannot parse size {text!r}; expected e.g. 4096, 64K, 16M, 2G"
        ) from None
    if value < 0:
        raise InvalidParameterError(f"size must be >= 0, got {text!r}")
    return value * _SIZE_SUFFIXES[suffix]


def format_size(num_bytes: int) -> str:
    """Render a byte count with a binary suffix (``"1.5M"``)."""
    size = float(num_bytes)
    for suffix in ("", "K", "M", "G"):
        if size < 1024 or suffix == "G":
            return (f"{int(size)}{suffix}" if size < 10 or suffix == ""
                    else f"{size:.1f}{suffix}")
        size /= 1024
    return f"{num_bytes}"


def _resolve_key(store: ArtifactStore, prefix: str) -> str:
    matches = [key for key in store.keys() if key.startswith(prefix)]
    if not matches:
        raise InvalidParameterError(
            f"no artifact key starts with {prefix!r}"
        )
    if len(matches) > 1:
        raise InvalidParameterError(
            f"key prefix {prefix!r} is ambiguous "
            f"({len(matches)} matches); give more characters"
        )
    return matches[0]


def _cmd_ls(store: ArtifactStore, sort: str) -> int:
    entries = store.entries()
    if sort == "size":
        entries = sorted(entries, key=lambda e: (-e.bytes, e.key))
    elif sort == "key":
        entries = sorted(entries, key=lambda e: e.key)
    now = time.time()
    print(f"{'key':16s} {'size':>8s} {'age':>8s} {'n':>9s} "
          f"{'backend':10s} domain")
    for entry in entries:
        age_s = max(0.0, now - entry.accessed)
        age = (f"{age_s:.0f}s" if age_s < 120
               else f"{age_s / 60:.0f}m" if age_s < 7200
               else f"{age_s / 3600:.1f}h")
        n = "?" if entry.n is None else str(entry.n)
        backend = entry.backend or "?"
        print(f"{entry.key[:16]:16s} {format_size(entry.bytes):>8s} "
              f"{age:>8s} {n:>9s} {backend:10s} {entry.domain}")
    print(f"total: {len(entries)} artifacts, "
          f"{format_size(store.total_bytes())}")
    return 0


def _cmd_inspect(store: ArtifactStore, prefix: str) -> int:
    key = _resolve_key(store, prefix)
    print(store.meta_path(key).read_text().rstrip())
    entry = store.entry(key)
    if entry is not None:
        print(f"# footprint: {format_size(entry.bytes)} "
              f"({entry.bytes} bytes)")
    return 0


def _cmd_evict(store: ArtifactStore, max_bytes: Optional[int],
               key_prefix: Optional[str], dry_run: bool) -> int:
    if (max_bytes is None) == (key_prefix is None):
        print("evict needs exactly one of --max-bytes or --key",
              file=sys.stderr)
        return 2
    if key_prefix is not None:
        key = _resolve_key(store, key_prefix)
        if dry_run:
            print(f"would evict {key}")
        else:
            store.delete(key)
            print(f"evicted {key}")
        return 0
    if dry_run:
        victims = store.evict_to(max_bytes, dry_run=True)
        freed = 0
        for key in victims:
            entry = store.entry(key)
            freed += entry.bytes if entry is not None else 0
            print(f"would evict {key}")
        print(f"would free {format_size(freed)}; "
              f"{format_size(store.total_bytes() - freed)} would remain")
        return 0
    evicted = store.evict_to(max_bytes)
    for key in evicted:
        print(f"evicted {key}")
    print(f"{len(evicted)} evicted; "
          f"{format_size(store.total_bytes())} remain")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-orders`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-orders",
        description="List, inspect, and evict cached spectral-order "
                    "artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list artifacts (LRU first)")
    ls.add_argument("root", help="artifact store directory")
    ls.add_argument("--sort", choices=("age", "size", "key"),
                    default="age")

    inspect = sub.add_parser("inspect",
                             help="dump one artifact's metadata")
    inspect.add_argument("root", help="artifact store directory")
    inspect.add_argument("key", help="artifact key (unique prefix ok)")

    evict = sub.add_parser("evict", help="delete artifacts")
    evict.add_argument("root", help="artifact store directory")
    evict.add_argument("--max-bytes", default=None, metavar="SIZE",
                       help="evict LRU artifacts until the store fits "
                            "(accepts K/M/G suffixes)")
    evict.add_argument("--key", default=None, metavar="PREFIX",
                       help="evict one artifact by key prefix")
    evict.add_argument("--dry-run", action="store_true",
                       help="report what would be deleted, delete "
                            "nothing")

    args = parser.parse_args(argv)
    store = ArtifactStore(args.root)
    try:
        if args.command == "ls":
            return _cmd_ls(store, args.sort)
        if args.command == "inspect":
            return _cmd_inspect(store, args.key)
        max_bytes = (parse_size(args.max_bytes)
                     if args.max_bytes is not None else None)
        return _cmd_evict(store, max_bytes, args.key, args.dry_run)
    except (InvalidParameterError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-orders: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Stable fingerprints of ordering requests.

A cached spectral order is only as trustworthy as its key: the key must
be *deterministic across processes* (Python's ``hash()`` is salted and
useless for disk stores), must *never collide* for distinct requests,
and must be cheap relative to an eigensolve.  This module derives SHA-256
hex digests for each half of a request —

* the **configuration** (:class:`~repro.core.spectral.SpectralConfig`),
  serialized field-by-field in a canonical text form;
* the **domain** — grids by shape (a grid *is* its shape), point subsets
  by grid shape plus the exact cell set, and user graphs by the content
  hash of their canonical CSR arrays
  (:meth:`~repro.graph.adjacency.Graph.content_fingerprint`)

— and combines them into the order key used by both cache tiers.  All
digests are versioned: bumping :data:`FINGERPRINT_VERSION` invalidates
every previously stored artifact at once, which is the safe response to
any change in ordering semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Sequence, Union

import numpy as np

from repro.core.spectral import SpectralConfig
from repro.errors import InvalidParameterError
from repro.geometry.grid import Grid
from repro.graph.adjacency import Graph

#: Version prefix folded into every digest.  Bump when the meaning of a
#: stored order changes (new tie-break semantics, changed canonical
#: probe, ...) so stale artifacts can never be served.
FINGERPRINT_VERSION = 1

Domain = Union[Grid, Graph]

#: The :class:`SpectralConfig` fields that existed when the v1 digest
#: schema froze.  They are always serialized; fields added later are
#: serialized only when set to a non-default value, so configs that do
#: not use them keep their original fingerprint (and every artifact
#: cached under it) while any explicit override still changes the key.
_V1_CONFIG_FIELDS = frozenset({
    "connectivity", "radius", "weight", "backend", "tie_break",
    "on_disconnected", "component_arrangement", "snap_tol",
})


def _digest(kind: str, *parts: bytes) -> str:
    h = hashlib.sha256(f"repro-{kind}-v{FINGERPRINT_VERSION}"
                       .encode("ascii"))
    for part in parts:
        h.update(b"\x00")
        h.update(part)
    return h.hexdigest()


def config_fingerprint(config: SpectralConfig) -> str:
    """Deterministic digest of a :class:`SpectralConfig`.

    Every dataclass field participates, serialized by name in field
    order with floats rendered via ``repr`` (which round-trips exactly in
    Python 3), so two configs share a fingerprint iff they are equal —
    across processes, interpreter restarts, and ``PYTHONHASHSEED``
    values.

    One refinement: fields added to :class:`SpectralConfig` *after* the
    v1 schema froze (:data:`_V1_CONFIG_FIELDS`) are serialized only when
    they differ from their declared default.  Two configs are still
    fingerprint-equal iff dataclass-equal, but a config that leaves the
    new knobs alone hashes exactly as it did before they existed —
    default-config artifacts cached by earlier releases stay valid.
    """
    if not isinstance(config, SpectralConfig):
        raise InvalidParameterError(
            f"expected a SpectralConfig, got {type(config).__name__}"
        )
    parts = []
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if field.name not in _V1_CONFIG_FIELDS and value == field.default:
            continue
        parts.append(f"{field.name}={value!r}".encode("utf-8"))
    return _digest("config", *parts)


def grid_fingerprint(grid: Grid) -> str:
    """Deterministic digest of a grid domain (its shape)."""
    return _digest("grid", repr(grid.shape).encode("ascii"))


def graph_fingerprint(graph: Graph, content: str | None = None) -> str:
    """Deterministic digest of a user-graph domain (content hash).

    ``content`` optionally supplies a precomputed
    :meth:`~repro.graph.adjacency.Graph.content_fingerprint` so callers
    that already hashed the CSR arrays (hashing is O(edges)) need not
    pay a second pass.
    """
    if content is None:
        content = graph.content_fingerprint()
    return _digest("graph", content.encode("ascii"))


def points_fingerprint(grid: Grid, cells: Sequence[int]) -> str:
    """Deterministic digest of a sparse point-set domain.

    The cell set is canonicalized exactly the way
    :func:`~repro.graph.builders.induced_grid_graph` does (ascending
    distinct flat indices), so any input ordering of the same cells
    yields the same fingerprint.
    """
    canonical = np.unique(np.asarray(cells, dtype=np.int64))
    return _digest("points", repr(grid.shape).encode("ascii"),
                   canonical.tobytes())


def domain_fingerprint(domain: Domain) -> str:
    """Dispatch to the fingerprint of a grid or graph domain."""
    if isinstance(domain, Grid):
        return grid_fingerprint(domain)
    if isinstance(domain, Graph):
        return graph_fingerprint(domain)
    raise InvalidParameterError(
        f"domain must be a Grid or Graph, got {type(domain).__name__}"
    )


def order_key(config: SpectralConfig, domain_digest: str) -> str:
    """The cache key of one ordering request.

    ``domain_digest`` is the output of one of the domain fingerprint
    functions; combining at the digest level keeps the key width fixed
    regardless of domain size.
    """
    return _digest("order", config_fingerprint(config).encode("ascii"),
                   domain_digest.encode("ascii"))

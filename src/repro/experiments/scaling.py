"""Dimensionality-scaling study.

The paper's pitch is *multi-dimensional* databases; its experiments fix
d=2, 4, 5 per figure.  This extension sweeps the dimension at (roughly)
constant point count and tracks the boundary-effect statistic — the max
adjacent rank gap as a fraction of n — per mapping.  Fractal fragment
boundaries pass through ever more cell pairs as d grows, so their curves
should stay near 1; spectral's should stay far below.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.index import SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.experiments.runner import ExperimentResult
from repro.geometry.grid import Grid
from repro.mapping.interface import PAPER_MAPPING_NAMES
from repro.metrics.pairwise import adjacent_gap_stats

#: (ndim, side) pairs with comparable cell counts (256..1024).
DEFAULT_DOMAINS = ((2, 16), (3, 8), (4, 6), (5, 4))


def run_scaling(domains: Sequence[tuple] = DEFAULT_DOMAINS,
                mapping_names: Sequence[str] = PAPER_MAPPING_NAMES,
                backend: str = "auto", service=None) -> ExperimentResult:
    """Max adjacent rank gap (fraction of n) vs dimensionality."""
    grids = [Grid.cube(side, ndim) for ndim, side in domains]
    result = ExperimentResult(
        exp_id="scaling",
        title="Boundary effect vs dimensionality "
              f"(domains {[g.shape for g in grids]})",
        xlabel="dimension",
        ylabel="max adjacent gap / n",
        x=[ndim for ndim, _ in domains],
        params={"domains": list(domains), "backend": backend},
        notes=(
            "Each cell: max |rank difference| over Manhattan-distance-1 "
            "pairs, normalized by the cell count of that domain."
        ),
    )
    config = SpectralConfig(backend=backend)
    indexes = [SpectralIndex.build(grid, service=service, config=config)
               for grid in grids]
    for name in mapping_names:
        ys = []
        for grid, index in zip(grids, indexes):
            worst, _ = adjacent_gap_stats(grid, index.ranks_for(name))
            ys.append(worst / grid.size)
        result.add_series(name, ys)
    return result

"""Command-line entry point: regenerate any of the paper's figures.

Usage::

    python -m repro.experiments fig5a
    python -m repro.experiments fig6b --backend dense --side 5
    python -m repro.experiments all
    python -m repro.experiments all --cache-dir ~/.cache/repro-orders
    repro-experiments fig1          # console-script alias

Each figure prints the same rows/series the paper plots, plus a shape
comparison against the digitized published curves where available.

All figures share one :class:`~repro.api.OrderingService`, so a
domain that appears in several figures is eigensolved once per run —
and, with ``--cache-dir``, once per *machine*: subsequent runs load the
orders from the artifact store instead of recomputing them.
``--cache-max-bytes`` bounds that store's footprint (LRU eviction, see
the ``repro-orders`` CLI for manual inspection), and each harness runs
on the unified :class:`~repro.api.SpectralIndex` facade.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.fig1_boundary import render_fig1_orders, run_fig1
from repro.experiments.fig3_example import render_fig3
from repro.experiments.fig4_connectivity import (
    fig4_metrics_table,
    render_fig4,
)
from repro.experiments.fig5_nn import run_fig5a, run_fig5b
from repro.experiments.fig6_range import run_fig6a, run_fig6b
from repro.experiments.paper_data import (
    paper_fig5a,
    paper_fig5b,
    paper_fig6a,
    paper_fig6b,
)
from repro.experiments.summary import run_summary
from repro.experiments.tables import render_report, render_table
from repro.api import OrderingService
from repro.errors import InvalidParameterError
from repro.service.cli import parse_size
from repro.service.store import ArtifactStore

FIGURES = ("fig1", "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b",
           "summary")


def _run_one(figure: str, backend: str, side: Optional[int],
             service: Optional[OrderingService]) -> str:
    if figure == "fig1":
        table = render_table(run_fig1(side=side or 4, backend=backend,
                                      service=service))
        art = render_fig1_orders(side=side or 4, backend=backend,
                                 service=service)
        return f"{table}\n\n{art}"
    if figure == "fig3":
        return render_fig3(backend=backend)
    if figure == "fig4":
        table = render_table(fig4_metrics_table(side=side or 4,
                                                backend=backend))
        art = render_fig4(side=side or 4, backend=backend)
        return f"{table}\n\n{art}"
    if figure == "fig5a":
        measured = run_fig5a(side=side or 4, backend=backend,
                             service=service)
        return render_report(measured, paper_fig5a())
    if figure == "fig5b":
        measured = run_fig5b(side=side or 16, backend=backend,
                             service=service)
        return render_report(measured, paper_fig5b())
    if figure == "fig6a":
        measured = run_fig6a(side=side or 6, backend=backend,
                             service=service)
        return render_report(measured, paper_fig6a())
    if figure == "fig6b":
        measured = run_fig6b(side=side or 6, backend=backend,
                             service=service)
        return render_report(measured, paper_fig6b())
    if figure == "summary":
        return render_table(run_summary(side=side or 16, backend=backend,
                                        service=service), precision=2)
    raise ValueError(f"unknown figure {figure!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the Spectral LPM paper.",
    )
    parser.add_argument(
        "figure", choices=FIGURES + ("all",),
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--backend", default="auto",
        choices=("auto", "dense", "lanczos", "scipy"),
        help="eigensolver backend for the spectral mapping",
    )
    parser.add_argument(
        "--side", type=int, default=None,
        help="override the grid side length (figure-specific default "
             "otherwise)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist computed spectral orders under DIR; reruns load "
             "them instead of re-solving",
    )
    parser.add_argument(
        "--cache-max-bytes", default=None, metavar="SIZE",
        help="bound the --cache-dir store (LRU eviction; accepts K/M/G "
             "suffixes)",
    )
    args = parser.parse_args(argv)
    figures = FIGURES if args.figure == "all" else (args.figure,)
    if args.cache_max_bytes is not None and args.cache_dir is None:
        parser.error("--cache-max-bytes requires --cache-dir")
    store = None
    if args.cache_dir is not None:
        try:
            max_bytes = (parse_size(args.cache_max_bytes)
                         if args.cache_max_bytes is not None else None)
            store = ArtifactStore(args.cache_dir, max_bytes=max_bytes)
        except InvalidParameterError as exc:
            parser.error(str(exc))
    service = OrderingService(store=store)
    outputs = []
    for figure in figures:
        outputs.append("=" * 72)
        outputs.append(_run_one(figure, args.backend, args.side, service))
    stats = service.stats
    outputs.append("=" * 72)
    outputs.append(
        f"[ordering service] computed={stats.computed} "
        f"memory_hits={stats.memory_hits} disk_hits={stats.disk_hits} "
        f"eigensolver_calls={stats.solver_calls}"
    )
    print("\n".join(outputs))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Experiment harnesses that regenerate every figure of the paper."""

from repro.experiments.fig1_boundary import (
    FIG1_MAPPINGS,
    render_fig1_orders,
    run_fig1,
)
from repro.experiments.fig3_example import Fig3Outcome, render_fig3, run_fig3
from repro.experiments.fig4_connectivity import (
    FIG4_MODELS,
    Fig4Outcome,
    fig4_metrics_table,
    render_fig4,
    run_fig4,
)
from repro.experiments.fig5_nn import run_fig5a, run_fig5b
from repro.experiments.fig6_range import (
    partial_match_spans,
    run_fig6a,
    run_fig6b,
)
from repro.experiments.paper_data import (
    NN_PERCENTS,
    PAPER_FIG1_GAPS,
    PAPER_FIG3_LAMBDA2,
    PAPER_FIG3_ORDER,
    RANGE_PERCENTS,
    paper_fig5a,
    paper_fig5b,
    paper_fig6a,
    paper_fig6b,
)
from repro.experiments.runner import (
    ExperimentResult,
    Series,
    ranking_agreement,
    ranking_at,
    winner_per_x,
)
from repro.experiments.summary import SUMMARY_METRICS, run_summary
from repro.experiments.tables import render_report, render_table

__all__ = [
    "ExperimentResult",
    "FIG1_MAPPINGS",
    "FIG4_MODELS",
    "Fig3Outcome",
    "Fig4Outcome",
    "NN_PERCENTS",
    "PAPER_FIG1_GAPS",
    "PAPER_FIG3_LAMBDA2",
    "PAPER_FIG3_ORDER",
    "RANGE_PERCENTS",
    "SUMMARY_METRICS",
    "Series",
    "fig4_metrics_table",
    "paper_fig5a",
    "paper_fig5b",
    "paper_fig6a",
    "paper_fig6b",
    "partial_match_spans",
    "ranking_agreement",
    "ranking_at",
    "render_fig1_orders",
    "render_fig3",
    "render_fig4",
    "render_report",
    "render_table",
    "run_fig1",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig6a",
    "run_fig6b",
    "run_summary",
    "winner_per_x",
]

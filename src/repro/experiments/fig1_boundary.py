"""Figure 1 — the boundary effect of fractal mappings.

The paper's Figure 1 marks two cells of a 4x4 grid that are spatially
adjacent but lie in different quadrants, and reports their 1-D distances
under the Peano (5), Gray (9) and Hilbert (15) curves.  This harness
generalizes the construction: for every mapping, it measures the *maximum*
rank gap among orthogonally adjacent cell pairs that straddle each
mid-plane of the grid (the quadrant boundaries), plus the overall
worst adjacent gap.  The published per-pair numbers are therefore lower
bounds for the fractal curves' columns.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.index import SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.experiments.runner import ExperimentResult
from repro.geometry.grid import Grid
from repro.metrics.pairwise import adjacent_gap_stats, boundary_gap
from repro.viz.ascii_art import render_order_path, render_ranks

FIG1_MAPPINGS = ("sweep", "snake", "peano", "gray", "hilbert", "spectral")


def run_fig1(side: int = 4,
             mapping_names: Sequence[str] = FIG1_MAPPINGS,
             backend: str = "auto", service=None) -> ExperimentResult:
    """Boundary-effect table on a ``side x side`` grid.

    The x-axis is categorical: the mid-plane crossed (per axis), then the
    overall worst adjacent gap.  Lower is better everywhere.
    """
    grid = Grid((side, side))
    categories = [f"cross-axis{a}" for a in range(grid.ndim)]
    categories.append("any-adjacent-max")
    categories.append("any-adjacent-mean")
    result = ExperimentResult(
        exp_id="fig1",
        title=f"Boundary effect on a {side}x{side} grid",
        xlabel="pair family",
        ylabel="1-D rank distance",
        x=categories,
        params={"side": side, "backend": backend},
        notes=(
            "cross-axisK: max rank gap between orthogonally adjacent "
            "cells straddling the axis-K mid-plane (the paper's quadrant "
            "boundary).  Fractals pay the boundary effect; sweep/snake/"
            "spectral do not."
        ),
    )
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in mapping_names:
        ranks = index.ranks_for(name)
        row = [boundary_gap(grid, ranks, axis) for axis in range(grid.ndim)]
        worst, mean = adjacent_gap_stats(grid, ranks)
        row.extend([worst, mean])
        result.add_series(name, row)
    return result


def render_fig1_orders(side: int = 4, backend: str = "auto",
                       mapping_names: Sequence[str] = FIG1_MAPPINGS,
                       service=None) -> str:
    """The Figure-1 pictures, as text: rank matrix + path per mapping."""
    grid = Grid((side, side))
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    blocks = []
    for name in mapping_names:
        ranks = index.ranks_for(name)
        blocks.append(
            f"[{name}]\n{render_ranks(grid, ranks)}\n"
            f"{render_order_path(grid, ranks)}"
        )
    return "\n\n".join(blocks)

"""Figure 3 — the paper's worked 3x3 example, end to end.

The paper walks its algorithm through the 3x3 grid: build the
4-connectivity graph (Figure 3b), form the 9x9 Laplacian (Figure 3c),
compute ``lambda_2 = 1`` and a Fiedler vector, and sort — publishing the
order ``S = (2, 1, 5, 0, 4, 8, 3, 7, 6)``.

``lambda_2`` of this grid has multiplicity 2, so *many* orders are equally
optimal for the continuous objective; the paper's S is one member of the
family, our canonical order is another.  The report below verifies
everything that is check-able: the Laplacian matches Figure 3c, the
Fiedler value is exactly 1, and our order's discrete 2-sum objective is at
least as good as the published order's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fiedler import fiedler_vector
from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralLPM
from repro.experiments.paper_data import (
    PAPER_FIG3_LAMBDA2,
    PAPER_FIG3_ORDER,
)
from repro.geometry.grid import Grid
from repro.graph.builders import grid_graph
from repro.graph.laplacian import laplacian_dense
from repro.metrics.arrangement import two_sum
from repro.viz.ascii_art import render_ranks, render_values


@dataclass(frozen=True)
class Fig3Outcome:
    """Everything Figure 3 shows, computed by this library."""

    laplacian: np.ndarray
    fiedler_value: float
    fiedler_multiplicity: int
    fiedler_vector: np.ndarray
    order: LinearOrder
    our_two_sum: float
    paper_two_sum: float

    @property
    def matches_paper_lambda2(self) -> bool:
        return abs(self.fiedler_value - PAPER_FIG3_LAMBDA2) < 1e-9

    @property
    def at_least_as_good_as_paper(self) -> bool:
        """Our discrete objective is <= the published order's."""
        return self.our_two_sum <= self.paper_two_sum + 1e-9


def run_fig3(backend: str = "auto") -> Fig3Outcome:
    """Compute the Figure-3 example and compare against the paper."""
    grid = Grid((3, 3))
    graph = grid_graph(grid)
    dense = laplacian_dense(graph)
    fiedler = fiedler_vector(graph, backend=backend)
    order = SpectralLPM(backend=backend).order_grid(grid)
    paper_order = LinearOrder(np.array(PAPER_FIG3_ORDER))
    return Fig3Outcome(
        laplacian=dense,
        fiedler_value=fiedler.value,
        fiedler_multiplicity=fiedler.multiplicity,
        fiedler_vector=fiedler.vector,
        order=order,
        our_two_sum=two_sum(graph, order),
        paper_two_sum=two_sum(graph, paper_order),
    )


def render_fig3(backend: str = "auto") -> str:
    """The worked example as a text report."""
    outcome = run_fig3(backend=backend)
    grid = Grid((3, 3))
    lines = [
        "Figure 3 - the 3x3 worked example",
        "",
        "Laplacian L(G) (Figure 3c):",
        str(outcome.laplacian.astype(int)),
        "",
        f"lambda_2 = {outcome.fiedler_value:.6f} "
        f"(paper: {PAPER_FIG3_LAMBDA2}; multiplicity "
        f"{outcome.fiedler_multiplicity})",
        "",
        "canonical Fiedler vector over the grid:",
        render_values(grid, outcome.fiedler_vector, precision=3),
        "",
        "resulting spectral order (ranks over the grid):",
        render_ranks(grid, outcome.order.ranks),
        "",
        f"our order S = {tuple(int(v) for v in outcome.order.permutation)}",
        f"paper order S = {PAPER_FIG3_ORDER}",
        f"discrete 2-sum objective: ours = {outcome.our_two_sum:.0f}, "
        f"paper's = {outcome.paper_two_sum:.0f} "
        "(both optimal for the continuous relaxation; lambda_2 is "
        "degenerate so the minimizer family is 2-dimensional)",
    ]
    return "\n".join(lines)

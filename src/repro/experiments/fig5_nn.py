"""Figure 5 — nearest-neighbour locality experiments.

Figure 5a (worst case): over all pairs of 5-D grid cells at a given
Manhattan distance (x-axis, percent of the maximum), the maximum 1-D rank
distance (y-axis, percent of n), per mapping.

Figure 5b (fairness): on a 2-D grid, pairs separated along exactly one
axis; the maximum rank distance per axis, for Sweep and Spectral.  A fair
mapping's X and Y curves coincide.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.index import SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.experiments.paper_data import NN_PERCENTS
from repro.experiments.runner import ExperimentResult
from repro.geometry.grid import Grid
from repro.mapping.interface import PAPER_MAPPING_NAMES
from repro.metrics.fairness import axis_rank_distance
from repro.metrics.pairwise import (
    distances_for_percentages,
    rank_distance_profile,
)


def run_fig5a(side: int = 4, ndim: int = 5,
              percents: Sequence[int] = NN_PERCENTS,
              mapping_names: Sequence[str] = PAPER_MAPPING_NAMES,
              backend: str = "auto", service=None) -> ExperimentResult:
    """Reproduce Figure 5a.

    Defaults: a 4^5 grid (1024 cells), the paper's five mappings, and the
    paper's x-axis of 10..50% of the maximum Manhattan distance.  An
    optional :class:`~repro.service.ordering.OrderingService` lets the
    spectral solve be shared with other harnesses over the same domain.
    """
    grid = Grid.cube(side, ndim)
    distances = distances_for_percentages(grid, percents)
    result = ExperimentResult(
        exp_id="fig5a",
        title=f"NN worst case on a {side}^{ndim} grid (n={grid.size})",
        xlabel="Manhattan distance (%)",
        ylabel="max 1-D distance (% of n)",
        x=tuple(percents),
        params={"side": side, "ndim": ndim, "backend": backend,
                "distances": [int(d) for d in distances]},
        notes=(
            "Each column: max |rank_i - rank_j| over all cell pairs at "
            "that Manhattan distance, as a percent of n-1."
        ),
    )
    scale = 100.0 / (grid.size - 1)
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in mapping_names:
        profile = rank_distance_profile(grid, index.ranks_for(name))
        result.add_series(
            name,
            [profile.at(int(d))[0] * scale for d in distances],
        )
    return result


def run_fig5b(side: int = 16,
              percents: Sequence[int] = NN_PERCENTS,
              backend: str = "auto",
              include_hilbert: bool = False,
              service=None) -> ExperimentResult:
    """Reproduce Figure 5b.

    Pairs separated by ``delta`` cells along exactly one axis of a 2-D
    ``side x side`` grid; ``delta`` is the given percent of ``side - 1``.
    Series come in X/Y pairs; a fair mapping's pair coincides.
    ``include_hilbert`` adds Hilbert-X/Y as an extension (the paper plots
    only Sweep and Spectral).
    """
    grid = Grid((side, side))
    deltas = [max(1, round(p / 100.0 * (side - 1))) for p in percents]
    result = ExperimentResult(
        exp_id="fig5b",
        title=f"NN fairness on a {side}x{side} grid",
        xlabel="Manhattan distance (%)",
        ylabel="max 1-D distance",
        x=tuple(percents),
        params={"side": side, "backend": backend, "deltas": deltas},
        notes=(
            "Sweep-X vs Sweep-Y diverge by ~the row length; "
            "Spectral-X and Spectral-Y nearly coincide (fair mapping)."
        ),
    )
    names = ["sweep", "spectral"] + (
        ["hilbert"] if include_hilbert else [])
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in names:
        ranks = index.ranks_for(name)
        for axis, label in ((0, "X"), (1, "Y")):
            result.add_series(
                f"{name}-{label}",
                [axis_rank_distance(grid, ranks, axis, d) for d in deltas],
            )
    return result

"""Figure 4 — varying the graph model (4- vs 8-connectivity).

Section 4 shows the spectral order of a 4x4 grid under the default
4-connectivity model and under 8-connectivity, as a demonstration that
the algorithm is "optimal for the chosen graph type".  This harness
computes both orders (plus the weighted-radius footnote model as an
extension) and quantifies how the model choice changes the order and its
locality statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.ordering import LinearOrder
from repro.core.spectral import SpectralLPM
from repro.experiments.runner import ExperimentResult
from repro.geometry.grid import Grid
from repro.metrics.arrangement import arrangement_costs
from repro.metrics.pairwise import adjacent_gap_stats
from repro.viz.ascii_art import render_order_path, render_ranks

#: The graph models Figure 4 and the Section-4 footnote describe.
FIG4_MODELS: Dict[str, dict] = {
    "4-connectivity": {"connectivity": "orthogonal", "radius": 1,
                       "weight": "unit"},
    "8-connectivity": {"connectivity": "moore", "radius": 1,
                       "weight": "unit"},
    "weighted-r2": {"connectivity": "orthogonal", "radius": 2,
                    "weight": "inverse_manhattan"},
}


@dataclass(frozen=True)
class Fig4Outcome:
    """Spectral orders of one grid under each graph model."""

    grid: Grid
    orders: Dict[str, LinearOrder]


def run_fig4(side: int = 4, backend: str = "auto") -> Fig4Outcome:
    """Spectral orders of a ``side x side`` grid per graph model."""
    grid = Grid((side, side))
    orders = {}
    for model_name, kwargs in FIG4_MODELS.items():
        orders[model_name] = SpectralLPM(backend=backend,
                                         **kwargs).order_grid(grid)
    return Fig4Outcome(grid=grid, orders=orders)


def fig4_metrics_table(side: int = 4,
                       backend: str = "auto") -> ExperimentResult:
    """Locality metrics of each model's order, evaluated on the
    4-connectivity graph (the common yardstick)."""
    outcome = run_fig4(side=side, backend=backend)
    yardstick = SpectralLPM(backend=backend).build_grid_graph(outcome.grid)
    result = ExperimentResult(
        exp_id="fig4",
        title=f"Graph-model variation on a {side}x{side} grid",
        xlabel="metric",
        ylabel="value (on the 4-connectivity yardstick graph)",
        x=["two_sum", "one_sum", "bandwidth", "adjacent-max"],
        params={"side": side, "backend": backend},
        notes=(
            "All orders are evaluated against the same 4-connectivity "
            "graph so the objective numbers are comparable; each order "
            "is optimal for the relaxation of *its own* model."
        ),
    )
    for model_name, order in outcome.orders.items():
        costs = arrangement_costs(yardstick, order)
        worst, _ = adjacent_gap_stats(outcome.grid, order.ranks)
        result.add_series(
            model_name,
            [costs.two_sum, costs.one_sum, costs.bandwidth, worst],
        )
    return result


def render_fig4(side: int = 4, backend: str = "auto") -> str:
    """The Figure-4 pictures as text: rank matrix + path per model."""
    outcome = run_fig4(side=side, backend=backend)
    blocks = []
    for model_name, order in outcome.orders.items():
        blocks.append(
            f"[{model_name}]\n"
            f"{render_ranks(outcome.grid, order.ranks)}\n"
            f"{render_order_path(outcome.grid, order.ranks)}"
        )
    return "\n\n".join(blocks)

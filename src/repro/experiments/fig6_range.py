"""Figure 6 — range-query experiments.

Figure 6a (worst case): for hyper-cubic range queries covering x percent
of a 4-D space, the maximum span (max rank - min rank of the cells
inside) over **all** query placements.

Figure 6b (fairness): the standard deviation of the span over **all
possible partial range queries** of that size — every choice of
constrained-axis subset, every placement.  Partial queries are what
expose Sweep's unfairness: constraining only the slow axis is vastly more
expensive than constraining only the fast one, while Spectral treats all
axes alike.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.api.index import SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.experiments.paper_data import RANGE_PERCENTS
from repro.experiments.runner import ExperimentResult
from repro.geometry.boxes import extent_for_volume_fraction
from repro.geometry.grid import Grid
from repro.mapping.interface import PAPER_MAPPING_NAMES
from repro.metrics.range_span import span_field, span_stats


def run_fig6a(side: int = 6, ndim: int = 4,
              size_percents: Sequence[int] = RANGE_PERCENTS,
              mapping_names: Sequence[str] = PAPER_MAPPING_NAMES,
              backend: str = "auto", service=None) -> ExperimentResult:
    """Reproduce Figure 6a (max span of hyper-cubic range queries)."""
    grid = Grid.cube(side, ndim)
    extents = [extent_for_volume_fraction(grid, p / 100.0)
               for p in size_percents]
    result = ExperimentResult(
        exp_id="fig6a",
        title=f"Range worst case on a {side}^{ndim} grid (n={grid.size})",
        xlabel="query size (%)",
        ylabel="max span",
        x=tuple(size_percents),
        params={"side": side, "ndim": ndim, "backend": backend,
                "extents": [list(e) for e in extents]},
        notes=(
            "Each column: max over all placements of a near-cubic box of "
            "that volume of (max rank - min rank) inside the box.  NOTE: "
            "the paper's text does not pin down Figure 6a's exact query "
            "family; with hyper-cubic queries our reproduction shows "
            "spectral far below every fractal (the paper's headline "
            "claim) but above plain Sweep, whose hyper-cubic spans are "
            "structurally minimal.  See EXPERIMENTS.md for the analysis."
        ),
    )
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in mapping_names:
        ranks = index.ranks_for(name)
        result.add_series(
            name,
            [span_stats(grid, ranks, e).max for e in extents],
        )
    return result


def partial_match_spans(grid: Grid, ranks: np.ndarray,
                        fraction: float) -> np.ndarray:
    """Spans of every partial range query of one target size.

    For each nonempty subset of axes of size ``m``, the constrained
    extent is ``round(side * fraction**(1/m))`` (the box covers about
    ``fraction`` of the space; unconstrained axes span fully).  Subsets
    whose extent degenerates to the full side are skipped — they
    constrain nothing.  Returns the concatenated span samples of every
    placement of every subset.
    """
    samples = []
    for m in range(1, grid.ndim + 1):
        for axes in itertools.combinations(range(grid.ndim), m):
            per_axis = fraction ** (1.0 / m)
            extent_full = []
            vacuous = True
            for axis in range(grid.ndim):
                if axis in axes:
                    e = max(1, min(grid.shape[axis],
                                   round(grid.shape[axis] * per_axis)))
                    if e < grid.shape[axis]:
                        vacuous = False
                    extent_full.append(e)
                else:
                    extent_full.append(grid.shape[axis])
            if vacuous:
                continue
            samples.append(span_field(grid, ranks, extent_full).ravel())
    if not samples:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(samples)


def run_fig6b(side: int = 6, ndim: int = 4,
              size_percents: Sequence[int] = RANGE_PERCENTS,
              mapping_names: Sequence[str] = PAPER_MAPPING_NAMES,
              backend: str = "auto", service=None) -> ExperimentResult:
    """Reproduce Figure 6b (stdev of span over all partial queries)."""
    grid = Grid.cube(side, ndim)
    result = ExperimentResult(
        exp_id="fig6b",
        title=f"Range fairness on a {side}^{ndim} grid (n={grid.size})",
        xlabel="query size (%)",
        ylabel="stdev of span",
        x=tuple(size_percents),
        params={"side": side, "ndim": ndim, "backend": backend},
        notes=(
            "Each column: stdev of the span over all partial range "
            "queries of that size (every constrained-axis subset, every "
            "placement)."
        ),
    )
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in mapping_names:
        ranks = index.ranks_for(name)
        ys = []
        for p in size_percents:
            spans = partial_match_spans(grid, ranks, p / 100.0)
            ys.append(float(spans.std()) if spans.size else 0.0)
        result.add_series(name, ys)
    return result

"""Digitized reference curves from the published figures.

The paper ships plots, not tables; the values below were read off the
published Figure 5 and Figure 6 curves by eye.  They are **approximate by
construction** and are used for *qualitative shape checks only* (who beats
whom at each x — see :func:`repro.experiments.runner.ranking_agreement`),
never for absolute comparisons.

x-axes follow the paper exactly: Figures 5a/5b sweep pair distance as a
percent of the maximum (10..50); Figure 6 sweeps range-query size as a
percent of the space (2..64).
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult

NN_PERCENTS = (10, 20, 30, 40, 50)
RANGE_PERCENTS = (2, 4, 8, 16, 32, 64)


def paper_fig5a() -> ExperimentResult:
    """Figure 5a — NN worst case, 5-D points, max 1-D distance (% of n)."""
    result = ExperimentResult(
        exp_id="fig5a-paper",
        title="NN worst case (digitized from the published plot)",
        xlabel="Manhattan distance (%)",
        ylabel="max 1-D distance (% of n)",
        x=NN_PERCENTS,
    )
    result.add_series("sweep", (45, 57, 65, 72, 78))
    result.add_series("peano", (78, 82, 85, 87, 88))
    result.add_series("gray", (83, 86, 88, 89, 90))
    result.add_series("hilbert", (75, 80, 84, 86, 88))
    result.add_series("spectral", (31, 42, 50, 57, 62))
    return result


def paper_fig5b() -> ExperimentResult:
    """Figure 5b — fairness across the two axes of a 2-D space."""
    result = ExperimentResult(
        exp_id="fig5b-paper",
        title="NN fairness (digitized from the published plot)",
        xlabel="Manhattan distance (%)",
        ylabel="max 1-D distance",
        x=NN_PERCENTS,
    )
    result.add_series("sweep-X", (50, 95, 140, 190, 235))
    result.add_series("sweep-Y", (4, 7, 10, 13, 16))
    result.add_series("spectral-X", (28, 48, 65, 80, 95))
    result.add_series("spectral-Y", (30, 50, 68, 82, 97))
    return result


def paper_fig6a() -> ExperimentResult:
    """Figure 6a — range-query worst-case span, 4-D space."""
    result = ExperimentResult(
        exp_id="fig6a-paper",
        title="Range worst case (digitized from the published plot)",
        xlabel="query size (%)",
        ylabel="max span",
        x=RANGE_PERCENTS,
    )
    result.add_series("sweep", (560, 640, 730, 840, 950, 1040))
    result.add_series("peano", (650, 720, 800, 890, 990, 1070))
    result.add_series("gray", (700, 770, 850, 930, 1020, 1090))
    result.add_series("hilbert", (620, 700, 780, 870, 970, 1060))
    result.add_series("spectral", (430, 490, 560, 650, 760, 880))
    return result


def paper_fig6b() -> ExperimentResult:
    """Figure 6b — stdev of span over all partial range queries, 4-D."""
    result = ExperimentResult(
        exp_id="fig6b-paper",
        title="Range fairness (digitized from the published plot)",
        xlabel="query size (%)",
        ylabel="stdev of span",
        x=RANGE_PERCENTS,
    )
    result.add_series("sweep", (70, 64, 57, 48, 36, 22))
    result.add_series("peano", (46, 42, 38, 32, 25, 16))
    result.add_series("gray", (51, 47, 42, 36, 28, 18))
    result.add_series("hilbert", (41, 38, 34, 29, 23, 15))
    result.add_series("spectral", (9, 8, 7, 6, 5, 3))
    return result


#: Paper Figure 1's reported 1-D distances between its two marked
#: boundary-adjacent points, per fractal curve (4x4 grid).  The exact
#: values depend on each curve's orientation (reflections/rotations of a
#: Hilbert curve are all "the Hilbert curve" but relocate the worst
#: pair), so these are qualitative anchors — the reproducible claim is
#: that every fractal's boundary gap far exceeds the non-fractal
#: mappings', which fig1 measures directly.
PAPER_FIG1_GAPS = {"peano": 5, "gray": 9, "hilbert": 15}

#: Paper Figure 3's published spectral order of the 3x3 grid (rank ->
#: row-major cell id) and its Fiedler value.
PAPER_FIG3_ORDER = (2, 1, 5, 0, 4, 8, 3, 7, 6)
PAPER_FIG3_LAMBDA2 = 1.0

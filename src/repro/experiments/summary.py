"""Cross-metric summary: every mapping against every locality metric.

Not a figure from the paper — the table the paper makes you wish for.
One row per metric (all lower-is-better except recall, which is negated
into "miss rate" so the table reads uniformly), one column per mapping,
on a single 2-D grid.
"""

from __future__ import annotations

from repro.api.index import SpectralIndex
from repro.core.spectral import SpectralConfig
from repro.experiments.runner import ExperimentResult
from repro.geometry.boxes import extent_for_volume_fraction
from repro.geometry.grid import Grid
from repro.graph.builders import grid_graph
from repro.mapping.interface import PAPER_MAPPING_NAMES
from repro.metrics.arrangement import arrangement_costs
from repro.metrics.clustering import cluster_stats
from repro.metrics.pairwise import adjacent_gap_stats
from repro.metrics.range_span import span_stats
from repro.query.nn import knn_window_recall

SUMMARY_METRICS = (
    "adjacent-max",
    "adjacent-mean",
    "span-max",
    "span-std",
    "clusters-mean",
    "two-sum",
    "bandwidth",
    "nn-miss-rate",
)


def run_summary(side: int = 16, backend: str = "auto",
                query_fraction: float = 0.0625,
                nn_k: int = 8, nn_window: int = 16,
                service=None) -> ExperimentResult:
    """The full metric matrix on a ``side x side`` grid.

    ``query_fraction`` sizes the range-query family for the span/cluster
    rows; ``nn_k``/``nn_window`` parameterize the similarity-search row.
    An optional ordering service shares the spectral solve with other
    harnesses over the same domain.
    """
    grid = Grid((side, side))
    graph = grid_graph(grid)
    extent = extent_for_volume_fraction(grid, query_fraction)
    result = ExperimentResult(
        exp_id="summary",
        title=f"All mappings x all metrics on {side}x{side} "
              f"(queries {extent}, {nn_k}-NN window {nn_window})",
        xlabel="metric",
        ylabel="lower is better (recall negated into miss rate)",
        x=list(SUMMARY_METRICS),
        params={"side": side, "backend": backend,
                "query_fraction": query_fraction},
    )
    index = SpectralIndex.build(grid, service=service,
                                config=SpectralConfig(backend=backend))
    for name in PAPER_MAPPING_NAMES:
        order = index.order_for(name)
        ranks = order.ranks
        worst_gap, mean_gap = adjacent_gap_stats(grid, ranks)
        spans = span_stats(grid, ranks, extent)
        clusters = cluster_stats(grid, ranks, extent)
        costs = arrangement_costs(graph, order)
        recall = knn_window_recall(grid, ranks, k=nn_k, window=nn_window,
                                   seed=29, sample=48).mean_recall
        result.add_series(name, [
            worst_gap,
            mean_gap,
            spans.max,
            spans.std,
            clusters.mean,
            costs.two_sum,
            costs.bandwidth,
            1.0 - recall,
        ])
    return result

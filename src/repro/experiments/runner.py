"""Experiment result containers and shape checks.

Each figure harness produces an :class:`ExperimentResult`: a shared x-axis
plus one y-series per mapping, with enough metadata to print the same
rows/series the paper plots.  Because our substrate is not the authors'
1993-era testbed, absolute values are not expected to match; the *shape*
checks in :func:`ranking_agreement` compare who-beats-whom at each x
against the digitized paper curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class Series:
    """One named curve: y values aligned with the experiment's x axis."""

    name: str
    y: tuple

    def __post_init__(self):
        object.__setattr__(self, "y", tuple(float(v) for v in self.y))


@dataclass
class ExperimentResult:
    """A full experiment: axes, series, parameters, and free-form notes."""

    exp_id: str
    title: str
    xlabel: str
    ylabel: str
    x: Sequence
    series: List[Series] = field(default_factory=list)
    params: Dict = field(default_factory=dict)
    notes: str = ""

    def add_series(self, name: str, y: Sequence[float]) -> None:
        if len(y) != len(self.x):
            raise InvalidParameterError(
                f"series {name!r} has {len(y)} points, x-axis has "
                f"{len(self.x)}"
            )
        self.series.append(Series(name=name, y=tuple(y)))

    def series_by_name(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise InvalidParameterError(
            f"no series named {name!r}; have "
            f"{[s.name for s in self.series]}"
        )

    @property
    def series_names(self) -> List[str]:
        return [s.name for s in self.series]


def ranking_at(result: ExperimentResult, x_index: int) -> List[str]:
    """Series names at one x position, best (lowest y) first.

    Every Section-5 metric is lower-is-better, so "ranking" means
    ascending y.  Ties keep series order (stable sort).
    """
    if not 0 <= x_index < len(result.x):
        raise InvalidParameterError(
            f"x_index {x_index} out of range [0, {len(result.x)})"
        )
    pairs = [(s.y[x_index], i, s.name) for i, s in enumerate(result.series)]
    pairs.sort(key=lambda t: (t[0], t[1]))
    return [name for _, _, name in pairs]


def ranking_agreement(measured: ExperimentResult,
                      reference: ExperimentResult) -> float:
    """Mean pairwise order agreement between two results' rankings.

    For every x position and every pair of series present in both
    results, score 1 when the two results order the pair the same way
    (ties in either count as agreement), 0 otherwise; return the mean.
    1.0 means the measured figure tells exactly the paper's story.
    """
    common = [n for n in measured.series_names
              if n in reference.series_names]
    if len(common) < 2:
        raise InvalidParameterError(
            "need at least two common series to compare rankings"
        )
    if len(measured.x) != len(reference.x):
        raise InvalidParameterError(
            "results have different x-axes; re-run with matching params"
        )
    scores = []
    for k in range(len(measured.x)):
        for i in range(len(common)):
            for j in range(i + 1, len(common)):
                a_m = measured.series_by_name(common[i]).y[k]
                b_m = measured.series_by_name(common[j]).y[k]
                a_r = reference.series_by_name(common[i]).y[k]
                b_r = reference.series_by_name(common[j]).y[k]
                diff_m = np.sign(a_m - b_m)
                diff_r = np.sign(a_r - b_r)
                scores.append(
                    1.0 if (diff_m == diff_r or diff_m == 0 or diff_r == 0)
                    else 0.0
                )
    return float(np.mean(scores))


def winner_per_x(result: ExperimentResult) -> List[str]:
    """The best (lowest) series name at every x position."""
    return [ranking_at(result, k)[0] for k in range(len(result.x))]

"""Text rendering of experiment results.

Prints the same rows/series the paper's figures plot, as aligned text
tables — the harness's primary output format (no plotting dependencies in
an offline reproduction).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.runner import (
    ExperimentResult,
    ranking_agreement,
    winner_per_x,
)


def render_table(result: ExperimentResult, precision: int = 1) -> str:
    """One aligned table: x column plus one column per series."""
    headers = [result.xlabel] + result.series_names
    rows = []
    for k, x in enumerate(result.x):
        row = [str(x)]
        for s in result.series:
            value = s.y[k]
            if float(value).is_integer() and abs(value) < 1e15:
                row.append(str(int(value)))
            else:
                row.append(f"{value:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    lines = [
        f"{result.exp_id}: {result.title}",
        f"(y = {result.ylabel})",
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    if result.notes:
        lines.append("")
        lines.append(result.notes)
    return "\n".join(lines)


def render_report(measured: ExperimentResult,
                  reference: Optional[ExperimentResult] = None,
                  precision: int = 1) -> str:
    """Measured table plus a shape comparison against the paper's curves."""
    parts = [render_table(measured, precision=precision)]
    parts.append("")
    parts.append("winner per x: " + ", ".join(
        f"{x}->{name}" for x, name in zip(measured.x,
                                          winner_per_x(measured))
    ))
    if reference is not None:
        agreement = ranking_agreement(measured, reference)
        parts.append(
            f"pairwise ranking agreement with the paper's digitized "
            f"curves: {agreement:.2f}"
        )
    return "\n".join(parts)

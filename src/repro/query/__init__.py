"""Query workloads and query processing over linear orders."""

from repro.query.engine import (
    PLANS,
    LinearStore,
    QueryExecution,
    WorkloadReport,
)
from repro.query.join import (
    JoinReport,
    true_join_pairs,
    window_join_candidates,
    window_join_report,
)
from repro.query.nn import (
    RecallReport,
    knn_window_recall,
    true_knn,
    window_candidates,
)
from repro.query.workloads import (
    pairs_at_manhattan_distance,
    random_boxes,
    random_cells,
    sliding_boxes,
)

__all__ = [
    "JoinReport",
    "LinearStore",
    "PLANS",
    "QueryExecution",
    "RecallReport",
    "WorkloadReport",
    "knn_window_recall",
    "pairs_at_manhattan_distance",
    "random_boxes",
    "random_cells",
    "sliding_boxes",
    "true_join_pairs",
    "true_knn",
    "window_candidates",
    "window_join_candidates",
    "window_join_report",
]

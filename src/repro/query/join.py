"""Spatial join through linear orders.

One of the paper's motivating applications (Sections 1 and 6): join two
point sets on spatial proximity ("all pairs within Manhattan distance
epsilon").  The classic 1-D trick maps both sets with the same
locality-preserving mapping, sorts by mapping rank, and sweeps a rank
window — every true pair whose rank distance is within the window is
found without computing all |A| x |B| distances.

The interesting measurements are:

* **recall** — fraction of true pairs whose rank distance fits the
  window (better locality => higher recall at a fixed window), and
* **candidate ratio** — candidates examined per true pair (lower is
  cheaper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DimensionError, InvalidParameterError
from repro.geometry.grid import Grid


def true_join_pairs(grid: Grid, cells_a: Sequence[int],
                    cells_b: Sequence[int],
                    epsilon: int) -> np.ndarray:
    """All ``(i, j)`` position pairs with Manhattan distance <= epsilon.

    Positions index into ``cells_a`` / ``cells_b``; the result is an
    ``(m, 2)`` array sorted lexicographically.
    """
    if epsilon < 0:
        raise InvalidParameterError(
            f"epsilon must be >= 0, got {epsilon}"
        )
    a = np.asarray(cells_a, dtype=np.int64)
    b = np.asarray(cells_b, dtype=np.int64)
    coords = grid.coordinates()
    pa = coords[a]
    pb = coords[b]
    distances = np.abs(pa[:, None, :] - pb[None, :, :]).sum(axis=2)
    ii, jj = np.nonzero(distances <= epsilon)
    return np.stack([ii, jj], axis=1)


def window_join_candidates(ranks: np.ndarray, cells_a: Sequence[int],
                           cells_b: Sequence[int],
                           window: int) -> np.ndarray:
    """Position pairs whose mapping ranks differ by at most ``window``.

    Sort-merge over the two rank lists: O((|A| + |B|) log + output).
    """
    if window < 0:
        raise InvalidParameterError(f"window must be >= 0, got {window}")
    ranks = np.asarray(ranks)
    a = np.asarray(cells_a, dtype=np.int64)
    b = np.asarray(cells_b, dtype=np.int64)
    ra = ranks[a]
    rb = ranks[b]
    order_b = np.argsort(rb, kind="stable")
    rb_sorted = rb[order_b]
    pairs = []
    for i, rank in enumerate(ra):
        lo = int(np.searchsorted(rb_sorted, rank - window, side="left"))
        hi = int(np.searchsorted(rb_sorted, rank + window, side="right"))
        for pos in range(lo, hi):
            pairs.append((i, int(order_b[pos])))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(pairs, dtype=np.int64)


@dataclass(frozen=True)
class JoinReport:
    """Quality of a window join under one mapping."""

    epsilon: int
    window: int
    true_pairs: int
    candidate_pairs: int
    matched_pairs: int

    @property
    def recall(self) -> float:
        """Fraction of true pairs the window join finds."""
        if self.true_pairs == 0:
            return 1.0
        return self.matched_pairs / self.true_pairs

    @property
    def candidate_ratio(self) -> float:
        """Candidates per true pair (>= 1 is ideal-adjacent)."""
        if self.true_pairs == 0:
            return float(self.candidate_pairs)
        return self.candidate_pairs / self.true_pairs


def window_join_report(grid: Grid, ranks: np.ndarray,
                       cells_a: Sequence[int], cells_b: Sequence[int],
                       epsilon: int, window: int) -> JoinReport:
    """Run the window join and score it against the exact join."""
    ranks = np.asarray(ranks)
    if ranks.shape != (grid.size,):
        raise DimensionError(
            f"ranks must have shape ({grid.size},), got {ranks.shape}"
        )
    truth = true_join_pairs(grid, cells_a, cells_b, epsilon)
    candidates = window_join_candidates(ranks, cells_a, cells_b, window)
    truth_set = set(map(tuple, truth.tolist()))
    candidate_set = set(map(tuple, candidates.tolist()))
    matched = len(truth_set & candidate_set)
    return JoinReport(
        epsilon=epsilon,
        window=window,
        true_pairs=len(truth_set),
        candidate_pairs=len(candidate_set),
        matched_pairs=matched,
    )

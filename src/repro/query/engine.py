"""LinearStore: an executable end-to-end spatial store.

The paper's architecture, assembled: a :class:`LinearStore` maps grid
cells through a :class:`~repro.mapping.LocalityMapping` into 1-D keys,
indexes the keys in a B+-tree, and lays the records onto fixed-size
pages.  Range queries run the way Section 5 models them:

``"span-scan"``
    Descend the B+-tree to the query's minimum key and walk the leaf
    chain to its maximum key, "eliminating the records that lie outside
    the range query" (the paper's own description).  Cost tracks the
    Figure-6 span.
``"page-fetch"``
    Fetch exactly the pages containing qualifying records (an index
    union plan).  Cost tracks pages + seeks.

Both plans return identical result sets; the engine reports per-plan
I/O so their trade-off is measurable per mapping, and an optional LRU
buffer absorbs repeated pages across a query stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.geometry.boxes import Box
from repro.geometry.grid import Grid
from repro.index.bplustree import BPlusTree
from repro.mapping.interface import LocalityMapping, SpectralMapping
from repro.storage.buffer import LRUBufferPool
from repro.storage.disk import DiskCostModel
from repro.storage.pages import PageLayout

PLANS = ("span-scan", "page-fetch")


@dataclass(frozen=True)
class QueryExecution:
    """Result set and I/O accounting of one range query."""

    results: np.ndarray         # qualifying flat cell indices, ascending
    plan: str
    index_node_accesses: int    # B+-tree nodes touched
    pages_fetched: int          # data pages read (before buffering)
    seeks: int                  # contiguous page runs
    buffer_hits: int
    cost: float                 # modelled disk cost of the misses


class LinearStore:
    """Grid cells stored in mapping order behind a B+-tree index.

    Parameters
    ----------
    grid:
        The domain.
    mapping:
        Any :class:`~repro.mapping.LocalityMapping`; its order defines
        both the B+-tree keys and the page layout.
    page_size:
        Records per data page.
    tree_order:
        B+-tree fanout.
    buffer_capacity:
        Pages held in the LRU pool; ``None`` disables buffering.
    cost_model:
        Seek/transfer costs for the accounting.
    service:
        Optional :class:`~repro.service.ordering.OrderingService`.  When
        given and the mapping is a cacheable spectral mapping without a
        service of its own, the store's order is obtained through the
        service, so many stores over the same domain (and service
        restarts backed by a disk store) share one eigensolve.  A
        mapping that already carries a service keeps it, non-cacheable
        spectral mappings keep their per-grid memo (re-solving through a
        cache-bypassing service would be strictly slower), and
        non-spectral mappings ignore it — curve orders are already
        cheaper than a cache lookup is worth persisting.
    """

    def __init__(self, grid: Grid, mapping: LocalityMapping,
                 page_size: int = 16, tree_order: int = 32,
                 buffer_capacity: Optional[int] = None,
                 cost_model: Optional[DiskCostModel] = None,
                 service=None):
        self._grid = grid
        self._mapping = mapping
        if (service is not None and isinstance(mapping, SpectralMapping)
                and mapping.service is None
                and mapping.algorithm.cacheable):
            order = service.order_grid(grid, mapping.algorithm)
        else:
            order = mapping.order_for_grid(grid)
        self._ranks = order.ranks
        self._layout = PageLayout(order, page_size)
        # Key = rank; value = flat cell index.
        self._tree = BPlusTree.bulk_load(
            list(range(grid.size)),
            [int(cell) for cell in order.permutation],
            order=tree_order,
        )
        self._buffer = (LRUBufferPool(buffer_capacity)
                        if buffer_capacity else None)
        self._model = cost_model or DiskCostModel()

    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def mapping_name(self) -> str:
        return self._mapping.name

    @property
    def layout(self) -> PageLayout:
        return self._layout

    @property
    def tree(self) -> BPlusTree:
        return self._tree

    # ------------------------------------------------------------------
    def range_query(self, box: Box,
                    plan: str = "span-scan") -> QueryExecution:
        """Execute an axis-aligned range query under the chosen plan."""
        if plan not in PLANS:
            raise InvalidParameterError(
                f"unknown plan {plan!r}; expected one of {PLANS}"
            )
        wanted = box.cell_indices(self._grid)
        wanted_set = set(int(c) for c in wanted)
        ranks = self._ranks[wanted]
        lo, hi = int(ranks.min()), int(ranks.max())

        if plan == "span-scan":
            candidates, node_accesses = self._tree.range_search(lo, hi)
            results = np.array(sorted(
                cell for cell in candidates if cell in wanted_set
            ), dtype=np.int64)
            pages = self._layout.pages_for_items(
                np.array(candidates, dtype=np.int64))
        else:  # page-fetch
            node_accesses = 0
            pages = self._layout.pages_for_items(wanted)
            results = np.sort(wanted)

        runs = len(self._layout.page_run_lengths(pages))
        hits = 0
        misses = len(pages)
        if self._buffer is not None:
            hits = self._buffer.access_many(int(p) for p in pages)
            misses = len(pages) - hits
        # Seeks only apply to pages actually read from disk; buffered
        # runs are approximated by scaling runs with the miss fraction.
        effective_runs = (runs if misses == len(pages)
                          else min(runs, misses))
        cost = self._model.cost(misses, effective_runs)
        return QueryExecution(
            results=results,
            plan=plan,
            index_node_accesses=node_accesses,
            pages_fetched=len(pages),
            seeks=runs,
            buffer_hits=hits,
            cost=cost,
        )

    def point_query(self, point: Sequence[int]) -> Tuple[bool, int]:
        """Whether a cell exists (always true on a full grid) and the
        B+-tree node accesses spent proving it."""
        cell = self._grid.index_of(point)
        value, accesses = self._tree.search(int(self._ranks[cell]))
        return value is not None, accesses

    def execute_workload(self, boxes: Sequence[Box],
                         plan: str = "span-scan") -> "WorkloadReport":
        """Run a query stream and aggregate the accounting."""
        executions = [self.range_query(box, plan=plan) for box in boxes]
        return WorkloadReport(
            plan=plan,
            queries=len(executions),
            results=sum(len(e.results) for e in executions),
            index_node_accesses=sum(e.index_node_accesses
                                    for e in executions),
            pages_fetched=sum(e.pages_fetched for e in executions),
            seeks=sum(e.seeks for e in executions),
            buffer_hits=sum(e.buffer_hits for e in executions),
            cost=sum(e.cost for e in executions),
        )


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregated accounting of a query stream."""

    plan: str
    queries: int
    results: int
    index_node_accesses: int
    pages_fetched: int
    seeks: int
    buffer_hits: int
    cost: float
